#!/usr/bin/env bash
# Run the pinned perf-trajectory workloads and refresh the tracked BENCH
# files at the repo root:
#
#   BENCH_sim.json    simulator hot path — simulated cycles per wall
#                     second on the zoo's MNIST and Alexnet entries
#   BENCH_serve.json  serving stack — requests/sec and p50/p99 latency
#                     (simulated time: deterministic, byte-stable)
#
# Usage: scripts/bench.sh [--smoke] [jobs]
#   --smoke  minimal run counts (tier1's bench-smoke stage); output goes
#            to a temp dir and the tracked files are left untouched.
#
# Compare two snapshots with scripts/bench_diff.py (exits nonzero on a
# >10% regression of any tracked metric).
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
JOBS="$(nproc)"
for arg in "$@"; do
  case "${arg}" in
    --smoke) SMOKE=1 ;;
    *) JOBS="${arg}" ;;
  esac
done

cmake --preset default >/dev/null
cmake --build --preset default -j "${JOBS}" --target trajectory

if [[ "${SMOKE}" == "1" ]]; then
  OUT="$(mktemp -d)"
  trap 'rm -rf "${OUT}"' EXIT
  ./build/bench/trajectory --smoke --out "${OUT}"
  # The diff tool must parse both the committed and the fresh snapshots.
  # Wall-clock throughput is noisy and smoke runs are unwarmed, so gate
  # only on the tool working, not on the smoke numbers.
  python3 scripts/bench_diff.py BENCH_serve.json "${OUT}/BENCH_serve.json"
  python3 scripts/bench_diff.py BENCH_sim.json "${OUT}/BENCH_sim.json" \
    --tolerance 1e9
else
  ./build/bench/trajectory --out .
fi
