#!/usr/bin/env bash
# Tier-1 verification: the default build + full test suite, followed by
# sanitized configurations — ASan+UBSan over the inference server and its
# substrate, then TSan over the concurrency-labelled suites (server
# workers, metrics sinks, the logger).
#
# Usage: scripts/tier1.sh [jobs]
#
# Set DB_COVERAGE=1 to append a gcov line-coverage stage: the full suite
# runs in an instrumented build (build-coverage/) and a per-module
# line-coverage summary is printed at the end.
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1: default build =="
cmake --preset default
cmake --build --preset default -j "${JOBS}"
ctest --preset default -j "${JOBS}"

echo "== tier-1: profile report byte-stability =="
# The deterministic-profiling contract: two invocations of the profile
# subcommand on the same zoo model must render byte-identical reports
# (text and JSON), and the lint stage's metric-name allowlist must match
# the tree.
PROFILE_TMP="$(mktemp -d)"
trap 'rm -rf "${PROFILE_TMP}"' EXIT
build/tools/deepburning profile Alexnet > "${PROFILE_TMP}/a.txt"
build/tools/deepburning profile Alexnet > "${PROFILE_TMP}/b.txt"
cmp "${PROFILE_TMP}/a.txt" "${PROFILE_TMP}/b.txt"
build/tools/deepburning profile Alexnet --json > "${PROFILE_TMP}/a.json"
build/tools/deepburning profile Alexnet --json > "${PROFILE_TMP}/b.json"
cmp "${PROFILE_TMP}/a.json" "${PROFILE_TMP}/b.json"
scripts/lint.sh --metrics-only

echo "== tier-1: ASan+UBSan on the concurrent server and its substrate =="
cmake --preset asan
cmake --build --preset asan -j "${JOBS}" \
  --target serve_test trace_test common_test perf_model_test \
           host_runtime_test system_sim_test obs_test
ctest --preset asan -j "${JOBS}" \
  -R 'Batcher|RequestQueue|InferenceServer|PerfTrace|MathUtil|HostRuntime|SystemSim|PerfModel|Metrics|Tracer|ScopedSpan|ChromeTrace|ExportPerfTrace'

echo "== tier-1: UBSan on the static verifier and RTL lint =="
# The verifier's interval arithmetic (AGU footprints, memory-map overlap
# scans, fold partitions) is exactly where signed overflow and bad shifts
# would hide; pure UBSan runs it at near-native speed, including the
# seeded mutation sweep.
cmake --preset ubsan
cmake --build --preset ubsan -j "${JOBS}" --target analysis_test rtl_test
ctest --preset ubsan -j "${JOBS}" \
  -R 'Diagnostics|Verifier|MutationSweep|DesignCacheVerify|BrokenRuleSweep|Lint'

echo "== tier-1: UBSan on the RTL analysis suite (ctest -L rtl) =="
# The elaborator's bit-range bookkeeping and the width-inference
# arithmetic (slice bounds, literal rendering shifts, Tarjan indices)
# run the whole rtl-labelled suite under UBSan: the typed-AST printer
# goldens, the netlist elaborator and the rtl.* mutation sweep.
cmake --build --preset ubsan -j "${JOBS}" --target rtl_test rtl_analysis_test
ctest --preset ubsan -j "${JOBS}" -L rtl

echo "== tier-1: TSan on the thread-labelled suites (ctest -L threads) =="
cmake --preset tsan
cmake --build --preset tsan -j "${JOBS}" \
  --target serve_test obs_test common_test
ctest --preset tsan -j "${JOBS}" -L threads

echo "== tier-1: ASan fault campaign (ctest -L faults) =="
# The seeded fault-injection campaign (bit flips, transients, stalls)
# under ASan+UBSan: recovery paths (scrub-and-reload, retries, deadline
# expiry, shedding) must be memory-clean, not just correct.
cmake --build --preset asan -j "${JOBS}" --target fault_test
ctest --preset asan -j "${JOBS}" -L faults

echo "== tier-1: ASan cluster chaos campaign (ctest -L chaos) =="
# Cluster-level resilience under ASan+UBSan: replica crash re-dispatch,
# health-monitor readmission, circuit breaking and hedging must keep
# every request accounted for (and bit-identical where kOk) while the
# recovery paths stay memory-clean.
cmake --build --preset asan -j "${JOBS}" --target chaos_test
ctest --preset asan -j "${JOBS}" -L chaos

echo "== tier-1: ASan DSE campaign (ctest -L dse) + tune byte-stability =="
# The design-space exploration contract under ASan+UBSan: the exhaustive
# cross-check (parallel pruned search == brute-force frontier on every
# zoo model), the Pareto property suite and the sweep grammar must be
# memory-clean.  Then the CLI smoke: the tune report must be
# byte-identical across reruns and across --jobs values.
cmake --build --preset asan -j "${JOBS}" --target dse_test
ctest --preset asan -j "${JOBS}" -L dse
build/tools/deepburning tune MNIST --jobs 1 > "${PROFILE_TMP}/tune_a.txt"
build/tools/deepburning tune MNIST --jobs 8 > "${PROFILE_TMP}/tune_b.txt"
cmp "${PROFILE_TMP}/tune_a.txt" "${PROFILE_TMP}/tune_b.txt"
build/tools/deepburning tune MNIST --jobs 8 --json > "${PROFILE_TMP}/tune_a.json"
build/tools/deepburning tune MNIST --jobs 8 --json > "${PROFILE_TMP}/tune_b.json"
cmp "${PROFILE_TMP}/tune_a.json" "${PROFILE_TMP}/tune_b.json"

echo "== tier-1: bench smoke (perf-trajectory harness + diff tool) =="
# Minimal-run trajectory into a temp dir, then bench_diff.py over the
# committed snapshots: proves the harness runs, the JSON parses, and the
# regression gate works.  Smoke numbers are unwarmed, so the sim compare
# is parse-only (huge tolerance); the serve compare is simulated time
# and must hold to the default 10%.
scripts/bench.sh --smoke "${JOBS}"

if [[ "${DB_COVERAGE:-0}" == "1" ]]; then
  echo "== tier-1: gcov line coverage over the full suite =="
  cmake --preset coverage
  cmake --build --preset coverage -j "${JOBS}"
  ctest --preset coverage -j "${JOBS}"
  # Per-module summary: aggregate each src/<module>'s gcov line rates.
  # gcov writes its .gcov transcripts into the cwd; keep them out of the
  # tree.
  (
    cd build-coverage
    find . -name '*.gcda' -path '*src*' -print0 |
      xargs -0 gcov 2>/dev/null |
      awk '/^File .*\/src\// {
             file = $2; gsub(/'"'"'/, "", file)
             sub(/.*\/src\//, "", file); sub(/\/.*/, "", file)
           }
           /^Lines executed:/ && file != "" {
             split($0, a, ":"); split(a[2], b, "% of ")
             covered[file] += b[2] * b[1] / 100.0; total[file] += b[2]
             file = ""
           }
           END {
             printf "%-12s %10s %10s %8s\n",
                    "module", "lines", "covered", "rate"
             for (m in total)
               printf "%-12s %10d %10d %7.1f%%\n",
                      m, total[m], covered[m], 100.0 * covered[m] / total[m]
           }' | sort
    rm -f ./*.gcov
  )
fi

echo "tier-1 OK"
