#!/usr/bin/env bash
# Tier-1 verification: the default build + full test suite, followed by
# sanitized configurations — ASan+UBSan over the inference server and its
# substrate, then TSan over the concurrency-labelled suites (server
# workers, metrics sinks, the logger).
#
# Usage: scripts/tier1.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1: default build =="
cmake --preset default
cmake --build --preset default -j "${JOBS}"
ctest --preset default -j "${JOBS}"

echo "== tier-1: ASan+UBSan on the concurrent server and its substrate =="
cmake --preset asan
cmake --build --preset asan -j "${JOBS}" \
  --target serve_test trace_test common_test perf_model_test \
           host_runtime_test system_sim_test obs_test
ctest --preset asan -j "${JOBS}" \
  -R 'Batcher|RequestQueue|InferenceServer|PerfTrace|MathUtil|HostRuntime|SystemSim|PerfModel|Metrics|Tracer|ScopedSpan|ChromeTrace|ExportPerfTrace'

echo "== tier-1: TSan on the thread-labelled suites (ctest -L threads) =="
cmake --preset tsan
cmake --build --preset tsan -j "${JOBS}" \
  --target serve_test obs_test common_test
ctest --preset tsan -j "${JOBS}" -L threads

echo "== tier-1: ASan fault campaign (ctest -L faults) =="
# The seeded fault-injection campaign (bit flips, transients, stalls)
# under ASan+UBSan: recovery paths (scrub-and-reload, retries, deadline
# expiry, shedding) must be memory-clean, not just correct.
cmake --build --preset asan -j "${JOBS}" --target fault_test
ctest --preset asan -j "${JOBS}" -L faults

echo "tier-1 OK"
