#!/usr/bin/env bash
# clang-tidy over the whole tree, driven by the default build's
# compile_commands.json and the checks in .clang-tidy (bugprone-*,
# performance-*, readability-identifier-naming).
#
# Usage: scripts/lint.sh [jobs]
#
# The toolchain image ships gcc only; when no clang-tidy binary is on
# PATH the script reports that and exits 0 so CI recipes can call it
# unconditionally — it gates, it does not fail, on the missing tool.
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

TIDY=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "${candidate}" >/dev/null 2>&1; then
    TIDY="${candidate}"
    break
  fi
done
if [[ -z "${TIDY}" ]]; then
  echo "lint: no clang-tidy on PATH; skipping (checks live in .clang-tidy)"
  exit 0
fi

# The default build exports the compilation database the tool needs.
cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
if [[ ! -f build/compile_commands.json ]]; then
  echo "lint: build/compile_commands.json did not materialise" >&2
  exit 1
fi

# Every first-party translation unit; third-party code never enters the
# tree, so no exclusion list is needed.
mapfile -t sources < <(find src tools tests -name '*.cpp' | sort)
echo "lint: ${TIDY} over ${#sources[@]} files (${JOBS} jobs)"
printf '%s\n' "${sources[@]}" |
  xargs -P "${JOBS}" -n 8 "${TIDY}" -p build --quiet
echo "lint OK"
