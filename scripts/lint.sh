#!/usr/bin/env bash
# Two stages: a metric-name lint that always runs, then clang-tidy over
# the whole tree, driven by the default build's compile_commands.json
# and the checks in .clang-tidy (bugprone-*, performance-*,
# readability-identifier-naming).
#
# Usage: scripts/lint.sh [--metrics-only] [jobs]
#
# The toolchain image ships gcc only; when no clang-tidy binary is on
# PATH the script reports that and exits 0 so CI recipes can call it
# unconditionally — it gates, it does not fail, on the missing tool.
set -euo pipefail
cd "$(dirname "$0")/.."
METRICS_ONLY=0
if [[ "${1:-}" == "--metrics-only" ]]; then
  METRICS_ONLY=1
  shift
fi
JOBS="${1:-$(nproc)}"

# --- Metric-name lint -------------------------------------------------
# Every metric or time-series name emitted in src/ must appear in the
# checked-in allowlist, and every allowlisted name must still be
# emitted.  This catches accidental renames (which would silently break
# BENCH comparisons, dashboards and the serve_determinism gate) and
# stale allowlist entries alike.  Extraction: the first string literal
# handed to AddCounter/SetGauge/Observe/Append, with printf-style
# replica indices normalised to <n> and dynamic-suffix sites (a literal
# prefix ending in ".") normalised to <dynamic>.
ALLOWLIST="scripts/metric_allowlist.txt"
emitted="$(
  grep -rhoE \
    '(AddCounter|SetGauge|Observe|Append)\((StrFormat\(|std::string\()?"[^"]+"' \
    src |
    sed -E 's/^[A-Za-z_]+\((StrFormat\(|std::string\()?"//; s/"$//' |
    sed -E 's/%d/<n>/g; s/\.$/.<dynamic>/' |
    LC_ALL=C sort -u
)"
if ! diff -u "${ALLOWLIST}" <(printf '%s\n' "${emitted}"); then
  echo "lint: metric names diverge from ${ALLOWLIST}" >&2
  echo "lint: update the allowlist if the rename is intentional" >&2
  exit 1
fi
# Taxonomy: <subsystem>.<noun>[.<noun>...] — lowercase snake_case parts,
# with <n>/<dynamic> placeholders allowed inside a part.
bad="$(printf '%s\n' "${emitted}" |
  grep -vE '^[a-z][a-z0-9_]*(\.([a-z0-9_]|<n>|<dynamic>)+)+$' || true)"
if [[ -n "${bad}" ]]; then
  echo "lint: metric names violate the <subsystem>.<noun> taxonomy:" >&2
  printf '%s\n' "${bad}" >&2
  exit 1
fi
echo "lint: metric names match ${ALLOWLIST}"
if [[ "${METRICS_ONLY}" == "1" ]]; then
  exit 0
fi

TIDY=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "${candidate}" >/dev/null 2>&1; then
    TIDY="${candidate}"
    break
  fi
done
if [[ -z "${TIDY}" ]]; then
  echo "lint: no clang-tidy on PATH; skipping (checks live in .clang-tidy)"
  exit 0
fi

# The default build exports the compilation database the tool needs.
cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
if [[ ! -f build/compile_commands.json ]]; then
  echo "lint: build/compile_commands.json did not materialise" >&2
  exit 1
fi

# Every first-party translation unit; third-party code never enters the
# tree, so no exclusion list is needed.
mapfile -t sources < <(find src tools tests -name '*.cpp' | sort)
echo "lint: ${TIDY} over ${#sources[@]} files (${JOBS} jobs)"
printf '%s\n' "${sources[@]}" |
  xargs -P "${JOBS}" -n 8 "${TIDY}" -p build --quiet
echo "lint OK"
