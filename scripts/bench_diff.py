#!/usr/bin/env python3
"""Compare two BENCH_*.json snapshots and fail on regressions.

Usage: bench_diff.py OLD.json NEW.json [--tolerance FRAC]

Workloads are matched by their identifying fields (model plus any serve
configuration); metrics present in both snapshots are compared with a
direction per metric:

  higher is better:  sim_cycles_per_sec, requests_per_sec
  lower is better:   wall_ms_per_run, p50_ms, p99_ms

Exits 1 when any metric moved in the bad direction by more than
``--tolerance`` (default 0.10 = 10%). Workloads present in only one
snapshot are reported but not fatal (the pinned set may grow over time).
Uses only the Python standard library.
"""

import argparse
import json
import sys

# metric name -> True when higher is better
DIRECTIONS = {
    "sim_cycles_per_sec": True,
    "requests_per_sec": True,
    "wall_ms_per_run": False,
    "p50_ms": False,
    "p99_ms": False,
}

KEY_FIELDS = ("model", "workers", "max_batch_size", "requests")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if "workloads" not in doc or not isinstance(doc["workloads"], list):
        sys.exit(f"bench_diff: {path}: missing 'workloads' list")
    return doc


def workload_key(row):
    return tuple((k, row[k]) for k in KEY_FIELDS if k in row)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("old")
    parser.add_argument("new")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional regression (default 0.10)")
    args = parser.parse_args()

    # A missing or unreadable baseline is not a regression: first runs
    # on a fresh checkout (or a machine that never committed snapshots)
    # have nothing to compare against.  The *new* snapshot must parse.
    try:
        old_doc = load(args.old)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: {args.old}: {e}")
        print("bench_diff: no baseline, skipping")
        return 0
    new_doc = load(args.new)
    if old_doc.get("schema") != new_doc.get("schema"):
        sys.exit(f"bench_diff: schema mismatch: {old_doc.get('schema')} "
                 f"vs {new_doc.get('schema')}")

    old_rows = {workload_key(r): r for r in old_doc["workloads"]}
    new_rows = {workload_key(r): r for r in new_doc["workloads"]}

    compared = 0
    failures = []
    for key, old_row in sorted(old_rows.items()):
        label = " ".join(f"{k}={v}" for k, v in key)
        new_row = new_rows.get(key)
        if new_row is None:
            print(f"  [skip] {label}: absent from {args.new}")
            continue
        for metric, higher_better in DIRECTIONS.items():
            if metric not in old_row or metric not in new_row:
                continue
            old_v, new_v = float(old_row[metric]), float(new_row[metric])
            compared += 1
            if old_v == 0.0:
                continue
            change = (new_v - old_v) / abs(old_v)
            regressed = (change < -args.tolerance if higher_better
                         else change > args.tolerance)
            marker = "REGRESSION" if regressed else "ok"
            print(f"  [{marker}] {label} {metric}: "
                  f"{old_v:.6g} -> {new_v:.6g} ({change:+.1%})")
            if regressed:
                failures.append(f"{label} {metric}")
    for key in sorted(set(new_rows) - set(old_rows)):
        label = " ".join(f"{k}={v}" for k, v in key)
        print(f"  [new] {label}: absent from {args.old}")

    if compared == 0:
        sys.exit("bench_diff: no common metrics to compare")
    if failures:
        print(f"bench_diff: {len(failures)} regression(s) beyond "
              f"{args.tolerance:.0%}: " + "; ".join(failures))
        return 1
    print(f"bench_diff: {compared} metric(s) within {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
