// Quickstart: the "one-click" DeepBurning flow on a small MLP.
//
//   1. Describe the network in the Caffe-compatible script (Fig. 4).
//   2. Describe the resource constraint.
//   3. GenerateAccelerator -> RTL + control flow + data layout.
//   4. Run one inference on the simulated accelerator.
//
// Build & run:  ./example_quickstart
#include <cstdio>
#include <iostream>

#include "core/generator.h"
#include "nn/executor.h"
#include "sim/simulator.h"

int main() {
  using namespace db;

  // 1. The model descriptive script — a 2-hidden-layer MLP.
  const std::string model_script = R"(
name: "quickstart_mlp"
input: "data"
input_dim: 1
input_dim: 4
input_dim: 1
input_dim: 1
layers {
  name: "fc1"
  type: INNER_PRODUCT
  bottom: "data"
  top: "fc1"
  inner_product_param { num_output: 16 }
}
layers {
  name: "act1"
  type: SIGMOID
  bottom: "fc1"
  top: "act1"
}
layers {
  name: "fc2"
  type: INNER_PRODUCT
  bottom: "act1"
  top: "fc2"
  inner_product_param { num_output: 2 }
}
)";

  // 2. The designer's constraint: a low budget on the small Zynq.
  const std::string constraint_script = R"(
device: "zynq-7020"
budget: LOW
bit_width: 16
frac_bits: 8
frequency_mhz: 100
)";

  // 3. One call builds everything: datapath, folding, layout, AGU
  //    programs, coordinator schedule, RTL.
  const AcceleratorDesign design =
      GenerateFromScripts(model_script, constraint_script);
  std::cout << design.Report() << "\n";

  // The RTL is ready for synthesis:
  const std::string verilog = EmitVerilog(design.rtl);
  std::printf("generated %zu Verilog modules (%zu bytes); top: %s\n\n",
              design.rtl.modules.size(), verilog.size(),
              design.rtl.top.c_str());

  // 4. Run an inference on the simulated board.
  const Network net =
      Network::Build(ParseNetworkDef(model_script));
  Rng rng(1);
  const WeightStore weights = WeightStore::CreateRandom(net, rng);
  AcceleratorSimulator sim(net, design, weights, "zynq-7020");

  Tensor input(Shape{4, 1, 1}, {0.25f, -0.5f, 0.75f, 0.1f});
  const SimulationResult result = sim.Invoke(input);
  std::printf("accelerator output : [%f, %f]\n", result.output[0],
              result.output[1]);

  Executor reference(net, weights);
  const Tensor ref = reference.ForwardOutput(input);
  std::printf("float reference    : [%f, %f]\n", ref[0], ref[1]);
  std::printf("runtime: %lld cycles = %.2f us;  energy: %.3f uJ\n",
              static_cast<long long>(result.perf.total_cycles),
              result.perf.TotalSeconds() * 1e6,
              result.energy.total_joules * 1e6);
  return 0;
}
