// LSTM through DeepBurning: the component-library extension story.
//
// The paper's introduction singles out LSTMs ("LSTM models show
// fascinating accuracy in text or stream recognition") as the kind of
// new model an ASIP's fixed ISA struggles with and a generated fabric
// absorbs.  This example builds an unrolled LSTM, generates its
// accelerator (sigmoid + tanh Approx LUTs, recurrent connection box),
// and compares the fixed-point run against the float reference.
#include <cstdio>

#include "core/generator.h"
#include "models/zoo.h"
#include "nn/executor.h"
#include "sim/functional_sim.h"
#include "sim/perf_model.h"

int main() {
  using namespace db;

  const std::string script = R"(
name: "lstm_stream"
input: "data"
input_dim: 1
input_dim: 6
input_dim: 1
input_dim: 1
layers {
  name: "cell"
  type: LSTM
  bottom: "data"
  top: "cell"
  lstm_param { num_output: 12  time_steps: 8 }
  connect { name: "state"  direction: recurrent  type: full }
}
layers {
  name: "readout"
  type: INNER_PRODUCT
  bottom: "cell"
  top: "readout"
  inner_product_param { num_output: 3 }
}
)";

  const Network net = Network::Build(ParseNetworkDef(script));
  std::printf("%s\n", net.Summary().c_str());

  const AcceleratorDesign design =
      GenerateAccelerator(net, DbConstraint());
  std::printf("generated: %d MAC lanes, %lld fold steps, LUT functions:",
              design.config.TotalLanes(),
              static_cast<long long>(design.fold_plan.TotalSegments()));
  for (const ApproxLutSpec& spec : design.lut_specs)
    std::printf(" %s", LutFunctionName(spec.function).c_str());
  std::printf("\nresources: %lld LUT / %lld FF / %lld DSP, connection box:"
              " %s\n\n",
              static_cast<long long>(design.resources.total.lut),
              static_cast<long long>(design.resources.total.ff),
              static_cast<long long>(design.resources.total.dsp),
              design.config.has_connection_box ? "yes" : "no");

  Rng rng(12);
  const WeightStore weights = WeightStore::CreateRandom(net, rng);
  Executor exec(net, weights);
  FunctionalSimulator sim(net, design, weights);

  std::printf("%-8s %24s %24s %10s\n", "input", "float_ref",
              "accelerator", "max|diff|");
  for (int trial = 0; trial < 4; ++trial) {
    Tensor in(Shape{6, 1, 1});
    Rng in_rng(static_cast<std::uint64_t>(trial) + 40);
    in.FillUniform(in_rng, -1.0f, 1.0f);
    const Tensor ref = exec.ForwardOutput(in);
    const Tensor fixed = sim.Run(in);
    std::printf("#%-7d [%6.3f %6.3f %6.3f]  [%6.3f %6.3f %6.3f] %10.4f\n",
                trial, ref[0], ref[1], ref[2], fixed[0], fixed[1],
                fixed[2], MaxAbsDiff(ref, fixed));
  }

  const PerfResult perf = SimulatePerformance(net, design);
  std::printf("\n8-step unrolled propagation: %lld cycles = %.2f us\n",
              static_cast<long long>(perf.total_cycles),
              perf.TotalSeconds() * 1e6);
  return 0;
}
