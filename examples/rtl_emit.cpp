// Emit the generated hardware/software bundle to disk: the artifact a
// user would hand to Vivado (RTL) and to the host runtime (memory map,
// AGU program, schedule).
//
// Usage: ./example_rtl_emit [model] [out_dir]
//   model: ann0|ann1|ann2|hopfield|cmac|mnist|alexnet|nin|cifar
//          (default mnist)
//   out_dir: output directory (default ./deepburning_out)
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "core/generator.h"
#include "rtl/testbench.h"
#include "models/zoo.h"

namespace {

db::ZooModel ParseModelArg(const std::string& arg) {
  using db::ZooModel;
  if (arg == "ann0") return ZooModel::kAnn0Fft;
  if (arg == "ann1") return ZooModel::kAnn1Jpeg;
  if (arg == "ann2") return ZooModel::kAnn2Kmeans;
  if (arg == "hopfield") return ZooModel::kHopfield;
  if (arg == "cmac") return ZooModel::kCmac;
  if (arg == "mnist") return ZooModel::kMnist;
  if (arg == "alexnet") return ZooModel::kAlexnet;
  if (arg == "nin") return ZooModel::kNin;
  if (arg == "cifar") return ZooModel::kCifar;
  throw db::Error("unknown model '" + arg + "'");
}

void WriteFile(const std::filesystem::path& path,
               const std::string& text) {
  std::ofstream out(path);
  if (!out) throw db::Error("cannot write " + path.string());
  out << text;
  std::printf("  wrote %s (%zu bytes)\n", path.string().c_str(),
              text.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace db;

  const std::string model_arg = argc > 1 ? argv[1] : "mnist";
  const std::filesystem::path out_dir =
      argc > 2 ? argv[2] : "deepburning_out";
  const ZooModel model = ParseModelArg(model_arg);

  const Network net = BuildZooModel(model);
  const AcceleratorDesign design =
      GenerateAccelerator(net, DbConstraint());

  std::filesystem::create_directories(out_dir);
  std::printf("emitting DeepBurning bundle for %s:\n",
              ZooModelName(model).c_str());
  WriteFile(out_dir / "model.prototxt", ZooModelPrototxt(model));
  WriteFile(out_dir / "constraint.prototxt",
            ConstraintToPrototxt(DbConstraint()));
  WriteFile(out_dir / "accelerator.v", EmitVerilog(design.rtl));
  WriteFile(out_dir / "tb_accelerator.v", EmitTestbench(design.rtl));
  WriteFile(out_dir / "design_report.txt", design.Report());
  WriteFile(out_dir / "schedule.txt", design.schedule.ToString());
  WriteFile(out_dir / "memory_map.txt", design.memory_map.ToString());
  WriteFile(out_dir / "agu_program.txt", design.agu_program.ToString());
  std::printf("done. Top module: %s\n", design.rtl.top.c_str());
  return 0;
}
