// Design-space exploration with NN-Gen: the reconfigurability argument
// of the paper's introduction ("FPGAs ... possess the reconfigurability
// to enable the designers to explore the space of NN models").
//
// Sweeps the constraint knobs (budget level, fixed-point width, Approx
// LUT entries) for the MNIST model and prints runtime / resources /
// accuracy at each point — the table a designer would study before
// picking a configuration to burn.
#include <cstdio>

#include "baseline/accuracy.h"
#include "core/generator.h"
#include "core/range_profiler.h"
#include "models/trained.h"
#include "nn/executor.h"
#include "sim/functional_sim.h"
#include "sim/perf_model.h"

int main() {
  using namespace db;

  std::printf("training the MNIST model once...\n\n");
  const TrainedModel model = TrainZooMnist(7);
  Executor exec(model.net, model.weights);
  const double cpu_acc = ScoreModelPct(
      model, [&](const Tensor& t) { return exec.ForwardOutput(t); });
  std::printf("float reference accuracy: %.1f%%\n\n", cpu_acc);

  std::printf("-- budget level sweep (16-bit, 256-entry LUT) --\n");
  std::printf("%-8s %7s %9s %10s %9s %9s\n", "budget", "lanes", "steps",
              "us", "LUTs", "acc");
  struct Level {
    const char* name;
    DesignConstraint c;
  };
  for (const Level& level :
       {Level{"LOW", DbSConstraint()}, Level{"MEDIUM", DbConstraint()},
        Level{"HIGH", DbLConstraint()}}) {
    const AcceleratorDesign design =
        GenerateAccelerator(model.net, level.c);
    const PerfResult perf = SimulatePerformance(model.net, design);
    FunctionalSimulator sim(model.net, design, model.weights);
    const double acc = ScoreModelPct(
        model, [&](const Tensor& t) { return sim.Run(t); });
    std::printf("%-8s %7d %9lld %10.2f %9lld %8.1f%%\n", level.name,
                design.config.TotalLanes(),
                static_cast<long long>(design.fold_plan.TotalSegments()),
                perf.TotalSeconds() * 1e6,
                static_cast<long long>(design.resources.total.lut), acc);
  }

  std::printf("\n-- fixed-point width sweep (MEDIUM budget) --\n");
  std::printf("%-8s %10s %9s %8s\n", "format", "us", "LUTs", "acc");
  for (const auto& [bits, frac] :
       {std::pair{8, 4}, {10, 5}, {12, 6}, {16, 8}, {24, 12}}) {
    DesignConstraint c = DbConstraint();
    c.bit_width = bits;
    c.frac_bits = frac;
    const AcceleratorDesign design = GenerateAccelerator(model.net, c);
    const PerfResult perf = SimulatePerformance(model.net, design);
    FunctionalSimulator sim(model.net, design, model.weights);
    const double acc = ScoreModelPct(
        model, [&](const Tensor& t) { return sim.Run(t); });
    std::printf("Q%d.%-5d %10.2f %9lld %7.1f%%\n", bits - frac - 1, frac,
                perf.TotalSeconds() * 1e6,
                static_cast<long long>(design.resources.total.lut), acc);
  }

  std::printf("\n-- automatic quantisation (range profiler) --\n");
  {
    std::vector<Tensor> calib;
    for (int i = 0; i < 8 && i < static_cast<int>(model.test_set.size());
         ++i)
      calib.push_back(model.test_set[static_cast<std::size_t>(i)].input);
    const RangeProfile profile =
        ProfileRanges(model.net, model.weights, calib);
    const FixedFormat suggested = ChooseFormat(profile, 16);
    std::printf("profiled peaks: activation %.3f, weight %.3f -> "
                "suggested format %s\n",
                profile.max_abs_activation, profile.max_abs_weight,
                suggested.ToString().c_str());
  }

  std::printf("\n-- Approx LUT entries sweep (MEDIUM budget, Q7.8) --\n");
  std::printf("%-8s %10s %8s\n", "entries", "bram_B", "acc");
  for (std::int64_t entries : {16, 64, 256, 1024}) {
    DesignConstraint c = DbConstraint();
    c.approx_lut_entries = entries;
    const AcceleratorDesign design = GenerateAccelerator(model.net, c);
    FunctionalSimulator sim(model.net, design, model.weights);
    const double acc = ScoreModelPct(
        model, [&](const Tensor& t) { return sim.Run(t); });
    std::printf("%-8lld %10lld %7.1f%%\n",
                static_cast<long long>(entries),
                static_cast<long long>(design.resources.total.bram_bytes),
                acc);
  }
  return 0;
}
