// One accelerator, several models: the versatility argument of the
// paper's introduction.  An ASIP's fixed ISA struggles with new layer
// types; a generated fabric is re-targeted per model — and a single
// generated datapath can time-share several models when it is sized for
// the union of their needs.
//
// Generates a shared accelerator for {MNIST, ANN-0 (fft), Cifar}, then
// runs each model's compiled bundle on it.
#include <cstdio>

#include "core/generator.h"
#include "models/zoo.h"
#include "nn/executor.h"
#include "sim/functional_sim.h"
#include "sim/perf_model.h"

int main() {
  using namespace db;

  const Network mnist = BuildZooModel(ZooModel::kMnist);
  const Network ann = BuildZooModel(ZooModel::kAnn0Fft);
  const Network cifar = BuildZooModel(ZooModel::kCifar);

  const SharedAccelerator shared =
      GenerateSharedAccelerator({&mnist, &ann, &cifar}, DbConstraint());

  std::printf("shared datapath: %d MAC lanes, %d pooling, %d activation "
              "lanes; %lld LUTs / %lld DSPs; %zu Approx LUT functions\n\n",
              shared.config.TotalLanes(), shared.config.pooling_lanes,
              shared.config.activation_lanes,
              static_cast<long long>(
                  shared.designs[0].resources.total.lut),
              static_cast<long long>(
                  shared.designs[0].resources.total.dsp),
              shared.designs[0].lut_specs.size());

  const Network* nets[] = {&mnist, &ann, &cifar};
  std::printf("%-8s %10s %12s %14s\n", "model", "steps", "us", "fidelity");
  Rng rng(3);
  for (std::size_t i = 0; i < shared.designs.size(); ++i) {
    const Network& net = *nets[i];
    const AcceleratorDesign& design = shared.designs[i];
    const PerfResult perf = SimulatePerformance(net, design);

    const WeightStore weights = WeightStore::CreateRandom(net, rng);
    Executor exec(net, weights);
    FunctionalSimulator sim(net, design, weights);
    const BlobShape& s = net.layer(net.input_ids().front()).output_shape;
    Tensor input(Shape{s.channels, s.height, s.width});
    input.FillUniform(rng, 0.0f, 1.0f);
    const double diff =
        MaxAbsDiff(exec.ForwardOutput(input), sim.Run(input));

    std::printf("%-8s %10lld %12.2f %13.4f\n", net.name().c_str(),
                static_cast<long long>(design.schedule.TotalSteps()),
                perf.TotalSeconds() * 1e6, diff);
  }
  std::printf("\n(The 'fidelity' column is the max |float - fixed| output "
              "deviation of each model on the shared datapath.)\n");
  return 0;
}
