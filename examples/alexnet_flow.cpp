// Alexnet through DeepBurning: the paper's flagship workload.
//
// Generates accelerators for Alexnet under the three evaluation schemes
// (DB / DB-L / DB-S), prints each design's folding and resource story,
// and compares simulated runtime/energy against the CPU baseline and the
// hand-tuned Custom design — a per-model slice of Fig. 8/9 and Table 3.
#include <cstdio>

#include "baseline/cpu_model.h"
#include "baseline/custom_design.h"
#include "baseline/zhang_fpga15.h"
#include "core/generator.h"
#include "models/zoo.h"
#include "sim/perf_model.h"
#include "sim/power_model.h"

int main() {
  using namespace db;

  const Network net = BuildZooModel(ZooModel::kAlexnet);
  std::printf("%s\n", net.Summary().c_str());

  struct Scheme {
    const char* name;
    DesignConstraint constraint;
  };
  const Scheme schemes[] = {
      {"DB   (medium, Z-7045)", DbConstraint()},
      {"DB-L (high,   Z-7045)", DbLConstraint()},
      {"DB-S (low,    Z-7020)", DbSConstraint()},
  };

  std::printf("%-24s %7s %9s %10s %9s %9s %9s\n", "scheme", "lanes",
              "foldsteps", "ms", "J", "DSP", "LUT");
  for (const Scheme& s : schemes) {
    const AcceleratorDesign design =
        GenerateAccelerator(net, s.constraint);
    const PerfResult perf = SimulatePerformance(net, design);
    const EnergyResult energy =
        EstimateEnergy(design.resources.total, perf,
                       DeviceCatalog(s.constraint.device));
    std::printf("%-24s %7d %9lld %10.2f %9.3f %9lld %9lld\n", s.name,
                design.config.TotalLanes(),
                static_cast<long long>(design.fold_plan.TotalSegments()),
                perf.TotalMs(), energy.total_joules,
                static_cast<long long>(design.resources.total.dsp),
                static_cast<long long>(design.resources.total.lut));
  }

  const CustomDesignResult custom = BuildCustomDesign(net);
  std::printf("%-24s %7s %9s %10.2f %9.3f %9lld %9lld\n",
              "Custom (hand design)", "-", "-", custom.perf.TotalMs(),
              custom.energy.total_joules,
              static_cast<long long>(custom.resources.dsp),
              static_cast<long long>(custom.resources.lut));

  const CpuRunEstimate cpu = EstimateCpuRun(net);
  std::printf("%-24s %7s %9s %10.2f %9.3f %9s %9s\n",
              "CPU (Xeon 2.4GHz model)", "-", "-", cpu.seconds * 1e3,
              cpu.joules, "-", "-");
  std::printf("%-24s %7s %9s %10.2f %9.3f %9s %9s\n",
              "[7] Zhang FPGA'15", "-", "-",
              ZhangFpga15::kAlexnetSeconds * 1e3,
              ZhangFpga15::kAlexnetJoules, "-", "-");

  // Show where the time goes for the medium design.
  const AcceleratorDesign db = GenerateAccelerator(net, DbConstraint());
  const PerfResult perf = SimulatePerformance(net, db);
  std::printf("\nper-layer timing of the DB design:\n%s\n",
              perf.ToString().c_str());
  return 0;
}
