// Accelerator-assisted model search: the paper's motivating use case
// ("the model selection and training for a certain application is hard
// and tedious ... FPGAs are fast and power-efficient enough to
// accelerate the time-consuming NN training").
//
// Sweeps MLP topologies for the kmeans approximation task: each
// candidate is actually trained (with the in-repo trainer), scored with
// Eq. (1), and annotated with the estimated wall-clock cost of that
// training run on the CPU baseline vs on a DeepBurning accelerator.
#include <cstdio>

#include "baseline/accuracy.h"
#include "baseline/training_model.h"
#include "core/generator.h"
#include "models/datasets.h"
#include "nn/executor.h"
#include "nn/trainer.h"

int main() {
  using namespace db;

  const int kSamples = 400;
  const int kEpochs = 40;
  const auto train_set = MakeKmeansDataset(kSamples, 21);
  const auto test_set = MakeKmeansDataset(kSamples / 4, 22);

  std::printf("=== model search: kmeans approximator MLP topologies ===\n");
  std::printf("(each candidate trained %d epochs x %d samples)\n\n",
              kEpochs, kSamples);
  std::printf("%-12s %8s %10s %12s %12s %9s\n", "topology", "params",
              "accuracy", "cpu_train_s", "accel_train_s", "speedup");

  struct Candidate {
    int h1, h2;
  };
  for (const Candidate& cand :
       {Candidate{4, 0}, {8, 4}, {16, 8}, {32, 16}, {64, 32}}) {
    // Build the candidate script.
    std::string script =
        "name: \"cand\"\ninput: \"data\"\ninput_dim: 1\ninput_dim: 2\n"
        "input_dim: 1\ninput_dim: 1\n";
    std::string bottom = "data";
    auto add_fc = [&](const std::string& name, int n) {
      script += "layers { name: \"" + name +
                "\" type: INNER_PRODUCT bottom: \"" + bottom +
                "\" top: \"" + name + "\" inner_product_param { "
                "num_output: " + std::to_string(n) + " } }\n";
      bottom = name;
    };
    auto add_act = [&](const std::string& name) {
      script += "layers { name: \"" + name + "\" type: SIGMOID bottom: \"" +
                bottom + "\" top: \"" + name + "\" }\n";
      bottom = name;
    };
    add_fc("fc1", cand.h1);
    add_act("a1");
    if (cand.h2 > 0) {
      add_fc("fc2", cand.h2);
      add_act("a2");
    }
    add_fc("out", 2);

    const Network net = Network::Build(ParseNetworkDef(script));
    Rng rng(33);
    WeightStore weights = WeightStore::CreateRandom(net, rng);
    TrainerOptions opts;
    opts.learning_rate = 0.05;
    opts.momentum = 0.9;
    opts.loss = LossKind::kMse;
    opts.seed = 34;
    Trainer trainer(net, weights, opts);
    for (int e = 0; e < kEpochs; ++e) trainer.TrainEpoch(train_set);

    Executor exec(net, weights);
    double acc = 0.0;
    for (const TrainSample& s : test_set)
      acc += Eq1AccuracyTensors(exec.ForwardOutput(s.input), s.target);
    acc /= static_cast<double>(test_set.size());

    const AcceleratorDesign design =
        GenerateAccelerator(net, DbConstraint());
    const TrainingEstimate accel =
        EstimateAcceleratorTraining(net, design, kSamples, kEpochs);
    const TrainingEstimate cpu =
        EstimateCpuTraining(net, kSamples, kEpochs);

    char topo[32];
    if (cand.h2 > 0)
      std::snprintf(topo, sizeof topo, "2-%d-%d-2", cand.h1, cand.h2);
    else
      std::snprintf(topo, sizeof topo, "2-%d-2", cand.h1);
    std::int64_t params = 0;
    for (const auto& [name, lp] : weights.all()) params += lp.TotalCount();
    std::printf("%-12s %8lld %9.2f%% %12.3f %12.3f %8.1fx\n", topo,
                static_cast<long long>(params), acc, cpu.total_seconds,
                accel.total_seconds,
                cpu.total_seconds / accel.total_seconds);
  }
  std::printf("\nThe search itself ran on the host; the time columns show "
              "why the paper offloads candidate training to the generated "
              "accelerators during model selection.\n");
  return 0;
}
