// Approximate computing with DeepBurning: the AxBench-style jpeg
// workload (paper §4.1, ANN-1).
//
// A 4-layer MLP is trained to mimic the lossy JPEG block transform; the
// trained model is burnt into an accelerator, and both the float CPU run
// and the fixed-point accelerator run are scored against the golden
// software codec with the paper's Eq. (1).
#include <cstdio>

#include "baseline/accuracy.h"
#include "baseline/cpu_model.h"
#include "core/generator.h"
#include "models/trained.h"
#include "nn/executor.h"
#include "sim/simulator.h"

int main() {
  using namespace db;

  std::printf("training ANN-1 (jpeg approximator)...\n");
  const TrainedModel model = TrainZooAnn(ZooModel::kAnn1Jpeg, 42);

  const AcceleratorDesign design =
      GenerateAccelerator(model.net, DbConstraint());
  std::printf("generated accelerator: %d MAC lanes, %lld fold steps, "
              "%lld LUTs\n\n",
              design.config.TotalLanes(),
              static_cast<long long>(design.fold_plan.TotalSegments()),
              static_cast<long long>(design.resources.total.lut));

  Executor exec(model.net, model.weights);
  FunctionalSimulator sim(model.net, design, model.weights);

  const double cpu_acc = ScoreModelPct(
      model, [&](const Tensor& t) { return exec.ForwardOutput(t); });
  const double accel_acc = ScoreModelPct(
      model, [&](const Tensor& t) { return sim.Run(t); });
  std::printf("Eq.(1) accuracy vs golden JPEG codec:\n");
  std::printf("  software NN on CPU      : %.2f%%\n", cpu_acc);
  std::printf("  DeepBurning accelerator : %.2f%%\n\n", accel_acc);

  // One example block end to end.
  const TrainSample& sample = model.test_set.front();
  const Tensor accel_out = sim.Run(sample.input);
  std::printf("%-8s %10s %10s %10s\n", "sample", "golden", "cpu_nn",
              "accel");
  const Tensor cpu_out = exec.ForwardOutput(sample.input);
  for (std::int64_t i = 0; i < sample.target.size(); ++i)
    std::printf("x[%lld]    %10.4f %10.4f %10.4f\n",
                static_cast<long long>(i), sample.target[i], cpu_out[i],
                accel_out[i]);

  const CpuRunEstimate cpu = EstimateCpuRun(model.net);
  const PerfResult perf = SimulatePerformance(model.net, design);
  std::printf("\nper-invocation: accelerator %.2f us vs CPU %.2f us "
              "(%.1fx)\n",
              perf.TotalSeconds() * 1e6, cpu.seconds * 1e6,
              cpu.seconds / perf.TotalSeconds());
  return 0;
}
