file(REMOVE_RECURSE
  "CMakeFiles/db_graph.dir/layer_stats.cpp.o"
  "CMakeFiles/db_graph.dir/layer_stats.cpp.o.d"
  "CMakeFiles/db_graph.dir/network.cpp.o"
  "CMakeFiles/db_graph.dir/network.cpp.o.d"
  "libdb_graph.a"
  "libdb_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
