file(REMOVE_RECURSE
  "libdb_graph.a"
)
