# Empty dependencies file for db_graph.
# This may be replaced when dependencies are built.
