src/baseline/CMakeFiles/db_baseline.dir/zhang_fpga15.cpp.o: \
 /root/repo/src/baseline/zhang_fpga15.cpp /usr/include/stdc-predef.h \
 /root/repo/src/baseline/zhang_fpga15.h
