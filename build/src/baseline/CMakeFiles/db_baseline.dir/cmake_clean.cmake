file(REMOVE_RECURSE
  "CMakeFiles/db_baseline.dir/accuracy.cpp.o"
  "CMakeFiles/db_baseline.dir/accuracy.cpp.o.d"
  "CMakeFiles/db_baseline.dir/cpu_model.cpp.o"
  "CMakeFiles/db_baseline.dir/cpu_model.cpp.o.d"
  "CMakeFiles/db_baseline.dir/custom_design.cpp.o"
  "CMakeFiles/db_baseline.dir/custom_design.cpp.o.d"
  "CMakeFiles/db_baseline.dir/training_model.cpp.o"
  "CMakeFiles/db_baseline.dir/training_model.cpp.o.d"
  "CMakeFiles/db_baseline.dir/zhang_fpga15.cpp.o"
  "CMakeFiles/db_baseline.dir/zhang_fpga15.cpp.o.d"
  "libdb_baseline.a"
  "libdb_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
