# Empty compiler generated dependencies file for db_baseline.
# This may be replaced when dependencies are built.
