
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/accuracy.cpp" "src/baseline/CMakeFiles/db_baseline.dir/accuracy.cpp.o" "gcc" "src/baseline/CMakeFiles/db_baseline.dir/accuracy.cpp.o.d"
  "/root/repo/src/baseline/cpu_model.cpp" "src/baseline/CMakeFiles/db_baseline.dir/cpu_model.cpp.o" "gcc" "src/baseline/CMakeFiles/db_baseline.dir/cpu_model.cpp.o.d"
  "/root/repo/src/baseline/custom_design.cpp" "src/baseline/CMakeFiles/db_baseline.dir/custom_design.cpp.o" "gcc" "src/baseline/CMakeFiles/db_baseline.dir/custom_design.cpp.o.d"
  "/root/repo/src/baseline/training_model.cpp" "src/baseline/CMakeFiles/db_baseline.dir/training_model.cpp.o" "gcc" "src/baseline/CMakeFiles/db_baseline.dir/training_model.cpp.o.d"
  "/root/repo/src/baseline/zhang_fpga15.cpp" "src/baseline/CMakeFiles/db_baseline.dir/zhang_fpga15.cpp.o" "gcc" "src/baseline/CMakeFiles/db_baseline.dir/zhang_fpga15.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/db_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/db_models.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/db_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/db_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/hwlib/CMakeFiles/db_hwlib.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/db_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/db_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/db_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/db_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/db_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
