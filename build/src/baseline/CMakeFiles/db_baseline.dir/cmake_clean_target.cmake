file(REMOVE_RECURSE
  "libdb_baseline.a"
)
