file(REMOVE_RECURSE
  "CMakeFiles/db_models.dir/datasets.cpp.o"
  "CMakeFiles/db_models.dir/datasets.cpp.o.d"
  "CMakeFiles/db_models.dir/golden.cpp.o"
  "CMakeFiles/db_models.dir/golden.cpp.o.d"
  "CMakeFiles/db_models.dir/trained.cpp.o"
  "CMakeFiles/db_models.dir/trained.cpp.o.d"
  "CMakeFiles/db_models.dir/zoo.cpp.o"
  "CMakeFiles/db_models.dir/zoo.cpp.o.d"
  "libdb_models.a"
  "libdb_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
