
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/datasets.cpp" "src/models/CMakeFiles/db_models.dir/datasets.cpp.o" "gcc" "src/models/CMakeFiles/db_models.dir/datasets.cpp.o.d"
  "/root/repo/src/models/golden.cpp" "src/models/CMakeFiles/db_models.dir/golden.cpp.o" "gcc" "src/models/CMakeFiles/db_models.dir/golden.cpp.o.d"
  "/root/repo/src/models/trained.cpp" "src/models/CMakeFiles/db_models.dir/trained.cpp.o" "gcc" "src/models/CMakeFiles/db_models.dir/trained.cpp.o.d"
  "/root/repo/src/models/zoo.cpp" "src/models/CMakeFiles/db_models.dir/zoo.cpp.o" "gcc" "src/models/CMakeFiles/db_models.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/db_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/db_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/db_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/db_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/db_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/hwlib/CMakeFiles/db_hwlib.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/db_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/db_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
