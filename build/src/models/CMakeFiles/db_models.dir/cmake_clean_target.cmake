file(REMOVE_RECURSE
  "libdb_models.a"
)
