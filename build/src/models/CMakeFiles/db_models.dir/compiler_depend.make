# Empty compiler generated dependencies file for db_models.
# This may be replaced when dependencies are built.
