file(REMOVE_RECURSE
  "CMakeFiles/db_common.dir/fixed_point.cpp.o"
  "CMakeFiles/db_common.dir/fixed_point.cpp.o.d"
  "CMakeFiles/db_common.dir/logging.cpp.o"
  "CMakeFiles/db_common.dir/logging.cpp.o.d"
  "CMakeFiles/db_common.dir/strings.cpp.o"
  "CMakeFiles/db_common.dir/strings.cpp.o.d"
  "libdb_common.a"
  "libdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
