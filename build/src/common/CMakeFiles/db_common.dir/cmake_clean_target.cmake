file(REMOVE_RECURSE
  "libdb_common.a"
)
