# Empty dependencies file for db_common.
# This may be replaced when dependencies are built.
