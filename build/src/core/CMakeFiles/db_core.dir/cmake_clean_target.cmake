file(REMOVE_RECURSE
  "libdb_core.a"
)
