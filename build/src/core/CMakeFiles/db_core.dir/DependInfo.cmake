
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agu_program.cpp" "src/core/CMakeFiles/db_core.dir/agu_program.cpp.o" "gcc" "src/core/CMakeFiles/db_core.dir/agu_program.cpp.o.d"
  "/root/repo/src/core/agu_rtl_model.cpp" "src/core/CMakeFiles/db_core.dir/agu_rtl_model.cpp.o" "gcc" "src/core/CMakeFiles/db_core.dir/agu_rtl_model.cpp.o.d"
  "/root/repo/src/core/approx_lut.cpp" "src/core/CMakeFiles/db_core.dir/approx_lut.cpp.o" "gcc" "src/core/CMakeFiles/db_core.dir/approx_lut.cpp.o.d"
  "/root/repo/src/core/buffer_plan.cpp" "src/core/CMakeFiles/db_core.dir/buffer_plan.cpp.o" "gcc" "src/core/CMakeFiles/db_core.dir/buffer_plan.cpp.o.d"
  "/root/repo/src/core/connection_plan.cpp" "src/core/CMakeFiles/db_core.dir/connection_plan.cpp.o" "gcc" "src/core/CMakeFiles/db_core.dir/connection_plan.cpp.o.d"
  "/root/repo/src/core/data_layout.cpp" "src/core/CMakeFiles/db_core.dir/data_layout.cpp.o" "gcc" "src/core/CMakeFiles/db_core.dir/data_layout.cpp.o.d"
  "/root/repo/src/core/design_json.cpp" "src/core/CMakeFiles/db_core.dir/design_json.cpp.o" "gcc" "src/core/CMakeFiles/db_core.dir/design_json.cpp.o.d"
  "/root/repo/src/core/folding.cpp" "src/core/CMakeFiles/db_core.dir/folding.cpp.o" "gcc" "src/core/CMakeFiles/db_core.dir/folding.cpp.o.d"
  "/root/repo/src/core/generator.cpp" "src/core/CMakeFiles/db_core.dir/generator.cpp.o" "gcc" "src/core/CMakeFiles/db_core.dir/generator.cpp.o.d"
  "/root/repo/src/core/memory_image.cpp" "src/core/CMakeFiles/db_core.dir/memory_image.cpp.o" "gcc" "src/core/CMakeFiles/db_core.dir/memory_image.cpp.o.d"
  "/root/repo/src/core/memory_map.cpp" "src/core/CMakeFiles/db_core.dir/memory_map.cpp.o" "gcc" "src/core/CMakeFiles/db_core.dir/memory_map.cpp.o.d"
  "/root/repo/src/core/range_profiler.cpp" "src/core/CMakeFiles/db_core.dir/range_profiler.cpp.o" "gcc" "src/core/CMakeFiles/db_core.dir/range_profiler.cpp.o.d"
  "/root/repo/src/core/rtl_builder.cpp" "src/core/CMakeFiles/db_core.dir/rtl_builder.cpp.o" "gcc" "src/core/CMakeFiles/db_core.dir/rtl_builder.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/db_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/db_core.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/db_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hwlib/CMakeFiles/db_hwlib.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/db_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/db_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/db_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/db_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/db_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
