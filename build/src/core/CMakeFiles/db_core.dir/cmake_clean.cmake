file(REMOVE_RECURSE
  "CMakeFiles/db_core.dir/agu_program.cpp.o"
  "CMakeFiles/db_core.dir/agu_program.cpp.o.d"
  "CMakeFiles/db_core.dir/agu_rtl_model.cpp.o"
  "CMakeFiles/db_core.dir/agu_rtl_model.cpp.o.d"
  "CMakeFiles/db_core.dir/approx_lut.cpp.o"
  "CMakeFiles/db_core.dir/approx_lut.cpp.o.d"
  "CMakeFiles/db_core.dir/buffer_plan.cpp.o"
  "CMakeFiles/db_core.dir/buffer_plan.cpp.o.d"
  "CMakeFiles/db_core.dir/connection_plan.cpp.o"
  "CMakeFiles/db_core.dir/connection_plan.cpp.o.d"
  "CMakeFiles/db_core.dir/data_layout.cpp.o"
  "CMakeFiles/db_core.dir/data_layout.cpp.o.d"
  "CMakeFiles/db_core.dir/design_json.cpp.o"
  "CMakeFiles/db_core.dir/design_json.cpp.o.d"
  "CMakeFiles/db_core.dir/folding.cpp.o"
  "CMakeFiles/db_core.dir/folding.cpp.o.d"
  "CMakeFiles/db_core.dir/generator.cpp.o"
  "CMakeFiles/db_core.dir/generator.cpp.o.d"
  "CMakeFiles/db_core.dir/memory_image.cpp.o"
  "CMakeFiles/db_core.dir/memory_image.cpp.o.d"
  "CMakeFiles/db_core.dir/memory_map.cpp.o"
  "CMakeFiles/db_core.dir/memory_map.cpp.o.d"
  "CMakeFiles/db_core.dir/range_profiler.cpp.o"
  "CMakeFiles/db_core.dir/range_profiler.cpp.o.d"
  "CMakeFiles/db_core.dir/rtl_builder.cpp.o"
  "CMakeFiles/db_core.dir/rtl_builder.cpp.o.d"
  "CMakeFiles/db_core.dir/schedule.cpp.o"
  "CMakeFiles/db_core.dir/schedule.cpp.o.d"
  "libdb_core.a"
  "libdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
