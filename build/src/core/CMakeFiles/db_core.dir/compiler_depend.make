# Empty compiler generated dependencies file for db_core.
# This may be replaced when dependencies are built.
