
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/cmac.cpp" "src/nn/CMakeFiles/db_nn.dir/cmac.cpp.o" "gcc" "src/nn/CMakeFiles/db_nn.dir/cmac.cpp.o.d"
  "/root/repo/src/nn/executor.cpp" "src/nn/CMakeFiles/db_nn.dir/executor.cpp.o" "gcc" "src/nn/CMakeFiles/db_nn.dir/executor.cpp.o.d"
  "/root/repo/src/nn/hopfield.cpp" "src/nn/CMakeFiles/db_nn.dir/hopfield.cpp.o" "gcc" "src/nn/CMakeFiles/db_nn.dir/hopfield.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/db_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/db_nn.dir/trainer.cpp.o.d"
  "/root/repo/src/nn/weights.cpp" "src/nn/CMakeFiles/db_nn.dir/weights.cpp.o" "gcc" "src/nn/CMakeFiles/db_nn.dir/weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/db_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/db_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/db_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/db_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
