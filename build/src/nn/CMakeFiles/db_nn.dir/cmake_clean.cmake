file(REMOVE_RECURSE
  "CMakeFiles/db_nn.dir/cmac.cpp.o"
  "CMakeFiles/db_nn.dir/cmac.cpp.o.d"
  "CMakeFiles/db_nn.dir/executor.cpp.o"
  "CMakeFiles/db_nn.dir/executor.cpp.o.d"
  "CMakeFiles/db_nn.dir/hopfield.cpp.o"
  "CMakeFiles/db_nn.dir/hopfield.cpp.o.d"
  "CMakeFiles/db_nn.dir/trainer.cpp.o"
  "CMakeFiles/db_nn.dir/trainer.cpp.o.d"
  "CMakeFiles/db_nn.dir/weights.cpp.o"
  "CMakeFiles/db_nn.dir/weights.cpp.o.d"
  "libdb_nn.a"
  "libdb_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
