file(REMOVE_RECURSE
  "libdb_nn.a"
)
