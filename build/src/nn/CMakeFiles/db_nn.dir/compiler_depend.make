# Empty compiler generated dependencies file for db_nn.
# This may be replaced when dependencies are built.
