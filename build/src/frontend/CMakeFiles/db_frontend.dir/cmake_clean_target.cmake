file(REMOVE_RECURSE
  "libdb_frontend.a"
)
