
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontend/constraint.cpp" "src/frontend/CMakeFiles/db_frontend.dir/constraint.cpp.o" "gcc" "src/frontend/CMakeFiles/db_frontend.dir/constraint.cpp.o.d"
  "/root/repo/src/frontend/network_def.cpp" "src/frontend/CMakeFiles/db_frontend.dir/network_def.cpp.o" "gcc" "src/frontend/CMakeFiles/db_frontend.dir/network_def.cpp.o.d"
  "/root/repo/src/frontend/prototxt.cpp" "src/frontend/CMakeFiles/db_frontend.dir/prototxt.cpp.o" "gcc" "src/frontend/CMakeFiles/db_frontend.dir/prototxt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/db_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
