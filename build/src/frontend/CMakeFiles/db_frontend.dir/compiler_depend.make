# Empty compiler generated dependencies file for db_frontend.
# This may be replaced when dependencies are built.
