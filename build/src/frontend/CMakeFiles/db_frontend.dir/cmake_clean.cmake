file(REMOVE_RECURSE
  "CMakeFiles/db_frontend.dir/constraint.cpp.o"
  "CMakeFiles/db_frontend.dir/constraint.cpp.o.d"
  "CMakeFiles/db_frontend.dir/network_def.cpp.o"
  "CMakeFiles/db_frontend.dir/network_def.cpp.o.d"
  "CMakeFiles/db_frontend.dir/prototxt.cpp.o"
  "CMakeFiles/db_frontend.dir/prototxt.cpp.o.d"
  "libdb_frontend.a"
  "libdb_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
