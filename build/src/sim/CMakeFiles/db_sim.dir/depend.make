# Empty dependencies file for db_sim.
# This may be replaced when dependencies are built.
