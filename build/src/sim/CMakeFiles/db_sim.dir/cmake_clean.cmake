file(REMOVE_RECURSE
  "CMakeFiles/db_sim.dir/functional_sim.cpp.o"
  "CMakeFiles/db_sim.dir/functional_sim.cpp.o.d"
  "CMakeFiles/db_sim.dir/host_runtime.cpp.o"
  "CMakeFiles/db_sim.dir/host_runtime.cpp.o.d"
  "CMakeFiles/db_sim.dir/perf_model.cpp.o"
  "CMakeFiles/db_sim.dir/perf_model.cpp.o.d"
  "CMakeFiles/db_sim.dir/power_model.cpp.o"
  "CMakeFiles/db_sim.dir/power_model.cpp.o.d"
  "CMakeFiles/db_sim.dir/simulator.cpp.o"
  "CMakeFiles/db_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/db_sim.dir/system_sim.cpp.o"
  "CMakeFiles/db_sim.dir/system_sim.cpp.o.d"
  "CMakeFiles/db_sim.dir/trace.cpp.o"
  "CMakeFiles/db_sim.dir/trace.cpp.o.d"
  "libdb_sim.a"
  "libdb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
