
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/functional_sim.cpp" "src/sim/CMakeFiles/db_sim.dir/functional_sim.cpp.o" "gcc" "src/sim/CMakeFiles/db_sim.dir/functional_sim.cpp.o.d"
  "/root/repo/src/sim/host_runtime.cpp" "src/sim/CMakeFiles/db_sim.dir/host_runtime.cpp.o" "gcc" "src/sim/CMakeFiles/db_sim.dir/host_runtime.cpp.o.d"
  "/root/repo/src/sim/perf_model.cpp" "src/sim/CMakeFiles/db_sim.dir/perf_model.cpp.o" "gcc" "src/sim/CMakeFiles/db_sim.dir/perf_model.cpp.o.d"
  "/root/repo/src/sim/power_model.cpp" "src/sim/CMakeFiles/db_sim.dir/power_model.cpp.o" "gcc" "src/sim/CMakeFiles/db_sim.dir/power_model.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/db_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/db_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/system_sim.cpp" "src/sim/CMakeFiles/db_sim.dir/system_sim.cpp.o" "gcc" "src/sim/CMakeFiles/db_sim.dir/system_sim.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/db_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/db_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/db_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/db_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/db_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/db_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/db_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/hwlib/CMakeFiles/db_hwlib.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/db_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/db_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
