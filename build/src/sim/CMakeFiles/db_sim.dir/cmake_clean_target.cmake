file(REMOVE_RECURSE
  "libdb_sim.a"
)
