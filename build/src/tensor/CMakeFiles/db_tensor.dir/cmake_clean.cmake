file(REMOVE_RECURSE
  "CMakeFiles/db_tensor.dir/tensor.cpp.o"
  "CMakeFiles/db_tensor.dir/tensor.cpp.o.d"
  "libdb_tensor.a"
  "libdb_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
