file(REMOVE_RECURSE
  "libdb_tensor.a"
)
