# Empty dependencies file for db_tensor.
# This may be replaced when dependencies are built.
