# Empty compiler generated dependencies file for db_rtl.
# This may be replaced when dependencies are built.
