file(REMOVE_RECURSE
  "libdb_rtl.a"
)
