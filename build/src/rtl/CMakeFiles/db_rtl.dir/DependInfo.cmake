
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/block_emitters.cpp" "src/rtl/CMakeFiles/db_rtl.dir/block_emitters.cpp.o" "gcc" "src/rtl/CMakeFiles/db_rtl.dir/block_emitters.cpp.o.d"
  "/root/repo/src/rtl/lint.cpp" "src/rtl/CMakeFiles/db_rtl.dir/lint.cpp.o" "gcc" "src/rtl/CMakeFiles/db_rtl.dir/lint.cpp.o.d"
  "/root/repo/src/rtl/testbench.cpp" "src/rtl/CMakeFiles/db_rtl.dir/testbench.cpp.o" "gcc" "src/rtl/CMakeFiles/db_rtl.dir/testbench.cpp.o.d"
  "/root/repo/src/rtl/verilog.cpp" "src/rtl/CMakeFiles/db_rtl.dir/verilog.cpp.o" "gcc" "src/rtl/CMakeFiles/db_rtl.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hwlib/CMakeFiles/db_hwlib.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/db_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/db_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
