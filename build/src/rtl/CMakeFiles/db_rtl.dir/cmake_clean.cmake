file(REMOVE_RECURSE
  "CMakeFiles/db_rtl.dir/block_emitters.cpp.o"
  "CMakeFiles/db_rtl.dir/block_emitters.cpp.o.d"
  "CMakeFiles/db_rtl.dir/lint.cpp.o"
  "CMakeFiles/db_rtl.dir/lint.cpp.o.d"
  "CMakeFiles/db_rtl.dir/testbench.cpp.o"
  "CMakeFiles/db_rtl.dir/testbench.cpp.o.d"
  "CMakeFiles/db_rtl.dir/verilog.cpp.o"
  "CMakeFiles/db_rtl.dir/verilog.cpp.o.d"
  "libdb_rtl.a"
  "libdb_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
