# Empty compiler generated dependencies file for db_hwlib.
# This may be replaced when dependencies are built.
