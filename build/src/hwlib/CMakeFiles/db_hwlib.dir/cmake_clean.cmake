file(REMOVE_RECURSE
  "CMakeFiles/db_hwlib.dir/blocks.cpp.o"
  "CMakeFiles/db_hwlib.dir/blocks.cpp.o.d"
  "CMakeFiles/db_hwlib.dir/device.cpp.o"
  "CMakeFiles/db_hwlib.dir/device.cpp.o.d"
  "CMakeFiles/db_hwlib.dir/resource_model.cpp.o"
  "CMakeFiles/db_hwlib.dir/resource_model.cpp.o.d"
  "libdb_hwlib.a"
  "libdb_hwlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_hwlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
