file(REMOVE_RECURSE
  "libdb_hwlib.a"
)
