
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwlib/blocks.cpp" "src/hwlib/CMakeFiles/db_hwlib.dir/blocks.cpp.o" "gcc" "src/hwlib/CMakeFiles/db_hwlib.dir/blocks.cpp.o.d"
  "/root/repo/src/hwlib/device.cpp" "src/hwlib/CMakeFiles/db_hwlib.dir/device.cpp.o" "gcc" "src/hwlib/CMakeFiles/db_hwlib.dir/device.cpp.o.d"
  "/root/repo/src/hwlib/resource_model.cpp" "src/hwlib/CMakeFiles/db_hwlib.dir/resource_model.cpp.o" "gcc" "src/hwlib/CMakeFiles/db_hwlib.dir/resource_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/db_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/db_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
