# Empty compiler generated dependencies file for example_lstm_sequence.
# This may be replaced when dependencies are built.
