file(REMOVE_RECURSE
  "CMakeFiles/example_lstm_sequence.dir/lstm_sequence.cpp.o"
  "CMakeFiles/example_lstm_sequence.dir/lstm_sequence.cpp.o.d"
  "example_lstm_sequence"
  "example_lstm_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lstm_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
