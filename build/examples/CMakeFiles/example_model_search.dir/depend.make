# Empty dependencies file for example_model_search.
# This may be replaced when dependencies are built.
