file(REMOVE_RECURSE
  "CMakeFiles/example_model_search.dir/model_search.cpp.o"
  "CMakeFiles/example_model_search.dir/model_search.cpp.o.d"
  "example_model_search"
  "example_model_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_model_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
