file(REMOVE_RECURSE
  "CMakeFiles/example_approximate_jpeg.dir/approximate_jpeg.cpp.o"
  "CMakeFiles/example_approximate_jpeg.dir/approximate_jpeg.cpp.o.d"
  "example_approximate_jpeg"
  "example_approximate_jpeg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_approximate_jpeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
