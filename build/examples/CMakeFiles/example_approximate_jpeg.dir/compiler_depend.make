# Empty compiler generated dependencies file for example_approximate_jpeg.
# This may be replaced when dependencies are built.
