# Empty compiler generated dependencies file for example_multi_model.
# This may be replaced when dependencies are built.
