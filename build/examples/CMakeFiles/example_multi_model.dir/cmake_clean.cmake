file(REMOVE_RECURSE
  "CMakeFiles/example_multi_model.dir/multi_model.cpp.o"
  "CMakeFiles/example_multi_model.dir/multi_model.cpp.o.d"
  "example_multi_model"
  "example_multi_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
