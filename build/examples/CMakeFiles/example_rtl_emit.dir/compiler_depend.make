# Empty compiler generated dependencies file for example_rtl_emit.
# This may be replaced when dependencies are built.
