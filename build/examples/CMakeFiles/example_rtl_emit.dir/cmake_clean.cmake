file(REMOVE_RECURSE
  "CMakeFiles/example_rtl_emit.dir/rtl_emit.cpp.o"
  "CMakeFiles/example_rtl_emit.dir/rtl_emit.cpp.o.d"
  "example_rtl_emit"
  "example_rtl_emit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_rtl_emit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
