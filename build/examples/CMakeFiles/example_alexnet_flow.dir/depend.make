# Empty dependencies file for example_alexnet_flow.
# This may be replaced when dependencies are built.
