file(REMOVE_RECURSE
  "CMakeFiles/example_alexnet_flow.dir/alexnet_flow.cpp.o"
  "CMakeFiles/example_alexnet_flow.dir/alexnet_flow.cpp.o.d"
  "example_alexnet_flow"
  "example_alexnet_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_alexnet_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
