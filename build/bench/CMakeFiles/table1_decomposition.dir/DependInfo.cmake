
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_decomposition.cpp" "bench/CMakeFiles/table1_decomposition.dir/table1_decomposition.cpp.o" "gcc" "bench/CMakeFiles/table1_decomposition.dir/table1_decomposition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/db_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/db_models.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/db_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/db_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/db_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/hwlib/CMakeFiles/db_hwlib.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/db_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/db_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/db_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/db_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/db_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
