file(REMOVE_RECURSE
  "CMakeFiles/table1_decomposition.dir/table1_decomposition.cpp.o"
  "CMakeFiles/table1_decomposition.dir/table1_decomposition.cpp.o.d"
  "table1_decomposition"
  "table1_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
