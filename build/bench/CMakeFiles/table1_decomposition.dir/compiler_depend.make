# Empty compiler generated dependencies file for table1_decomposition.
# This may be replaced when dependencies are built.
