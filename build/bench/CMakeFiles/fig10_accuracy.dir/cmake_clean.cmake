file(REMOVE_RECURSE
  "CMakeFiles/fig10_accuracy.dir/fig10_accuracy.cpp.o"
  "CMakeFiles/fig10_accuracy.dir/fig10_accuracy.cpp.o.d"
  "fig10_accuracy"
  "fig10_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
