file(REMOVE_RECURSE
  "CMakeFiles/fig8_performance.dir/fig8_performance.cpp.o"
  "CMakeFiles/fig8_performance.dir/fig8_performance.cpp.o.d"
  "fig8_performance"
  "fig8_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
