file(REMOVE_RECURSE
  "CMakeFiles/ablation_approxlut.dir/ablation_approxlut.cpp.o"
  "CMakeFiles/ablation_approxlut.dir/ablation_approxlut.cpp.o.d"
  "ablation_approxlut"
  "ablation_approxlut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_approxlut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
