# Empty dependencies file for ablation_approxlut.
# This may be replaced when dependencies are built.
