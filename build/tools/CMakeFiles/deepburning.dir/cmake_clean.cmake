file(REMOVE_RECURSE
  "CMakeFiles/deepburning.dir/deepburning_main.cpp.o"
  "CMakeFiles/deepburning.dir/deepburning_main.cpp.o.d"
  "deepburning"
  "deepburning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepburning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
