# Empty dependencies file for deepburning.
# This may be replaced when dependencies are built.
