file(REMOVE_RECURSE
  "CMakeFiles/host_runtime_test.dir/host_runtime_test.cpp.o"
  "CMakeFiles/host_runtime_test.dir/host_runtime_test.cpp.o.d"
  "host_runtime_test"
  "host_runtime_test.pdb"
  "host_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
