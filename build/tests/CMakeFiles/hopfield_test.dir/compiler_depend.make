# Empty compiler generated dependencies file for hopfield_test.
# This may be replaced when dependencies are built.
