file(REMOVE_RECURSE
  "CMakeFiles/hopfield_test.dir/hopfield_test.cpp.o"
  "CMakeFiles/hopfield_test.dir/hopfield_test.cpp.o.d"
  "hopfield_test"
  "hopfield_test.pdb"
  "hopfield_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hopfield_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
