# Empty dependencies file for prototxt_test.
# This may be replaced when dependencies are built.
