file(REMOVE_RECURSE
  "CMakeFiles/prototxt_test.dir/prototxt_test.cpp.o"
  "CMakeFiles/prototxt_test.dir/prototxt_test.cpp.o.d"
  "prototxt_test"
  "prototxt_test.pdb"
  "prototxt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prototxt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
