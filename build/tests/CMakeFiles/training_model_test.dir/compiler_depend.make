# Empty compiler generated dependencies file for training_model_test.
# This may be replaced when dependencies are built.
