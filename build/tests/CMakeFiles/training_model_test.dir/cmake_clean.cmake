file(REMOVE_RECURSE
  "CMakeFiles/training_model_test.dir/training_model_test.cpp.o"
  "CMakeFiles/training_model_test.dir/training_model_test.cpp.o.d"
  "training_model_test"
  "training_model_test.pdb"
  "training_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
