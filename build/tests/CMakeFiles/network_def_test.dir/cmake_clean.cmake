file(REMOVE_RECURSE
  "CMakeFiles/network_def_test.dir/network_def_test.cpp.o"
  "CMakeFiles/network_def_test.dir/network_def_test.cpp.o.d"
  "network_def_test"
  "network_def_test.pdb"
  "network_def_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_def_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
