file(REMOVE_RECURSE
  "CMakeFiles/approx_lut_test.dir/approx_lut_test.cpp.o"
  "CMakeFiles/approx_lut_test.dir/approx_lut_test.cpp.o.d"
  "approx_lut_test"
  "approx_lut_test.pdb"
  "approx_lut_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_lut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
