# Empty dependencies file for design_json_test.
# This may be replaced when dependencies are built.
