file(REMOVE_RECURSE
  "CMakeFiles/design_json_test.dir/design_json_test.cpp.o"
  "CMakeFiles/design_json_test.dir/design_json_test.cpp.o.d"
  "design_json_test"
  "design_json_test.pdb"
  "design_json_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
