file(REMOVE_RECURSE
  "CMakeFiles/layer_stats_test.dir/layer_stats_test.cpp.o"
  "CMakeFiles/layer_stats_test.dir/layer_stats_test.cpp.o.d"
  "layer_stats_test"
  "layer_stats_test.pdb"
  "layer_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layer_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
