# Empty compiler generated dependencies file for layer_stats_test.
# This may be replaced when dependencies are built.
