file(REMOVE_RECURSE
  "CMakeFiles/cmac_test.dir/cmac_test.cpp.o"
  "CMakeFiles/cmac_test.dir/cmac_test.cpp.o.d"
  "cmac_test"
  "cmac_test.pdb"
  "cmac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
