# Empty dependencies file for cmac_test.
# This may be replaced when dependencies are built.
