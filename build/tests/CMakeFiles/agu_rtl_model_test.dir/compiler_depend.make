# Empty compiler generated dependencies file for agu_rtl_model_test.
# This may be replaced when dependencies are built.
