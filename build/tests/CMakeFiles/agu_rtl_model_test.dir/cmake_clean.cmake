file(REMOVE_RECURSE
  "CMakeFiles/agu_rtl_model_test.dir/agu_rtl_model_test.cpp.o"
  "CMakeFiles/agu_rtl_model_test.dir/agu_rtl_model_test.cpp.o.d"
  "agu_rtl_model_test"
  "agu_rtl_model_test.pdb"
  "agu_rtl_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agu_rtl_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
