# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for agu_rtl_model_test.
