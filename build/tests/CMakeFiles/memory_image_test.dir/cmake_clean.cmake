file(REMOVE_RECURSE
  "CMakeFiles/memory_image_test.dir/memory_image_test.cpp.o"
  "CMakeFiles/memory_image_test.dir/memory_image_test.cpp.o.d"
  "memory_image_test"
  "memory_image_test.pdb"
  "memory_image_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_image_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
