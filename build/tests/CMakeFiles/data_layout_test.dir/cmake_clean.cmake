file(REMOVE_RECURSE
  "CMakeFiles/data_layout_test.dir/data_layout_test.cpp.o"
  "CMakeFiles/data_layout_test.dir/data_layout_test.cpp.o.d"
  "data_layout_test"
  "data_layout_test.pdb"
  "data_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
