# Empty dependencies file for data_layout_test.
# This may be replaced when dependencies are built.
