# Empty dependencies file for plans_test.
# This may be replaced when dependencies are built.
