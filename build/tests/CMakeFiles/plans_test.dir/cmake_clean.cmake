file(REMOVE_RECURSE
  "CMakeFiles/plans_test.dir/plans_test.cpp.o"
  "CMakeFiles/plans_test.dir/plans_test.cpp.o.d"
  "plans_test"
  "plans_test.pdb"
  "plans_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
