# Empty compiler generated dependencies file for agu_test.
# This may be replaced when dependencies are built.
