file(REMOVE_RECURSE
  "CMakeFiles/agu_test.dir/agu_test.cpp.o"
  "CMakeFiles/agu_test.dir/agu_test.cpp.o.d"
  "agu_test"
  "agu_test.pdb"
  "agu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
