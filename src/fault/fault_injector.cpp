#include "fault/fault_injector.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"

namespace db::fault {

FaultInjector::FaultInjector(const FaultPlan& plan, int workers) {
  DB_CHECK_MSG(workers >= 1, "injector needs at least one worker");
  per_worker_.resize(static_cast<std::size_t>(workers));
  per_replica_cluster_.resize(static_cast<std::size_t>(workers));
  has_weight_flips_.assign(static_cast<std::size_t>(workers), false);
  for (const FaultEvent& event : plan.events) {
    if (event.worker < 0 || event.worker >= workers)
      DB_THROW("fault plan targets worker " << event.worker
               << " but the server has " << workers);
    if (event.kind == FaultKind::kBitFlip)
      DB_CHECK_MSG(event.bit >= 0 && event.bit < 8,
                   "bit flip index out of range");
    if (event.kind == FaultKind::kStall ||
        event.kind == FaultKind::kHang)
      DB_CHECK_MSG(event.stall_cycles > 0,
                   "stall/hang events need positive cycles");
    if (event.kind == FaultKind::kCrash)
      DB_CHECK_MSG(event.down_cycles > 0,
                   "crash events need a positive down window");
    if (event.kind == FaultKind::kSlow)
      DB_CHECK_MSG(event.slow_factor >= 2 && event.slow_services > 0,
                   "slow events need factor >= 2 and services >= 1");
    const auto slot = static_cast<std::size_t>(event.worker);
    if (IsClusterFault(event.kind)) {
      per_replica_cluster_[slot].push_back(event);
      ++cluster_events_;
    } else {
      per_worker_[slot].push_back(event);
      if (event.kind == FaultKind::kBitFlip && event.weight_region)
        has_weight_flips_[slot] = true;
    }
    ++total_events_;
  }
  const auto by_invocation = [](const FaultEvent& a, const FaultEvent& b) {
    return a.invocation < b.invocation;
  };
  for (auto& events : per_worker_)
    std::stable_sort(events.begin(), events.end(), by_invocation);
  for (auto& events : per_replica_cluster_)
    std::stable_sort(events.begin(), events.end(), by_invocation);
}

const std::vector<FaultEvent>& FaultInjector::ForWorker(int worker) const {
  DB_CHECK(worker >= 0 &&
           worker < static_cast<int>(per_worker_.size()));
  return per_worker_[static_cast<std::size_t>(worker)];
}

const std::vector<FaultEvent>& FaultInjector::ClusterForReplica(
    int replica) const {
  DB_CHECK(replica >= 0 &&
           replica < static_cast<int>(per_replica_cluster_.size()));
  return per_replica_cluster_[static_cast<std::size_t>(replica)];
}

bool FaultInjector::HasWeightFlips(int worker) const {
  DB_CHECK(worker >= 0 &&
           worker < static_cast<int>(has_weight_flips_.size()));
  return has_weight_flips_[static_cast<std::size_t>(worker)];
}

std::uint64_t WeightChecksum(const MemoryImage& image,
                             const MemoryMap& map) {
  std::uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  const std::vector<std::uint8_t>& bytes = image.bytes();
  for (const MemoryRegion& region : map.regions()) {
    if (!StartsWith(region.name, "weights:")) continue;
    DB_CHECK_MSG(region.end() <= image.size(),
                 "weight region outside the image");
    for (std::int64_t addr = region.base; addr < region.end(); ++addr) {
      hash ^= bytes[static_cast<std::size_t>(addr)];
      hash *= 1099511628211ull;  // FNV prime
    }
  }
  return hash;
}

std::int64_t ScrubWeights(MemoryImage& image, const MemoryImage& golden,
                          const MemoryMap& map) {
  std::int64_t copied = 0;
  for (const MemoryRegion& region : map.regions()) {
    if (!StartsWith(region.name, "weights:")) continue;
    image.CopyRange(golden, region.base, region.bytes);
    copied += region.bytes;
  }
  return copied;
}

std::int64_t WeightRegionBytes(const MemoryMap& map) {
  std::int64_t total = 0;
  for (const MemoryRegion& region : map.regions())
    if (StartsWith(region.name, "weights:")) total += region.bytes;
  return total;
}

}  // namespace db::fault
