// FaultInjector: hands a FaultPlan's events to the serving workers, and
// the integrity primitives (weight-region checksum, scrub-and-reload)
// the workers use to survive them.
//
// Threading model: the plan is partitioned per worker once, at
// construction; afterwards every worker thread reads only its own
// immutable slice (ForWorker), so no locking is needed on the hot path.
// Each worker keeps its own cursor into its slice and fires every event
// whose `invocation` coordinate has been reached — the firing order is
// a pure function of the plan and the (deterministic) schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/memory_image.h"
#include "fault/fault_plan.h"

namespace db::fault {

/// What one worker did about one fault (injection or recovery), with
/// the simulated-cycle window it charged.  The server publishes these
/// as "fault"-category spans and fault.* metrics at drain time.
struct FaultRecord {
  FaultKind kind = FaultKind::kBitFlip;
  bool recovery = false;  // true for scrub/retry windows, false at injection
  int worker = 0;
  std::int64_t invocation = 0;
  std::int64_t request_id = -1;
  std::int64_t start_cycle = 0;
  std::int64_t end_cycle = 0;
  std::int64_t detail = 0;  // flip addr / stall or backoff cycles / attempt
};

class FaultInjector {
 public:
  /// Partition `plan` across `workers` worker slices, each sorted by
  /// invocation (stable, so equal coordinates keep plan order).
  /// Events naming a worker outside [0, workers) throw db::Error.
  FaultInjector(const FaultPlan& plan, int workers);

  /// Worker `w`'s datapath events (kBitFlip / kTransient / kStall),
  /// sorted by invocation.  Cluster-level kinds never appear here.
  const std::vector<FaultEvent>& ForWorker(int worker) const;

  /// Replica `r`'s cluster-level events (kCrash / kHang / kSlow /
  /// kRouteFail), sorted by invocation.  The `invocation` coordinate of
  /// a cluster event counts *scheduled* services on the replica — the
  /// dispatcher's view — not lane-side attempts; the dispatcher fires
  /// each event at the dispatch whose invocation window reaches it.
  const std::vector<FaultEvent>& ClusterForReplica(int replica) const;

  /// True if `worker`'s slice contains any weight-region bit flip — the
  /// only fault kind that requires per-invocation integrity checks.
  bool HasWeightFlips(int worker) const;

  std::size_t total_events() const { return total_events_; }
  std::size_t cluster_events() const { return cluster_events_; }

 private:
  std::vector<std::vector<FaultEvent>> per_worker_;
  std::vector<std::vector<FaultEvent>> per_replica_cluster_;
  std::vector<bool> has_weight_flips_;
  std::size_t total_events_ = 0;
  std::size_t cluster_events_ = 0;
};

/// FNV-1a over every weight region's bytes, in map order — the scrub
/// engine's integrity reference.  Blob/activation regions are excluded:
/// they are rewritten on every invocation, so corruption there is
/// overwritten before anything reads it.
std::uint64_t WeightChecksum(const MemoryImage& image,
                             const MemoryMap& map);

/// Scrub-and-reload: re-copy every weight region of `image` from the
/// provisioned `golden` image.  Returns the number of bytes copied
/// (the basis for the recovery-cycle charge).
std::int64_t ScrubWeights(MemoryImage& image, const MemoryImage& golden,
                          const MemoryMap& map);

/// Total bytes across the map's weight regions.
std::int64_t WeightRegionBytes(const MemoryMap& map);

}  // namespace db::fault
