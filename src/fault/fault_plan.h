// Deterministic fault planning: a FaultPlan is a fully materialised,
// seeded list of faults to inject into a serving run — DRAM bit flips
// in the weight/activation regions of a worker's MemoryImage, transient
// worker invocation failures, and injected worker stalls measured in
// simulated cycles.
//
// Determinism contract: a plan is a pure function of its campaign spec
// (seed + counts) and the design's memory map.  Every fault is bound to
// a (worker, invocation) coordinate — the injector fires it right
// before that worker's invocation-th request service — so the same plan
// against the same request stream always perturbs the same state at the
// same simulated point, regardless of thread timing.  That is what lets
// a fault campaign assert bit-identical outputs and byte-stable metrics
// across runs (ISSUE 3 acceptance).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/memory_map.h"

namespace db::fault {

enum class FaultKind {
  kBitFlip,    // flip one DRAM bit of the worker's private image
  kTransient,  // one invocation attempt fails and must be retried
  kStall,      // the worker stalls for `stall_cycles` simulated cycles
  // Cluster-level kinds (see IsClusterFault): consumed by the serving
  // dispatcher against replica-level state, never by a replica lane.
  kCrash,      // the replica dies; in-flight work re-dispatches, the
               // replica readmits after `down_cycles` plus a scrub
  kHang,       // unresponsive for `stall_cycles`; heartbeats go missing
  kSlow,       // the next `slow_services` invocations cost
               // `slow_factor`x their normal cycles
  kRouteFail,  // one routing attempt to the replica fails transiently
};

constexpr const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBitFlip: return "bit_flip";
    case FaultKind::kTransient: return "transient";
    case FaultKind::kStall: return "stall";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kHang: return "hang";
    case FaultKind::kSlow: return "slow";
    case FaultKind::kRouteFail: return "route_fail";
  }
  return "unknown";
}

/// Cluster faults perturb replica availability (crash / hang / slow /
/// route failure) instead of a worker's datapath state; the injector
/// deals them into per-replica cluster slices the dispatcher consumes.
constexpr bool IsClusterFault(FaultKind kind) {
  return kind == FaultKind::kCrash || kind == FaultKind::kHang ||
         kind == FaultKind::kSlow || kind == FaultKind::kRouteFail;
}

/// One scheduled fault.  `invocation` is a worker-local request-service
/// index (0-based, counting scheduled services, not retry attempts);
/// the injector fires every event with a matching coordinate before
/// that service begins.
struct FaultEvent {
  FaultKind kind = FaultKind::kBitFlip;
  int worker = 0;
  std::int64_t invocation = 0;
  std::int64_t addr = 0;          // kBitFlip: absolute image byte address
  int bit = 0;                    // kBitFlip: bit index in [0, 8)
  bool weight_region = true;      // kBitFlip: weight vs activation region
  std::int64_t stall_cycles = 0;  // kStall / kHang: simulated cycles lost
  std::int64_t down_cycles = 0;   // kCrash: cycles dead before readmission
  std::int64_t slow_factor = 1;   // kSlow: service-cycle multiplier
  std::int64_t slow_services = 0; // kSlow: invocations the factor covers
};

/// Knobs for generating a seeded random campaign.
struct FaultCampaignSpec {
  std::uint64_t seed = 1;
  int weight_flips = 0;   // bit flips across the weight regions
  int blob_flips = 0;     // bit flips across activation/blob regions
  int transients = 0;     // transient invocation failures
  int stalls = 0;         // injected worker stalls
  std::int64_t stall_cycles = 256;  // duration of each stall
  // Cluster-level event counts (replica crash / hang / slow-replica /
  // transient route failure) and their shapes.
  int crashes = 0;
  int hangs = 0;
  int slow_replicas = 0;
  int route_fails = 0;
  std::int64_t crash_down_cycles = 4096;  // dead window before readmission
  std::int64_t hang_cycles = 2048;        // unresponsive window per hang
  std::int64_t slow_factor = 4;           // service-cycle multiplier
  std::int64_t slow_services = 8;         // invocations the factor covers
  /// Events spread uniformly over worker-local invocations
  /// [0, invocation_span); keep at or below requests/workers so every
  /// event actually fires.
  std::int64_t invocation_span = 16;
  int workers = 1;
};

/// Parse a CLI campaign spec:
///   "seed=7,flips=100,blob-flips=4,transients=5,stalls=2,
///    stall-cycles=512,crashes=1,hangs=2,slow-replicas=1,
///    route-fails=3,crash-down-cycles=4096,hang-cycles=2048,
///    slow-factor=4,slow-services=8,span=32"
/// Unknown keys or malformed values throw db::Error.  `workers` is not
/// part of the spec; the caller sets it from the serving options.
FaultCampaignSpec ParseFaultCampaign(const std::string& spec);

struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  std::string ToString() const;

  /// Materialise a campaign into concrete events: flip addresses drawn
  /// uniformly over the map's weight (or blob) region bytes, workers
  /// and invocations drawn uniformly over their ranges — all from one
  /// db::Rng(seed), so equal (spec, map) pairs yield equal plans.
  static FaultPlan Generate(const FaultCampaignSpec& spec,
                            const MemoryMap& map);
};

}  // namespace db::fault
