#include "fault/fault_plan.h"

#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"

namespace db::fault {
namespace {

/// Regions whose name carries the given prefix ("weights:" / "blob:").
std::vector<const MemoryRegion*> RegionsWithPrefix(
    const MemoryMap& map, std::string_view prefix) {
  std::vector<const MemoryRegion*> out;
  for (const MemoryRegion& region : map.regions())
    if (StartsWith(region.name, prefix) && region.bytes > 0)
      out.push_back(&region);
  return out;
}

/// One uniformly random byte address inside one of `regions`, weighted
/// by region size so every byte is equally likely.
std::int64_t RandomAddr(Rng& rng,
                        const std::vector<const MemoryRegion*>& regions,
                        std::int64_t total_bytes) {
  std::int64_t offset =
      static_cast<std::int64_t>(rng.UniformInt(
          static_cast<std::uint64_t>(total_bytes)));
  for (const MemoryRegion* region : regions) {
    if (offset < region->bytes) return region->base + offset;
    offset -= region->bytes;
  }
  DB_CHECK_MSG(false, "region weights do not cover total_bytes");
  return 0;
}

std::int64_t TotalBytes(const std::vector<const MemoryRegion*>& regions) {
  std::int64_t total = 0;
  for (const MemoryRegion* region : regions) total += region->bytes;
  return total;
}

std::int64_t ParseCount(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const long long parsed = std::stoll(value, &pos);
    if (pos != value.size() || parsed < 0)
      throw Error("fault spec: '" + key + "' must be a non-negative "
                  "integer, got '" + value + "'");
    return parsed;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error("fault spec: '" + key + "' must be a non-negative "
                "integer, got '" + value + "'");
  }
}

}  // namespace

FaultCampaignSpec ParseFaultCampaign(const std::string& spec) {
  FaultCampaignSpec campaign;
  for (const std::string& field : Split(spec, ',')) {
    const std::string_view trimmed = Trim(field);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos)
      throw Error("fault spec: expected key=value, got '" +
                  std::string(trimmed) + "'");
    const std::string key = std::string(Trim(trimmed.substr(0, eq)));
    const std::string value = std::string(Trim(trimmed.substr(eq + 1)));
    const std::int64_t n = ParseCount(key, value);
    if (key == "seed") {
      campaign.seed = static_cast<std::uint64_t>(n);
    } else if (key == "flips") {
      campaign.weight_flips = static_cast<int>(n);
    } else if (key == "blob-flips") {
      campaign.blob_flips = static_cast<int>(n);
    } else if (key == "transients") {
      campaign.transients = static_cast<int>(n);
    } else if (key == "stalls") {
      campaign.stalls = static_cast<int>(n);
    } else if (key == "stall-cycles") {
      if (n < 1) throw Error("fault spec: stall-cycles must be >= 1");
      campaign.stall_cycles = n;
    } else if (key == "crashes") {
      campaign.crashes = static_cast<int>(n);
    } else if (key == "hangs") {
      campaign.hangs = static_cast<int>(n);
    } else if (key == "slow-replicas") {
      campaign.slow_replicas = static_cast<int>(n);
    } else if (key == "route-fails") {
      campaign.route_fails = static_cast<int>(n);
    } else if (key == "crash-down-cycles") {
      if (n < 1) throw Error("fault spec: crash-down-cycles must be >= 1");
      campaign.crash_down_cycles = n;
    } else if (key == "hang-cycles") {
      if (n < 1) throw Error("fault spec: hang-cycles must be >= 1");
      campaign.hang_cycles = n;
    } else if (key == "slow-factor") {
      if (n < 2 || n > 1024)
        throw Error("fault spec: slow-factor must be in [2, 1024]");
      campaign.slow_factor = n;
    } else if (key == "slow-services") {
      if (n < 1) throw Error("fault spec: slow-services must be >= 1");
      campaign.slow_services = n;
    } else if (key == "span") {
      if (n < 1) throw Error("fault spec: span must be >= 1");
      campaign.invocation_span = n;
    } else if (key == "workers" || key == "replicas") {
      // "replicas" is the cluster-era spelling; both size the slices the
      // plan is dealt into (callers usually overwrite this with the
      // server's actual pool size).
      if (n < 1) throw Error("fault spec: " + key + " must be >= 1");
      campaign.workers = static_cast<int>(n);
    } else {
      throw Error("fault spec: unknown key '" + key +
                  "' (seed, flips, blob-flips, transients, stalls, "
                  "stall-cycles, crashes, hangs, slow-replicas, "
                  "route-fails, crash-down-cycles, hang-cycles, "
                  "slow-factor, slow-services, span, workers, replicas)");
    }
  }
  return campaign;
}

FaultPlan FaultPlan::Generate(const FaultCampaignSpec& spec,
                              const MemoryMap& map) {
  DB_CHECK_MSG(spec.workers >= 1, "campaign needs at least one worker");
  DB_CHECK_MSG(spec.invocation_span >= 1,
               "campaign needs a positive invocation span");
  FaultPlan plan;
  plan.seed = spec.seed;
  Rng rng(spec.seed);

  auto coordinate = [&](FaultEvent& event) {
    event.worker = static_cast<int>(
        rng.UniformInt(static_cast<std::uint64_t>(spec.workers)));
    event.invocation = static_cast<std::int64_t>(rng.UniformInt(
        static_cast<std::uint64_t>(spec.invocation_span)));
  };

  const auto weight_regions = RegionsWithPrefix(map, "weights:");
  const auto blob_regions = RegionsWithPrefix(map, "blob:");
  const std::int64_t weight_bytes = TotalBytes(weight_regions);
  const std::int64_t blob_bytes = TotalBytes(blob_regions);
  if (spec.weight_flips > 0)
    DB_CHECK_MSG(weight_bytes > 0, "campaign flips need weight regions");
  if (spec.blob_flips > 0)
    DB_CHECK_MSG(blob_bytes > 0, "campaign blob flips need blob regions");

  for (int i = 0; i < spec.weight_flips + spec.blob_flips; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kBitFlip;
    event.weight_region = i < spec.weight_flips;
    coordinate(event);
    event.addr = event.weight_region
                     ? RandomAddr(rng, weight_regions, weight_bytes)
                     : RandomAddr(rng, blob_regions, blob_bytes);
    event.bit = static_cast<int>(rng.UniformInt(8));
    plan.events.push_back(event);
  }
  for (int i = 0; i < spec.transients; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kTransient;
    coordinate(event);
    plan.events.push_back(event);
  }
  for (int i = 0; i < spec.stalls; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kStall;
    coordinate(event);
    event.stall_cycles = spec.stall_cycles;
    plan.events.push_back(event);
  }
  for (int i = 0; i < spec.crashes; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kCrash;
    coordinate(event);
    event.down_cycles = spec.crash_down_cycles;
    plan.events.push_back(event);
  }
  for (int i = 0; i < spec.hangs; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kHang;
    coordinate(event);
    event.stall_cycles = spec.hang_cycles;
    plan.events.push_back(event);
  }
  for (int i = 0; i < spec.slow_replicas; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kSlow;
    coordinate(event);
    event.slow_factor = spec.slow_factor;
    event.slow_services = spec.slow_services;
    plan.events.push_back(event);
  }
  for (int i = 0; i < spec.route_fails; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kRouteFail;
    coordinate(event);
    plan.events.push_back(event);
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  os << "fault plan (seed " << seed << ", " << events.size()
     << " events)\n";
  for (const FaultEvent& event : events) {
    os << StrFormat("  w%d inv%lld %-9s", event.worker,
                    static_cast<long long>(event.invocation),
                    FaultKindName(event.kind));
    switch (event.kind) {
      case FaultKind::kBitFlip:
        os << StrFormat(" addr=%lld bit=%d %s",
                        static_cast<long long>(event.addr), event.bit,
                        event.weight_region ? "weights" : "blob");
        break;
      case FaultKind::kTransient:
        break;
      case FaultKind::kStall:
      case FaultKind::kHang:
        os << StrFormat(" cycles=%lld",
                        static_cast<long long>(event.stall_cycles));
        break;
      case FaultKind::kCrash:
        os << StrFormat(" down=%lld",
                        static_cast<long long>(event.down_cycles));
        break;
      case FaultKind::kSlow:
        os << StrFormat(" factor=%lld services=%lld",
                        static_cast<long long>(event.slow_factor),
                        static_cast<long long>(event.slow_services));
        break;
      case FaultKind::kRouteFail:
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace db::fault
