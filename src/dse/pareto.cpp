#include "dse/pareto.h"

#include <algorithm>

#include "common/error.h"

namespace db::dse {

bool Dominates(const std::vector<double>& a, const std::vector<double>& b) {
  DB_CHECK_MSG(a.size() == b.size(),
               "Dominates requires equal dimensionality");
  bool strictly_better = false;
  for (std::size_t d = 0; d < a.size(); ++d) {
    if (a[d] > b[d]) return false;
    if (a[d] < b[d]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<std::size_t> ParetoFrontier(
    const std::vector<std::vector<double>>& points) {
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool excluded = false;
    for (std::size_t j = 0; j < points.size() && !excluded; ++j) {
      if (j == i) continue;
      if (Dominates(points[j], points[i])) excluded = true;
      // Duplicate vectors keep only the lowest-index representative.
      if (j < i && points[j] == points[i]) excluded = true;
    }
    if (!excluded) frontier.push_back(i);
  }
  std::sort(frontier.begin(), frontier.end(),
            [&](std::size_t a, std::size_t b) {
              if (points[a] != points[b]) return points[a] < points[b];
              return a < b;
            });
  return frontier;
}

}  // namespace db::dse
