// Pareto-dominance math for the design-space explorer.
//
// Objective vectors are minimised componentwise.  The frontier contract
// is deliberately strict so the tuner's output is byte-stable
// regardless of enumeration order or worker count:
//
//   * membership: a point is on the frontier iff no other point
//     dominates it AND no earlier point (lower index) has the exact
//     same objective vector — duplicate vectors keep only their
//     lowest-index representative;
//   * order: frontier indices are returned sorted by (objective vector
//     lexicographically, then index) ascending.
//
// Both properties together make the frontier a pure function of the
// (vector, index) multiset, which the dse_test property suite pins:
// mutual non-domination, completeness (every excluded point is
// dominated by, or duplicates, a frontier member) and invariance under
// input permutation.
#pragma once

#include <cstddef>
#include <vector>

namespace db::dse {

/// True iff `a` dominates `b`: a <= b on every objective and a < b on
/// at least one.  Requires equal dimensionality.  Equal vectors do not
/// dominate each other.
bool Dominates(const std::vector<double>& a, const std::vector<double>& b);

/// Indices of the Pareto frontier of `points` under the contract above.
/// O(n^2) — candidate sets are at most a few hundred points.
std::vector<std::size_t> ParetoFrontier(
    const std::vector<std::vector<double>>& points);

}  // namespace db::dse
