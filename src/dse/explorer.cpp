#include "dse/explorer.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <exception>
#include <sstream>
#include <thread>

#include "analysis/verifier.h"
#include "common/error.h"
#include "common/hash.h"
#include "common/strings.h"
#include "core/rtl_builder.h"
#include "graph/layer_stats.h"
#include "hwlib/device.h"
#include "rtl/lint.h"
#include "sim/perf_model.h"
#include "sim/power_model.h"

namespace db::dse {
namespace {

/// Largest per-layer input / weight working sets, the inputs of the
/// buffer-split knob (same derivation SizeDatapath uses).
struct BufferNeeds {
  std::int64_t max_input_bytes = 0;
  std::int64_t max_weight_bytes = 0;
};

BufferNeeds AnalyzeBufferNeeds(const Network& net, std::int64_t elem_bytes) {
  BufferNeeds needs;
  for (const IrLayer* layer : net.ComputeLayers()) {
    const LayerStats stats = ComputeLayerStats(*layer);
    needs.max_input_bytes =
        std::max(needs.max_input_bytes, stats.input_elems * elem_bytes);
    needs.max_weight_bytes =
        std::max(needs.max_weight_bytes, stats.weight_count * elem_bytes);
  }
  return needs;
}

Objectives ScoreDesign(const Network& net, const DesignConstraint& constraint,
                       const AcceleratorDesign& design) {
  const PerfResult perf = SimulatePerformance(net, design);
  const EnergyResult energy = EstimateEnergy(
      design.resources.total, perf, DeviceCatalog(constraint.device));
  Objectives obj;
  obj.latency_cycles = perf.total_cycles;
  obj.energy_joules = energy.total_joules;
  obj.bram_bytes = design.resources.total.bram_bytes;
  return obj;
}

/// Winner sort key on the frontier: strictly lexicographic, index last,
/// so ties cannot depend on evaluation order.
std::array<double, 4> WinnerKey(Objective objective, const Objectives& obj,
                                std::size_t index) {
  const double latency = static_cast<double>(obj.latency_cycles);
  const double bram = static_cast<double>(obj.bram_bytes);
  switch (objective) {
    case Objective::kLatency:
      return {latency, obj.energy_joules, bram,
              static_cast<double>(index)};
    case Objective::kEnergy:
      return {obj.energy_joules, latency, bram,
              static_cast<double>(index)};
    case Objective::kBalanced:
      // Energy-delay-style product; BRAM then index break ties.
      return {latency * obj.energy_joules, bram,
              static_cast<double>(index), 0.0};
  }
  DB_THROW("unknown objective");
}

double Ratio(double value, double reference) {
  return reference > 0.0 ? value / reference : 0.0;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string ObjectivesJson(const Objectives& obj) {
  return StrFormat(
      "{\"latency_cycles\": %lld, \"energy_joules\": %.9e, "
      "\"bram_bytes\": %lld}",
      static_cast<long long>(obj.latency_cycles), obj.energy_joules,
      static_cast<long long>(obj.bram_bytes));
}

}  // namespace

const char* ObjectiveName(Objective objective) {
  switch (objective) {
    case Objective::kLatency:
      return "latency";
    case Objective::kEnergy:
      return "energy";
    case Objective::kBalanced:
      return "balanced";
  }
  return "?";
}

Objective ParseObjective(const std::string& text) {
  if (text == "latency") return Objective::kLatency;
  if (text == "energy") return Objective::kEnergy;
  if (text == "balanced") return Objective::kBalanced;
  throw Error("unknown objective '" + text +
              "' (expected latency, energy or balanced)");
}

const char* CandidateStatusName(CandidateResult::Status status) {
  switch (status) {
    case CandidateResult::Status::kInfeasible:
      return "infeasible";
    case CandidateResult::Status::kOverBudget:
      return "over-budget";
    case CandidateResult::Status::kVerifyRejected:
      return "verify-rejected";
    case CandidateResult::Status::kScored:
      return "scored";
  }
  return "?";
}

std::vector<double> Objectives::AsVector() const {
  return {static_cast<double>(latency_cycles), energy_joules,
          static_cast<double>(bram_bytes)};
}

std::size_t TuneResult::CountWithStatus(
    CandidateResult::Status status) const {
  std::size_t n = 0;
  for (const CandidateResult& c : candidates)
    if (c.status == status) ++n;
  return n;
}

AcceleratorConfig CandidateConfig(const Network& net,
                                  const AcceleratorConfig& base,
                                  const CandidateSpec& spec) {
  AcceleratorConfig config = base;
  config.memory_port_elems = spec.port_elems;

  // ---- MAC lane rescale (the fold-factor knob) ----
  if (base.TotalLanes() > 0) {
    const std::int64_t target = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(base.TotalLanes()) * spec.lanes_pct /
               100);
    const std::int64_t dsp =
        spec.allow_dsp
            ? std::min<std::int64_t>(target, base.dsp_lanes)
            : 0;
    config.dsp_lanes = static_cast<int>(dsp);
    config.lut_lanes = static_cast<int>(target - dsp);
    config.accumulator_lanes = static_cast<int>(target);
  }

  // ---- secondary pools follow the port width, as in SizeDatapath ----
  if (base.pooling_lanes > 0)
    config.pooling_lanes = static_cast<int>(
        std::min<std::int64_t>(spec.port_elems, 16));
  if (base.activation_lanes > 0)
    config.activation_lanes = static_cast<int>(
        std::min<std::int64_t>(spec.port_elems, 16));
  if (base.has_connection_box)
    config.connection_box_ports = static_cast<int>(
        std::clamp<std::int64_t>(spec.port_elems, 2, 32));

  // ---- buffer split ----
  // The splittable pool reserves 1/32 of the BRAM budget for the
  // non-buffer consumers the tally charges (AGU pattern tables, the
  // coordinator's schedule store) plus the Approx-LUT tables, so a
  // candidate whose working sets fill the pool still fits the budget —
  // unlike SizeDatapath, whose over-packing the generator's refit loop
  // repairs, a swept candidate gets no refit and must fit as built.
  const BufferNeeds needs = AnalyzeBufferNeeds(net, config.ElementBytes());
  const std::int64_t bram = base.budget.bram_bytes;
  const std::int64_t pool = std::max<std::int64_t>(
      bram - bram / 32 - config.approx_lut_entries * 4, 0);
  const std::int64_t min_buf =
      spec.port_elems * config.ElementBytes() * 16;
  const std::int64_t data_cap =
      std::max(min_buf, pool * spec.data_split_pct / 100);
  config.data_buffer_bytes =
      std::clamp(needs.max_input_bytes, min_buf, data_cap);
  config.weight_buffer_bytes = std::clamp(
      needs.max_weight_bytes, min_buf,
      std::max<std::int64_t>(pool - config.data_buffer_bytes, min_buf));
  return config;
}

CandidateResult EvaluateCandidate(const Network& net,
                                  const DesignConstraint& constraint,
                                  const AcceleratorConfig& base,
                                  const CandidateSpec& spec) {
  CandidateResult result;
  result.spec = spec;
  AcceleratorDesign design;
  try {
    design = CompileForConfig(net, CandidateConfig(net, base, spec));
  } catch (const Error&) {
    result.status = CandidateResult::Status::kInfeasible;
    return result;
  }
  // Pruning order (pinned by DESIGN.md and the dse test suite):
  // construction -> budget -> verifier -> score.
  if (!design.config.budget.Fits(design.resources.total)) {
    result.status = CandidateResult::Status::kOverBudget;
    return result;
  }
  if (!analysis::VerifyDesign(net, design).ok()) {
    result.status = CandidateResult::Status::kVerifyRejected;
    return result;
  }
  result.status = CandidateResult::Status::kScored;
  result.obj = ScoreDesign(net, constraint, design);
  return result;
}

TuneResult Explore(const Network& net, const DesignConstraint& constraint,
                   const TuneOptions& options) {
  TuneResult result;
  result.network_name = net.name();
  result.objective = options.objective;
  result.sweep = options.sweep;

  obs::TickClock clock(options.tracer ? options.tracer->TrackEnd("dse")
                                      : 0);
  auto phase = [&](const char* name, auto&& body) {
    obs::ScopedSpan span(options.tracer, clock, "dse", name, "dse");
    body();
    clock.Advance(1);
  };

  AcceleratorConfig base;
  phase("size baseline", [&] { base = SizeDatapath(net, constraint); });

  phase("score default", [&] {
    // The stock design (with its refit loop) is the comparison point
    // every report carries; its own verify gate already ran.
    const AcceleratorDesign stock = GenerateAccelerator(net, constraint);
    result.default_obj = ScoreDesign(net, constraint, stock);
  });

  const std::vector<CandidateSpec> specs = options.sweep.Enumerate();
  result.candidates.resize(specs.size());
  phase("evaluate sweep", [&] {
    // Workers pull candidate indices off a shared counter and write into
    // index-addressed slots.  EvaluateCandidate is pure, so scheduling
    // decides only wall-clock time — never a byte of the result.
    const int jobs = std::max(1, options.jobs);
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(
        static_cast<std::size_t>(jobs));
    auto worker = [&](int w) {
      try {
        for (std::size_t i = next.fetch_add(1); i < specs.size();
             i = next.fetch_add(1))
          result.candidates[i] =
              EvaluateCandidate(net, constraint, base, specs[i]);
      } catch (...) {
        errors[static_cast<std::size_t>(w)] = std::current_exception();
      }
    };
    if (jobs == 1 || specs.size() <= 1) {
      worker(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(jobs));
      for (int w = 0; w < jobs; ++w) threads.emplace_back(worker, w);
      for (std::thread& t : threads) t.join();
    }
    for (const std::exception_ptr& e : errors)
      if (e) std::rethrow_exception(e);
  });

  phase("reduce frontier", [&] {
    std::vector<std::size_t> scored;
    std::vector<std::vector<double>> points;
    for (std::size_t i = 0; i < result.candidates.size(); ++i) {
      if (result.candidates[i].status !=
          CandidateResult::Status::kScored)
        continue;
      scored.push_back(i);
      points.push_back(result.candidates[i].obj.AsVector());
    }
    // `scored` is ascending, so the frontier contract's index-based
    // rules (duplicate keeps lowest, ties break on index) survive the
    // mapping back to candidate indices unchanged.
    for (std::size_t p : ParetoFrontier(points))
      result.frontier.push_back(scored[p]);
  });

  if (result.frontier.empty())
    DB_THROW("tune: no candidate in sweep '"
             << options.sweep.ToString() << "' survives pruning for "
             << "network '" << net.name() << "'");

  phase("pick winner", [&] {
    result.winner = result.frontier.front();
    std::array<double, 4> best = WinnerKey(
        options.objective, result.candidates[result.winner].obj,
        result.winner);
    for (std::size_t idx : result.frontier) {
      const std::array<double, 4> key =
          WinnerKey(options.objective, result.candidates[idx].obj, idx);
      if (key < best) {
        best = key;
        result.winner = idx;
      }
    }
  });

  if (options.metrics) {
    options.metrics->AddCounter("dse.candidates",
        static_cast<std::int64_t>(result.candidates.size()));
    options.metrics->AddCounter("dse.pruned_infeasible",
        static_cast<std::int64_t>(result.CountWithStatus(
            CandidateResult::Status::kInfeasible)));
    options.metrics->AddCounter("dse.pruned_budget",
        static_cast<std::int64_t>(result.CountWithStatus(
            CandidateResult::Status::kOverBudget)));
    options.metrics->AddCounter("dse.pruned_verify",
        static_cast<std::int64_t>(result.CountWithStatus(
            CandidateResult::Status::kVerifyRejected)));
    options.metrics->AddCounter("dse.scored",
        static_cast<std::int64_t>(result.CountWithStatus(
            CandidateResult::Status::kScored)));
    options.metrics->AddCounter("dse.frontier_points",
        static_cast<std::int64_t>(result.frontier.size()));
  }
  return result;
}

void RecordTuneCacheHit(obs::MetricsRegistry& metrics) {
  metrics.AddCounter("dse.cache_hits");
}

AcceleratorDesign CompileWinner(const Network& net,
                                const DesignConstraint& constraint,
                                const AcceleratorConfig& base,
                                const CandidateSpec& spec) {
  (void)constraint;
  AcceleratorDesign design =
      CompileForConfig(net, CandidateConfig(net, base, spec));
  design.rtl = BuildRtl(design.config, design.blocks);
  CheckDesignOrThrow(design.rtl);
  analysis::VerifyDesignOrThrow(net, design);
  return design;
}

cluster::DesignKey MakeTuneKey(const NetworkDef& def,
                               const DesignConstraint& constraint,
                               const SweepSpec& sweep,
                               Objective objective) {
  // Append the tune parameters AFTER the (network, constraint) canonical
  // text: DesignCache::LoadFromDisk re-parses the network from the
  // prefix before the first separator, which this suffix leaves intact.
  cluster::DesignKey key = cluster::MakeDesignKey(def, constraint);
  key.canonical += "\n%tune%\nsweep: " + sweep.ToString() +
                   "\nobjective: " + std::string(ObjectiveName(objective)) +
                   "\n";
  key.hash = Fnv1a64(key.canonical);
  return key;
}

std::string TuneResult::ToText() const {
  std::ostringstream os;
  os << "== tune report ==\n";
  os << "network:    " << network_name << "\n";
  os << "objective:  " << ObjectiveName(objective) << "\n";
  os << "sweep:      " << sweep.ToString() << "\n";
  os << StrFormat(
      "candidates: %zu = scored %zu + infeasible %zu + over-budget %zu "
      "+ verify-rejected %zu\n",
      candidates.size(),
      CountWithStatus(CandidateResult::Status::kScored),
      CountWithStatus(CandidateResult::Status::kInfeasible),
      CountWithStatus(CandidateResult::Status::kOverBudget),
      CountWithStatus(CandidateResult::Status::kVerifyRejected));
  os << "\n";
  os << StrFormat(
      "default design:  latency=%lld cycles  energy=%.9e J  bram=%lld B\n",
      static_cast<long long>(default_obj.latency_cycles),
      default_obj.energy_joules,
      static_cast<long long>(default_obj.bram_bytes));
  os << "\n";
  os << StrFormat("pareto frontier (%zu points):\n", frontier.size());
  for (std::size_t idx : frontier) {
    const CandidateResult& c = candidates[idx];
    os << StrFormat(
        "  [%3zu] %-40s latency=%lld  energy=%.9e  bram=%lld%s\n", idx,
        c.spec.ToString().c_str(),
        static_cast<long long>(c.obj.latency_cycles),
        c.obj.energy_joules, static_cast<long long>(c.obj.bram_bytes),
        idx == winner ? "  <- winner" : "");
  }
  os << "\n";
  const CandidateResult& w = candidates[winner];
  os << StrFormat("winner [%zu] %s:\n", winner,
                  w.spec.ToString().c_str());
  os << StrFormat(
      "  latency: %lld cycles  (%.3fx of default)\n",
      static_cast<long long>(w.obj.latency_cycles),
      Ratio(static_cast<double>(w.obj.latency_cycles),
            static_cast<double>(default_obj.latency_cycles)));
  os << StrFormat("  energy:  %.9e J  (%.3fx of default)\n",
                  w.obj.energy_joules,
                  Ratio(w.obj.energy_joules, default_obj.energy_joules));
  os << StrFormat(
      "  bram:    %lld B  (%.3fx of default)\n",
      static_cast<long long>(w.obj.bram_bytes),
      Ratio(static_cast<double>(w.obj.bram_bytes),
            static_cast<double>(default_obj.bram_bytes)));
  return os.str();
}

std::string TuneResult::ToJson() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"network\": \"" << JsonEscape(network_name) << "\",\n";
  os << "  \"objective\": \"" << ObjectiveName(objective) << "\",\n";
  os << "  \"sweep\": \"" << JsonEscape(sweep.ToString()) << "\",\n";
  os << StrFormat(
      "  \"counts\": {\"candidates\": %zu, \"scored\": %zu, "
      "\"infeasible\": %zu, \"over_budget\": %zu, "
      "\"verify_rejected\": %zu},\n",
      candidates.size(),
      CountWithStatus(CandidateResult::Status::kScored),
      CountWithStatus(CandidateResult::Status::kInfeasible),
      CountWithStatus(CandidateResult::Status::kOverBudget),
      CountWithStatus(CandidateResult::Status::kVerifyRejected));
  os << "  \"default\": " << ObjectivesJson(default_obj) << ",\n";
  os << "  \"candidates\": [\n";
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const CandidateResult& c = candidates[i];
    os << StrFormat("    {\"index\": %zu, \"spec\": \"%s\", "
                    "\"status\": \"%s\"",
                    i, JsonEscape(c.spec.ToString()).c_str(),
                    CandidateStatusName(c.status));
    if (c.status == CandidateResult::Status::kScored)
      os << ", \"objectives\": " << ObjectivesJson(c.obj);
    os << (i + 1 < candidates.size() ? "},\n" : "}\n");
  }
  os << "  ],\n";
  os << "  \"frontier\": [";
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    if (i > 0) os << ", ";
    os << frontier[i];
  }
  os << "],\n";
  const CandidateResult& w = candidates[winner];
  os << StrFormat(
      "  \"winner\": {\"index\": %zu, \"spec\": \"%s\", "
      "\"objectives\": %s}\n",
      winner, JsonEscape(w.spec.ToString()).c_str(),
      ObjectivesJson(w.obj).c_str());
  os << "}\n";
  return os.str();
}

}  // namespace db::dse
