#include "dse/sweep.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "common/math_util.h"
#include "common/strings.h"

namespace db::dse {
namespace {

/// Split `text` on `sep`, dropping empty pieces.
std::vector<std::string> SplitNonEmpty(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

std::int64_t ParseIntValue(const std::string& axis,
                           const std::string& value) {
  if (value.empty() || value.find_first_not_of("0123456789") !=
                           std::string::npos)
    throw Error("sweep axis '" + axis + "': bad value '" + value +
                "' (expected a positive integer)");
  try {
    return std::stoll(value);
  } catch (const std::exception&) {
    throw Error("sweep axis '" + axis + "': bad value '" + value + "'");
  }
}

template <typename T>
void SortUnique(std::vector<T>& values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
}

}  // namespace

std::string CandidateSpec::ToString() const {
  return StrFormat("lanes=%d%%,port=%lld,split=%d%%,dsp=%s", lanes_pct,
                   static_cast<long long>(port_elems), data_split_pct,
                   allow_dsp ? "on" : "off");
}

std::size_t SweepSpec::CandidateCount() const {
  return lanes_pct.size() * port_elems.size() * data_split_pct.size() *
         allow_dsp.size();
}

std::vector<CandidateSpec> SweepSpec::Enumerate() const {
  std::vector<CandidateSpec> specs;
  specs.reserve(CandidateCount());
  for (int lanes : lanes_pct)
    for (std::int64_t port : port_elems)
      for (int split : data_split_pct)
        for (bool dsp : allow_dsp) {
          CandidateSpec spec;
          spec.lanes_pct = lanes;
          spec.port_elems = port;
          spec.data_split_pct = split;
          spec.allow_dsp = dsp;
          specs.push_back(spec);
        }
  return specs;
}

std::string SweepSpec::ToString() const {
  std::ostringstream os;
  auto join = [&os](const char* axis, const auto& values,
                    auto&& render) {
    os << axis << "=";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) os << ",";
      os << render(values[i]);
    }
  };
  join("lanes", lanes_pct, [](int v) { return std::to_string(v); });
  os << ";";
  join("port", port_elems,
       [](std::int64_t v) { return std::to_string(v); });
  os << ";";
  join("split", data_split_pct,
       [](int v) { return std::to_string(v); });
  os << ";";
  join("dsp", allow_dsp,
       [](bool v) { return std::string(v ? "on" : "off"); });
  return os.str();
}

SweepSpec ParseSweepSpec(const std::string& text) {
  SweepSpec spec;
  if (text.empty()) return spec;
  bool seen_lanes = false, seen_port = false, seen_split = false,
       seen_dsp = false;
  for (const std::string& clause : SplitNonEmpty(text, ';')) {
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= clause.size())
      throw Error("sweep clause '" + clause +
                  "' is not of the form axis=v1,v2,...");
    const std::string axis = clause.substr(0, eq);
    const std::vector<std::string> values =
        SplitNonEmpty(clause.substr(eq + 1), ',');
    if (values.empty())
      throw Error("sweep axis '" + axis + "' has an empty value list");
    if (axis == "lanes") {
      if (seen_lanes) throw Error("duplicate sweep axis 'lanes'");
      seen_lanes = true;
      spec.lanes_pct.clear();
      for (const std::string& v : values) {
        const std::int64_t pct = ParseIntValue(axis, v);
        if (pct < 1 || pct > 1600)
          throw Error("sweep axis 'lanes': " + v +
                      "% is out of range [1, 1600]");
        spec.lanes_pct.push_back(static_cast<int>(pct));
      }
    } else if (axis == "port") {
      if (seen_port) throw Error("duplicate sweep axis 'port'");
      seen_port = true;
      spec.port_elems.clear();
      for (const std::string& v : values) {
        const std::int64_t port = ParseIntValue(axis, v);
        if (port < 2 || port > 256 || !IsPow2(port))
          throw Error("sweep axis 'port': " + v +
                      " is not a power of two in [2, 256]");
        spec.port_elems.push_back(port);
      }
    } else if (axis == "split") {
      if (seen_split) throw Error("duplicate sweep axis 'split'");
      seen_split = true;
      spec.data_split_pct.clear();
      for (const std::string& v : values) {
        const std::int64_t pct = ParseIntValue(axis, v);
        if (pct < 5 || pct > 90)
          throw Error("sweep axis 'split': " + v +
                      "% is out of range [5, 90]");
        spec.data_split_pct.push_back(static_cast<int>(pct));
      }
    } else if (axis == "dsp") {
      if (seen_dsp) throw Error("duplicate sweep axis 'dsp'");
      seen_dsp = true;
      spec.allow_dsp.clear();
      for (const std::string& v : values) {
        if (v == "on")
          spec.allow_dsp.push_back(true);
        else if (v == "off")
          spec.allow_dsp.push_back(false);
        else
          throw Error("sweep axis 'dsp': '" + v +
                      "' is not 'on' or 'off'");
      }
    } else {
      throw Error("unknown sweep axis '" + axis +
                  "' (expected lanes, port, split or dsp)");
    }
  }
  SortUnique(spec.lanes_pct);
  SortUnique(spec.port_elems);
  SortUnique(spec.data_split_pct);
  // dsp sorts descending so "on" precedes "off", matching the default
  // spec's stored order (canonical ToString must round-trip).
  std::sort(spec.allow_dsp.begin(), spec.allow_dsp.end(),
            std::greater<>());
  spec.allow_dsp.erase(
      std::unique(spec.allow_dsp.begin(), spec.allow_dsp.end()),
      spec.allow_dsp.end());
  return spec;
}

}  // namespace db::dse
