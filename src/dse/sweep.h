// The DSE sweep specification: which candidate configurations the
// explorer enumerates for one (network, constraint) pair.
//
// Four axes, all semantics-preserving (the fixed-point format is pinned
// by the constraint — an optimiser must never change what the
// accelerator computes, only how fast/cheaply it computes it; the
// differential suite holds the tuner to that):
//
//   lanes  percent of the sized MAC lane count (the fold-factor knob:
//          fewer lanes fold a layer across more time slots)
//   port   elements per memory port / buffer row (the Method-1 tile
//          width d — this is the datapath width axis)
//   split  percent of the BRAM budget offered to the data buffer (the
//          buffer-split knob; the weight buffer takes the remainder)
//   dsp    whether MAC lanes may claim DSP slices ("on") or must all be
//          fabric multipliers ("off", trading DSPs for LUTs)
//
// Grammar (ParseSweepSpec): semicolon-separated `axis=v1,v2,...`
// clauses, e.g. "lanes=50,100,200;port=16,32;split=45,60;dsp=on".
// Unknown axes, empty value lists, duplicate clauses and out-of-range
// values are rejected with db::Error.  Omitted axes keep their
// defaults.  Values are sorted and deduplicated, so any two spellings
// of the same sweep enumerate the same candidates in the same order —
// and hash to the same tune cache key.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace db::dse {

/// One point of the sweep grid.
struct CandidateSpec {
  int lanes_pct = 100;          // percent of the sized MAC lane count
  std::int64_t port_elems = 16; // memory port width (elements)
  int data_split_pct = 60;      // percent of BRAM for the data buffer
  bool allow_dsp = true;        // may lanes claim DSP slices?

  bool operator==(const CandidateSpec& other) const = default;

  /// Canonical rendering, e.g. "lanes=50%,port=16,split=45%,dsp=on".
  std::string ToString() const;
};

/// The whole grid: the cross product of the four axes' value lists.
struct SweepSpec {
  std::vector<int> lanes_pct{25, 50, 100, 200};
  std::vector<std::int64_t> port_elems{8, 16, 32};
  std::vector<int> data_split_pct{30, 45, 60};
  std::vector<bool> allow_dsp{true, false};

  std::size_t CandidateCount() const;

  /// Deterministic enumeration: nested loops lanes -> port -> split ->
  /// dsp, each axis in its (sorted, deduplicated) stored order.  The
  /// position in this vector is the candidate index every report and
  /// cross-check refers to.
  std::vector<CandidateSpec> Enumerate() const;

  /// Canonical spec string (parses back to an equal SweepSpec; feeds
  /// the tune cache key).
  std::string ToString() const;
};

/// Parse the grammar above; an empty string yields the default sweep.
/// Throws db::Error on malformed input.
SweepSpec ParseSweepSpec(const std::string& text);

}  // namespace db::dse
