// The design-space exploration driver behind `deepburning tune`.
//
// For one (network, constraint) pair the explorer sizes the baseline
// datapath once, then sweeps the candidate grid (dse/sweep.h): each
// candidate is constructed with CompileForConfig, pruned in a fixed
// order (construction infeasible -> over budget -> static verifier
// rejected) and, only if it survives, scored analytically with the
// existing models — the transaction-level performance simulator for
// latency, the activity/energy model for joules, the resource tally for
// BRAM.  No functional simulation runs per point.  Survivors reduce to
// a Pareto frontier over (latency, energy, BRAM) under the canonical
// contract of dse/pareto.h, and the requested objective picks a single
// winner off the frontier with a deterministic tie-break.
//
// Determinism contract: EvaluateCandidate is a pure function of
// (network, constraint, baseline config, spec) — worker threads only
// decide *when* a candidate is evaluated, never *what* it evaluates, and
// results land in an index-addressed slot.  The frontier reduction,
// winner selection, report rendering, metrics publication and "dse"
// trace spans all run on the calling thread after the workers join, so
// reports and observability output are byte-identical for --jobs 1 and
// --jobs N and across reruns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/design_cache.h"
#include "core/generator.h"
#include "dse/pareto.h"
#include "dse/sweep.h"
#include "frontend/constraint.h"
#include "graph/network.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace db::dse {

/// What the tuner optimises for when picking the winner off the frontier.
enum class Objective { kLatency, kEnergy, kBalanced };

/// "latency" / "energy" / "balanced"; ParseObjective throws db::Error on
/// anything else (the CLI maps that to exit code 2).
const char* ObjectiveName(Objective objective);
Objective ParseObjective(const std::string& text);

/// The three minimised axes of one scored candidate.
struct Objectives {
  std::int64_t latency_cycles = 0;  // SimulatePerformance total cycles
  double energy_joules = 0.0;       // EstimateEnergy total joules
  std::int64_t bram_bytes = 0;      // tallied on-chip memory footprint

  /// (latency, energy, bram) as the Pareto objective vector.
  std::vector<double> AsVector() const;
};

/// Outcome of one candidate.  The Status order mirrors the pruning
/// order; a candidate carries valid `obj` only when kScored.
struct CandidateResult {
  enum class Status { kInfeasible, kOverBudget, kVerifyRejected, kScored };

  CandidateSpec spec;
  Status status = Status::kInfeasible;
  Objectives obj;
};

const char* CandidateStatusName(CandidateResult::Status status);

struct TuneOptions {
  SweepSpec sweep;
  Objective objective = Objective::kLatency;
  /// Worker threads for the evaluation loop; clamped to >= 1.  Changes
  /// wall-clock time only, never a single byte of the result.
  int jobs = 1;
  /// Optional observability sinks, driven from the calling thread only.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Full tune outcome: every candidate in enumeration order, the
/// frontier (indices into `candidates`, canonical order), the winner,
/// and the stock GenerateAccelerator design's scores for comparison.
struct TuneResult {
  std::string network_name;
  Objective objective = Objective::kLatency;
  SweepSpec sweep;
  std::vector<CandidateResult> candidates;
  std::vector<std::size_t> frontier;
  std::size_t winner = 0;  // index into `candidates`, always on frontier
  Objectives default_obj;  // the un-tuned GenerateAccelerator design

  std::size_t CountWithStatus(CandidateResult::Status status) const;

  /// Byte-stable renderings (`deepburning tune` text / --json output).
  std::string ToText() const;
  std::string ToJson() const;
};

/// Map one sweep point onto a concrete configuration derived from the
/// sized baseline `base`: lanes_pct rescales the MAC lane count (DSP
/// lanes first when allowed, fabric multipliers for the rest),
/// port_elems sets the memory port / Method-1 tile width (secondary
/// lane pools and the connection box follow it, as in SizeDatapath),
/// data_split_pct re-splits the BRAM budget between the data and weight
/// buffers.  The fixed-point format is copied from `base` untouched —
/// tuning never changes what the accelerator computes.
AcceleratorConfig CandidateConfig(const Network& net,
                                  const AcceleratorConfig& base,
                                  const CandidateSpec& spec);

/// Construct, prune and score one candidate.  Pure function of its
/// arguments; safe to call concurrently on the same (const) network.
/// Exposed so the test suite can brute-force the whole space
/// single-threaded and cross-check the parallel driver point for point.
CandidateResult EvaluateCandidate(const Network& net,
                                  const DesignConstraint& constraint,
                                  const AcceleratorConfig& base,
                                  const CandidateSpec& spec);

/// Run the sweep.  Throws db::Error when the baseline cannot be sized
/// or when no candidate survives pruning (nothing to put on a frontier).
TuneResult Explore(const Network& net, const DesignConstraint& constraint,
                   const TuneOptions& options = {});

/// Compile the winning candidate into a deployable design: the same
/// construction EvaluateCandidate used, plus RTL emission, lint and the
/// static-verifier gate (throws db::Error on any of them failing — a
/// frontier member must verify clean, so this is a cross-check, not a
/// filter).
AcceleratorDesign CompileWinner(const Network& net,
                                const DesignConstraint& constraint,
                                const AcceleratorConfig& base,
                                const CandidateSpec& spec);

/// Design-cache key for a tune outcome: the ordinary design key's
/// canonical (network, constraint) text plus a tune suffix appended
/// AFTER the constraint section, so DesignCache::LoadFromDisk still
/// re-verifies the decoded design against the network parsed from the
/// canonical prefix.  Two sweeps that enumerate the same candidates in
/// the same order (SweepSpec::ToString is canonical) under the same
/// objective share a key.
cluster::DesignKey MakeTuneKey(const NetworkDef& def,
                               const DesignConstraint& constraint,
                               const SweepSpec& sweep, Objective objective);

/// Bumps the dse.cache_hits counter: a tune request answered from the
/// design cache's sidecar report, with no exploration run.
void RecordTuneCacheHit(obs::MetricsRegistry& metrics);

}  // namespace db::dse
