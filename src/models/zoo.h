// The benchmark model zoo (paper Table 2).
//
// Eight networks: three 4-layer ANNs approximating AxBench workloads
// (fft, jpeg, kmeans), a 2-layer Hopfield TSP solver, a 2-layer CMAC for
// robot-arm control, a 5-layer MNIST CNN, Alexnet, NiN and a Cifar CNN.
// Each model is defined by its prototxt script (the exact input format
// NN-Gen consumes) plus a builder returning the shape-inferred Network.
//
// The classification CNNs use reduced input geometry where the paper used
// ImageNet-scale data we cannot train in-repo (see DESIGN.md
// substitutions); Alexnet and NiN keep their published geometry since
// they are evaluated for performance/resources with fidelity-based
// accuracy.
#pragma once

#include <string>
#include <vector>

#include "frontend/constraint.h"
#include "graph/network.h"

namespace db {

/// Identifiers of the eight paper benchmarks.
enum class ZooModel {
  kAnn0Fft,
  kAnn1Jpeg,
  kAnn2Kmeans,
  kHopfield,
  kCmac,
  kMnist,
  kAlexnet,
  kNin,
  kCifar,
};

/// All models in evaluation order (matches the paper's figures).
std::vector<ZooModel> AllZooModels();

/// Short name used in tables ("ANN-0", "Alexnet", ...).
std::string ZooModelName(ZooModel model);

/// The application column of Table 2.
std::string ZooModelApplication(ZooModel model);

/// The model's prototxt script.
std::string ZooModelPrototxt(ZooModel model);

/// Parse + build the shape-inferred network.
Network BuildZooModel(ZooModel model);

/// Constraint presets of the paper's schemes.
///   DB   : medium budget on Zynq Z-7045
///   DB-L : high budget on Zynq Z-7045
///   DB-S : low budget on Zynq Z-7020
DesignConstraint DbConstraint();
DesignConstraint DbLConstraint();
DesignConstraint DbSConstraint();

/// Number of cities in the zoo Hopfield TSP instance.
constexpr int kHopfieldCities = 5;

/// Extension model (not among the paper's eight benchmarks): a
/// GoogleNet-style inception block exercising the concat layer and
/// multi-producer AGU programs end to end.
std::string InceptionDemoPrototxt();

}  // namespace db
