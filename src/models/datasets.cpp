#include "models/datasets.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.h"
#include "models/golden.h"

namespace db {
namespace {

/// Seven-segment layout per digit: segments a,b,c,d,e,f,g.
///      aaa
///     f   b
///      ggg
///     e   c
///      ddd
constexpr std::array<std::array<bool, 7>, 10> kSegments = {{
    {true, true, true, true, true, true, false},     // 0
    {false, true, true, false, false, false, false}, // 1
    {true, true, false, true, true, false, true},    // 2
    {true, true, true, true, false, false, true},    // 3
    {false, true, true, false, false, true, true},   // 4
    {true, false, true, true, false, true, true},    // 5
    {true, false, true, true, true, true, true},     // 6
    {true, true, true, false, false, false, false},  // 7
    {true, true, true, true, true, true, true},      // 8
    {true, true, true, true, false, true, true},     // 9
}};

void DrawSegment(Tensor& img, int segment, int ox, int oy) {
  // Glyph occupies a 8x6 box at (oy, ox) inside the 12x12 canvas.
  auto hline = [&](int y, int x0, int x1) {
    for (int x = x0; x <= x1; ++x)
      img.at3(0, oy + y, ox + x) = 1.0f;
  };
  auto vline = [&](int x, int y0, int y1) {
    for (int y = y0; y <= y1; ++y)
      img.at3(0, oy + y, ox + x) = 1.0f;
  };
  switch (segment) {
    case 0: hline(0, 1, 4); break;  // a
    case 1: vline(5, 1, 3); break;  // b
    case 2: vline(5, 5, 7); break;  // c
    case 3: hline(8, 1, 4); break;  // d
    case 4: vline(0, 5, 7); break;  // e
    case 5: vline(0, 1, 3); break;  // f
    case 6: hline(4, 1, 4); break;  // g
  }
}

Tensor RenderDigit(int digit, int dx, int dy, Rng& rng, double noise) {
  Tensor img(Shape{1, 12, 12});
  const int ox = 2 + dx;
  const int oy = 1 + dy;
  for (int seg = 0; seg < 7; ++seg)
    if (kSegments[static_cast<std::size_t>(digit)]
                 [static_cast<std::size_t>(seg)])
      DrawSegment(img, seg, ox, oy);
  for (std::int64_t i = 0; i < img.size(); ++i) {
    img[i] += static_cast<float>(rng.Gaussian(0.0, noise));
    img[i] = std::clamp(img[i], 0.0f, 1.0f);
  }
  return img;
}

Tensor OneHot(std::int64_t classes, std::int64_t index) {
  Tensor t(Shape{classes, 1, 1});
  t[index] = 1.0f;
  return t;
}

}  // namespace

std::vector<TrainSample> MakeDigitDataset(int samples_per_class,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TrainSample> samples;
  samples.reserve(static_cast<std::size_t>(samples_per_class) * 10);
  for (int digit = 0; digit < 10; ++digit) {
    for (int s = 0; s < samples_per_class; ++s) {
      const int dx = static_cast<int>(rng.UniformInt(3)) - 1;
      const int dy = static_cast<int>(rng.UniformInt(3)) - 1;
      TrainSample sample;
      sample.input = RenderDigit(digit, dx, dy, rng, 0.15);
      sample.target = OneHot(10, digit);
      samples.push_back(std::move(sample));
    }
  }
  return samples;
}

std::vector<TrainSample> MakeTextureDataset(int samples_per_class,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TrainSample> samples;
  samples.reserve(static_cast<std::size_t>(samples_per_class) * 8);
  for (int cls = 0; cls < 8; ++cls) {
    // Class-specific grating: orientation from the low 2 bits, frequency
    // from the next bit, dominant colour channel from the top bits.
    const double angle = (cls % 4) * 3.14159265358979 / 4.0;
    const double freq = cls < 4 ? 0.8 : 1.6;
    const int dom_channel = cls % 3;
    // Phase is class-anchored with small jitter: fully random phase makes
    // the 128-sample task unlearnable for a CNN this small, and the
    // bench needs a *trained* reference model, not a hard vision task.
    const double base_phase = 0.7 * cls;
    for (int s = 0; s < samples_per_class; ++s) {
      Tensor img(Shape{3, 16, 16});
      const double phase = base_phase + rng.Uniform(-0.3, 0.3);
      for (std::int64_t c = 0; c < 3; ++c) {
        const double amp = c == dom_channel ? 0.35 : 0.15;
        // Class-coded per-channel brightness: the class index's bits set
        // each channel's DC level, a signal that survives the pooling
        // stages (pure phase coding is erased by max pooling, making the
        // task unlearnable for a pooled CNN).
        const double mean = 0.35 + 0.25 * ((cls >> c) & 1);
        for (std::int64_t y = 0; y < 16; ++y) {
          for (std::int64_t x = 0; x < 16; ++x) {
            const double u = std::cos(angle) * static_cast<double>(x) +
                             std::sin(angle) * static_cast<double>(y);
            double v = mean + amp * std::sin(freq * u + phase) +
                       rng.Gaussian(0.0, 0.06);
            img.at3(c, y, x) =
                static_cast<float>(std::clamp(v, 0.0, 1.0));
          }
        }
      }
      TrainSample sample;
      sample.input = std::move(img);
      sample.target = OneHot(8, cls);
      samples.push_back(std::move(sample));
    }
  }
  return samples;
}

std::vector<TrainSample> MakeFftDataset(int samples, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TrainSample> out;
  out.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const double x = rng.Uniform();
    const auto g = GoldenFftTwiddle(x);
    TrainSample s;
    s.input = Tensor(Shape{1, 1, 1}, {static_cast<float>(x)});
    s.target = Tensor(Shape{2, 1, 1},
                      {static_cast<float>(g[0]), static_cast<float>(g[1])});
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<TrainSample> MakeJpegDataset(int samples, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TrainSample> out;
  out.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    std::array<double, 8> block;
    // Smooth random signal: random low-order cosine mixture, the kind of
    // content JPEG compresses well.
    const double a = rng.Uniform(0.2, 0.8);
    const double b = rng.Uniform(-0.3, 0.3);
    const double c = rng.Uniform(-0.15, 0.15);
    const double phase = rng.Uniform(0.0, 3.14);
    for (int n = 0; n < 8; ++n) {
      const double t = static_cast<double>(n) / 8.0;
      block[static_cast<std::size_t>(n)] = std::clamp(
          a + b * std::cos(3.14159 * t + phase) +
              c * std::cos(2 * 3.14159 * t),
          0.0, 1.0);
    }
    const auto g = GoldenJpegBlock(block);
    TrainSample s;
    std::vector<float> in(8), tg(8);
    for (int n = 0; n < 8; ++n) {
      in[static_cast<std::size_t>(n)] =
          static_cast<float>(block[static_cast<std::size_t>(n)]);
      tg[static_cast<std::size_t>(n)] =
          static_cast<float>(g[static_cast<std::size_t>(n)]);
    }
    s.input = Tensor(Shape{8, 1, 1}, std::move(in));
    s.target = Tensor(Shape{8, 1, 1}, std::move(tg));
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<TrainSample> MakeKmeansDataset(int samples,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TrainSample> out;
  out.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    // Sample near the centroids so classes are learnable (pure uniform
    // sampling puts most mass on decision boundaries).
    const auto& centroids = KmeansCentroids();
    const auto& c = centroids[rng.UniformInt(centroids.size())];
    const double x = std::clamp(c[0] + rng.Gaussian(0.0, 0.12), 0.0, 1.0);
    const double y = std::clamp(c[1] + rng.Gaussian(0.0, 0.12), 0.0, 1.0);
    const auto g = GoldenKmeansAssign(x, y);
    TrainSample s;
    s.input = Tensor(Shape{2, 1, 1},
                     {static_cast<float>(x), static_cast<float>(y)});
    s.target = Tensor(Shape{2, 1, 1},
                      {static_cast<float>(g[0]), static_cast<float>(g[1])});
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<TrainSample> MakeArmDataset(int samples, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TrainSample> out;
  out.reserve(static_cast<std::size_t>(samples));
  while (static_cast<int>(out.size()) < samples) {
    const double r = rng.Uniform(0.25, 0.95);  // inside the annulus
    // Workspace restricted to the upper half-plane away from the atan2
    // branch cut at +-pi: the IK target t1 stays continuous, which a
    // table-based CMAC needs (a wrap-around discontinuity in the target
    // is unlearnable for local receptive fields).
    const double phi = rng.Uniform(0.35, 2.8);
    const double x = r * std::cos(phi);
    const double y = r * std::sin(phi);
    const auto angles = GoldenArmInverseKinematics(x, y);
    TrainSample s;
    // CMAC input space is [0,1]^2.
    s.input = Tensor(Shape{2, 1, 1}, {static_cast<float>((x + 1.0) / 2.0),
                                      static_cast<float>((y + 1.0) / 2.0)});
    s.target = Tensor(Shape{2, 1, 1}, {static_cast<float>(angles[0]),
                                       static_cast<float>(angles[1])});
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace db
