// Trained model bundles: network + weights + held-out evaluation data.
//
// These substitute the paper's Caffe/Matlab-trained weights (see
// DESIGN.md).  Every builder is deterministic in its seed.  The big
// ImageNet models (Alexnet, NiN) use Xavier-random weights and are
// evaluated by output *fidelity* (float CPU reference vs fixed-point
// accelerator on identical inputs) rather than task accuracy.
#pragma once

#include <vector>

#include "models/zoo.h"
#include "nn/trainer.h"
#include "nn/weights.h"

namespace db {

/// How a model's accuracy is scored in Fig. 10.
enum class AccuracyKind {
  kClassification,  // fraction of correct argmax labels
  kRelativeError,   // paper Eq. (1) on regression outputs
  kTourQuality,     // Hopfield: Eq. (1) on tour length vs brute force
  kFidelity,        // agreement between float reference and accelerator
};

struct TrainedModel {
  ZooModel id = ZooModel::kAnn0Fft;
  Network net;
  WeightStore weights;
  std::vector<TrainSample> test_set;
  AccuracyKind accuracy_kind = AccuracyKind::kRelativeError;
  /// For kTourQuality: the TSP instance and its optimal length.
  std::vector<std::vector<double>> tsp_distances;
  double tsp_optimal_length = 0.0;
};

/// Train one of the three AxBench approximators (ANN-0/1/2).
TrainedModel TrainZooAnn(ZooModel which, std::uint64_t seed,
                         int train_samples = 600, int epochs = 60);

/// Train the 5-layer MNIST CNN on the synthetic digit set.
TrainedModel TrainZooMnist(std::uint64_t seed, int samples_per_class = 24,
                           int epochs = 12);

/// Train the Cifar CNN on the synthetic texture set.
TrainedModel TrainZooCifar(std::uint64_t seed, int samples_per_class = 16,
                           int epochs = 30);

/// Build the Hopfield TSP model: analytic Hopfield-Tank weights installed
/// into the recurrent layer.
TrainedModel BuildZooHopfield(std::uint64_t seed);

/// LMS-train the CMAC on robot-arm inverse kinematics and install the
/// learned cell table.
TrainedModel BuildZooCmac(std::uint64_t seed, int train_samples = 4000);

/// Alexnet / NiN with Xavier-random weights (fidelity evaluation).
TrainedModel RandomWeightModel(ZooModel which, std::uint64_t seed,
                               int eval_inputs = 2);

/// Build every zoo model's bundle (used by the Fig. 10 bench).
std::vector<TrainedModel> BuildAllTrainedModels(std::uint64_t seed);

/// Decode a Hopfield activation vector (n*n values, city-major) into a
/// permutation tour by greedy unique argmax.
std::vector<int> DecodeTourFromActivations(const Tensor& activations,
                                           int cities);

}  // namespace db
