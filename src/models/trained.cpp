#include "models/trained.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/logging.h"
#include "models/datasets.h"
#include "models/golden.h"
#include "nn/cmac.h"
#include "nn/hopfield.h"

namespace db {
namespace {

std::vector<TrainSample> MakeAnnDataset(ZooModel which, int samples,
                                        std::uint64_t seed) {
  switch (which) {
    case ZooModel::kAnn0Fft: return MakeFftDataset(samples, seed);
    case ZooModel::kAnn1Jpeg: return MakeJpegDataset(samples, seed);
    case ZooModel::kAnn2Kmeans: return MakeKmeansDataset(samples, seed);
    default:
      DB_THROW("not an ANN approximator model");
  }
}

}  // namespace

TrainedModel TrainZooAnn(ZooModel which, std::uint64_t seed,
                         int train_samples, int epochs) {
  TrainedModel model;
  model.id = which;
  model.net = BuildZooModel(which);
  model.accuracy_kind = AccuracyKind::kRelativeError;
  Rng rng(seed);
  model.weights = WeightStore::CreateRandom(model.net, rng);

  const auto train = MakeAnnDataset(which, train_samples, seed + 1);
  model.test_set = MakeAnnDataset(which, train_samples / 4, seed + 2);

  TrainerOptions opts;
  opts.learning_rate = 0.02;
  opts.momentum = 0.9;
  opts.loss = LossKind::kMse;
  opts.seed = seed + 3;
  Trainer trainer(model.net, model.weights, opts);
  double loss = 0.0;
  for (int e = 0; e < epochs; ++e) loss = trainer.TrainEpoch(train);
  DB_LOG(kInfo) << ZooModelName(which) << " trained: final epoch loss "
                << loss;
  return model;
}

TrainedModel TrainZooMnist(std::uint64_t seed, int samples_per_class,
                           int epochs) {
  TrainedModel model;
  model.id = ZooModel::kMnist;
  model.net = BuildZooModel(ZooModel::kMnist);
  model.accuracy_kind = AccuracyKind::kClassification;
  Rng rng(seed);
  model.weights = WeightStore::CreateRandom(model.net, rng);

  const auto train = MakeDigitDataset(samples_per_class, seed + 1);
  model.test_set = MakeDigitDataset(samples_per_class / 3 + 2, seed + 2);

  TrainerOptions opts;
  opts.learning_rate = 0.03;
  opts.momentum = 0.9;
  opts.max_grad_norm = 0.5;  // per-sample SGD on ReLU nets needs clipping
  opts.loss = LossKind::kSoftmaxCrossEntropy;
  opts.seed = seed + 3;
  Trainer trainer(model.net, model.weights, opts);
  for (int e = 0; e < epochs; ++e) trainer.TrainEpoch(train);
  DB_LOG(kInfo) << "MNIST trained: test accuracy "
                << Trainer(model.net, model.weights, opts)
                       .ClassificationAccuracy(model.test_set);
  return model;
}

TrainedModel TrainZooCifar(std::uint64_t seed, int samples_per_class,
                           int epochs) {
  TrainedModel model;
  model.id = ZooModel::kCifar;
  model.net = BuildZooModel(ZooModel::kCifar);
  model.accuracy_kind = AccuracyKind::kClassification;
  Rng rng(seed);
  model.weights = WeightStore::CreateRandom(model.net, rng);

  const auto train = MakeTextureDataset(samples_per_class, seed + 1);
  model.test_set = MakeTextureDataset(samples_per_class / 2 + 2, seed + 2);

  TrainerOptions opts;
  opts.learning_rate = 0.1;
  opts.momentum = 0.9;
  opts.max_grad_norm = 1.0;
  opts.batch_size = 16;  // pure SGD oscillates on the 8-class task
  opts.loss = LossKind::kSoftmaxCrossEntropy;
  opts.seed = seed + 3;
  Trainer trainer(model.net, model.weights, opts);
  for (int e = 0; e < epochs; ++e) trainer.TrainEpoch(train);
  return model;
}

TrainedModel BuildZooHopfield(std::uint64_t seed) {
  TrainedModel model;
  model.id = ZooModel::kHopfield;
  model.net = BuildZooModel(ZooModel::kHopfield);
  model.accuracy_kind = AccuracyKind::kTourQuality;
  model.weights = WeightStore::CreateFor(model.net);

  Rng rng(seed);
  model.tsp_distances = RandomTspInstance(kHopfieldCities, rng);
  model.tsp_optimal_length = BruteForceTspLength(model.tsp_distances);

  HopfieldTspParams hp;
  HopfieldTsp hopfield(model.tsp_distances, hp);
  const int n = kHopfieldCities;
  const int n2 = n * n;
  // Install the Hopfield-Tank couplings into the recurrent layer:
  //   v_{t+1} = sigmoid( (2/gain) * (W v_t + bias) + (2/gain) * x )
  // with x the initial symmetry-breaking perturbation fed as input.
  LayerParams& params = model.weights.at("settle");
  const double scale = 2.0 / hp.gain;
  for (int x = 0; x < n; ++x)
    for (int i = 0; i < n; ++i)
      for (int y = 0; y < n; ++y)
        for (int j = 0; j < n; ++j)
          params.recurrent.at({x * n + i, y * n + j}) =
              static_cast<float>(scale * hopfield.Weight(x, i, y, j));
  for (int k = 0; k < n2; ++k) {
    params.bias[k] = static_cast<float>(scale * hopfield.Bias());
    params.weights.at({k, k}) = static_cast<float>(scale);
  }

  // Test inputs: random small perturbations around zero.
  for (int s = 0; s < 4; ++s) {
    TrainSample sample;
    Tensor in(Shape{n2, 1, 1});
    in.FillUniform(rng, -0.5f, 0.5f);
    sample.input = std::move(in);
    sample.target = Tensor(Shape{1, 1, 1},
                           {static_cast<float>(model.tsp_optimal_length)});
    model.test_set.push_back(std::move(sample));
  }
  return model;
}

TrainedModel BuildZooCmac(std::uint64_t seed, int train_samples) {
  TrainedModel model;
  model.id = ZooModel::kCmac;
  model.net = BuildZooModel(ZooModel::kCmac);
  model.accuracy_kind = AccuracyKind::kRelativeError;
  model.weights = WeightStore::CreateFor(model.net);

  // LMS-train the stand-alone CMAC on inverse kinematics.
  AssociativeParams ap;
  ap.num_cells = 512;
  ap.generalization = 8;
  ap.num_output = 2;
  CmacModel cmac(ap, 2);
  const auto train = MakeArmDataset(train_samples, seed + 1);
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (const TrainSample& s : train) {
      std::vector<float> x = {s.input[0], s.input[1]};
      std::vector<double> t = {s.target[0], s.target[1]};
      cmac.TrainStep(x, t, 0.3);
    }
  }

  // Install the learned table; the FC output stage is identity.
  model.weights.at("assoc").weights = cmac.table();
  LayerParams& fc = model.weights.at("out");
  fc.weights.Fill(0.0f);
  fc.weights.at({0, 0}) = 1.0f;
  fc.weights.at({1, 1}) = 1.0f;

  model.test_set = MakeArmDataset(train_samples / 8, seed + 2);
  return model;
}

TrainedModel RandomWeightModel(ZooModel which, std::uint64_t seed,
                               int eval_inputs) {
  TrainedModel model;
  model.id = which;
  model.net = BuildZooModel(which);
  model.accuracy_kind = AccuracyKind::kFidelity;
  Rng rng(seed);
  // He init keeps the random model's activations at fixed-point-
  // representable magnitudes through the deep ReLU stack.
  model.weights = WeightStore::CreateRandomHe(model.net, rng);
  const BlobShape in_shape =
      model.net.layer(model.net.input_ids().front()).output_shape;
  for (int i = 0; i < eval_inputs; ++i) {
    TrainSample s;
    Tensor in(Shape{in_shape.channels, in_shape.height, in_shape.width});
    in.FillUniform(rng, 0.0f, 1.0f);
    s.input = std::move(in);
    s.target = Tensor(Shape{1, 1, 1});  // unused for fidelity
    model.test_set.push_back(std::move(s));
  }
  return model;
}

std::vector<TrainedModel> BuildAllTrainedModels(std::uint64_t seed) {
  std::vector<TrainedModel> models;
  models.push_back(TrainZooAnn(ZooModel::kAnn0Fft, seed));
  models.push_back(TrainZooAnn(ZooModel::kAnn1Jpeg, seed + 10));
  models.push_back(TrainZooAnn(ZooModel::kAnn2Kmeans, seed + 20));
  models.push_back(BuildZooHopfield(seed + 30));
  models.push_back(BuildZooCmac(seed + 40));
  models.push_back(TrainZooMnist(seed + 50));
  // One probe input each: a fixed-point Alexnet/NiN forward pass costs
  // ~1 GMAC of scalar simulation, and fidelity is input-insensitive.
  models.push_back(RandomWeightModel(ZooModel::kAlexnet, seed + 60, 1));
  models.push_back(RandomWeightModel(ZooModel::kNin, seed + 70, 1));
  models.push_back(TrainZooCifar(seed + 80));
  return models;
}

std::vector<int> DecodeTourFromActivations(const Tensor& activations,
                                           int cities) {
  DB_CHECK_MSG(activations.size() == cities * cities,
               "activation vector size mismatch");
  const int n = cities;
  std::vector<int> tour(static_cast<std::size_t>(n), -1);
  std::vector<bool> city_used(static_cast<std::size_t>(n), false);
  std::vector<bool> pos_used(static_cast<std::size_t>(n), false);
  for (int a = 0; a < n; ++a) {
    float best = -1e30f;
    int bc = -1, bp = -1;
    for (int c = 0; c < n; ++c) {
      if (city_used[static_cast<std::size_t>(c)]) continue;
      for (int p = 0; p < n; ++p) {
        if (pos_used[static_cast<std::size_t>(p)]) continue;
        const float v = activations[c * n + p];
        if (v > best) {
          best = v;
          bc = c;
          bp = p;
        }
      }
    }
    tour[static_cast<std::size_t>(bp)] = bc;
    city_used[static_cast<std::size_t>(bc)] = true;
    pos_used[static_cast<std::size_t>(bp)] = true;
  }
  return tour;
}

}  // namespace db
