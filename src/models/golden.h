// Golden reference applications for the AxBench-style approximators and
// the combinatorial benchmarks (paper §4: Eq. (1) compares the NN
// approximation A against the golden reference B implemented "with
// orthodox program of accurate modeling").
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace db {

/// fft benchmark: value of the DFT twiddle basis at normalised position
/// x in [0, 1]: returns (cos(2*pi*x), sin(2*pi*x)).  This is the inner
/// kernel AxBench's fft approximator replaces.
std::array<double, 2> GoldenFftTwiddle(double x);

/// jpeg benchmark: 8-sample 1-D DCT-II, quantisation by the luminance
/// table's first row, dequantisation and inverse DCT — the lossy
/// round-trip a JPEG codec applies per block row.  Input/output values in
/// [0, 1].
std::array<double, 8> GoldenJpegBlock(const std::array<double, 8>& block);

/// kmeans benchmark: nearest-centroid step against the fixed 4-centroid
/// codebook; returns the coordinates of the winning centroid.
std::array<double, 2> GoldenKmeansAssign(double x, double y);
const std::vector<std::array<double, 2>>& KmeansCentroids();

/// 2-link planar robot arm (unit link lengths L1=0.5, L2=0.5): inverse
/// kinematics mapping an end-effector target inside the reachable annulus
/// to joint angles (elbow-down solution), both normalised to [0, 1].
/// Inputs x, y in [-1, 1]; throws db::Error for unreachable targets.
std::array<double, 2> GoldenArmInverseKinematics(double x, double y);

/// Forward kinematics (for validation): joint angles normalised in
/// [0, 1] -> end-effector position.
std::array<double, 2> GoldenArmForwardKinematics(double t1, double t2);

/// Random symmetric TSP instance: n points uniform in the unit square,
/// returns the distance matrix.
std::vector<std::vector<double>> RandomTspInstance(int n, Rng& rng);

/// Exact brute-force TSP tour length (n <= 10).
double BruteForceTspLength(const std::vector<std::vector<double>>& dist);

}  // namespace db
