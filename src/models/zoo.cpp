#include "models/zoo.h"

#include "common/error.h"
#include "frontend/network_def.h"

namespace db {

std::vector<ZooModel> AllZooModels() {
  return {ZooModel::kAnn0Fft, ZooModel::kAnn1Jpeg, ZooModel::kAnn2Kmeans,
          ZooModel::kHopfield, ZooModel::kCmac, ZooModel::kMnist,
          ZooModel::kAlexnet, ZooModel::kNin, ZooModel::kCifar};
}

std::string ZooModelName(ZooModel model) {
  switch (model) {
    case ZooModel::kAnn0Fft: return "ANN-0";
    case ZooModel::kAnn1Jpeg: return "ANN-1";
    case ZooModel::kAnn2Kmeans: return "ANN-2";
    case ZooModel::kHopfield: return "Hopfield";
    case ZooModel::kCmac: return "CMAC";
    case ZooModel::kMnist: return "MNIST";
    case ZooModel::kAlexnet: return "Alexnet";
    case ZooModel::kNin: return "NiN";
    case ZooModel::kCifar: return "Cifar";
  }
  return "?";
}

std::string ZooModelApplication(ZooModel model) {
  switch (model) {
    case ZooModel::kAnn0Fft: return "fft approximation";
    case ZooModel::kAnn1Jpeg: return "jpeg approximation";
    case ZooModel::kAnn2Kmeans: return "kmeans approximation";
    case ZooModel::kHopfield: return "TSP solver";
    case ZooModel::kCmac: return "Robot arm control";
    case ZooModel::kMnist: return "Number recognition";
    case ZooModel::kAlexnet: return "Image recognition";
    case ZooModel::kNin: return "Image recognition";
    case ZooModel::kCifar: return "Image classification";
  }
  return "?";
}

namespace {

std::string FcLayer(const std::string& name, const std::string& bottom,
                    int num_output) {
  return "layers {\n  name: \"" + name + "\"\n  type: INNER_PRODUCT\n"
         "  bottom: \"" + bottom + "\"\n  top: \"" + name + "\"\n"
         "  inner_product_param { num_output: " +
         std::to_string(num_output) + " }\n}\n";
}

std::string ActLayer(const std::string& name, const std::string& bottom,
                     const std::string& type) {
  return "layers {\n  name: \"" + name + "\"\n  type: " + type + "\n"
         "  bottom: \"" + bottom + "\"\n  top: \"" + name + "\"\n}\n";
}

std::string ConvLayer(const std::string& name, const std::string& bottom,
                      int num_output, int kernel, int stride, int pad,
                      int group = 1) {
  std::string s = "layers {\n  name: \"" + name +
                  "\"\n  type: CONVOLUTION\n  bottom: \"" + bottom +
                  "\"\n  top: \"" + name + "\"\n  convolution_param {\n"
                  "    num_output: " + std::to_string(num_output) +
                  "\n    kernel_size: " + std::to_string(kernel) +
                  "\n    stride: " + std::to_string(stride) + "\n";
  if (pad != 0) s += "    pad: " + std::to_string(pad) + "\n";
  if (group != 1) s += "    group: " + std::to_string(group) + "\n";
  s += "  }\n}\n";
  return s;
}

std::string PoolLayer(const std::string& name, const std::string& bottom,
                      const std::string& method, int kernel, int stride) {
  return "layers {\n  name: \"" + name + "\"\n  type: POOLING\n"
         "  bottom: \"" + bottom + "\"\n  top: \"" + name + "\"\n"
         "  pooling_param { pool: " + method +
         "  kernel_size: " + std::to_string(kernel) +
         "  stride: " + std::to_string(stride) + " }\n}\n";
}

std::string LrnLayer(const std::string& name, const std::string& bottom) {
  return "layers {\n  name: \"" + name + "\"\n  type: LRN\n  bottom: \"" +
         bottom + "\"\n  top: \"" + name +
         "\"\n  lrn_param { local_size: 5  alpha: 0.0001  beta: 0.75 }\n"
         "}\n";
}

std::string DropLayer(const std::string& name, const std::string& bottom) {
  return "layers {\n  name: \"" + name + "\"\n  type: DROPOUT\n"
         "  bottom: \"" + bottom + "\"\n  top: \"" + name + "\"\n"
         "  dropout_param { dropout_ratio: 0.5 }\n}\n";
}

std::string Header(const std::string& name, int c, int h, int w) {
  return "name: \"" + name + "\"\ninput: \"data\"\ninput_dim: 1\n"
         "input_dim: " + std::to_string(c) + "\ninput_dim: " +
         std::to_string(h) + "\ninput_dim: " + std::to_string(w) + "\n";
}

/// A 4-layer MLP (input, two hidden layers, output) used by the AxBench
/// approximators; activation is TANH for regression-friendly range.
std::string AnnPrototxt(const std::string& name, int in, int h1, int h2,
                        int out, const std::string& act) {
  std::string s = Header(name, in, 1, 1);
  s += FcLayer("fc1", "data", h1);
  s += ActLayer("act1", "fc1", act);
  s += FcLayer("fc2", "act1", h2);
  s += ActLayer("act2", "fc2", act);
  s += FcLayer("fc3", "act2", out);
  return s;
}

std::string HopfieldPrototxt() {
  const int n2 = kHopfieldCities * kHopfieldCities;
  std::string s = Header("hopfield", n2, 1, 1);
  s += "layers {\n  name: \"settle\"\n  type: RECURRENT\n"
       "  bottom: \"data\"\n  top: \"settle\"\n"
       "  recurrent_param { num_output: " + std::to_string(n2) +
       "  time_steps: 60  activation: SIGMOID }\n"
       "  connect { name: \"r0\"  direction: recurrent  type: full }\n"
       "}\n";
  return s;
}

std::string CmacPrototxt() {
  std::string s = Header("cmac", 2, 1, 1);
  s += "layers {\n  name: \"assoc\"\n  type: ASSOCIATIVE\n"
       "  bottom: \"data\"\n  top: \"assoc\"\n"
       "  associative_param { num_cells: 512  generalization: 8  "
       "num_output: 2 }\n"
       "  connect { name: \"c0\"  direction: recurrent  "
       "type: file_specified }\n"
       "}\n";
  // Output scaling stage: the "2-layer" CMAC's linear output layer.
  s += FcLayer("out", "assoc", 2);
  return s;
}

std::string MnistPrototxt() {
  std::string s = Header("mnist", 1, 12, 12);
  s += ConvLayer("conv1", "data", 8, 3, 1, 0);    // 8 x 10 x 10
  s += ActLayer("relu1", "conv1", "RELU");
  s += PoolLayer("pool1", "relu1", "MAX", 2, 2);  // 8 x 5 x 5
  s += ConvLayer("conv2", "pool1", 16, 3, 1, 0);  // 16 x 3 x 3
  s += ActLayer("relu2", "conv2", "RELU");
  s += FcLayer("ip1", "relu2", 10);
  s += ActLayer("prob", "ip1", "SOFTMAX");
  return s;
}

std::string CifarPrototxt() {
  std::string s = Header("cifar", 3, 16, 16);
  s += ConvLayer("conv1", "data", 16, 3, 1, 1);   // 16 x 16 x 16
  s += ActLayer("relu1", "conv1", "RELU");
  s += PoolLayer("pool1", "relu1", "MAX", 2, 2);  // 16 x 8 x 8
  s += ConvLayer("conv2", "pool1", 16, 3, 1, 1);  // 16 x 8 x 8
  s += ActLayer("relu2", "conv2", "RELU");
  s += PoolLayer("pool2", "relu2", "AVE", 2, 2);  // 16 x 4 x 4
  s += FcLayer("ip1", "pool2", 32);
  // Like caffe's cifar10_quick, there is no activation between the two
  // FC stages (a mid-FC ReLU dies wholesale on the small synthetic task
  // and freezes every upstream layer).
  s += FcLayer("ip2", "ip1", 8);
  s += ActLayer("prob", "ip2", "SOFTMAX");
  return s;
}

std::string AlexnetPrototxt() {
  std::string s = Header("alexnet", 3, 227, 227);
  s += ConvLayer("conv1", "data", 96, 11, 4, 0);   // 96 x 55 x 55
  s += ActLayer("relu1", "conv1", "RELU");
  s += LrnLayer("norm1", "relu1");
  s += PoolLayer("pool1", "norm1", "MAX", 3, 2);   // 96 x 27 x 27
  s += ConvLayer("conv2", "pool1", 256, 5, 1, 2, 2);  // 256x27x27, groups
  s += ActLayer("relu2", "conv2", "RELU");
  s += LrnLayer("norm2", "relu2");
  s += PoolLayer("pool2", "norm2", "MAX", 3, 2);   // 256 x 13 x 13
  s += ConvLayer("conv3", "pool2", 384, 3, 1, 1);
  s += ActLayer("relu3", "conv3", "RELU");
  s += ConvLayer("conv4", "relu3", 384, 3, 1, 1, 2);
  s += ActLayer("relu4", "conv4", "RELU");
  s += ConvLayer("conv5", "relu4", 256, 3, 1, 1, 2);
  s += ActLayer("relu5", "conv5", "RELU");
  s += PoolLayer("pool5", "relu5", "MAX", 3, 2);   // 256 x 6 x 6
  s += FcLayer("fc6", "pool5", 4096);
  s += ActLayer("relu6", "fc6", "RELU");
  s += DropLayer("drop6", "relu6");
  s += FcLayer("fc7", "drop6", 4096);
  s += ActLayer("relu7", "fc7", "RELU");
  s += DropLayer("drop7", "relu7");
  s += FcLayer("fc8", "drop7", 1000);
  s += ActLayer("prob", "fc8", "SOFTMAX");
  return s;
}

std::string NinPrototxt() {
  std::string s = Header("nin", 3, 224, 224);
  s += ConvLayer("conv1", "data", 96, 11, 4, 0);   // 96 x 54 x 54
  s += ActLayer("relu0", "conv1", "RELU");
  s += ConvLayer("cccp1", "relu0", 96, 1, 1, 0);
  s += ActLayer("relu1", "cccp1", "RELU");
  s += ConvLayer("cccp2", "relu1", 96, 1, 1, 0);
  s += ActLayer("relu2", "cccp2", "RELU");
  s += PoolLayer("pool1", "relu2", "MAX", 3, 2);   // 96 x 27 x 27
  s += ConvLayer("conv2", "pool1", 256, 5, 1, 2);
  s += ActLayer("relu3", "conv2", "RELU");
  s += ConvLayer("cccp3", "relu3", 256, 1, 1, 0);
  s += ActLayer("relu4", "cccp3", "RELU");
  s += ConvLayer("cccp4", "relu4", 256, 1, 1, 0);
  s += ActLayer("relu5", "cccp4", "RELU");
  s += PoolLayer("pool2", "relu5", "MAX", 3, 2);   // 256 x 13 x 13
  s += ConvLayer("conv3", "pool2", 384, 3, 1, 1);
  s += ActLayer("relu6", "conv3", "RELU");
  s += ConvLayer("cccp5", "relu6", 384, 1, 1, 0);
  s += ActLayer("relu7", "cccp5", "RELU");
  s += ConvLayer("cccp6", "relu7", 384, 1, 1, 0);
  s += ActLayer("relu8", "cccp6", "RELU");
  s += PoolLayer("pool3", "relu8", "MAX", 3, 2);   // 384 x 6 x 6
  s += DropLayer("drop", "pool3");
  s += ConvLayer("conv4", "drop", 1024, 3, 1, 1);
  s += ActLayer("relu9", "conv4", "RELU");
  s += ConvLayer("cccp7", "relu9", 1024, 1, 1, 0);
  s += ActLayer("relu10", "cccp7", "RELU");
  s += ConvLayer("cccp8", "relu10", 1000, 1, 1, 0);
  s += ActLayer("relu11", "cccp8", "RELU");
  s += PoolLayer("pool4", "relu11", "AVE", 6, 1);  // 1000 x 1 x 1
  s += ActLayer("prob", "pool4", "SOFTMAX");
  return s;
}

}  // namespace

std::string ZooModelPrototxt(ZooModel model) {
  switch (model) {
    case ZooModel::kAnn0Fft:
      return AnnPrototxt("ann0_fft", 1, 8, 8, 2, "TANH");
    case ZooModel::kAnn1Jpeg:
      return AnnPrototxt("ann1_jpeg", 8, 32, 16, 8, "TANH");
    case ZooModel::kAnn2Kmeans:
      return AnnPrototxt("ann2_kmeans", 2, 16, 8, 2, "SIGMOID");
    case ZooModel::kHopfield: return HopfieldPrototxt();
    case ZooModel::kCmac: return CmacPrototxt();
    case ZooModel::kMnist: return MnistPrototxt();
    case ZooModel::kAlexnet: return AlexnetPrototxt();
    case ZooModel::kNin: return NinPrototxt();
    case ZooModel::kCifar: return CifarPrototxt();
  }
  DB_THROW("unknown zoo model");
}

Network BuildZooModel(ZooModel model) {
  return Network::Build(ParseNetworkDef(ZooModelPrototxt(model)));
}

std::string InceptionDemoPrototxt() {
  std::string s = Header("inception_demo", 8, 14, 14);
  s += ConvLayer("b1", "data", 8, 1, 1, 0);
  s += ConvLayer("b3", "data", 8, 3, 1, 1);
  s += ConvLayer("b5", "data", 4, 5, 1, 2);
  s += "layers {\n  name: \"pool_branch\"\n  type: POOLING\n"
       "  bottom: \"data\"\n  top: \"pool_branch\"\n"
       "  pooling_param { pool: MAX  kernel_size: 3  stride: 1  pad: 1 }\n"
       "}\n";
  s += "layers {\n  name: \"cat\"\n  type: CONCAT\n"
       "  bottom: \"b1\"\n  bottom: \"b3\"\n  bottom: \"b5\"\n"
       "  bottom: \"pool_branch\"\n  top: \"cat\"\n}\n";
  s += ActLayer("relu_cat", "cat", "RELU");
  s += FcLayer("fc", "relu_cat", 10);
  s += ActLayer("prob", "fc", "SOFTMAX");
  return s;
}

DesignConstraint DbConstraint() {
  DesignConstraint c;
  c.device = "zynq-7045";
  c.budget = BudgetLevel::kMedium;
  return c;
}

DesignConstraint DbLConstraint() {
  DesignConstraint c;
  c.device = "zynq-7045";
  c.budget = BudgetLevel::kHigh;
  return c;
}

DesignConstraint DbSConstraint() {
  DesignConstraint c;
  c.device = "zynq-7020";
  c.budget = BudgetLevel::kLow;
  return c;
}

}  // namespace db
