// Synthetic datasets substituting the paper's training corpora
// (MNIST / Cifar / ImageNet — see DESIGN.md substitutions).
//
// All generators are deterministic given the seed; the digit glyphs and
// texture classes are designed so a small CNN can reach high accuracy in
// a few epochs, which is what Fig. 10 needs: a trained float network to
// compare the fixed-point accelerator against.
#pragma once

#include <vector>

#include "common/rng.h"
#include "nn/trainer.h"

namespace db {

/// 12x12 single-channel digit-glyph classification set (10 classes).
/// Each sample renders the class's seven-segment-style glyph with
/// per-pixel Gaussian noise and a random +-1 pixel translation.
/// Targets are one-hot over 10 classes (shape {10,1,1}).
std::vector<TrainSample> MakeDigitDataset(int samples_per_class,
                                          std::uint64_t seed);

/// 3x16x16 texture classification set (8 classes): oriented sinusoidal
/// gratings with class-specific frequency/orientation/colour plus noise.
/// Targets are one-hot over 8 classes.
std::vector<TrainSample> MakeTextureDataset(int samples_per_class,
                                            std::uint64_t seed);

/// AxBench-style function-approximation sets built from the golden
/// kernels (models/golden.h).
std::vector<TrainSample> MakeFftDataset(int samples, std::uint64_t seed);
std::vector<TrainSample> MakeJpegDataset(int samples, std::uint64_t seed);
std::vector<TrainSample> MakeKmeansDataset(int samples,
                                           std::uint64_t seed);

/// Robot-arm inverse-kinematics samples: reachable (x, y) -> normalised
/// joint angles.  Input shape {2,1,1}, target shape {2,1,1}.
std::vector<TrainSample> MakeArmDataset(int samples, std::uint64_t seed);

}  // namespace db
