#include "models/golden.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace db {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// First row of the standard JPEG luminance quantisation table.
constexpr std::array<double, 8> kJpegQuant = {16, 11, 10, 16, 24, 40, 51,
                                              61};

constexpr double kArmL1 = 0.5;
constexpr double kArmL2 = 0.5;

}  // namespace

std::array<double, 2> GoldenFftTwiddle(double x) {
  return {std::cos(2.0 * kPi * x), std::sin(2.0 * kPi * x)};
}

std::array<double, 8> GoldenJpegBlock(const std::array<double, 8>& block) {
  // DCT-II.
  std::array<double, 8> coeff{};
  for (int k = 0; k < 8; ++k) {
    double sum = 0.0;
    for (int n = 0; n < 8; ++n)
      sum += block[static_cast<std::size_t>(n)] *
             std::cos(kPi / 8.0 * (static_cast<double>(n) + 0.5) *
                      static_cast<double>(k));
    const double scale = k == 0 ? std::sqrt(1.0 / 8.0)
                                : std::sqrt(2.0 / 8.0);
    coeff[static_cast<std::size_t>(k)] = scale * sum;
  }
  // Quantise / dequantise (values scaled to the 0..255 pixel range the
  // table was designed for, then back).
  for (int k = 0; k < 8; ++k) {
    const double q = kJpegQuant[static_cast<std::size_t>(k)] / 255.0;
    coeff[static_cast<std::size_t>(k)] =
        std::round(coeff[static_cast<std::size_t>(k)] / q) * q;
  }
  // Inverse DCT.
  std::array<double, 8> out{};
  for (int n = 0; n < 8; ++n) {
    double sum = std::sqrt(1.0 / 8.0) * coeff[0];
    for (int k = 1; k < 8; ++k)
      sum += std::sqrt(2.0 / 8.0) * coeff[static_cast<std::size_t>(k)] *
             std::cos(kPi / 8.0 * (static_cast<double>(n) + 0.5) *
                      static_cast<double>(k));
    out[static_cast<std::size_t>(n)] = sum;
  }
  return out;
}

const std::vector<std::array<double, 2>>& KmeansCentroids() {
  static const std::vector<std::array<double, 2>> kCentroids = {
      {0.2, 0.25}, {0.75, 0.2}, {0.3, 0.8}, {0.8, 0.75}};
  return kCentroids;
}

std::array<double, 2> GoldenKmeansAssign(double x, double y) {
  const auto& centroids = KmeansCentroids();
  double best = std::numeric_limits<double>::infinity();
  std::array<double, 2> winner = centroids.front();
  for (const auto& c : centroids) {
    const double d = (c[0] - x) * (c[0] - x) + (c[1] - y) * (c[1] - y);
    if (d < best) {
      best = d;
      winner = c;
    }
  }
  return winner;
}

std::array<double, 2> GoldenArmInverseKinematics(double x, double y) {
  const double r2 = x * x + y * y;
  const double c2 =
      (r2 - kArmL1 * kArmL1 - kArmL2 * kArmL2) / (2.0 * kArmL1 * kArmL2);
  if (c2 < -1.0 || c2 > 1.0)
    DB_THROW("arm target (" << x << ", " << y << ") unreachable");
  const double t2 = std::acos(c2);  // elbow-down
  const double t1 = std::atan2(y, x) -
                    std::atan2(kArmL2 * std::sin(t2),
                               kArmL1 + kArmL2 * std::cos(t2));
  // Normalise: t1 in [-pi, pi] -> [0,1]; t2 in [0, pi] -> [0,1].
  return {(t1 + kPi) / (2.0 * kPi), t2 / kPi};
}

std::array<double, 2> GoldenArmForwardKinematics(double t1n, double t2n) {
  const double t1 = t1n * 2.0 * kPi - kPi;
  const double t2 = t2n * kPi;
  return {kArmL1 * std::cos(t1) + kArmL2 * std::cos(t1 + t2),
          kArmL1 * std::sin(t1) + kArmL2 * std::sin(t1 + t2)};
}

std::vector<std::vector<double>> RandomTspInstance(int n, Rng& rng) {
  DB_CHECK_MSG(n >= 2, "TSP instance needs >= 2 cities");
  std::vector<std::array<double, 2>> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    pts.push_back({rng.Uniform(), rng.Uniform()});
  std::vector<std::vector<double>> dist(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      const double dx = pts[static_cast<std::size_t>(i)][0] -
                        pts[static_cast<std::size_t>(j)][0];
      const double dy = pts[static_cast<std::size_t>(i)][1] -
                        pts[static_cast<std::size_t>(j)][1];
      dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          std::sqrt(dx * dx + dy * dy);
    }
  return dist;
}

double BruteForceTspLength(const std::vector<std::vector<double>>& dist) {
  const int n = static_cast<int>(dist.size());
  DB_CHECK_MSG(n >= 2 && n <= 10, "brute force TSP limited to n <= 10");
  std::vector<int> perm(static_cast<std::size_t>(n - 1));
  std::iota(perm.begin(), perm.end(), 1);  // city 0 fixed as start
  double best = std::numeric_limits<double>::infinity();
  do {
    double len = dist[0][static_cast<std::size_t>(perm.front())];
    for (std::size_t i = 0; i + 1 < perm.size(); ++i)
      len += dist[static_cast<std::size_t>(perm[i])]
                 [static_cast<std::size_t>(perm[i + 1])];
    len += dist[static_cast<std::size_t>(perm.back())][0];
    best = std::min(best, len);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

}  // namespace db
