// AcceleratorPool: N replicated instances of one generated design.
//
// Each replica owns a private DRAM MemoryImage (copied from the image
// provisioned once), the SystemContext decoded from those bytes, and
// its own simulated-cycle clock — the software model of a board (or a
// fleet) provisioned with N copies of the same accelerator.  The pool
// also owns one execution lane per replica: a FIFO work deque drained
// by a dedicated thread, so the wall-clock cost of simulating replicas
// overlaps while every simulated number stays a pure function of the
// dispatch order.
//
// The pool is policy-free: *which* replica a batch lands on is the
// ShardRouter's decision, and *what* serving a batch means (faults,
// deadlines, retries) is the caller's task closure.  This keeps the
// replication substrate reusable for servers, benches and tests alike.
//
// Threading contract: Post() calls must come from one thread at a time
// (the server's dispatcher).  A replica's state — image, context, warm
// flag, clock, fault log — is written only by its own lane thread while
// the pool runs, and may be read by anyone after Join().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "fault/fault_injector.h"
#include "sim/system_sim.h"

namespace db::cluster {

/// One replica's full state: the simulated accelerator instance plus
/// the deterministic bookkeeping the serving layer accumulates on it.
struct Replica {
  explicit Replica(SystemReplica system)
      : image(std::move(system.image)),
        context(std::move(system.context)) {}

  MemoryImage image;                       // private DRAM bytes
  std::unique_ptr<SystemContext> context;  // decoded from `image`

  // Serving bookkeeping, owned by the replica's lane thread.
  bool warm = false;            // weights resident after the first image
  std::int64_t local_cycle = 0; // the replica's own simulated timeline
  std::int64_t busy_cycles = 0;
  std::int64_t batches = 0;
  std::int64_t requests = 0;    // kOk services executed here
  std::int64_t invocations = 0; // fault-injection invocation coordinate
  std::size_t fault_cursor = 0; // next unfired event in the fault slice
  std::vector<fault::FaultRecord> fault_records;
  std::int64_t scrubs = 0;
  /// Simulated [start, end) windows this replica's datapath was
  /// occupied — service runs plus charged recovery (retry attempts,
  /// stalls, scrubs) — appended in the lane's deterministic service
  /// order, so the list is sorted and disjoint.  The load time-series
  /// derives per-replica busy fractions from it.
  std::vector<std::pair<std::int64_t, std::int64_t>> busy_intervals;
};

/// Cycles of `intervals` (sorted, disjoint) falling inside the window
/// [begin, end) — the per-replica busy share a time-series sample reads.
std::int64_t BusyInWindow(
    const std::vector<std::pair<std::int64_t, std::int64_t>>& intervals,
    std::int64_t begin, std::int64_t end);

class AcceleratorPool {
 public:
  /// Stamp out `replicas` copies of the provisioned image, decode one
  /// SystemContext per replica, and start one lane thread per replica.
  AcceleratorPool(const Network& net, const AcceleratorDesign& design,
                  const MemoryImage& provisioned, int replicas);

  /// Joins the lane threads (abandoning queued work if Close was never
  /// called).
  ~AcceleratorPool();

  AcceleratorPool(const AcceleratorPool&) = delete;
  AcceleratorPool& operator=(const AcceleratorPool&) = delete;

  int size() const { return static_cast<int>(replicas_.size()); }

  /// The replica's state.  While the pool runs, only replica r's own
  /// tasks may touch replica(r); after Join() anyone may read it.
  Replica& replica(int r) { return *replicas_[static_cast<std::size_t>(r)]; }
  const Replica& replica(int r) const {
    return *replicas_[static_cast<std::size_t>(r)];
  }

  /// Enqueue a task on replica r's lane (FIFO per lane).
  void Post(int r, std::function<void()> task);

  /// Close every lane's intake; lane threads exit once their deques
  /// drain.  Idempotent.
  void Close();

  /// Wait for every lane thread to finish (call Close first, or queued
  /// work keeps them alive).  Idempotent.
  void Join();

 private:
  struct Lane {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> work;
    bool closed = false;
    std::thread thread;
  };

  void RunLane(int index);

  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace db::cluster
