#include "cluster/accelerator_pool.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace db::cluster {

std::int64_t BusyInWindow(
    const std::vector<std::pair<std::int64_t, std::int64_t>>& intervals,
    std::int64_t begin, std::int64_t end) {
  std::int64_t busy = 0;
  for (const auto& [lo, hi] : intervals) {
    if (lo >= end) break;  // sorted: nothing later can overlap
    busy += std::max<std::int64_t>(
        0, std::min(hi, end) - std::max(lo, begin));
  }
  return busy;
}

AcceleratorPool::AcceleratorPool(const Network& net,
                                 const AcceleratorDesign& design,
                                 const MemoryImage& provisioned,
                                 int replicas) {
  DB_CHECK_MSG(replicas >= 1, "pool needs at least one replica");
  for (SystemReplica& system :
       ReplicateSystem(net, design, provisioned, replicas))
    replicas_.push_back(std::make_unique<Replica>(std::move(system)));
  for (int r = 0; r < replicas; ++r)
    lanes_.push_back(std::make_unique<Lane>());
  for (int r = 0; r < replicas; ++r)
    lanes_[static_cast<std::size_t>(r)]->thread =
        std::thread([this, r] { RunLane(r); });
}

AcceleratorPool::~AcceleratorPool() {
  Close();
  Join();
}

void AcceleratorPool::Post(int r, std::function<void()> task) {
  Lane& lane = *lanes_[static_cast<std::size_t>(r)];
  {
    std::lock_guard<std::mutex> lock(lane.mu);
    DB_CHECK_MSG(!lane.closed, "Post after Close");
    lane.work.push_back(std::move(task));
  }
  lane.cv.notify_one();
}

void AcceleratorPool::Close() {
  for (auto& lane : lanes_) {
    {
      std::lock_guard<std::mutex> lock(lane->mu);
      lane->closed = true;
    }
    lane->cv.notify_all();
  }
}

void AcceleratorPool::Join() {
  for (auto& lane : lanes_)
    if (lane->thread.joinable()) lane->thread.join();
}

void AcceleratorPool::RunLane(int index) {
  Lane& lane = *lanes_[static_cast<std::size_t>(index)];
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(lane.mu);
      lane.cv.wait(lock, [&] { return lane.closed || !lane.work.empty(); });
      if (lane.work.empty()) return;  // closed and fully drained
      task = std::move(lane.work.front());
      lane.work.pop_front();
    }
    task();
  }
}

}  // namespace db::cluster
