#include "cluster/health_monitor.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"

namespace db::cluster {

ReplicaHealthMonitor::ReplicaHealthMonitor(int replicas,
                                           HealthOptions options)
    : options_(options) {
  DB_CHECK_MSG(replicas >= 1, "health monitor needs at least one replica");
  DB_CHECK_MSG(options_.heartbeat_interval_cycles >= 1,
               "heartbeat interval must be >= 1 cycle");
  DB_CHECK_MSG(options_.suspect_after_misses >= 1 &&
                   options_.down_after_misses >=
                       options_.suspect_after_misses,
               "heartbeat-miss thresholds must satisfy "
               "1 <= suspect <= down");
  DB_CHECK_MSG(options_.failures_to_suspect >= 1 &&
                   options_.failures_to_down >=
                       options_.failures_to_suspect,
               "failure thresholds must satisfy 1 <= suspect <= down");
  DB_CHECK_MSG(options_.failure_down_cycles >= 1,
               "failure down window must be >= 1 cycle");
  DB_CHECK_MSG(options_.readmit_scrub_cycles >= 0,
               "readmit scrub charge must be >= 0 cycles");
  states_.resize(static_cast<std::size_t>(replicas));
}

void ReplicaHealthMonitor::set_readmit_scrub_cycles(std::int64_t cycles) {
  DB_CHECK_MSG(cycles >= 0, "readmit scrub charge must be >= 0 cycles");
  DB_CHECK_MSG(transitions_.empty(),
               "set the scrub charge before the first report");
  options_.readmit_scrub_cycles = cycles;
}

void ReplicaHealthMonitor::Transition(int replica, std::int64_t cycle,
                                      ReplicaHealth to, const char* cause) {
  State& state = states_[static_cast<std::size_t>(replica)];
  if (to == ReplicaHealth::kHealthy) {
    state.readmit_cycle = 0;
    state.consecutive_failures = 0;
  }
  if (state.health == to) return;
  transitions_.push_back(
      HealthTransition{replica, cycle, state.health, to, cause});
  state.health = to;
}

void ReplicaHealthMonitor::Schedule(State& state, std::int64_t cycle,
                                    ReplicaHealth to, const char* cause) {
  // Insert keeping the pending list sorted by cycle (stable for ties,
  // so the kDown -> kRecovering -> kHealthy chain applies in order even
  // with a zero-length window between two links).
  Pending pending{cycle, to, cause};
  auto it = std::upper_bound(
      state.pending.begin(), state.pending.end(), cycle,
      [](std::int64_t c, const Pending& p) { return c < p.cycle; });
  state.pending.insert(it, pending);
}

void ReplicaHealthMonitor::ScheduleReadmission(State& state,
                                               std::int64_t down_until,
                                               const char* cause) {
  Schedule(state, down_until, ReplicaHealth::kRecovering, cause);
  Schedule(state, down_until + options_.readmit_scrub_cycles,
           ReplicaHealth::kHealthy, "scrub");
  state.readmit_cycle = down_until + options_.readmit_scrub_cycles;
}

void ReplicaHealthMonitor::AdvanceTo(std::int64_t cycle) {
  clock_ = std::max(clock_, cycle);
  for (int r = 0; r < replicas(); ++r) {
    State& state = states_[static_cast<std::size_t>(r)];
    while (!state.pending.empty() &&
           state.pending.front().cycle <= clock_) {
      const Pending pending = state.pending.front();
      state.pending.erase(state.pending.begin());
      Transition(r, pending.cycle, pending.to, pending.cause);
    }
  }
}

void ReplicaHealthMonitor::Flush() {
  for (int r = 0; r < replicas(); ++r) {
    State& state = states_[static_cast<std::size_t>(r)];
    while (!state.pending.empty()) {
      const Pending pending = state.pending.front();
      state.pending.erase(state.pending.begin());
      Transition(r, pending.cycle, pending.to, pending.cause);
    }
  }
}

void ReplicaHealthMonitor::ReportCrash(int replica, std::int64_t cycle,
                                       std::int64_t down_cycles) {
  DB_CHECK(replica >= 0 && replica < replicas());
  DB_CHECK_MSG(down_cycles >= 1, "crash needs a positive down window");
  State& state = states_[static_cast<std::size_t>(replica)];
  // Record scheduled transitions that precede the crash, then let the
  // crash supersede the rest of the plan (a dead replica's hang
  // recovery never happens).
  while (!state.pending.empty() && state.pending.front().cycle <= cycle) {
    const Pending pending = state.pending.front();
    state.pending.erase(state.pending.begin());
    Transition(replica, pending.cycle, pending.to, pending.cause);
  }
  state.pending.clear();
  state.consecutive_failures = 0;
  Transition(replica, cycle, ReplicaHealth::kDown, "crash");
  ScheduleReadmission(state, cycle + down_cycles, "crash");
}

void ReplicaHealthMonitor::ReportUnresponsive(int replica,
                                              std::int64_t from,
                                              std::int64_t until) {
  DB_CHECK(replica >= 0 && replica < replicas());
  DB_CHECK_MSG(until > from, "unresponsive window must be non-empty");
  State& state = states_[static_cast<std::size_t>(replica)];
  const std::int64_t hb = options_.heartbeat_interval_cycles;
  // Heartbeats tick on multiples of the interval; the first one the
  // hang can miss is the first tick strictly after `from`.
  std::int64_t tick = (from / hb + 1) * hb;
  int misses = 0;
  bool went_down = false;
  for (; tick < until; tick += hb) {
    ++misses;
    if (misses == options_.suspect_after_misses)
      Schedule(state, tick, ReplicaHealth::kSuspect, "hang");
    if (misses == options_.down_after_misses) {
      Schedule(state, tick, ReplicaHealth::kDown, "hang");
      went_down = true;
      break;
    }
  }
  if (misses == 0) return;  // shorter than one heartbeat: unobserved
  // Recovery is observed at the first heartbeat at or after the window
  // ends; a replica that went down pays the scrub-and-readmit pass.
  const std::int64_t recovered = ((until + hb - 1) / hb) * hb;
  if (went_down)
    ScheduleReadmission(state, recovered, "heartbeat");
  else
    Schedule(state, recovered, ReplicaHealth::kHealthy, "heartbeat");
}

void ReplicaHealthMonitor::ReportFailure(int replica, std::int64_t cycle) {
  DB_CHECK(replica >= 0 && replica < replicas());
  AdvanceTo(cycle);
  State& state = states_[static_cast<std::size_t>(replica)];
  ++state.consecutive_failures;
  if (state.health == ReplicaHealth::kHealthy &&
      state.consecutive_failures >= options_.failures_to_suspect)
    Transition(replica, cycle, ReplicaHealth::kSuspect, "failures");
  if (state.health == ReplicaHealth::kSuspect &&
      state.consecutive_failures >= options_.failures_to_down) {
    state.consecutive_failures = 0;
    Transition(replica, cycle, ReplicaHealth::kDown, "failures");
    ScheduleReadmission(state, cycle + options_.failure_down_cycles,
                        "heartbeat");
  }
}

void ReplicaHealthMonitor::ReportSuccess(int replica, std::int64_t cycle) {
  DB_CHECK(replica >= 0 && replica < replicas());
  State& state = states_[static_cast<std::size_t>(replica)];
  state.consecutive_failures = 0;
  // Only a failure-caused suspicion lifts on success; scheduled windows
  // (hangs, crash recovery) run their course.
  if (state.health == ReplicaHealth::kSuspect && state.pending.empty())
    Transition(replica, cycle, ReplicaHealth::kHealthy, "success");
}

ReplicaHealth ReplicaHealthMonitor::state(int replica) const {
  DB_CHECK(replica >= 0 && replica < replicas());
  return states_[static_cast<std::size_t>(replica)].health;
}

std::int64_t ReplicaHealthMonitor::readmit_cycle(int replica) const {
  DB_CHECK(replica >= 0 && replica < replicas());
  return states_[static_cast<std::size_t>(replica)].readmit_cycle;
}

ReplicaHealth ReplicaHealthMonitor::StateAt(int replica,
                                            std::int64_t cycle) const {
  DB_CHECK(replica >= 0 && replica < replicas());
  ReplicaHealth health = ReplicaHealth::kHealthy;
  for (const HealthTransition& t : transitions_) {
    if (t.replica != replica || t.cycle > cycle) continue;
    health = t.to;
  }
  return health;
}

BreakerOptions ParseBreakerSpec(const std::string& spec) {
  BreakerOptions options;
  options.enabled = true;
  for (const std::string& field : Split(spec, ',')) {
    const std::string_view trimmed = Trim(field);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos)
      throw Error("breaker spec: expected key=value, got '" +
                  std::string(trimmed) + "'");
    const std::string key = std::string(Trim(trimmed.substr(0, eq)));
    const std::string value = std::string(Trim(trimmed.substr(eq + 1)));
    long long parsed = 0;
    try {
      std::size_t pos = 0;
      parsed = std::stoll(value, &pos);
      if (pos != value.size()) throw Error("trailing characters");
    } catch (const std::exception&) {
      throw Error("breaker spec: '" + key +
                  "' must be a positive integer, got '" + value + "'");
    }
    if (parsed < 1)
      throw Error("breaker spec: '" + key +
                  "' must be a positive integer, got '" + value + "'");
    if (key == "failures") {
      options.failure_threshold = static_cast<int>(parsed);
    } else if (key == "cooldown") {
      options.cooldown_cycles = parsed;
    } else {
      throw Error("breaker spec: unknown key '" + key +
                  "' (failures, cooldown)");
    }
  }
  return options;
}

CircuitBreaker::CircuitBreaker(int replicas, BreakerOptions options)
    : options_(options) {
  DB_CHECK_MSG(replicas >= 1, "breaker needs at least one replica");
  if (options_.enabled) {
    DB_CHECK_MSG(options_.failure_threshold >= 1,
                 "breaker failure threshold must be >= 1");
    DB_CHECK_MSG(options_.cooldown_cycles >= 1,
                 "breaker cooldown must be >= 1 cycle");
  }
  states_.resize(static_cast<std::size_t>(replicas));
}

BreakerState CircuitBreaker::StateAt(int replica,
                                     std::int64_t cycle) const {
  DB_CHECK(replica >= 0 &&
           replica < static_cast<int>(states_.size()));
  const State& state = states_[static_cast<std::size_t>(replica)];
  if (!options_.enabled || !state.opened) return BreakerState::kClosed;
  return cycle < state.open_until ? BreakerState::kOpen
                                  : BreakerState::kHalfOpen;
}

bool CircuitBreaker::Allows(int replica, std::int64_t cycle) const {
  return StateAt(replica, cycle) != BreakerState::kOpen;
}

void CircuitBreaker::RecordFailure(int replica, std::int64_t cycle) {
  if (!options_.enabled) return;
  DB_CHECK(replica >= 0 &&
           replica < static_cast<int>(states_.size()));
  State& state = states_[static_cast<std::size_t>(replica)];
  if (state.opened) {
    // A failed half-open trial re-opens with a fresh cooldown; a
    // failure observed while already open (liveness fallback routed
    // through anyway) leaves the episode as-is.
    if (cycle >= state.open_until) {
      state.open_until = cycle + options_.cooldown_cycles;
      ++opens_;
    }
    return;
  }
  if (++state.consecutive_failures >= options_.failure_threshold) {
    state.opened = true;
    state.open_until = cycle + options_.cooldown_cycles;
    state.consecutive_failures = 0;
    ++opens_;
  }
}

void CircuitBreaker::RecordSuccess(int replica, std::int64_t cycle) {
  if (!options_.enabled) return;
  DB_CHECK(replica >= 0 &&
           replica < static_cast<int>(states_.size()));
  State& state = states_[static_cast<std::size_t>(replica)];
  state.consecutive_failures = 0;
  if (state.opened && cycle >= state.open_until)
    state.opened = false;  // the half-open trial succeeded
}

}  // namespace db::cluster
