#include "cluster/design_cache.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string_view>
#include <utility>

#include "analysis/rtl_verifier.h"
#include "analysis/verifier.h"
#include "common/error.h"
#include "common/hash.h"
#include "common/logging.h"
#include "core/design_serde.h"

namespace db::cluster {

namespace {

// Separates the two canonical texts inside the key so a network script
// ending where a constraint begins can never splice into the same
// bytes as a different (network, constraint) split.
constexpr std::string_view kKeySeparator = "\n%constraint%\n";

std::filesystem::path EntryPath(const std::string& directory,
                                const DesignKey& key) {
  return std::filesystem::path(directory) / (DesignKeyHex(key) + ".design");
}

std::uint64_t ReadU64Le(std::string_view bytes) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i)
    value |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(bytes[static_cast<std::size_t>(i)]))
             << (8 * i);
  return value;
}

void AppendU64Le(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
}

}  // namespace

DesignKey MakeDesignKey(const NetworkDef& net,
                        const DesignConstraint& constraint) {
  DesignKey key;
  key.canonical = NetworkDefToPrototxt(net);
  key.canonical += kKeySeparator;
  key.canonical += ConstraintToPrototxt(constraint);
  key.hash = Fnv1a64(key.canonical);
  return key;
}

std::string DesignKeyHex(const DesignKey& key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key.hash));
  return std::string(buf);
}

DesignCache::DesignCache() : DesignCache(Options{}) {}

DesignCache::DesignCache(Options options) : options_(std::move(options)) {
  DB_CHECK_MSG(options_.capacity >= 1, "design cache needs capacity >= 1");
}

std::shared_ptr<const AcceleratorDesign> DesignCache::Lookup(
    const DesignKey& key) {
  auto it = FindResident(key);
  if (it != lru_.end()) {
    lru_.splice(lru_.begin(), lru_, it);  // refresh recency
    ++stats_.hits;
    Note("hit", key);
    return it->design;
  }
  if (!options_.directory.empty()) {
    if (auto design = LoadFromDisk(key)) {
      ++stats_.disk_hits;
      Note("disk_hit", key);
      return InsertResident(key, std::move(design));
    }
  }
  ++stats_.misses;
  Note("miss", key);
  return nullptr;
}

std::shared_ptr<const AcceleratorDesign> DesignCache::Insert(
    const DesignKey& key, AcceleratorDesign design) {
  auto shared = std::make_shared<const AcceleratorDesign>(std::move(design));
  ++stats_.inserts;
  Note("insert", key);
  if (!options_.directory.empty()) StoreToDisk(key, *shared);
  return InsertResident(key, std::move(shared));
}

std::shared_ptr<const AcceleratorDesign> DesignCache::GetOrGenerate(
    const DesignKey& key, const Network& net,
    const DesignConstraint& constraint, obs::Tracer* toolchain_tracer) {
  if (auto hit = Lookup(key)) return hit;
  return Insert(key, GenerateAccelerator(net, constraint, toolchain_tracer,
                                         options_.metrics));
}

std::string DesignCache::SidecarPath(const DesignKey& key,
                                     const std::string& suffix) const {
  if (options_.directory.empty()) return std::string();
  return (std::filesystem::path(options_.directory) /
          (DesignKeyHex(key) + "." + suffix))
      .string();
}

DesignCache::LruList::iterator DesignCache::FindResident(
    const DesignKey& key) {
  auto bucket = buckets_.find(key.hash);
  if (bucket == buckets_.end()) return lru_.end();
  for (LruList::iterator it : bucket->second)
    if (it->key.canonical == key.canonical) return it;
  return lru_.end();
}

std::shared_ptr<const AcceleratorDesign> DesignCache::InsertResident(
    const DesignKey& key, std::shared_ptr<const AcceleratorDesign> design) {
  auto it = FindResident(key);
  if (it != lru_.end()) {
    it->design = design;
    lru_.splice(lru_.begin(), lru_, it);
    return design;
  }
  lru_.push_front(Entry{key, design});
  buckets_[key.hash].push_back(lru_.begin());
  while (lru_.size() > options_.capacity) {
    auto last = std::prev(lru_.end());
    auto& bucket = buckets_[last->key.hash];
    bucket.erase(std::remove(bucket.begin(), bucket.end(), last),
                 bucket.end());
    if (bucket.empty()) buckets_.erase(last->key.hash);
    ++stats_.evictions;
    Note("eviction", last->key);
    lru_.pop_back();  // the shared_ptr keeps live users safe
  }
  return design;
}

std::shared_ptr<const AcceleratorDesign> DesignCache::LoadFromDisk(
    const DesignKey& key) {
  std::ifstream in(EntryPath(options_.directory, key), std::ios::binary);
  if (!in) return nullptr;
  const std::string bytes{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
  // Layout: canonical length (u64 LE) | canonical text | serde payload.
  if (bytes.size() < 8) return nullptr;
  const std::uint64_t canonical_size = ReadU64Le(bytes);
  if (canonical_size > bytes.size() - 8) return nullptr;
  const std::string_view view(bytes);
  // A digest collision or a stale file for a changed canonicalisation
  // scheme is a miss, never a wrong design.
  if (view.substr(8, static_cast<std::size_t>(canonical_size)) !=
      key.canonical)
    return nullptr;
  try {
    auto design = std::make_shared<const AcceleratorDesign>(DeserializeDesign(
        view.substr(8 + static_cast<std::size_t>(canonical_size))));
    // The serde layer bounds-checks its framing but carries no content
    // checksum, so a flipped field inside a record decodes fine.  Re-run
    // the static verifier against the network this entry claims to
    // implement: a corrupted-but-decodable design is rejected here with
    // a diagnostic instead of entering the accelerator pool.
    const std::size_t sep = key.canonical.find(kKeySeparator);
    const Network net = Network::Build(ParseNetworkDef(
        sep == std::string::npos ? key.canonical
                                 : key.canonical.substr(0, sep)));
    const analysis::AnalysisReport report =
        analysis::VerifyDesign(net, *design);
    if (!report.ok()) {
      if (options_.metrics)
        options_.metrics->AddCounter("cluster.cache.verify_reject");
      DB_LOG(kWarn) << "design cache: rejecting illegal on-disk entry "
                    << DesignKeyHex(key) << "\n" << report.ToText();
      return nullptr;  // served like a miss; the generator rebuilds it
    }
    // Same defence for the hardware itself: a bit-flip inside the RTL
    // records decodes fine but must not enter the accelerator pool.
    const analysis::AnalysisReport rtl_report =
        analysis::VerifyRtl(design->rtl);
    if (!rtl_report.ok()) {
      if (options_.metrics)
        options_.metrics->AddCounter("cluster.cache.verify_reject");
      DB_LOG(kWarn) << "design cache: rejecting entry with illegal RTL "
                    << DesignKeyHex(key) << "\n" << rtl_report.ToText();
      return nullptr;
    }
    return design;
  } catch (const Error&) {
    return nullptr;  // corrupt payload == miss; the generator rebuilds it
  }
}

void DesignCache::StoreToDisk(const DesignKey& key,
                              const AcceleratorDesign& design) {
  try {
    std::filesystem::create_directories(options_.directory);
    std::string bytes;
    AppendU64Le(bytes, key.canonical.size());
    bytes += key.canonical;
    bytes += SerializeDesign(design);
    std::ofstream out(EntryPath(options_.directory, key),
                      std::ios::binary | std::ios::trunc);
    if (!out) return;  // persistence is best-effort
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (out) {
      ++stats_.disk_writes;
      Note("disk_write", key);
    }
  } catch (const std::exception&) {
    // Unwritable directory degrades to a memory-only cache.
  }
}

void DesignCache::Note(const char* outcome, const DesignKey& key) {
  if (options_.metrics)
    options_.metrics->AddCounter(std::string("cluster.cache.") + outcome);
  if (!options_.tracer) return;
  const std::string_view what(outcome);
  // Only lookup outcomes become spans; maintenance traffic (inserts,
  // evictions, disk writes) stays counter-only to keep the track legible.
  if (what != "hit" && what != "miss" && what != "disk_hit") return;
  const std::int64_t start = options_.tracer->TrackEnd("cluster");
  obs::Span span;
  span.track = "cluster";
  span.name = std::string("cache.") + outcome;
  span.category = "cluster";
  span.start = start;
  span.end = start + 1;
  span.args.emplace_back("design", DesignKeyHex(key));
  options_.tracer->Record(std::move(span));
}

}  // namespace db::cluster
