// DesignCache: content-addressed memoization of NN-Gen output.
//
// The generator is a pure function of (NetworkDef, DesignConstraint) —
// same script, same constraint, same AcceleratorDesign, byte for byte.
// The cache exploits that: the key is the FNV-1a digest of the pair's
// *canonical* prototxt serialisation (fixed field order, so a reordered
// but semantically identical script hashes the same), and a hit returns
// the previously generated design — schedule, buffer plan, AGU programs,
// memory-image layout, RTL — without running a single generator phase.
//
// A 64-bit digest can collide, so the digest only selects a bucket; the
// full canonical string is compared before a hit is declared.  Distinct
// networks that forge the same hash coexist in one bucket and never
// alias (tested by construction in cluster_test).
//
// Entries are shared_ptr<const AcceleratorDesign>: hits hand out the
// same immutable object to every replica, and eviction cannot free a
// design a caller still runs on.  Eviction is LRU over a fixed
// capacity.
//
// With Options::directory set, the cache also persists entries to disk
// (one file per digest, canonical text + the design_serde payload) and
// warm-starts from it, so a *new process* serving the same model skips
// NN-Gen entirely — the acceptance criterion's "warm serve shows zero
// toolchain spans".  Disk loads re-verify the canonical text, and a
// corrupt or truncated file is treated as a miss, never an error.
// Because the serde payload has no content checksum, every decoded
// design is additionally re-verified with the static design verifier
// (analysis/verifier.h); an entry that decodes but fails verification
// is rejected with a diagnostic (cluster.cache.verify_reject counter,
// warning log) and regenerated rather than served.
//
// Observability: every Lookup/GetOrGenerate outcome is one ordinal-tick
// span on the "cluster" track and a cluster.cache.* counter, so traces
// show reuse (cache.hit spans, no toolchain spans) at a glance.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/generator.h"
#include "frontend/constraint.h"
#include "frontend/network_def.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace db::cluster {

/// Content address of one generator invocation.  `canonical` is the
/// full canonical serialisation (network prototxt + constraint
/// prototxt); `hash` is its FNV-1a digest.  The fields are plain so
/// tests can forge same-hash/different-canonical keys to exercise the
/// collision path.
struct DesignKey {
  std::uint64_t hash = 0;
  std::string canonical;

  bool operator==(const DesignKey& other) const {
    return hash == other.hash && canonical == other.canonical;
  }
};

/// Canonicalize and digest a (network, constraint) pair.  Field order
/// in the authored scripts does not matter: both serialisers emit a
/// fixed order, so any two scripts that parse to the same definition
/// produce the same key.
DesignKey MakeDesignKey(const NetworkDef& net,
                        const DesignConstraint& constraint);

/// The digest as 16 lowercase hex digits (disk file names, span args).
std::string DesignKeyHex(const DesignKey& key);

struct DesignCacheStats {
  std::int64_t hits = 0;        // served from memory
  std::int64_t misses = 0;      // generator had to run
  std::int64_t inserts = 0;
  std::int64_t evictions = 0;   // LRU capacity pressure
  std::int64_t disk_hits = 0;   // served from the persistent directory
  std::int64_t disk_writes = 0;
};

class DesignCache {
 public:
  struct Options {
    std::size_t capacity = 8;       // max resident designs (>= 1)
    std::string directory;          // empty => memory-only
    obs::Tracer* tracer = nullptr;  // spans on the "cluster" track
    obs::MetricsRegistry* metrics = nullptr;  // cluster.cache.* counters
  };

  DesignCache();  // memory-only, default capacity, no observability
  explicit DesignCache(Options options);

  DesignCache(const DesignCache&) = delete;
  DesignCache& operator=(const DesignCache&) = delete;

  /// Memory lookup, then disk (when a directory is configured).
  /// Returns nullptr on miss.  A hit refreshes LRU recency.
  std::shared_ptr<const AcceleratorDesign> Lookup(const DesignKey& key);

  /// Insert (or overwrite) the entry for `key`, persist it when a
  /// directory is configured, and return the shared handle.
  std::shared_ptr<const AcceleratorDesign> Insert(const DesignKey& key,
                                                  AcceleratorDesign design);

  /// The memoized generator: a hit returns the cached design without
  /// touching NN-Gen (no toolchain spans); a miss runs
  /// GenerateAccelerator(net, constraint, toolchain_tracer) and caches
  /// the result.
  std::shared_ptr<const AcceleratorDesign> GetOrGenerate(
      const DesignKey& key, const Network& net,
      const DesignConstraint& constraint,
      obs::Tracer* toolchain_tracer = nullptr);

  /// Path of a sidecar artifact stored next to `key`'s entry file —
  /// e.g. the DSE tuner persists its frontier report as
  /// `<digest>.<suffix>` so a warm tune invocation can replay the
  /// byte-identical report without re-exploring.  Empty string when the
  /// cache is memory-only (no directory configured).
  std::string SidecarPath(const DesignKey& key,
                          const std::string& suffix) const;

  const DesignCacheStats& stats() const { return stats_; }
  std::size_t size() const { return lru_.size(); }

 private:
  struct Entry {
    DesignKey key;
    std::shared_ptr<const AcceleratorDesign> design;
  };
  using LruList = std::list<Entry>;

  LruList::iterator FindResident(const DesignKey& key);
  std::shared_ptr<const AcceleratorDesign> InsertResident(
      const DesignKey& key, std::shared_ptr<const AcceleratorDesign> design);
  std::shared_ptr<const AcceleratorDesign> LoadFromDisk(const DesignKey& key);
  void StoreToDisk(const DesignKey& key, const AcceleratorDesign& design);
  void Note(const char* outcome, const DesignKey& key);

  Options options_;
  DesignCacheStats stats_;
  LruList lru_;  // front = most recently used
  // digest -> resident entries with that digest (forged collisions make
  // this a real multimap; full-key compare picks the right one).
  std::map<std::uint64_t, std::vector<LruList::iterator>> buckets_;
};

}  // namespace db::cluster
