#include "cluster/shard_router.h"

#include <algorithm>

#include "common/error.h"

namespace db::cluster {

std::string RouterPolicyName(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kRoundRobin: return "round-robin";
    case RouterPolicy::kLeastLoaded: return "least-loaded";
    case RouterPolicy::kHashAffinity: return "hash-affinity";
  }
  return "unknown";
}

RouterPolicy ParseRouterPolicy(const std::string& name) {
  if (name == "round-robin") return RouterPolicy::kRoundRobin;
  if (name == "least-loaded") return RouterPolicy::kLeastLoaded;
  if (name == "hash-affinity") return RouterPolicy::kHashAffinity;
  throw Error("unknown router policy '" + name +
              "' (expected round-robin, least-loaded or hash-affinity)");
}

ShardRouter::ShardRouter(RouterPolicy policy, int replicas,
                         std::uint64_t affinity_hash)
    : policy_(policy), replicas_(replicas), affinity_hash_(affinity_hash) {
  DB_CHECK_MSG(replicas_ >= 1, "router needs at least one replica");
}

int ShardRouter::Route(std::span<const std::int64_t> replica_free_cycle) {
  DB_CHECK_MSG(static_cast<int>(replica_free_cycle.size()) == replicas_,
               "free-cycle vector does not match the replica count");
  switch (policy_) {
    case RouterPolicy::kRoundRobin:
      return static_cast<int>(next_batch_++ %
                              static_cast<std::int64_t>(replicas_));
    case RouterPolicy::kLeastLoaded: {
      const auto it = std::min_element(replica_free_cycle.begin(),
                                       replica_free_cycle.end());
      return static_cast<int>(it - replica_free_cycle.begin());
    }
    case RouterPolicy::kHashAffinity:
      return static_cast<int>(affinity_hash_ %
                              static_cast<std::uint64_t>(replicas_));
  }
  DB_CHECK_MSG(false, "unreachable router policy");
  return 0;
}

}  // namespace db::cluster
