#include "cluster/shard_router.h"

#include <algorithm>

#include "common/error.h"

namespace db::cluster {

std::string RouterPolicyName(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kRoundRobin: return "round-robin";
    case RouterPolicy::kLeastLoaded: return "least-loaded";
    case RouterPolicy::kHashAffinity: return "hash-affinity";
  }
  return "unknown";
}

RouterPolicy ParseRouterPolicy(const std::string& name) {
  if (name == "round-robin") return RouterPolicy::kRoundRobin;
  if (name == "least-loaded") return RouterPolicy::kLeastLoaded;
  if (name == "hash-affinity") return RouterPolicy::kHashAffinity;
  throw Error("unknown router policy '" + name +
              "' (expected round-robin, least-loaded or hash-affinity)");
}

ShardRouter::ShardRouter(RouterPolicy policy, int replicas,
                         std::uint64_t affinity_hash)
    : policy_(policy), replicas_(replicas), affinity_hash_(affinity_hash) {
  DB_CHECK_MSG(replicas_ >= 1, "router needs at least one replica");
}

int ShardRouter::Route(std::span<const std::int64_t> replica_free_cycle) {
  DB_CHECK_MSG(static_cast<int>(replica_free_cycle.size()) == replicas_,
               "free-cycle vector does not match the replica count");
  switch (policy_) {
    case RouterPolicy::kRoundRobin:
      return static_cast<int>(next_batch_++ %
                              static_cast<std::int64_t>(replicas_));
    case RouterPolicy::kLeastLoaded: {
      const auto it = std::min_element(replica_free_cycle.begin(),
                                       replica_free_cycle.end());
      return static_cast<int>(it - replica_free_cycle.begin());
    }
    case RouterPolicy::kHashAffinity:
      return static_cast<int>(affinity_hash_ %
                              static_cast<std::uint64_t>(replicas_));
  }
  DB_CHECK_MSG(false, "unreachable router policy");
  return 0;
}

int ShardRouter::Route(std::span<const std::int64_t> replica_free_cycle,
                       const std::vector<bool>& routable) {
  DB_CHECK_MSG(static_cast<int>(replica_free_cycle.size()) == replicas_ &&
                   static_cast<int>(routable.size()) == replicas_,
               "free-cycle/routable vectors do not match the replica "
               "count");
  const bool any =
      std::find(routable.begin(), routable.end(), true) != routable.end();
  // Liveness fallback: with the whole pool non-routable the unmasked
  // policy decides (the dispatch still waits on the replica's simulated
  // readmission through its free cycle).
  if (!any) return Route(replica_free_cycle);
  switch (policy_) {
    case RouterPolicy::kRoundRobin: {
      const std::int64_t base = next_batch_++;
      for (int k = 0; k < replicas_; ++k) {
        const int r = static_cast<int>(
            (base + k) % static_cast<std::int64_t>(replicas_));
        if (routable[static_cast<std::size_t>(r)]) return r;
      }
      break;
    }
    case RouterPolicy::kLeastLoaded: {
      int best = -1;
      for (int r = 0; r < replicas_; ++r) {
        if (!routable[static_cast<std::size_t>(r)]) continue;
        if (best < 0 ||
            replica_free_cycle[static_cast<std::size_t>(r)] <
                replica_free_cycle[static_cast<std::size_t>(best)])
          best = r;
      }
      return best;
    }
    case RouterPolicy::kHashAffinity: {
      const auto base = static_cast<std::int64_t>(
          affinity_hash_ % static_cast<std::uint64_t>(replicas_));
      for (int k = 0; k < replicas_; ++k) {
        const int r = static_cast<int>(
            (base + k) % static_cast<std::int64_t>(replicas_));
        if (routable[static_cast<std::size_t>(r)]) return r;
      }
      break;
    }
  }
  DB_CHECK_MSG(false, "unreachable masked route");
  return 0;
}

}  // namespace db::cluster
