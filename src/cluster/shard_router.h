// Deterministic batch routing across a pool of accelerator replicas.
//
// The router decides which replica serves each closed batch.  Every
// policy is a pure function of the batch sequence and the replicas'
// *simulated* free cycles — never of thread timing — so the whole
// cluster schedule (and therefore every reported cycle number) is
// reproducible run to run:
//
//   * round-robin            batch i -> replica i mod N
//   * least-loaded           the replica whose datapath frees earliest
//                            in simulated time (ties to the lowest
//                            index) — the single-server scheduler of
//                            PR 1 generalised to the pool
//   * hash-affinity          the network's content digest pins all of
//                            its batches to one replica, so a
//                            multi-model deployment keeps each model's
//                            weights resident on its own shard; for a
//                            single-model pool this degenerates to one
//                            hot replica (documented, not a bug)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace db::cluster {

enum class RouterPolicy { kRoundRobin, kLeastLoaded, kHashAffinity };

/// CLI name: "round-robin", "least-loaded", "hash-affinity".
std::string RouterPolicyName(RouterPolicy policy);

/// Parse a CLI name (throws db::Error for unknown policies).
RouterPolicy ParseRouterPolicy(const std::string& name);

class ShardRouter {
 public:
  /// `affinity_hash` seeds the hash-affinity policy (use
  /// NetworkDefDigest of the served network); ignored by the others.
  ShardRouter(RouterPolicy policy, int replicas,
              std::uint64_t affinity_hash = 0);

  /// Choose the replica for the next batch.  `replica_free_cycle[r]` is
  /// the simulated cycle replica r's datapath frees; it must have one
  /// entry per replica.
  int Route(std::span<const std::int64_t> replica_free_cycle);

  /// Health-masked overload: only replicas with `routable[r]` true are
  /// candidates — round-robin and hash-affinity scan forward from
  /// their anchor to the first routable replica, least-loaded takes the
  /// earliest-free routable one.  When nothing is routable the policy
  /// falls back to the full pool (liveness over purity: a batch must
  /// land somewhere; the health monitor readmits, it never strands
  /// work).  Deterministic like the unmasked form.
  int Route(std::span<const std::int64_t> replica_free_cycle,
            const std::vector<bool>& routable);

  RouterPolicy policy() const { return policy_; }
  int replicas() const { return replicas_; }

 private:
  RouterPolicy policy_;
  int replicas_;
  std::uint64_t affinity_hash_;
  std::int64_t next_batch_ = 0;  // round-robin cursor
};

}  // namespace db::cluster
