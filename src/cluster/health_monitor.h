// Replica health tracking and failure isolation for the accelerator
// pool — the cluster-resilience substrate the serving dispatcher drives.
//
// ReplicaHealthMonitor runs a per-replica state machine
//
//   kHealthy -> kSuspect -> kDown -> kRecovering -> kHealthy
//
// in *simulated time*: crashes and hang windows reported by the
// dispatcher are converted into transitions quantised onto a simulated
// heartbeat grid (a hang is observed as missed heartbeats; recovery is
// observed at the first heartbeat after the window), and consecutive
// dispatch failures escalate kHealthy -> kSuspect -> kDown like a
// failure detector would.  Every transition is scheduled eagerly when
// the cause is reported and applied when the monitor's clock advances
// past it (AdvanceTo), so the transition log — and everything derived
// from it (spans, metrics, the health time-series) — is a pure function
// of the reported event sequence, never of thread timing.
//
// CircuitBreaker is the per-replica closed -> open -> half-open machine
// that bounds retry storms against a sick replica: `failure_threshold`
// consecutive failures open the breaker for `cooldown_cycles`; after
// the cooldown it is half-open and one trial dispatch decides between
// closing it and re-opening it.  State is derived from the recorded
// (failure cycle, cooldown) pairs, so queries are pure.
//
// Threading contract: both classes are single-writer (the serving
// dispatcher thread); they may be read by anyone after the dispatcher
// joins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace db::cluster {

enum class ReplicaHealth { kHealthy, kSuspect, kDown, kRecovering };

constexpr const char* ReplicaHealthName(ReplicaHealth health) {
  switch (health) {
    case ReplicaHealth::kHealthy: return "healthy";
    case ReplicaHealth::kSuspect: return "suspect";
    case ReplicaHealth::kDown: return "down";
    case ReplicaHealth::kRecovering: return "recovering";
  }
  return "unknown";
}

/// Numeric code for the health time-series export (healthy=0,
/// suspect=1, down=2, recovering=3).
constexpr int ReplicaHealthCode(ReplicaHealth health) {
  return static_cast<int>(health);
}

struct HealthOptions {
  /// Simulated heartbeat grid: hang detection and hang recovery are
  /// observed on multiples of this interval.
  std::int64_t heartbeat_interval_cycles = 512;
  /// Missed heartbeats inside an unresponsive window before kSuspect /
  /// kDown.
  int suspect_after_misses = 1;
  int down_after_misses = 4;
  /// Consecutive dispatch failures before kSuspect / kDown.
  int failures_to_suspect = 1;
  int failures_to_down = 3;
  /// Down window when consecutive failures (not a crash) take a replica
  /// down; a crash carries its own down window on the event.
  std::int64_t failure_down_cycles = 4096;
  /// Simulated cost of the scrub-and-readmit pass a replica pays
  /// between kRecovering and kHealthy (the server sets this to its
  /// weight-scrub charge).
  std::int64_t readmit_scrub_cycles = 1;
};

/// One recorded state change, in the order it took simulated effect.
struct HealthTransition {
  int replica = 0;
  std::int64_t cycle = 0;
  ReplicaHealth from = ReplicaHealth::kHealthy;
  ReplicaHealth to = ReplicaHealth::kHealthy;
  std::string cause;  // "crash", "hang", "failures", "heartbeat", "scrub"
};

class ReplicaHealthMonitor {
 public:
  explicit ReplicaHealthMonitor(int replicas, HealthOptions options = {});

  /// Set after construction, before the first report (the server
  /// computes its scrub charge after the monitor is built).
  void set_readmit_scrub_cycles(std::int64_t cycles);

  /// Apply every scheduled transition at or before `cycle`.  Clamped
  /// monotone: a caller re-dispatching at an earlier ready cycle is a
  /// no-op, never a rewind.
  void AdvanceTo(std::int64_t cycle);

  /// Apply every scheduled transition regardless of cycle (drain-time
  /// flush so recovery episodes after the last dispatch still appear in
  /// the log).
  void Flush();

  /// The replica died at `cycle`: kDown immediately (the failed
  /// dispatch is the detection), kRecovering after `down_cycles`,
  /// kHealthy after the readmit scrub.
  void ReportCrash(int replica, std::int64_t cycle,
                   std::int64_t down_cycles);

  /// The replica is unresponsive over [from, until): heartbeats on the
  /// grid inside the window go missing (kSuspect, then kDown if enough
  /// miss); the first heartbeat at or after `until` starts recovery.
  void ReportUnresponsive(int replica, std::int64_t from,
                          std::int64_t until);

  /// One dispatch-level failure (e.g. a transient route failure);
  /// consecutive failures escalate per HealthOptions.
  void ReportFailure(int replica, std::int64_t cycle);

  /// One successful dispatch: clears the consecutive-failure count and
  /// lifts a failure-caused kSuspect (scheduled windows — hangs,
  /// crash recovery — are not cut short).
  void ReportSuccess(int replica, std::int64_t cycle);

  ReplicaHealth state(int replica) const;
  /// Only kHealthy replicas take new traffic.
  bool Routable(int replica) const {
    return state(replica) == ReplicaHealth::kHealthy;
  }
  /// The cycle a non-routable replica is scheduled back to kHealthy
  /// (0 when routable or when no readmission is scheduled).
  std::int64_t readmit_cycle(int replica) const;

  int replicas() const { return static_cast<int>(states_.size()); }
  const HealthOptions& options() const { return options_; }
  const std::vector<HealthTransition>& transitions() const {
    return transitions_;
  }

  /// State at an arbitrary cycle, replayed from the transition log
  /// (Flush first for full coverage) — the health time-series sampler.
  ReplicaHealth StateAt(int replica, std::int64_t cycle) const;

 private:
  struct Pending {
    std::int64_t cycle = 0;
    ReplicaHealth to = ReplicaHealth::kHealthy;
    const char* cause = "";
  };
  struct State {
    ReplicaHealth health = ReplicaHealth::kHealthy;
    int consecutive_failures = 0;
    std::vector<Pending> pending;  // sorted by cycle
    std::int64_t readmit_cycle = 0;
  };

  void Transition(int replica, std::int64_t cycle, ReplicaHealth to,
                  const char* cause);
  void Schedule(State& state, std::int64_t cycle, ReplicaHealth to,
                const char* cause);
  /// Schedule the kDown -> kRecovering -> kHealthy chain starting at
  /// `down_until` and remember the readmit cycle.
  void ScheduleReadmission(State& state, std::int64_t down_until,
                           const char* cause);

  HealthOptions options_;
  std::vector<State> states_;
  std::vector<HealthTransition> transitions_;
  std::int64_t clock_ = 0;  // high-water mark of AdvanceTo
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

constexpr const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

struct BreakerOptions {
  bool enabled = false;
  /// Consecutive failures that open the breaker.
  int failure_threshold = 3;
  /// Cycles the breaker stays open before admitting a half-open trial.
  std::int64_t cooldown_cycles = std::int64_t{1} << 14;
};

/// Parse a CLI breaker spec: "failures=N,cooldown=M" (either key may be
/// omitted; the result is enabled).  Unknown keys or malformed values
/// throw db::Error.
BreakerOptions ParseBreakerSpec(const std::string& spec);

class CircuitBreaker {
 public:
  explicit CircuitBreaker(int replicas, BreakerOptions options = {});

  /// True when a dispatch to `replica` may proceed at `cycle` (closed
  /// or half-open; in the server's single-dispatcher flow exactly one
  /// trial is in flight while half-open).  Always true when disabled.
  bool Allows(int replica, std::int64_t cycle) const;

  void RecordFailure(int replica, std::int64_t cycle);
  void RecordSuccess(int replica, std::int64_t cycle);

  BreakerState StateAt(int replica, std::int64_t cycle) const;
  std::int64_t opens() const { return opens_; }
  const BreakerOptions& options() const { return options_; }

 private:
  struct State {
    int consecutive_failures = 0;
    bool opened = false;           // an open/half-open episode is live
    std::int64_t open_until = 0;   // cooldown end of the latest open
  };

  BreakerOptions options_;
  std::vector<State> states_;
  std::int64_t opens_ = 0;  // open + re-open transitions
};

}  // namespace db::cluster
