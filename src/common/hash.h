// FNV-1a content hashing, shared by the content-addressed design cache
// (cluster/design_cache.h), the CMAC association hash and the fault
// scrub engine's weight-region checksum.
//
// FNV-1a is not cryptographic; every consumer that uses a hash as an
// identity key must pair it with a full-key compare (the design cache
// stores the canonical text alongside the digest for exactly that
// reason).
#pragma once

#include <cstdint>
#include <string_view>

namespace db {

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Fold one byte into a running FNV-1a state.
constexpr std::uint64_t Fnv1aByte(std::uint64_t hash, std::uint8_t byte) {
  return (hash ^ byte) * kFnvPrime;
}

/// FNV-1a over a byte string, continuing from `seed` so callers can
/// chain multiple fields into one digest.
constexpr std::uint64_t Fnv1a64(std::string_view bytes,
                                std::uint64_t seed = kFnvOffsetBasis) {
  std::uint64_t hash = seed;
  for (const char c : bytes)
    hash = Fnv1aByte(hash, static_cast<std::uint8_t>(c));
  return hash;
}

}  // namespace db
