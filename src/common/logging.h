// Minimal leveled logger used across the DeepBurning toolchain.
//
// Usage: DB_LOG(kInfo) << "mapped " << n << " layers";
// The global level defaults to kWarn so tests and benches stay quiet;
// examples raise it to kInfo to narrate the flow, and the DB_LOG_LEVEL
// environment variable ("debug".."off" or 0..4) overrides the default
// without code changes.  Each line is flushed to stderr as one atomic,
// mutex-ordered write, so lines from concurrent server workers never
// interleave mid-line.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace db {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level that is actually emitted.  The initial
/// value comes from the DB_LOG_LEVEL environment variable when set to a
/// parseable level, else kWarn.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Parse "debug" / "info" / "warn" / "error" / "off" (case-insensitive)
/// or a numeric level 0..4; nullopt for anything else.
std::optional<LogLevel> ParseLogLevel(std::string_view text);

namespace internal {

/// Accumulates one log line and flushes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace db

#define DB_LOG(severity)                                              \
  if (::db::LogLevel::severity < ::db::GetLogLevel()) {               \
  } else                                                              \
    ::db::internal::LogMessage(::db::LogLevel::severity, __FILE__,    \
                               __LINE__)                              \
        .stream()
