// Minimal leveled logger used across the DeepBurning toolchain.
//
// Usage: DB_LOG(kInfo) << "mapped " << n << " layers";
// The global level defaults to kWarn so tests and benches stay quiet;
// examples raise it to kInfo to narrate the flow.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace db {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level that is actually emitted.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and flushes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace db

#define DB_LOG(severity)                                              \
  if (::db::LogLevel::severity < ::db::GetLogLevel()) {               \
  } else                                                              \
    ::db::internal::LogMessage(::db::LogLevel::severity, __FILE__,    \
                               __LINE__)                              \
        .stream()
