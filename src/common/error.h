// Error handling primitives for the DeepBurning library.
//
// User-facing failures (malformed prototxt, infeasible constraints, ...)
// throw db::Error; internal invariant violations abort through DB_CHECK.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace db {

/// Exception thrown for recoverable, user-facing errors: malformed model
/// scripts, invalid layer parameters, infeasible resource constraints.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Operation attempted on a component whose intake has closed: pushing
/// into a closed RequestQueue, submitting to a drained InferenceServer.
/// A distinct type so callers can tell "the system is shutting down"
/// (retry elsewhere / stop producing) apart from a bad request.
class ShutdownError : public Error {
 public:
  explicit ShutdownError(const std::string& what) : Error(what) {}
};

/// Per-request outcome, used where a failure must cross a thread
/// boundary as a value instead of an exception (server workers report
/// request dispositions through records, never by throwing).
enum class StatusCode {
  kOk = 0,
  kDeadlineExceeded,  // expired before its datapath service began
  kShed,              // evicted by kShedOldest admission under overload
  kRejected,          // refused at admission under kReject
  kFaulted,           // injected-fault retries exhausted
};

constexpr const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kShed: return "SHED";
    case StatusCode::kRejected: return "REJECTED";
    case StatusCode::kFaulted: return "FAULTED";
  }
  return "UNKNOWN";
}

/// Parse failures from the prototxt frontend; carries a line number.
class ParseError : public Error {
 public:
  ParseError(int line, const std::string& what)
      : Error("parse error at line " + std::to_string(line) + ": " + what),
        line_(line) {}

  int line() const { return line_; }

 private:
  int line_;
};

namespace internal {
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "DB_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}
}  // namespace internal

}  // namespace db

/// Internal invariant check. Always on (the library is a generator, not a
/// hot inner loop); throws std::logic_error so tests can observe violations.
#define DB_CHECK(expr)                                                \
  do {                                                                \
    if (!(expr))                                                      \
      ::db::internal::CheckFailed(__FILE__, __LINE__, #expr, "");     \
  } while (0)

#define DB_CHECK_MSG(expr, msg)                                       \
  do {                                                                \
    if (!(expr))                                                      \
      ::db::internal::CheckFailed(__FILE__, __LINE__, #expr, (msg));  \
  } while (0)

/// Throw a db::Error with streamed message: DB_THROW("bad k=" << k).
#define DB_THROW(streamed)               \
  do {                                   \
    std::ostringstream os_;              \
    os_ << streamed;                     \
    throw ::db::Error(os_.str());        \
  } while (0)
