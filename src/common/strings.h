// Small string utilities shared by the frontend parser and RTL emitters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace db {

/// Split on a single delimiter; empty fields are kept.
std::vector<std::string> Split(std::string_view text, char delim);

/// Strip leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True if `text` begins with / ends with the given prefix / suffix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Lower-case an ASCII string.
std::string ToLower(std::string_view text);

/// Join items with a separator.
std::string Join(const std::vector<std::string>& items,
                 std::string_view sep);

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Sanitise an arbitrary name into a legal Verilog identifier.
std::string ToIdentifier(std::string_view name);

}  // namespace db
