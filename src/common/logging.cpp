#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/strings.h"

namespace db {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel InitialLevel() {
  const char* env = std::getenv("DB_LOG_LEVEL");
  if (env != nullptr)
    if (const std::optional<LogLevel> parsed = ParseLogLevel(env))
      return *parsed;
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{InitialLevel()};

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

std::optional<LogLevel> ParseLogLevel(std::string_view text) {
  const std::string lower = ToLower(Trim(text));
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2")
    return LogLevel::kWarn;
  if (lower == "error" || lower == "3") return LogLevel::kError;
  if (lower == "off" || lower == "none" || lower == "4")
    return LogLevel::kOff;
  return std::nullopt;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p)
    if (*p == '/') base = p + 1;
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  const std::string line = stream_.str();
  // One mutex-ordered fwrite per line: concurrent server workers may
  // race to log, but no line ever interleaves with another mid-text
  // (operator<< on std::cerr flushes per insertion and could).
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
  (void)level_;
}

}  // namespace internal
}  // namespace db
