// Integer and scalar math helpers used throughout the generator, compiler
// and simulator.
#pragma once

#include <cmath>
#include <cstdint>
#include <numeric>

#include "common/error.h"

namespace db {

/// ceil(a / b).  Requires a >= 0 and b > 0 (the documented contract; a
/// negative numerator or zero divisor would silently produce a floored
/// quotient or UB).  Computed as quotient-plus-remainder-carry so the
/// result is exact for every representable input — the textbook
/// (a + b - 1) / b form overflows for a near INT64_MAX, which the DSE
/// sweeps reach when they probe degenerate datapath widths.
constexpr std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  DB_CHECK_MSG(a >= 0, "CeilDiv requires a non-negative numerator");
  DB_CHECK_MSG(b > 0, "CeilDiv requires a positive divisor");
  return a / b + (a % b != 0 ? 1 : 0);
}

/// Saturating product of two non-negative values: the exact product when
/// it is representable, INT64_MAX otherwise.  Resource-model cost
/// arithmetic uses this so an absurd candidate configuration tallies as
/// "infinitely expensive" (and is pruned against any finite budget)
/// instead of wrapping into a plausible-looking small number.
constexpr std::int64_t SatMul(std::int64_t a, std::int64_t b) {
  DB_CHECK_MSG(a >= 0 && b >= 0, "SatMul requires non-negative factors");
  if (a == 0 || b == 0) return 0;
  if (a > INT64_MAX / b) return INT64_MAX;
  return a * b;
}

/// Saturating sum of two non-negative values (INT64_MAX on overflow).
constexpr std::int64_t SatAdd(std::int64_t a, std::int64_t b) {
  DB_CHECK_MSG(a >= 0 && b >= 0, "SatAdd requires non-negative terms");
  if (a > INT64_MAX - b) return INT64_MAX;
  return a + b;
}

/// Smallest multiple of `align` that is >= value, saturating to
/// INT64_MAX when no such multiple is representable.  Requires
/// value >= 0 and align > 0.  The saturated value is deliberately NOT a
/// multiple of `align`: it only ever feeds budget comparisons, where
/// INT64_MAX fails any realistic capacity check.
constexpr std::int64_t RoundUp(std::int64_t value, std::int64_t align) {
  return SatMul(CeilDiv(value, align), align);
}

/// Largest power of two <= value (value must be >= 1).  The loop guard
/// divides instead of multiplying so the probe never overflows, even for
/// value == INT64_MAX (where the answer is 2^62).
inline std::int64_t FloorPow2(std::int64_t value) {
  DB_CHECK_MSG(value >= 1, "FloorPow2 requires value >= 1");
  std::int64_t p = 1;
  while (p <= value / 2) p *= 2;
  return p;
}

/// True if value is a power of two.
constexpr bool IsPow2(std::int64_t value) {
  return value > 0 && (value & (value - 1)) == 0;
}

/// Greatest common divisor of three values (Method-1 tiling needs the
/// common divisor of kernel, port width and stride).
inline std::int64_t Gcd3(std::int64_t a, std::int64_t b, std::int64_t c) {
  return std::gcd(std::gcd(a, b), c);
}

/// Scalar activation functions used by both the float reference executor
/// and the Approx LUT content generator.
inline double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
inline double TanhFn(double x) { return std::tanh(x); }
inline double Relu(double x) { return x > 0.0 ? x : 0.0; }

/// Number of output positions of a sliding window: size N, kernel k,
/// stride s, symmetric padding p.
constexpr std::int64_t ConvOutDim(std::int64_t n, std::int64_t k,
                                  std::int64_t s, std::int64_t p) {
  return (n + 2 * p - k) / s + 1;
}

}  // namespace db
