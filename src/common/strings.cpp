#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace db {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Join(const std::vector<std::string>& items,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0)
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string ToIdentifier(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_')
      out += c;
    else
      out += '_';
  }
  if (out.empty() ||
      std::isdigit(static_cast<unsigned char>(out.front())))
    out.insert(out.begin(), '_');
  return out;
}

}  // namespace db
