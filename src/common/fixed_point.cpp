#include "common/fixed_point.h"

#include <cmath>

#include "common/error.h"

namespace db {

FixedFormat::FixedFormat(int total_bits, int frac_bits)
    : total_bits_(total_bits), frac_bits_(frac_bits) {
  if (total_bits < 2 || total_bits > 32)
    DB_THROW("FixedFormat total_bits must be in [2,32], got " << total_bits);
  if (frac_bits < 0 || frac_bits >= total_bits)
    DB_THROW("FixedFormat frac_bits must be in [0,total_bits), got "
             << frac_bits);
  raw_max_ = (std::int64_t{1} << (total_bits - 1)) - 1;
  raw_min_ = -(std::int64_t{1} << (total_bits - 1));
}

double FixedFormat::value_max() const { return Dequantize(raw_max_); }
double FixedFormat::value_min() const { return Dequantize(raw_min_); }

double FixedFormat::resolution() const {
  return std::ldexp(1.0, -frac_bits_);
}

std::int64_t FixedFormat::Quantize(double value) const {
  if (std::isnan(value)) return 0;
  const double scaled = std::ldexp(value, frac_bits_);
  // Round-half-away-from-zero, matching a hardware rounder.
  const double rounded = scaled >= 0 ? std::floor(scaled + 0.5)
                                     : std::ceil(scaled - 0.5);
  if (rounded >= static_cast<double>(raw_max_)) return raw_max_;
  if (rounded <= static_cast<double>(raw_min_)) return raw_min_;
  return static_cast<std::int64_t>(rounded);
}

double FixedFormat::Dequantize(std::int64_t raw) const {
  return std::ldexp(static_cast<double>(raw), -frac_bits_);
}

std::int64_t FixedFormat::Saturate(std::int64_t raw) const {
  if (raw > raw_max_) return raw_max_;
  if (raw < raw_min_) return raw_min_;
  return raw;
}

std::int64_t FixedFormat::Add(std::int64_t a, std::int64_t b) const {
  return Saturate(a + b);
}

std::int64_t FixedFormat::Mul(std::int64_t a, std::int64_t b) const {
  // Product carries 2*frac_bits fractional bits; renormalise with
  // round-half-away-from-zero on the discarded bits, matching Quantize
  // (a bare `+ half; >> frac` would round negative ties toward +inf —
  // subtracting the sign bit repairs exactly the tie case).
  __int128 prod = static_cast<__int128>(a) * static_cast<__int128>(b);
  if (frac_bits_ > 0) {
    prod += (static_cast<__int128>(1) << (frac_bits_ - 1)) -
            (prod < 0 ? 1 : 0);
    prod >>= frac_bits_;
  }
  if (prod > raw_max_) return raw_max_;
  if (prod < raw_min_) return raw_min_;
  return static_cast<std::int64_t>(prod);
}

std::string FixedFormat::ToString() const {
  return "Q" + std::to_string(int_bits()) + "." + std::to_string(frac_bits_);
}

std::vector<std::int64_t> QuantizeVector(const FixedFormat& fmt,
                                         const std::vector<float>& values) {
  std::vector<std::int64_t> raw;
  raw.reserve(values.size());
  for (float v : values) raw.push_back(fmt.Quantize(v));
  return raw;
}

std::vector<float> DequantizeVector(const FixedFormat& fmt,
                                    const std::vector<std::int64_t>& raw) {
  std::vector<float> out;
  out.reserve(raw.size());
  for (std::int64_t r : raw)
    out.push_back(static_cast<float>(fmt.Dequantize(r)));
  return out;
}

double QuantizationRmse(const FixedFormat& fmt,
                        const std::vector<float>& values) {
  if (values.empty()) return 0.0;
  double sum_sq = 0.0;
  for (float v : values) {
    const double err = fmt.RoundTrip(v) - v;
    sum_sq += err * err;
  }
  return std::sqrt(sum_sq / static_cast<double>(values.size()));
}

}  // namespace db
