// Runtime-parameterised Q-format fixed-point arithmetic.
//
// The DeepBurning datapath operates on fixed-point values whose total and
// fractional bit widths are chosen by NN-Gen per design (the paper leaves
// input bit-width as a reconfigurable component parameter).  Because the
// width is a *generator* decision, the format is a runtime object rather
// than a template parameter; raw values travel as int64_t.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace db {

/// A signed Q(total_bits - frac_bits - 1).frac_bits fixed-point format.
/// total_bits includes the sign bit.  Valid range: 2..32 total bits,
/// 0..total_bits-1 fractional bits.
class FixedFormat {
 public:
  FixedFormat(int total_bits, int frac_bits);

  int total_bits() const { return total_bits_; }
  int frac_bits() const { return frac_bits_; }
  int int_bits() const { return total_bits_ - frac_bits_ - 1; }

  /// Largest / smallest representable raw value.
  std::int64_t raw_max() const { return raw_max_; }
  std::int64_t raw_min() const { return raw_min_; }

  /// Real-valued range and resolution.
  double value_max() const;
  double value_min() const;
  double resolution() const;  // value of one LSB

  /// Convert a real number to the nearest representable raw value,
  /// saturating at the format bounds (the hardware saturates, not wraps).
  std::int64_t Quantize(double value) const;

  /// Convert a raw value back to a real number.
  double Dequantize(std::int64_t raw) const;

  /// Round-trip a real number through the format (quantisation error model).
  double RoundTrip(double value) const { return Dequantize(Quantize(value)); }

  /// Saturating add of two raw values in this format.
  std::int64_t Add(std::int64_t a, std::int64_t b) const;

  /// Saturating multiply: product of two raw values, renormalised back to
  /// this format (arithmetic right shift by frac_bits with rounding).
  std::int64_t Mul(std::int64_t a, std::int64_t b) const;

  /// Clamp an arbitrary raw value into the representable range.
  std::int64_t Saturate(std::int64_t raw) const;

  /// "Q3.12"-style human-readable name.
  std::string ToString() const;

  bool operator==(const FixedFormat& other) const = default;

 private:
  int total_bits_;
  int frac_bits_;
  std::int64_t raw_max_;
  std::int64_t raw_min_;
};

/// Quantise a whole float vector into raw values.
std::vector<std::int64_t> QuantizeVector(const FixedFormat& fmt,
                                         const std::vector<float>& values);

/// Dequantise a whole raw vector into floats.
std::vector<float> DequantizeVector(const FixedFormat& fmt,
                                    const std::vector<std::int64_t>& raw);

/// Root-mean-square quantisation error of representing `values` in `fmt`.
double QuantizationRmse(const FixedFormat& fmt,
                        const std::vector<float>& values);

}  // namespace db
