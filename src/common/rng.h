// Deterministic random number generation.
//
// Every stochastic step in the library (weight init, synthetic datasets,
// drop-out masks) draws from an explicitly-seeded Rng so that experiments
// reproduce bit-identically across runs and hosts.
#pragma once

#include <cmath>
#include <cstdint>

namespace db {

/// SplitMix64-seeded xoshiro256** generator with convenience distributions.
/// Not cryptographic; chosen for speed and cross-platform determinism.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit draw (xoshiro256**).
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n) { return Next() % n; }

  /// Standard normal via Box-Muller (one draw per call; spare discarded
  /// for simplicity — this is init/dataset code, not a hot loop).
  double Gaussian() {
    double u1 = Uniform();
    double u2 = Uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p) { return Uniform() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace db
