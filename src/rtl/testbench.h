// Verilog testbench emission for the generated accelerator top module.
//
// Vivado users simulate the generated RTL before synthesis (the paper:
// "The RTL-level simulation of forward-propagation is conducted with
// Vivado to verify the timing and function of the generated
// accelerators").  This emitter writes the matching self-checking
// testbench skeleton: clock/reset generation, a `go` pulse, a bounded
// wait for `done`, and a $display of the AXI read-address trace so the
// waveform can be diffed against the compiler's AGU program.
#pragma once

#include <string>

#include "rtl/verilog.h"

namespace db {

struct TestbenchOptions {
  std::int64_t clock_period_ns = 10;  // 100 MHz
  std::int64_t max_cycles = 1 << 20;  // watchdog before $fatal
  bool trace_axi = true;              // $display the AXI address stream
};

/// Emit testbench Verilog text for the design's top module.  Throws
/// db::Error if the design has no top.  The testbench module is named
/// "tb_<top>".
std::string EmitTestbench(const VDesign& design,
                          const TestbenchOptions& options = {});

}  // namespace db
