// Elaborated-netlist view of a VDesign.
//
// Elaborate() flattens the module hierarchy from the top module down
// through every instance binding into one per-design graph: each net,
// port and child-instance port becomes a node addressed by a flattened
// slash path ("net" in the top module, "instance/net" one level down,
// "a/b/net" for nested instances).  Every node records its drivers and
// loads with the exact bit ranges touched (slice-aware), plus the
// directed combinational edge set (continuous assigns, always @*
// blocks, and instance bindings — clocked blocks contribute no comb
// edge).  The rtl.* analysis passes (analysis/rtl_verifier.h) run on
// this graph instead of re-parsing emitted text.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "rtl/verilog.h"

namespace db {

/// A closed bit range [lo, hi] of a net.
struct BitRange {
  int lo = 0;
  int hi = 0;
};

/// One driving entity of a net.  A whole always block counts as a single
/// driver no matter how many branches write the net; two *distinct*
/// drivers with overlapping ranges are a multiple-drive conflict.
struct NetDriver {
  enum class Kind {
    kPrimaryInput,    // top-level input port (driven by the outside world)
    kAssign,          // continuous assign
    kAlways,          // procedural block (see `clocked`)
    kInstanceOutput,  // output port of a child instance
    kBinding,         // parent binding driving a child input port
  };
  Kind kind = Kind::kAssign;
  bool clocked = false;  // kAlways: posedge block vs @*
  std::string where;     // deterministic label for diagnostics
  std::vector<BitRange> ranges;
};

/// One flattened net (module net, module port, or child-instance port).
struct NetInfo {
  std::string path;    // flattened slash path, e.g. "agu_main/x_cnt"
  std::string module;  // defining module name
  int width = 1;
  bool is_reg = false;
  bool is_memory = false;       // declared with depth > 0 (exempt from
                                // drive analysis: externally initialised)
  bool is_port = false;         // port of its defining module
  bool is_primary_input = false;   // top-module input
  bool is_primary_output = false;  // top-module output
  std::vector<NetDriver> drivers;
  std::vector<BitRange> loads;
};

/// A structural problem found while flattening (reference to an
/// undeclared net, instance of an undefined module, instantiation
/// cycle).  The rtl.drive pass surfaces these as errors.
struct ElabIssue {
  std::string location;
  std::string message;
};

/// The elaborated design graph.
struct Netlist {
  std::vector<NetInfo> nets;  // deterministic traversal order
  /// Directed combinational dependencies, as (src, dst) indices into
  /// `nets`: dst's value combinationally depends on src.
  std::vector<std::pair<int, int>> comb_edges;
  std::vector<ElabIssue> issues;

  /// Index of a net by flattened path; -1 if absent.
  int Find(const std::string& path) const;
};

/// Flatten `design` from its top module.  Never throws: structural
/// problems become ElabIssues and the affected references are skipped.
Netlist Elaborate(const VDesign& design);

/// Bottom-up width of `expr` against the names declared in `module`,
/// following Verilog-2001 self-determined width rules (binary arithmetic
/// and bitwise take the max operand width, shifts take the left operand,
/// comparisons and reductions are one bit, concats sum their parts).
/// Returns 0 when the width is flexible or unknowable (unsized literals,
/// parameters, undeclared names) — callers skip checks there.
int InferWidth(const VModule& module, const VExpr& expr);

}  // namespace db
