#include "rtl/netlist.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/error.h"

namespace db {
namespace {

/// One (net name, bit range) reference inside an expression.
struct NetRef {
  std::string name;
  BitRange range;
  bool whole = false;  // range not narrowed by a slice/select
};

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

/// Declared width of `name` in `module` (memory nets report their
/// element width); 0 when the name is not a declared net or port.
int DeclaredWidth(const VModule& module, const std::string& name) {
  if (const VNet* n = module.FindNet(name)) return n->width;
  if (const VPort* p = module.FindPort(name))
    return ResolvedPortWidth(module, *p);
  return 0;
}

bool IsMemory(const VModule& module, const std::string& name) {
  const VNet* n = module.FindNet(name);
  return n != nullptr && n->depth > 0;
}

/// Clamps a [lo, hi] request against a declared width for bookkeeping;
/// the rtl.width pass reports out-of-range selects exactly.
BitRange Clamp(int lo, int hi, int width) {
  BitRange r;
  r.lo = std::max(0, std::min(lo, width - 1));
  r.hi = std::max(r.lo, std::min(hi, width - 1));
  return r;
}

/// Collects every net reference read by `expr` with the narrowest
/// statically-known bit range.
void CollectReads(const VModule& module, const VExpr& expr,
                  std::vector<NetRef>& out) {
  switch (expr.kind) {
    case VExprKind::kId: {
      const int w = DeclaredWidth(module, expr.text);
      if (w == 0) {
        // Parameters read as constants, not nets; genuinely undeclared
        // names are reported by the elaborator at the statement level.
        if (module.FindParam(expr.text) == nullptr)
          out.push_back({expr.text, {0, 0}, true});
        return;
      }
      out.push_back({expr.text, Clamp(0, w - 1, w), true});
      return;
    }
    case VExprKind::kSlice:
      if (expr.args[0].kind == VExprKind::kId) {
        const std::string& base = expr.args[0].text;
        const int w = DeclaredWidth(module, base);
        if (w > 0) {
          out.push_back({base, Clamp(expr.lsb, expr.msb, w), false});
          return;
        }
      }
      CollectReads(module, expr.args[0], out);
      return;
    case VExprKind::kIndex:
      if (expr.args[0].kind == VExprKind::kId) {
        const std::string& base = expr.args[0].text;
        const int w = DeclaredWidth(module, base);
        if (w > 0) {
          if (IsMemory(module, base) ||
              expr.args[1].kind != VExprKind::kLit) {
            out.push_back({base, Clamp(0, w - 1, w), true});
          } else {
            const int bit = static_cast<int>(expr.args[1].value);
            out.push_back({base, Clamp(bit, bit, w), false});
          }
          CollectReads(module, expr.args[1], out);
          return;
        }
      }
      CollectReads(module, expr.args[0], out);
      CollectReads(module, expr.args[1], out);
      return;
    default:
      for (const VExpr& arg : expr.args) CollectReads(module, arg, out);
      return;
  }
}

/// The written (name, range) of a procedural or continuous lvalue;
/// returns false when the lvalue has no identifier base.
bool LvalueRange(const VModule& module, const VExpr& lhs, NetRef& out) {
  const std::string base = LvalueBase(lhs);
  if (base.empty()) return false;
  const int w = std::max(1, DeclaredWidth(module, base));
  out.name = base;
  switch (lhs.kind) {
    case VExprKind::kSlice:
      out.range = Clamp(lhs.lsb, lhs.msb, w);
      out.whole = false;
      return true;
    case VExprKind::kIndex:
      // Memory-element writes touch one word; bit-selects one bit.  Both
      // are treated as whole-net for driver bookkeeping only when the
      // index is dynamic.
      if (lhs.args[1].kind == VExprKind::kLit &&
          !IsMemory(module, LvalueBase(lhs))) {
        const int bit = static_cast<int>(lhs.args[1].value);
        out.range = Clamp(bit, bit, w);
        out.whole = false;
        return true;
      }
      out.range = Clamp(0, w - 1, w);
      out.whole = true;
      return true;
    case VExprKind::kPart:
      out.range = Clamp(0, w - 1, w);
      out.whole = false;
      return true;
    default:
      out.range = Clamp(0, w - 1, w);
      out.whole = true;
      return true;
  }
}

/// Effective width of an instance's formal port, honouring a literal
/// parameter override of the port's width parameter.
int BoundPortWidth(const VModule& target, const VInstance& inst,
                   const VPort& formal) {
  if (formal.width_param.empty()) return formal.width;
  for (const VBinding& b : inst.params)
    if (b.formal == formal.width_param &&
        b.actual.kind == VExprKind::kLit)
      return static_cast<int>(b.actual.value);
  return ResolvedPortWidth(target, formal);
}

class Elaborator {
 public:
  explicit Elaborator(const VDesign& design) : design_(design) {}

  Netlist Run() {
    const VModule* top = design_.FindModule(design_.top);
    if (top == nullptr) {
      out_.issues.push_back(
          {"<design>", "top module '" + design_.top + "' is not defined"});
      return std::move(out_);
    }
    ElabModule(*top, "", /*is_top=*/true);
    return std::move(out_);
  }

 private:
  int AddNet(NetInfo info) {
    const int idx = static_cast<int>(out_.nets.size());
    index_[info.path] = idx;
    out_.nets.push_back(std::move(info));
    return idx;
  }

  int Lookup(const std::string& prefix, const std::string& name) const {
    const auto it = index_.find(prefix + name);
    return it == index_.end() ? -1 : it->second;
  }

  void AddLoad(const std::string& prefix, const VModule& m,
               const NetRef& ref, const std::string& where) {
    const int idx = Lookup(prefix, ref.name);
    if (idx < 0) {
      out_.issues.push_back(
          {where, "reference to undeclared net '" + ref.name + "'"});
      return;
    }
    out_.nets[idx].loads.push_back(ref.range);
    (void)m;
  }

  void AddDriver(const std::string& prefix, const NetRef& ref,
                 NetDriver driver, const std::string& where) {
    const int idx = Lookup(prefix, ref.name);
    if (idx < 0) {
      out_.issues.push_back(
          {where, "assignment to undeclared net '" + ref.name + "'"});
      return;
    }
    driver.ranges.push_back(ref.range);
    out_.nets[idx].drivers.push_back(std::move(driver));
  }

  void AddCombEdges(const std::string& prefix,
                    const std::vector<NetRef>& reads,
                    const std::vector<NetRef>& writes) {
    for (const NetRef& w : writes) {
      const int dst = Lookup(prefix, w.name);
      if (dst < 0) continue;
      for (const NetRef& r : reads) {
        const int src = Lookup(prefix, r.name);
        if (src >= 0) out_.comb_edges.push_back({src, dst});
      }
    }
  }

  /// Walks a statement tree: every assignment lvalue joins `writes`,
  /// every rhs and condition read joins `reads`.
  void WalkStmt(const VModule& m, const VStmt& stmt,
                std::vector<NetRef>& reads, std::vector<NetRef>& writes) {
    if (stmt.kind == VStmtKind::kAssign) {
      CollectReads(m, stmt.rhs, reads);
      // A write through a dynamic index also reads the index nets.
      if (stmt.lhs.kind == VExprKind::kIndex)
        CollectReads(m, stmt.lhs.args[1], reads);
      NetRef w;
      if (LvalueRange(m, stmt.lhs, w)) writes.push_back(w);
      return;
    }
    if (stmt.kind == VStmtKind::kIf) CollectReads(m, stmt.cond, reads);
    for (const VStmt& s : stmt.then_stmts) WalkStmt(m, s, reads, writes);
    for (const VStmt& s : stmt.else_stmts) WalkStmt(m, s, reads, writes);
  }

  void ElabModule(const VModule& m, const std::string& prefix,
                  bool is_top) {
    if (std::find(stack_.begin(), stack_.end(), m.name) != stack_.end()) {
      out_.issues.push_back(
          {prefix.empty() ? m.name : prefix,
           "instantiation cycle through module '" + m.name + "'"});
      return;
    }
    stack_.push_back(m.name);

    // Declare every port and net as a node.  Child-instance ports are
    // declared by the recursive call; the binding edges below connect
    // them to this module's nets.
    for (const VPort& p : m.ports) {
      NetInfo info;
      info.path = prefix + p.name;
      info.module = m.name;
      info.width = ResolvedPortWidth(m, p);
      info.is_reg = p.is_reg;
      info.is_port = true;
      info.is_primary_input = is_top && p.dir == PortDir::kInput;
      info.is_primary_output = is_top && p.dir == PortDir::kOutput;
      const int idx = AddNet(std::move(info));
      if (is_top && p.dir == PortDir::kInput) {
        NetDriver d;
        d.kind = NetDriver::Kind::kPrimaryInput;
        d.where = "primary input";
        d.ranges.push_back(Clamp(0, out_.nets[idx].width - 1,
                                 out_.nets[idx].width));
        out_.nets[idx].drivers.push_back(std::move(d));
      }
      if (is_top && p.dir == PortDir::kOutput)
        out_.nets[idx].loads.push_back(
            Clamp(0, out_.nets[idx].width - 1, out_.nets[idx].width));
    }
    for (const VNet& n : m.nets) {
      NetInfo info;
      info.path = prefix + n.name;
      info.module = m.name;
      info.width = n.width;
      info.is_reg = n.is_reg;
      info.is_memory = n.depth > 0;
      AddNet(std::move(info));
    }

    // Continuous assigns.
    for (std::size_t i = 0; i < m.assigns.size(); ++i) {
      const VAssign& a = m.assigns[i];
      const std::string where =
          prefix + m.name + "/assign[" + std::to_string(i) + "]";
      std::vector<NetRef> reads;
      CollectReads(m, a.rhs, reads);
      for (const NetRef& r : reads) AddLoad(prefix, m, r, where);
      NetRef w;
      if (LvalueRange(m, a.lhs, w)) {
        NetDriver d;
        d.kind = NetDriver::Kind::kAssign;
        d.where = where;
        AddDriver(prefix, w, std::move(d), where);
        AddCombEdges(prefix, reads, {w});
      }
    }

    // Always blocks: one driver entity per block per written net.
    for (std::size_t j = 0; j < m.always_blocks.size(); ++j) {
      const VAlways& blk = m.always_blocks[j];
      const std::string where =
          prefix + m.name + "/always[" + std::to_string(j) + "]";
      const bool clocked = StartsWith(blk.sensitivity, "posedge ");
      if (clocked) {
        const std::string clock = blk.sensitivity.substr(8);
        NetRef r{clock, {0, 0}, false};
        AddLoad(prefix, m, r, where);
      }
      std::vector<NetRef> reads;
      std::vector<NetRef> writes;
      for (const VStmt& s : blk.body) WalkStmt(m, s, reads, writes);
      for (const NetRef& r : reads) AddLoad(prefix, m, r, where);

      std::map<std::string, NetDriver> per_net;
      for (const NetRef& w : writes) {
        NetDriver& d = per_net[w.name];
        if (d.ranges.empty()) {
          d.kind = NetDriver::Kind::kAlways;
          d.clocked = clocked;
          d.where = where;
        }
        d.ranges.push_back(w.range);
      }
      for (auto& [name, driver] : per_net) {
        const int idx = Lookup(prefix, name);
        if (idx < 0) {
          out_.issues.push_back(
              {where, "assignment to undeclared net '" + name + "'"});
          continue;
        }
        out_.nets[idx].drivers.push_back(std::move(driver));
      }
      if (!clocked) AddCombEdges(prefix, reads, writes);
    }

    // Instances: declare the child, then connect bindings.
    for (const VInstance& inst : m.instances) {
      const VModule* def = design_.FindModule(inst.module_name);
      const std::string where = prefix + inst.instance_name;
      if (def == nullptr) {
        out_.issues.push_back(
            {where, "instance of undefined module '" + inst.module_name +
                        "'"});
        continue;
      }
      const std::string child_prefix = where + "/";
      ElabModule(*def, child_prefix, /*is_top=*/false);

      for (const VBinding& b : inst.ports) {
        const VPort* formal = def->FindPort(b.formal);
        if (formal == nullptr) {
          out_.issues.push_back(
              {where, "binding of unknown port '" + b.formal + "'"});
          continue;
        }
        const int child = Lookup(child_prefix, formal->name);
        if (child < 0) continue;
        const int child_width = BoundPortWidth(*def, inst, *formal);
        std::vector<NetRef> parent_refs;
        CollectReads(m, b.actual, parent_refs);
        if (formal->dir == PortDir::kInput) {
          NetDriver d;
          d.kind = NetDriver::Kind::kBinding;
          d.where = where + "." + formal->name;
          d.ranges.push_back(Clamp(0, child_width - 1, child_width));
          out_.nets[child].drivers.push_back(std::move(d));
          for (const NetRef& r : parent_refs) {
            AddLoad(prefix, m, r, d.where);
            const int src = Lookup(prefix, r.name);
            if (src >= 0) out_.comb_edges.push_back({src, child});
          }
        } else {
          out_.nets[child].loads.push_back(
              Clamp(0, child_width - 1, child_width));
          NetRef w;
          if (LvalueRange(m, b.actual, w)) {
            NetDriver d;
            d.kind = NetDriver::Kind::kInstanceOutput;
            d.where = where + "." + formal->name;
            AddDriver(prefix, w, std::move(d), d.where);
            const int dst = Lookup(prefix, w.name);
            if (dst >= 0) out_.comb_edges.push_back({child, dst});
          }
        }
      }
    }

    stack_.pop_back();
  }

  const VDesign& design_;
  Netlist out_;
  std::map<std::string, int> index_;
  std::vector<std::string> stack_;
};

bool IsComparisonOrLogical(const std::string& op) {
  static const std::set<std::string> kOps = {"==", "!=", "<",  ">",
                                             "<=", ">=", "&&", "||"};
  return kOps.count(op) > 0;
}

bool IsShift(const std::string& op) {
  return op == "<<" || op == ">>" || op == ">>>";
}

}  // namespace

int Netlist::Find(const std::string& path) const {
  for (std::size_t i = 0; i < nets.size(); ++i)
    if (nets[i].path == path) return static_cast<int>(i);
  return -1;
}

Netlist Elaborate(const VDesign& design) {
  return Elaborator(design).Run();
}

int InferWidth(const VModule& module, const VExpr& expr) {
  switch (expr.kind) {
    case VExprKind::kId:
      return DeclaredWidth(module, expr.text);
    case VExprKind::kLit:
      return expr.width;
    case VExprKind::kSlice:
      return expr.msb >= expr.lsb ? expr.msb - expr.lsb + 1 : 0;
    case VExprKind::kIndex:
      if (expr.args[0].kind == VExprKind::kId &&
          IsMemory(module, expr.args[0].text))
        return DeclaredWidth(module, expr.args[0].text);
      return 1;
    case VExprKind::kPart:
      return expr.width;
    case VExprKind::kConcat: {
      int total = 0;
      for (const VExpr& arg : expr.args) {
        const int w = InferWidth(module, arg);
        if (w == 0) return 0;
        total += w;
      }
      return total;
    }
    case VExprKind::kRepeat: {
      const int w = InferWidth(module, expr.args[0]);
      return w == 0 ? 0 : static_cast<int>(expr.value) * w;
    }
    case VExprKind::kUnary:
      if (expr.text == "~" || expr.text == "-")
        return InferWidth(module, expr.args[0]);
      return 1;  // ! and the reduction operators produce one bit
    case VExprKind::kBinary: {
      if (IsComparisonOrLogical(expr.text)) return 1;
      if (IsShift(expr.text)) return InferWidth(module, expr.args[0]);
      const int wa = InferWidth(module, expr.args[0]);
      const int wb = InferWidth(module, expr.args[1]);
      if (wa == 0) return wb;
      if (wb == 0) return wa;
      return std::max(wa, wb);
    }
    case VExprKind::kTernary: {
      const int wa = InferWidth(module, expr.args[1]);
      const int wb = InferWidth(module, expr.args[2]);
      if (wa == 0) return wb;
      if (wb == 0) return wa;
      return std::max(wa, wb);
    }
    case VExprKind::kParen:
    case VExprKind::kSigned:
      return InferWidth(module, expr.args[0]);
  }
  DB_THROW("unhandled expression kind");
}

}  // namespace db
