#include "rtl/verilog.h"

#include <sstream>
#include <utility>

#include "common/error.h"

namespace db {
namespace {

std::string Range(int width) {
  if (width <= 1) return "";
  std::ostringstream os;
  os << "[" << width - 1 << ":0] ";
  return os.str();
}

std::string PortRange(const VPort& port) {
  if (!port.width_param.empty()) return "[" + port.width_param + "-1:0] ";
  return Range(port.width);
}

std::string LitDigits(std::int64_t value, char base) {
  DB_CHECK_MSG(value >= 0, "negative literal value");
  std::ostringstream os;
  switch (base) {
    case 'd':
      os << value;
      break;
    case 'h': {
      os << std::uppercase << std::hex << value;
      break;
    }
    case 'b': {
      std::string bits;
      std::uint64_t v = static_cast<std::uint64_t>(value);
      do {
        bits.insert(bits.begin(), static_cast<char>('0' + (v & 1)));
        v >>= 1;
      } while (v != 0);
      os << bits;
      break;
    }
    default:
      DB_THROW("unknown literal base");
  }
  return os.str();
}

/// One-line text of a kAssign or kSeq statement (no indentation).
std::string AssignText(const VStmt& stmt) {
  if (stmt.kind == VStmtKind::kSeq) {
    std::string line;
    for (const VStmt& child : stmt.then_stmts) {
      if (!line.empty()) line += " ";
      line += AssignText(child);
    }
    return line;
  }
  DB_CHECK_MSG(stmt.kind == VStmtKind::kAssign,
               "expected an assignment statement");
  return RenderExpr(stmt.lhs) + (stmt.non_blocking ? " <= " : " = ") +
         RenderExpr(stmt.rhs) + ";";
}

std::string Ind(int depth) { return std::string(2 * depth, ' '); }

void RenderStmtInto(const VStmt& stmt, int depth, const std::string& lead,
                    std::vector<std::string>& out) {
  if (stmt.kind != VStmtKind::kIf) {
    out.push_back(Ind(depth) + lead + AssignText(stmt));
    return;
  }

  const std::string header =
      Ind(depth) + lead + "if (" + RenderExpr(stmt.cond) + ")";
  switch (stmt.then_style) {
    case VBranchStyle::kInline:
      DB_CHECK_MSG(stmt.then_stmts.size() == 1, "inline branch needs one stmt");
      out.push_back(header + " " + AssignText(stmt.then_stmts[0]));
      break;
    case VBranchStyle::kBlock:
      out.push_back(header + " begin");
      for (const VStmt& child : stmt.then_stmts)
        RenderStmtInto(child, depth + 1, "", out);
      break;
    case VBranchStyle::kBlockOwnLine:
      out.push_back(header);
      out.push_back(Ind(depth) + "begin");
      for (const VStmt& child : stmt.then_stmts)
        RenderStmtInto(child, depth + 1, "", out);
      out.push_back(Ind(depth) + "end");
      break;
  }

  // After a "begin" then-branch the else keyword shares the closing "end"
  // line; inline and own-line branches are already closed.
  const std::string chain =
      stmt.then_style == VBranchStyle::kBlock ? "end else " : "else ";
  if (stmt.else_stmts.empty()) {
    if (stmt.then_style == VBranchStyle::kBlock)
      out.push_back(Ind(depth) + "end");
    return;
  }
  if (stmt.else_stmts.size() == 1 &&
      stmt.else_stmts[0].kind == VStmtKind::kIf) {
    RenderStmtInto(stmt.else_stmts[0], depth, chain, out);
    return;
  }
  if (stmt.else_style == VBranchStyle::kInline) {
    DB_CHECK_MSG(stmt.else_stmts.size() == 1, "inline branch needs one stmt");
    out.push_back(Ind(depth) + chain + AssignText(stmt.else_stmts[0]));
    return;
  }
  out.push_back(Ind(depth) + chain + "begin");
  for (const VStmt& child : stmt.else_stmts)
    RenderStmtInto(child, depth + 1, "", out);
  out.push_back(Ind(depth) + "end");
}

}  // namespace

// ---------------------------------------------------------------------
// Expression factories
// ---------------------------------------------------------------------

VExpr VId(std::string name) {
  VExpr e;
  e.kind = VExprKind::kId;
  e.text = std::move(name);
  return e;
}

VExpr VLit(std::int64_t value) {
  VExpr e;
  e.kind = VExprKind::kLit;
  e.value = value;
  e.width = 0;
  return e;
}

VExpr VLit(int width, std::int64_t value, char base) {
  DB_CHECK_MSG(width > 0, "sized literal needs positive width");
  VExpr e;
  e.kind = VExprKind::kLit;
  e.value = value;
  e.width = width;
  e.base = base;
  return e;
}

VExpr VSlice(VExpr base, int msb, int lsb) {
  VExpr e;
  e.kind = VExprKind::kSlice;
  e.msb = msb;
  e.lsb = lsb;
  e.args.push_back(std::move(base));
  return e;
}

VExpr VIndex(VExpr base, VExpr index) {
  VExpr e;
  e.kind = VExprKind::kIndex;
  e.args.push_back(std::move(base));
  e.args.push_back(std::move(index));
  return e;
}

VExpr VPart(VExpr base, VExpr offset, int width) {
  VExpr e;
  e.kind = VExprKind::kPart;
  e.width = width;
  e.args.push_back(std::move(base));
  e.args.push_back(std::move(offset));
  return e;
}

VExpr VConcat(std::vector<VExpr> parts) {
  VExpr e;
  e.kind = VExprKind::kConcat;
  e.args = std::move(parts);
  return e;
}

VExpr VRepeat(std::int64_t count, VExpr arg) {
  VExpr e;
  e.kind = VExprKind::kRepeat;
  e.value = count;
  e.args.push_back(std::move(arg));
  return e;
}

VExpr VUnary(std::string op, VExpr arg) {
  VExpr e;
  e.kind = VExprKind::kUnary;
  e.text = std::move(op);
  e.args.push_back(std::move(arg));
  return e;
}

VExpr VBin(VExpr lhs, std::string op, VExpr rhs) {
  VExpr e;
  e.kind = VExprKind::kBinary;
  e.text = std::move(op);
  e.args.push_back(std::move(lhs));
  e.args.push_back(std::move(rhs));
  return e;
}

VExpr VBinCompact(VExpr lhs, std::string op, VExpr rhs) {
  VExpr e = VBin(std::move(lhs), std::move(op), std::move(rhs));
  e.compact = true;
  return e;
}

VExpr VTernary(VExpr cond, VExpr then_expr, VExpr else_expr) {
  VExpr e;
  e.kind = VExprKind::kTernary;
  e.args.push_back(std::move(cond));
  e.args.push_back(std::move(then_expr));
  e.args.push_back(std::move(else_expr));
  return e;
}

VExpr VParen(VExpr arg) {
  VExpr e;
  e.kind = VExprKind::kParen;
  e.args.push_back(std::move(arg));
  return e;
}

VExpr VSigned(VExpr arg) {
  VExpr e;
  e.kind = VExprKind::kSigned;
  e.args.push_back(std::move(arg));
  return e;
}

std::string RenderExpr(const VExpr& expr) {
  switch (expr.kind) {
    case VExprKind::kId:
      return expr.text;
    case VExprKind::kLit:
      if (expr.width == 0) return LitDigits(expr.value, 'd');
      return std::to_string(expr.width) + "'" + expr.base +
             LitDigits(expr.value, expr.base);
    case VExprKind::kSlice:
      return RenderExpr(expr.args[0]) + "[" + std::to_string(expr.msb) +
             ":" + std::to_string(expr.lsb) + "]";
    case VExprKind::kIndex:
      return RenderExpr(expr.args[0]) + "[" + RenderExpr(expr.args[1]) +
             "]";
    case VExprKind::kPart:
      return RenderExpr(expr.args[0]) + "[" + RenderExpr(expr.args[1]) +
             " +: " + std::to_string(expr.width) + "]";
    case VExprKind::kConcat: {
      std::string out = "{";
      for (std::size_t i = 0; i < expr.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += RenderExpr(expr.args[i]);
      }
      return out + "}";
    }
    case VExprKind::kRepeat:
      return "{" + std::to_string(expr.value) + "{" +
             RenderExpr(expr.args[0]) + "}}";
    case VExprKind::kUnary:
      return expr.text + RenderExpr(expr.args[0]);
    case VExprKind::kBinary:
      if (expr.compact)
        return RenderExpr(expr.args[0]) + expr.text +
               RenderExpr(expr.args[1]);
      return RenderExpr(expr.args[0]) + " " + expr.text + " " +
             RenderExpr(expr.args[1]);
    case VExprKind::kTernary:
      return RenderExpr(expr.args[0]) + " ? " + RenderExpr(expr.args[1]) +
             " : " + RenderExpr(expr.args[2]);
    case VExprKind::kParen:
      return "(" + RenderExpr(expr.args[0]) + ")";
    case VExprKind::kSigned:
      return "$signed(" + RenderExpr(expr.args[0]) + ")";
  }
  DB_THROW("unhandled expression kind");
}

std::string LvalueBase(const VExpr& expr) {
  switch (expr.kind) {
    case VExprKind::kId:
      return expr.text;
    case VExprKind::kSlice:
    case VExprKind::kIndex:
    case VExprKind::kPart:
      return LvalueBase(expr.args[0]);
    default:
      return "";
  }
}

// ---------------------------------------------------------------------
// Statement factories
// ---------------------------------------------------------------------

VStmt VNonBlocking(VExpr lhs, VExpr rhs) {
  VStmt s;
  s.kind = VStmtKind::kAssign;
  s.lhs = std::move(lhs);
  s.rhs = std::move(rhs);
  s.non_blocking = true;
  return s;
}

VStmt VBlocking(VExpr lhs, VExpr rhs) {
  VStmt s = VNonBlocking(std::move(lhs), std::move(rhs));
  s.non_blocking = false;
  return s;
}

VStmt VIf(VExpr cond, std::vector<VStmt> then_stmts,
          std::vector<VStmt> else_stmts, VBranchStyle then_style,
          VBranchStyle else_style) {
  VStmt s;
  s.kind = VStmtKind::kIf;
  s.cond = std::move(cond);
  s.then_stmts = std::move(then_stmts);
  s.else_stmts = std::move(else_stmts);
  s.then_style = then_style;
  s.else_style = else_style;
  return s;
}

VStmt VSeq(std::vector<VStmt> stmts) {
  VStmt s;
  s.kind = VStmtKind::kSeq;
  s.then_stmts = std::move(stmts);
  return s;
}

std::vector<std::string> RenderStmts(const std::vector<VStmt>& stmts) {
  std::vector<std::string> out;
  for (const VStmt& s : stmts) RenderStmtInto(s, 0, "", out);
  return out;
}

// ---------------------------------------------------------------------
// Modules
// ---------------------------------------------------------------------

const VPort* VModule::FindPort(const std::string& port_name) const {
  for (const VPort& p : ports)
    if (p.name == port_name) return &p;
  return nullptr;
}

const VNet* VModule::FindNet(const std::string& net_name) const {
  for (const VNet& n : nets)
    if (n.name == net_name) return &n;
  return nullptr;
}

const VParam* VModule::FindParam(const std::string& param_name) const {
  for (const VParam& p : params)
    if (p.name == param_name) return &p;
  return nullptr;
}

int ResolvedPortWidth(const VModule& module, const VPort& port) {
  if (port.width_param.empty()) return port.width;
  const VParam* param = module.FindParam(port.width_param);
  return param == nullptr ? port.width
                          : static_cast<int>(param->value);
}

const VModule* VDesign::FindModule(const std::string& module_name) const {
  for (const VModule& m : modules)
    if (m.name == module_name) return &m;
  return nullptr;
}

std::string EmitVerilog(const VModule& module) {
  std::ostringstream os;
  if (!module.comment.empty()) {
    std::istringstream lines(module.comment);
    std::string line;
    while (std::getline(lines, line)) os << "// " << line << "\n";
  }
  os << "module " << module.name;
  if (!module.params.empty()) {
    os << " #(\n";
    for (std::size_t i = 0; i < module.params.size(); ++i) {
      os << "  parameter " << module.params[i].name << " = "
         << module.params[i].value;
      os << (i + 1 < module.params.size() ? ",\n" : "\n");
    }
    os << ")";
  }
  os << " (\n";
  for (std::size_t i = 0; i < module.ports.size(); ++i) {
    const VPort& p = module.ports[i];
    os << "  " << (p.dir == PortDir::kInput ? "input  " : "output ")
       << (p.is_reg ? "reg " : "wire ") << PortRange(p) << p.name;
    os << (i + 1 < module.ports.size() ? ",\n" : "\n");
  }
  os << ");\n";

  for (const VNet& n : module.nets) {
    os << "  " << (n.is_reg ? "reg " : "wire ") << Range(n.width) << n.name;
    if (n.depth > 0) os << " [0:" << n.depth - 1 << "]";
    os << ";\n";
  }
  if (!module.nets.empty()) os << "\n";

  for (const VAssign& a : module.assigns)
    os << "  assign " << RenderExpr(a.lhs) << " = " << RenderExpr(a.rhs)
       << ";\n";
  if (!module.assigns.empty()) os << "\n";

  for (const VInstance& inst : module.instances) {
    os << "  " << inst.module_name;
    if (!inst.params.empty()) {
      os << " #(";
      for (std::size_t i = 0; i < inst.params.size(); ++i) {
        os << "." << inst.params[i].formal << "("
           << RenderExpr(inst.params[i].actual) << ")";
        if (i + 1 < inst.params.size()) os << ", ";
      }
      os << ")";
    }
    os << " " << inst.instance_name << " (\n";
    for (std::size_t i = 0; i < inst.ports.size(); ++i) {
      os << "    ." << inst.ports[i].formal << "("
         << RenderExpr(inst.ports[i].actual) << ")";
      os << (i + 1 < inst.ports.size() ? ",\n" : "\n");
    }
    os << "  );\n";
  }
  if (!module.instances.empty()) os << "\n";

  for (const VAlways& a : module.always_blocks) {
    os << "  always @(" << a.sensitivity << ") begin\n";
    for (const std::string& line : RenderStmts(a.body))
      os << "    " << line << "\n";
    os << "  end\n\n";
  }

  os << "endmodule\n";
  return os.str();
}

std::string EmitVerilog(const VDesign& design) {
  DB_CHECK_MSG(!design.modules.empty(), "empty design");
  std::ostringstream os;
  os << "// ------------------------------------------------------------\n";
  os << "// Generated by DeepBurning NN-Gen. Top module: " << design.top
     << "\n";
  os << "// ------------------------------------------------------------\n\n";
  for (const VModule& m : design.modules) os << EmitVerilog(m) << "\n";
  return os.str();
}

}  // namespace db
