// Structural Verilog AST and pretty-printer.
//
// NN-Gen's output is synthesisable Verilog-2001; this AST covers exactly
// the constructs the block emitters need.  Expressions and statements
// are typed trees (VExpr / VStmt) rather than raw strings, so the lint
// pass (rtl/lint.h), the netlist elaborator (rtl/netlist.h) and the
// rtl.* analysis rules (analysis/rtl_verifier.h) check structure instead
// of re-parsing emitted text.  Rendering is byte-stable: the same tree
// always prints the same bytes, and the printer preserves the exact
// formatting idioms of the historical string emitters (inline vs block
// if-branches, compact multiplies inside part-selects) so golden RTL
// digests stay meaningful.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace db {

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

enum class VExprKind {
  kId,       // identifier
  kLit,      // literal, sized (16'hACE1) or unsized (0)
  kSlice,    // base[msb:lsb] with constant bounds
  kIndex,    // base[index] — bit-select or memory element select
  kPart,     // base[offset +: width] indexed part-select
  kConcat,   // {a, b, ...}
  kRepeat,   // {count{arg}}
  kUnary,    // op arg, e.g. !rst_n
  kBinary,   // lhs op rhs
  kTernary,  // cond ? then : else
  kParen,    // (arg) — explicit grouping; the printer adds no parens
  kSigned,   // $signed(arg)
};

/// One expression node.  Field use depends on `kind`; unused fields keep
/// their defaults (the serde layer round-trips every field).
struct VExpr {
  VExprKind kind = VExprKind::kId;
  std::string text;        // kId: identifier; kUnary/kBinary: operator
  std::int64_t value = 0;  // kLit: value; kRepeat: replication count
  int width = 0;           // kLit: sized width (0 = unsized); kPart: width
  char base = 'd';         // kLit: radix letter 'd' | 'b' | 'h'
  int msb = 0;             // kSlice
  int lsb = 0;             // kSlice
  bool compact = false;    // kBinary: no spaces around the operator
  std::vector<VExpr> args;
};

VExpr VId(std::string name);
VExpr VLit(std::int64_t value);  // unsized decimal literal
VExpr VLit(int width, std::int64_t value, char base = 'd');
VExpr VSlice(VExpr base, int msb, int lsb);
VExpr VIndex(VExpr base, VExpr index);
VExpr VPart(VExpr base, VExpr offset, int width);
VExpr VConcat(std::vector<VExpr> parts);
VExpr VRepeat(std::int64_t count, VExpr arg);
VExpr VUnary(std::string op, VExpr arg);
VExpr VBin(VExpr lhs, std::string op, VExpr rhs);
VExpr VBinCompact(VExpr lhs, std::string op, VExpr rhs);
VExpr VTernary(VExpr cond, VExpr then_expr, VExpr else_expr);
VExpr VParen(VExpr arg);
VExpr VSigned(VExpr arg);

/// Render an expression to Verilog text (deterministic, byte-stable).
std::string RenderExpr(const VExpr& expr);

/// Base identifier of an lvalue expression: kId, or kSlice/kIndex/kPart
/// over an identifier.  Empty string for anything else.
std::string LvalueBase(const VExpr& expr);

// ---------------------------------------------------------------------
// Statements (always-block bodies)
// ---------------------------------------------------------------------

enum class VStmtKind {
  kAssign,  // procedural assignment, blocking or non-blocking
  kIf,      // if / else-if chain
  kSeq,     // several assigns rendered on one line: "a <= 0; b <= 0;"
};

/// How an if/else branch is rendered (semantics are identical):
///   kInline       if (c) stmt;
///   kBlock        if (c) begin ... end
///   kBlockOwnLine if (c) \n begin \n ... \n end
enum class VBranchStyle { kInline, kBlock, kBlockOwnLine };

struct VStmt {
  VStmtKind kind = VStmtKind::kAssign;
  // kAssign
  VExpr lhs;
  VExpr rhs;
  bool non_blocking = true;
  // kIf; an else_stmts holding exactly one kIf renders as "else if".
  VExpr cond;
  std::vector<VStmt> then_stmts;  // also the children of a kSeq
  std::vector<VStmt> else_stmts;
  VBranchStyle then_style = VBranchStyle::kBlock;
  VBranchStyle else_style = VBranchStyle::kBlock;
};

VStmt VNonBlocking(VExpr lhs, VExpr rhs);
VStmt VBlocking(VExpr lhs, VExpr rhs);
VStmt VIf(VExpr cond, std::vector<VStmt> then_stmts,
          std::vector<VStmt> else_stmts = {},
          VBranchStyle then_style = VBranchStyle::kBlock,
          VBranchStyle else_style = VBranchStyle::kBlock);
VStmt VSeq(std::vector<VStmt> stmts);

/// Render a statement list as lines with two-space relative indentation
/// (no trailing newlines); the module printer adds the outer indent.
std::vector<std::string> RenderStmts(const std::vector<VStmt>& stmts);

// ---------------------------------------------------------------------
// Modules
// ---------------------------------------------------------------------

enum class PortDir { kInput, kOutput };

/// A module port; width is in bits (1 emits no range).  When
/// `width_param` names a module parameter, the declared range is the
/// symbolic `[<param>-1:0]` and the effective width is the parameter's
/// value (the default, or an instance's override) — `width` then holds
/// the default-value width for tools that need a number.
struct VPort {
  std::string name;
  PortDir dir = PortDir::kInput;
  int width = 1;
  bool is_reg = false;  // output declared as reg
  std::string width_param;

  VPort() = default;
  VPort(std::string name_in, PortDir dir_in, int width_in, bool is_reg_in,
        std::string width_param_in = {})
      : name(std::move(name_in)),
        dir(dir_in),
        width(width_in),
        is_reg(is_reg_in),
        width_param(std::move(width_param_in)) {}
};

/// A Verilog parameter with a default value.
struct VParam {
  std::string name;
  std::int64_t value = 0;
};

/// An internal net; `is_reg` selects reg vs wire; `depth` > 0 declares a
/// memory array (reg [w-1:0] name [0:depth-1]).
struct VNet {
  std::string name;
  int width = 1;
  bool is_reg = false;
  std::int64_t depth = 0;
};

/// A continuous assignment `assign lhs = rhs;`.
struct VAssign {
  VExpr lhs;
  VExpr rhs;
};

/// One port or parameter binding of an instance.
struct VBinding {
  std::string formal;
  VExpr actual;
};

/// A module instantiation.
struct VInstance {
  std::string module_name;
  std::string instance_name;
  std::vector<VBinding> params;
  std::vector<VBinding> ports;
};

/// A clocked or combinational always block with a typed statement body.
struct VAlways {
  std::string sensitivity;  // e.g. "posedge clk" or "*"
  std::vector<VStmt> body;
};

/// One Verilog module.
struct VModule {
  std::string name;
  std::string comment;  // emitted as a header comment
  std::vector<VParam> params;
  std::vector<VPort> ports;
  std::vector<VNet> nets;
  std::vector<VAssign> assigns;
  std::vector<VInstance> instances;
  std::vector<VAlways> always_blocks;

  /// Find a port / net / parameter by name (nullptr if absent).
  const VPort* FindPort(const std::string& name) const;
  const VNet* FindNet(const std::string& name) const;
  const VParam* FindParam(const std::string& name) const;
};

/// Effective width of a port within its defining module: the numeric
/// width, or the named width parameter's default value.
int ResolvedPortWidth(const VModule& module, const VPort& port);

/// A design: a set of modules, the last conventionally being the top.
struct VDesign {
  std::vector<VModule> modules;
  std::string top;

  const VModule* FindModule(const std::string& name) const;
};

/// Render a single module as Verilog text.
std::string EmitVerilog(const VModule& module);

/// Render a whole design (file header + every module).
std::string EmitVerilog(const VDesign& design);

}  // namespace db
