// Minimal structural Verilog AST and pretty-printer.
//
// NN-Gen's output is synthesisable Verilog-2001; this AST covers exactly
// the constructs the block emitters need (ports, parameters, wires/regs,
// continuous assigns, always blocks with raw statement bodies, and module
// instantiation).  The lint pass (rtl/lint.h) checks structural sanity in
// place of a synthesiser.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace db {

enum class PortDir { kInput, kOutput };

/// A module port; width is in bits (1 emits no range).
struct VPort {
  std::string name;
  PortDir dir = PortDir::kInput;
  int width = 1;
  bool is_reg = false;  // output declared as reg
};

/// A Verilog parameter with a default value.
struct VParam {
  std::string name;
  std::int64_t value = 0;
};

/// An internal net; `is_reg` selects reg vs wire; `depth` > 0 declares a
/// memory array (reg [w-1:0] name [0:depth-1]).
struct VNet {
  std::string name;
  int width = 1;
  bool is_reg = false;
  std::int64_t depth = 0;
};

/// A continuous assignment `assign lhs = rhs;` (rhs is an expression
/// string — the emitters build simple, well-formed expressions).
struct VAssign {
  std::string lhs;
  std::string rhs;
};

/// One port or parameter binding of an instance.
struct VBinding {
  std::string formal;
  std::string actual;
};

/// A module instantiation.
struct VInstance {
  std::string module_name;
  std::string instance_name;
  std::vector<VBinding> params;
  std::vector<VBinding> ports;
};

/// A clocked or combinational always block; `body` holds raw statements
/// (one per line, without trailing newlines) emitted with indentation.
struct VAlways {
  std::string sensitivity;  // e.g. "posedge clk" or "*"
  std::vector<std::string> body;
};

/// One Verilog module.
struct VModule {
  std::string name;
  std::string comment;  // emitted as a header comment
  std::vector<VParam> params;
  std::vector<VPort> ports;
  std::vector<VNet> nets;
  std::vector<VAssign> assigns;
  std::vector<VInstance> instances;
  std::vector<VAlways> always_blocks;

  /// Find a port by name (nullptr if absent).
  const VPort* FindPort(const std::string& name) const;
};

/// A design: a set of modules, the last conventionally being the top.
struct VDesign {
  std::vector<VModule> modules;
  std::string top;

  const VModule* FindModule(const std::string& name) const;
};

/// Render a single module as Verilog text.
std::string EmitVerilog(const VModule& module);

/// Render a whole design (file header + every module).
std::string EmitVerilog(const VDesign& design);

}  // namespace db
