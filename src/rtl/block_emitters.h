// RTL emitters for every building block in the component library.
//
// Each emitter turns a BlockConfig into a synthesisable Verilog module.
// The module names are deterministic functions of the configuration so a
// design that instantiates the same configuration twice shares one module
// definition.
#pragma once

#include "hwlib/blocks.h"
#include "rtl/verilog.h"

namespace db {

/// Deterministic module name for a configuration,
/// e.g. "db_synergy_neuron_w16_l32_dsp".
std::string BlockModuleName(const BlockConfig& config);

/// Emit the Verilog module realising `config`.
/// Throws db::Error on configurations the library cannot realise.
VModule EmitBlockModule(const BlockConfig& config);

}  // namespace db
