// Structural lint for generated Verilog designs.
//
// The session has no synthesiser, so this pass is the safety net that
// keeps NN-Gen's RTL well-formed: identifier legality, unique names,
// port/binding consistency against instantiated module definitions
// (including width agreement where the actual is a whole net/port or a
// sized literal), and driver sanity (every output driven, no wire
// driven twice by assigns).
#pragma once

#include <string>
#include <vector>

#include "rtl/verilog.h"

namespace db {

/// One lint finding.
struct LintIssue {
  std::string module;  // module where the issue was found
  std::string message;
};

/// Lint a single module in isolation (no cross-module checks).
std::vector<LintIssue> LintModule(const VModule& module);

/// Lint a full design: per-module checks plus instantiation checks
/// (instances must reference defined modules and bind real ports) and a
/// defined, existing top module.
std::vector<LintIssue> LintDesign(const VDesign& design);

/// Convenience: throws db::Error listing the issues if any are found.
void CheckDesignOrThrow(const VDesign& design);

}  // namespace db
