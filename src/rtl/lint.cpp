#include "rtl/lint.h"

#include <cctype>
#include <set>
#include <sstream>

#include "common/error.h"

namespace db {
namespace {

bool IsLegalIdentifier(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name.front())) &&
      name.front() != '_')
    return false;
  for (char c : name)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '$')
      return false;
  return true;
}

void Issue(std::vector<LintIssue>& issues, const std::string& module,
           const std::string& message) {
  issues.push_back({module, message});
}

/// Width of an instance-binding actual, when it is statically knowable:
/// a whole named net/port of the parent module (parameter-defined port
/// widths resolve through the parent's own parameter defaults), a sized
/// literal like 8'd0, or a constant slice / single-bit select of a named
/// net.  Returns 0 when the width is context-dependent (unsized
/// literals, concats, arithmetic) — callers skip the check there.
int ActualWidth(const VModule& parent, const VExpr& actual) {
  switch (actual.kind) {
    case VExprKind::kId: {
      if (const VNet* n = parent.FindNet(actual.text)) return n->width;
      if (const VPort* p = parent.FindPort(actual.text))
        return ResolvedPortWidth(parent, *p);
      return 0;
    }
    case VExprKind::kLit:
      return actual.width;  // 0 for unsized
    case VExprKind::kSlice:
      return actual.msb - actual.lsb + 1;
    case VExprKind::kIndex:
      // A bit-select of a non-memory net is one bit wide; memory element
      // selects never appear as binding actuals in generated designs.
      return 1;
    case VExprKind::kPart:
      return actual.width;
    default:
      return 0;
  }
}

/// Effective width of an instance's formal port: an instance parameter
/// override of the port's width parameter wins over the target module's
/// parameter default.
int FormalWidth(const VModule& target, const VInstance& inst,
                const VPort& formal) {
  if (formal.width_param.empty()) return formal.width;
  for (const VBinding& b : inst.params)
    if (b.formal == formal.width_param &&
        b.actual.kind == VExprKind::kLit)
      return static_cast<int>(b.actual.value);
  return ResolvedPortWidth(target, formal);
}

/// Collects the base names of every procedural assignment target in a
/// statement tree (exact identifiers — no substring matching).
void CollectWriteTargets(const VStmt& stmt, std::set<std::string>& out) {
  if (stmt.kind == VStmtKind::kAssign) {
    out.insert(LvalueBase(stmt.lhs));
    return;
  }
  for (const VStmt& s : stmt.then_stmts) CollectWriteTargets(s, out);
  for (const VStmt& s : stmt.else_stmts) CollectWriteTargets(s, out);
}

}  // namespace

std::vector<LintIssue> LintModule(const VModule& m) {
  std::vector<LintIssue> issues;
  if (!IsLegalIdentifier(m.name))
    Issue(issues, m.name, "module name is not a legal identifier");

  std::set<std::string> names;
  for (const VPort& p : m.ports) {
    if (!IsLegalIdentifier(p.name))
      Issue(issues, m.name, "port '" + p.name + "' is not a legal "
                            "identifier");
    if (p.width < 1)
      Issue(issues, m.name, "port '" + p.name + "' has non-positive width");
    if (!p.width_param.empty() && m.FindParam(p.width_param) == nullptr)
      Issue(issues, m.name, "port '" + p.name + "' has undefined width "
                            "parameter '" + p.width_param + "'");
    if (!names.insert(p.name).second)
      Issue(issues, m.name, "duplicate name '" + p.name + "'");
  }
  for (const VNet& n : m.nets) {
    if (!IsLegalIdentifier(n.name))
      Issue(issues, m.name, "net '" + n.name + "' is not a legal "
                            "identifier");
    if (n.width < 1)
      Issue(issues, m.name, "net '" + n.name + "' has non-positive width");
    if (n.depth > 0 && !n.is_reg)
      Issue(issues, m.name, "memory '" + n.name + "' must be a reg");
    if (!names.insert(n.name).second)
      Issue(issues, m.name, "duplicate name '" + n.name + "'");
  }
  for (const VParam& p : m.params) {
    if (!IsLegalIdentifier(p.name))
      Issue(issues, m.name, "parameter '" + p.name + "' is not a legal "
                            "identifier");
    if (!names.insert(p.name).second)
      Issue(issues, m.name, "duplicate name '" + p.name + "'");
  }

  // assign targets must be declared wires or output ports (non-reg), and
  // no wire may have two continuous drivers.
  std::set<std::string> assigned;
  for (const VAssign& a : m.assigns) {
    const std::string base = LvalueBase(a.lhs);
    bool found_wire = false;
    bool is_reg = false;
    for (const VNet& n : m.nets)
      if (n.name == base) {
        found_wire = true;
        is_reg = n.is_reg;
      }
    for (const VPort& p : m.ports)
      if (p.name == base) {
        found_wire = true;
        is_reg = p.is_reg;
        if (p.dir == PortDir::kInput)
          Issue(issues, m.name, "assign drives input port '" + base + "'");
      }
    if (!found_wire)
      Issue(issues, m.name, "assign drives undeclared net '" + base + "'");
    if (is_reg)
      Issue(issues, m.name,
            "assign drives reg '" + base + "' (must be a wire)");
    // Full-signal double drive: only flag when the exact same lvalue
    // repeats (slice-level overlap analysis lives in the rtl.drive
    // netlist rule).
    const std::string lvalue = RenderExpr(a.lhs);
    if (!assigned.insert(lvalue).second)
      Issue(issues, m.name, "net '" + lvalue + "' has multiple drivers");
    if (a.rhs.kind == VExprKind::kId && a.rhs.text.empty())
      Issue(issues, m.name, "assign to '" + lvalue + "' has empty rhs");
  }

  // Output reg ports should be written by some always block; output wires
  // should be continuously assigned or driven by an instance connection.
  std::set<std::string> always_targets;
  for (const VAlways& a : m.always_blocks)
    for (const VStmt& s : a.body) CollectWriteTargets(s, always_targets);
  for (const VPort& p : m.ports) {
    if (p.dir != PortDir::kOutput) continue;
    bool driven = always_targets.count(p.name) > 0;
    for (const VAssign& a : m.assigns)
      if (LvalueBase(a.lhs) == p.name) driven = true;
    for (const VInstance& inst : m.instances)
      for (const VBinding& b : inst.ports)
        if (LvalueBase(b.actual) == p.name) driven = true;
    if (!driven)
      Issue(issues, m.name, "output '" + p.name + "' is never driven");
  }
  return issues;
}

std::vector<LintIssue> LintDesign(const VDesign& design) {
  std::vector<LintIssue> issues;
  std::set<std::string> module_names;
  for (const VModule& m : design.modules) {
    if (!module_names.insert(m.name).second)
      Issue(issues, m.name, "duplicate module definition");
    const std::vector<LintIssue> local = LintModule(m);
    issues.insert(issues.end(), local.begin(), local.end());
  }

  if (design.top.empty()) {
    Issue(issues, "<design>", "no top module declared");
  } else if (design.FindModule(design.top) == nullptr) {
    Issue(issues, "<design>", "top module '" + design.top +
                              "' is not defined");
  }

  for (const VModule& m : design.modules) {
    std::set<std::string> instance_names;
    for (const VInstance& inst : m.instances) {
      if (!instance_names.insert(inst.instance_name).second)
        Issue(issues, m.name, "duplicate instance name '" +
                              inst.instance_name + "'");
      const VModule* target = design.FindModule(inst.module_name);
      if (target == nullptr) {
        Issue(issues, m.name, "instance '" + inst.instance_name +
                              "' references undefined module '" +
                              inst.module_name + "'");
        continue;
      }
      std::set<std::string> bound;
      for (const VBinding& b : inst.ports) {
        const VPort* formal = target->FindPort(b.formal);
        if (formal == nullptr)
          Issue(issues, m.name, "instance '" + inst.instance_name +
                                "' binds unknown port '" + b.formal + "'");
        if (!bound.insert(b.formal).second)
          Issue(issues, m.name, "instance '" + inst.instance_name +
                                "' binds port '" + b.formal + "' twice");
        // Width check where the actual's width is statically knowable;
        // Verilog would silently truncate or zero-extend the mismatch.
        const int actual_width =
            formal == nullptr ? 0 : ActualWidth(m, b.actual);
        const int formal_width =
            formal == nullptr ? 0 : FormalWidth(*target, inst, *formal);
        if (actual_width > 0 && actual_width != formal_width)
          Issue(issues, m.name,
                "instance '" + inst.instance_name + "' binds port '" +
                    b.formal + "' (width " +
                    std::to_string(formal_width) + ") to '" +
                    RenderExpr(b.actual) + "' (width " +
                    std::to_string(actual_width) + ")");
      }
      for (const VPort& p : target->ports)
        if (bound.find(p.name) == bound.end())
          Issue(issues, m.name, "instance '" + inst.instance_name +
                                "' leaves port '" + p.name + "' unbound");
    }
  }
  return issues;
}

void CheckDesignOrThrow(const VDesign& design) {
  const std::vector<LintIssue> issues = LintDesign(design);
  if (issues.empty()) return;
  std::ostringstream os;
  os << "RTL lint found " << issues.size() << " issue(s):";
  for (const LintIssue& i : issues)
    os << "\n  [" << i.module << "] " << i.message;
  throw Error(os.str());
}

}  // namespace db
