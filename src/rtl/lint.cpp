#include "rtl/lint.h"

#include <cctype>
#include <set>
#include <sstream>

#include "common/error.h"

namespace db {
namespace {

bool IsLegalIdentifier(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name.front())) &&
      name.front() != '_')
    return false;
  for (char c : name)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '$')
      return false;
  return true;
}

/// Extract the base identifier of an lvalue like "foo[3:0]" -> "foo".
std::string BaseName(const std::string& expr) {
  const std::size_t bracket = expr.find('[');
  std::string base =
      bracket == std::string::npos ? expr : expr.substr(0, bracket);
  while (!base.empty() && std::isspace(static_cast<unsigned char>(
                              base.back())))
    base.pop_back();
  return base;
}

void Issue(std::vector<LintIssue>& issues, const std::string& module,
           const std::string& message) {
  issues.push_back({module, message});
}

/// Width of an instance-binding actual, when it is statically knowable:
/// a whole named net/port of the parent module, or a sized literal like
/// "8'd0".  Returns 0 for slices, expressions and unsized literals —
/// callers skip the width check there (slice-width arithmetic is out of
/// scope, as with the assign double-drive analysis above).
int ActualWidth(const VModule& parent, const std::string& actual) {
  if (IsLegalIdentifier(actual)) {
    for (const VNet& n : parent.nets)
      if (n.name == actual) return n.width;
    if (const VPort* p = parent.FindPort(actual)) return p->width;
    return 0;
  }
  // Sized literal: <decimal width>'<base><digits>.
  const std::size_t tick = actual.find('\'');
  if (tick == std::string::npos || tick == 0) return 0;
  int width = 0;
  for (std::size_t i = 0; i < tick; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(actual[i]))) return 0;
    width = width * 10 + (actual[i] - '0');
  }
  return width;
}

}  // namespace

std::vector<LintIssue> LintModule(const VModule& m) {
  std::vector<LintIssue> issues;
  if (!IsLegalIdentifier(m.name))
    Issue(issues, m.name, "module name is not a legal identifier");

  std::set<std::string> names;
  for (const VPort& p : m.ports) {
    if (!IsLegalIdentifier(p.name))
      Issue(issues, m.name, "port '" + p.name + "' is not a legal "
                            "identifier");
    if (p.width < 1)
      Issue(issues, m.name, "port '" + p.name + "' has non-positive width");
    if (!names.insert(p.name).second)
      Issue(issues, m.name, "duplicate name '" + p.name + "'");
  }
  for (const VNet& n : m.nets) {
    if (!IsLegalIdentifier(n.name))
      Issue(issues, m.name, "net '" + n.name + "' is not a legal "
                            "identifier");
    if (n.width < 1)
      Issue(issues, m.name, "net '" + n.name + "' has non-positive width");
    if (n.depth > 0 && !n.is_reg)
      Issue(issues, m.name, "memory '" + n.name + "' must be a reg");
    if (!names.insert(n.name).second)
      Issue(issues, m.name, "duplicate name '" + n.name + "'");
  }
  for (const VParam& p : m.params) {
    if (!IsLegalIdentifier(p.name))
      Issue(issues, m.name, "parameter '" + p.name + "' is not a legal "
                            "identifier");
    if (!names.insert(p.name).second)
      Issue(issues, m.name, "duplicate name '" + p.name + "'");
  }

  // assign targets must be declared wires or output ports (non-reg), and
  // no wire may have two continuous drivers.
  std::set<std::string> assigned;
  for (const VAssign& a : m.assigns) {
    const std::string base = BaseName(a.lhs);
    bool found_wire = false;
    bool is_reg = false;
    for (const VNet& n : m.nets)
      if (n.name == base) {
        found_wire = true;
        is_reg = n.is_reg;
      }
    for (const VPort& p : m.ports)
      if (p.name == base) {
        found_wire = true;
        is_reg = p.is_reg;
        if (p.dir == PortDir::kInput)
          Issue(issues, m.name, "assign drives input port '" + base + "'");
      }
    if (!found_wire)
      Issue(issues, m.name, "assign drives undeclared net '" + base + "'");
    if (is_reg)
      Issue(issues, m.name,
            "assign drives reg '" + base + "' (must be a wire)");
    // Full-signal double drive: only flag when the exact same lvalue
    // repeats (slice-level overlap analysis is out of scope).
    if (!assigned.insert(a.lhs).second)
      Issue(issues, m.name, "net '" + a.lhs + "' has multiple drivers");
    if (a.rhs.empty())
      Issue(issues, m.name, "assign to '" + a.lhs + "' has empty rhs");
  }

  // Output reg ports should be written by some always block; output wires
  // should be continuously assigned or driven by an instance connection.
  for (const VPort& p : m.ports) {
    if (p.dir != PortDir::kOutput) continue;
    bool driven = false;
    for (const VAssign& a : m.assigns)
      if (BaseName(a.lhs) == p.name) driven = true;
    for (const VAlways& a : m.always_blocks)
      for (const std::string& line : a.body)
        if (line.find(p.name) != std::string::npos &&
            line.find("<=") != std::string::npos)
          driven = true;
    for (const VInstance& inst : m.instances)
      for (const VBinding& b : inst.ports)
        if (BaseName(b.actual) == p.name) driven = true;
    if (!driven)
      Issue(issues, m.name, "output '" + p.name + "' is never driven");
  }
  return issues;
}

std::vector<LintIssue> LintDesign(const VDesign& design) {
  std::vector<LintIssue> issues;
  std::set<std::string> module_names;
  for (const VModule& m : design.modules) {
    if (!module_names.insert(m.name).second)
      Issue(issues, m.name, "duplicate module definition");
    const std::vector<LintIssue> local = LintModule(m);
    issues.insert(issues.end(), local.begin(), local.end());
  }

  if (design.top.empty()) {
    Issue(issues, "<design>", "no top module declared");
  } else if (design.FindModule(design.top) == nullptr) {
    Issue(issues, "<design>", "top module '" + design.top +
                              "' is not defined");
  }

  for (const VModule& m : design.modules) {
    std::set<std::string> instance_names;
    for (const VInstance& inst : m.instances) {
      if (!instance_names.insert(inst.instance_name).second)
        Issue(issues, m.name, "duplicate instance name '" +
                              inst.instance_name + "'");
      const VModule* target = design.FindModule(inst.module_name);
      if (target == nullptr) {
        Issue(issues, m.name, "instance '" + inst.instance_name +
                              "' references undefined module '" +
                              inst.module_name + "'");
        continue;
      }
      std::set<std::string> bound;
      for (const VBinding& b : inst.ports) {
        const VPort* formal = target->FindPort(b.formal);
        if (formal == nullptr)
          Issue(issues, m.name, "instance '" + inst.instance_name +
                                "' binds unknown port '" + b.formal + "'");
        if (!bound.insert(b.formal).second)
          Issue(issues, m.name, "instance '" + inst.instance_name +
                                "' binds port '" + b.formal + "' twice");
        // Width check where the actual's width is statically knowable;
        // Verilog would silently truncate or zero-extend the mismatch.
        const int actual_width =
            formal == nullptr ? 0 : ActualWidth(m, b.actual);
        if (actual_width > 0 && actual_width != formal->width)
          Issue(issues, m.name,
                "instance '" + inst.instance_name + "' binds port '" +
                    b.formal + "' (width " +
                    std::to_string(formal->width) + ") to '" + b.actual +
                    "' (width " + std::to_string(actual_width) + ")");
      }
      for (const VPort& p : target->ports)
        if (bound.find(p.name) == bound.end())
          Issue(issues, m.name, "instance '" + inst.instance_name +
                                "' leaves port '" + p.name + "' unbound");
    }
  }
  return issues;
}

void CheckDesignOrThrow(const VDesign& design) {
  const std::vector<LintIssue> issues = LintDesign(design);
  if (issues.empty()) return;
  std::ostringstream os;
  os << "RTL lint found " << issues.size() << " issue(s):";
  for (const LintIssue& i : issues)
    os << "\n  [" << i.module << "] " << i.message;
  throw Error(os.str());
}

}  // namespace db
