#include "rtl/block_emitters.h"

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace db {
namespace {

void AddClkRst(VModule& m) {
  m.ports.push_back({"clk", PortDir::kInput, 1, false});
  m.ports.push_back({"rst_n", PortDir::kInput, 1, false});
}

VModule EmitSynergyNeuron(const BlockConfig& c) {
  // A lane array of multiply-accumulate neurons: each lane multiplies a
  // feature element by a weight element and accumulates; `clear` starts a
  // new dot product, `valid_in` gates accumulation.
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "Synergy neuron: " + DescribeBlock(c);
  AddClkRst(m);
  const int w = c.bit_width;
  m.ports.push_back({"valid_in", PortDir::kInput, 1, false});
  m.ports.push_back({"clear", PortDir::kInput, 1, false});
  m.ports.push_back({"feature", PortDir::kInput, w * c.lanes, false});
  m.ports.push_back({"weight", PortDir::kInput, w * c.lanes, false});
  m.ports.push_back({"acc_out", PortDir::kOutput, 2 * w * c.lanes, true});
  m.ports.push_back({"valid_out", PortDir::kOutput, 1, true});

  m.nets.push_back({"product", 2 * w * c.lanes, false, 0});
  for (int lane = 0; lane < c.lanes; ++lane) {
    std::ostringstream lhs, rhs;
    lhs << "product[" << 2 * w * (lane + 1) - 1 << ":" << 2 * w * lane
        << "]";
    rhs << "$signed(feature[" << w * (lane + 1) - 1 << ":" << w * lane
        << "]) * $signed(weight[" << w * (lane + 1) - 1 << ":" << w * lane
        << "])";
    m.assigns.push_back({lhs.str(), rhs.str()});
  }

  VAlways acc;
  acc.sensitivity = "posedge clk";
  acc.body.push_back("if (!rst_n) begin");
  acc.body.push_back("  acc_out <= 0;");
  acc.body.push_back("  valid_out <= 1'b0;");
  acc.body.push_back("end else if (clear) begin");
  acc.body.push_back("  acc_out <= 0;");
  acc.body.push_back("  valid_out <= 1'b0;");
  acc.body.push_back("end else if (valid_in) begin");
  for (int lane = 0; lane < c.lanes; ++lane) {
    std::ostringstream line;
    line << "  acc_out[" << 2 * w * (lane + 1) - 1 << ":" << 2 * w * lane
         << "] <= acc_out[" << 2 * w * (lane + 1) - 1 << ":" << 2 * w * lane
         << "] + product[" << 2 * w * (lane + 1) - 1 << ":" << 2 * w * lane
         << "];";
    acc.body.push_back(line.str());
  }
  acc.body.push_back("  valid_out <= 1'b1;");
  acc.body.push_back("end");
  m.always_blocks.push_back(std::move(acc));
  return m;
}

VModule EmitAccumulator(const BlockConfig& c) {
  // Adder tree folding `lanes` partial sums into one; saturating output.
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "Partial-sum accumulator: " + DescribeBlock(c);
  AddClkRst(m);
  const int w = 2 * c.bit_width;  // accepts full-precision partial sums
  m.ports.push_back({"valid_in", PortDir::kInput, 1, false});
  m.ports.push_back({"partials", PortDir::kInput, w * c.lanes, false});
  m.ports.push_back({"sum", PortDir::kOutput, w, true});
  m.ports.push_back({"valid_out", PortDir::kOutput, 1, true});

  std::ostringstream tree;
  for (int lane = 0; lane < c.lanes; ++lane) {
    if (lane > 0) tree << " + ";
    tree << "$signed(partials[" << w * (lane + 1) - 1 << ":" << w * lane
         << "])";
  }
  m.nets.push_back({"tree_sum", w, false, 0});
  m.assigns.push_back({"tree_sum", tree.str()});

  VAlways reg;
  reg.sensitivity = "posedge clk";
  reg.body = {"if (!rst_n) begin", "  sum <= 0;", "  valid_out <= 1'b0;",
              "end else begin", "  sum <= tree_sum;",
              "  valid_out <= valid_in;", "end"};
  m.always_blocks.push_back(std::move(reg));
  return m;
}

VModule EmitPoolingUnit(const BlockConfig& c) {
  // Streaming window reduction: running max or running sum with a final
  // shift (average pooling divides by a power-of-two window via shift —
  // the connection box's shifting latch, folded in here).
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "Pooling unit: " + DescribeBlock(c);
  AddClkRst(m);
  const int w = c.bit_width;
  m.ports.push_back({"valid_in", PortDir::kInput, 1, false});
  m.ports.push_back({"window_start", PortDir::kInput, 1, false});
  m.ports.push_back({"mode_max", PortDir::kInput, 1, false});
  m.ports.push_back({"shift", PortDir::kInput, 4, false});
  m.ports.push_back({"din", PortDir::kInput, w * c.lanes, false});
  m.ports.push_back({"dout", PortDir::kOutput, w * c.lanes, true});

  for (int lane = 0; lane < c.lanes; ++lane) {
    VAlways a;
    a.sensitivity = "posedge clk";
    std::ostringstream hi;
    hi << w * (lane + 1) - 1 << ":" << w * lane;
    const std::string slice = hi.str();
    a.body.push_back("if (!rst_n) dout[" + slice + "] <= 0;");
    a.body.push_back("else if (window_start) dout[" + slice +
                     "] <= din[" + slice + "];");
    a.body.push_back("else if (valid_in) begin");
    a.body.push_back("  if (mode_max) begin");
    a.body.push_back("    if ($signed(din[" + slice + "]) > $signed(dout[" +
                     slice + "])) dout[" + slice + "] <= din[" + slice +
                     "];");
    a.body.push_back("  end else begin");
    a.body.push_back("    dout[" + slice + "] <= ($signed(dout[" + slice +
                     "]) + $signed(din[" + slice + "])) >>> shift;");
    a.body.push_back("  end");
    a.body.push_back("end");
    m.always_blocks.push_back(std::move(a));
  }
  return m;
}

VModule EmitLrnUnit(const BlockConfig& c) {
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "LRN unit: squares a channel window, accumulates, and drives "
              "the scale through the approx LUT interface.\n" +
              DescribeBlock(c);
  AddClkRst(m);
  const int w = c.bit_width;
  m.ports.push_back({"valid_in", PortDir::kInput, 1, false});
  m.ports.push_back({"window_start", PortDir::kInput, 1, false});
  m.ports.push_back({"din", PortDir::kInput, w, false});
  m.ports.push_back({"sum_sq", PortDir::kOutput, 2 * w, true});
  m.ports.push_back({"lut_key", PortDir::kOutput, w, false});

  m.nets.push_back({"sq", 2 * w, false, 0});
  m.assigns.push_back({"sq", "$signed(din) * $signed(din)"});
  m.assigns.push_back({"lut_key", StrFormat("sum_sq[%d:%d]", 2 * w - 1, w)});

  VAlways a;
  a.sensitivity = "posedge clk";
  a.body = {"if (!rst_n) sum_sq <= 0;",
            "else if (window_start) sum_sq <= sq;",
            "else if (valid_in) sum_sq <= sum_sq + sq;"};
  m.always_blocks.push_back(std::move(a));
  return m;
}

VModule EmitDropoutUnit(const BlockConfig& c) {
  // LFSR-driven mask inserter used during accelerator-assisted training.
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "Drop-out inserter: " + DescribeBlock(c);
  AddClkRst(m);
  const int w = c.bit_width;
  m.ports.push_back({"enable", PortDir::kInput, 1, false});
  m.ports.push_back({"threshold", PortDir::kInput, 16, false});
  m.ports.push_back({"din", PortDir::kInput, w, false});
  m.ports.push_back({"dout", PortDir::kOutput, w, false});
  m.nets.push_back({"lfsr", 16, true, 0});
  m.assigns.push_back(
      {"dout", "(enable && (lfsr < threshold)) ? {" + std::to_string(w) +
                   "{1'b0}} : din"});
  VAlways a;
  a.sensitivity = "posedge clk";
  a.body = {"if (!rst_n) lfsr <= 16'hACE1;",
            "else lfsr <= {lfsr[14:0], lfsr[15] ^ lfsr[13] ^ lfsr[12] ^ "
            "lfsr[10]};"};
  m.always_blocks.push_back(std::move(a));
  return m;
}

VModule EmitClassifier(const BlockConfig& c) {
  // k-sorter (Beigel & Gill [11]): one compare-exchange insertion stage
  // per cycle over a k-deep sorted register file of (value, index) pairs.
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "K-sorter classifier: " + DescribeBlock(c);
  AddClkRst(m);
  const int w = c.bit_width;
  const int k = c.lanes;
  const int iw = 16;  // index width
  m.ports.push_back({"valid_in", PortDir::kInput, 1, false});
  m.ports.push_back({"flush", PortDir::kInput, 1, false});
  m.ports.push_back({"din", PortDir::kInput, w, false});
  m.ports.push_back({"din_index", PortDir::kInput, iw, false});
  m.ports.push_back({"top_values", PortDir::kOutput, w * k, true});
  m.ports.push_back({"top_indices", PortDir::kOutput, iw * k, true});

  VAlways a;
  a.sensitivity = "posedge clk";
  a.body.push_back("if (!rst_n || flush) begin");
  for (int i = 0; i < k; ++i) {
    a.body.push_back(StrFormat("  top_values[%d:%d] <= {1'b1, {%d{1'b0}}};",
                               w * (i + 1) - 1, w * i, w - 1));
    a.body.push_back(StrFormat("  top_indices[%d:%d] <= 0;",
                               iw * (i + 1) - 1, iw * i));
  }
  a.body.push_back("end else if (valid_in) begin");
  // Insertion network: shift-down from the position where din wins.
  for (int i = k - 1; i >= 0; --i) {
    std::ostringstream cond;
    cond << "  if ($signed(din) > $signed(top_values[" << w * (i + 1) - 1
         << ":" << w * i << "]))";
    a.body.push_back(cond.str());
    a.body.push_back("  begin");
    for (int j = k - 1; j > i; --j) {
      a.body.push_back(StrFormat(
          "    top_values[%d:%d] <= top_values[%d:%d];",
          w * (j + 1) - 1, w * j, w * j - 1, w * (j - 1)));
      a.body.push_back(StrFormat(
          "    top_indices[%d:%d] <= top_indices[%d:%d];",
          iw * (j + 1) - 1, iw * j, iw * j - 1, iw * (j - 1)));
    }
    a.body.push_back(StrFormat("    top_values[%d:%d] <= din;",
                               w * (i + 1) - 1, w * i));
    a.body.push_back(StrFormat("    top_indices[%d:%d] <= din_index;",
                               iw * (i + 1) - 1, iw * i));
    a.body.push_back("  end");
  }
  a.body.push_back("end");
  m.always_blocks.push_back(std::move(a));
  return m;
}

VModule EmitApproxLut(const BlockConfig& c) {
  // Approx LUT (paper §3.3): sampled function store; keys that miss are
  // resolved by interpolating between the adjacent sampled entries.
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "Approx LUT: " + DescribeBlock(c);
  AddClkRst(m);
  const int w = c.bit_width;
  const int idx_bits =
      std::max(1, static_cast<int>(std::llround(
                      std::log2(static_cast<double>(c.depth)))));
  m.ports.push_back({"key", PortDir::kInput, w, false});
  m.ports.push_back({"value", PortDir::kOutput, w, true});
  m.nets.push_back({"table_mem", w, true, c.depth});
  m.nets.push_back({"index", idx_bits, false, 0});
  m.assigns.push_back(
      {"index", StrFormat("key[%d:%d]", w - 1, w - idx_bits)});

  VAlways a;
  a.sensitivity = "posedge clk";
  // Interpolation needs fractional key bits below the index field; a
  // table indexed by the full key has nothing to interpolate on.
  const bool interpolate = c.interpolate && w - idx_bits >= 1;
  if (interpolate) {
    m.nets.push_back({"lo", w, false, 0});
    m.nets.push_back({"hi", w, false, 0});
    m.nets.push_back({"frac", w - idx_bits, false, 0});
    m.assigns.push_back({"lo", "table_mem[index]"});
    m.assigns.push_back(
        {"hi", StrFormat("table_mem[index == %lld ? index : index + 1]",
                         static_cast<long long>(c.depth - 1))});
    m.assigns.push_back({"frac", StrFormat("key[%d:0]", w - idx_bits - 1)});
    a.body = {StrFormat(
        "value <= lo + ((($signed(hi) - $signed(lo)) * $signed({1'b0, "
        "frac})) >>> %d);",
        w - idx_bits)};
  } else {
    a.body = {"value <= table_mem[index];"};
  }
  m.always_blocks.push_back(std::move(a));
  return m;
}

VModule EmitActivationUnit(const BlockConfig& c) {
  // Thin pipeline stage wrapping the approx LUT; selects between the
  // hard-wired ReLU comparator and the LUT-backed smooth functions.
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "Activation unit: " + DescribeBlock(c);
  AddClkRst(m);
  const int w = c.bit_width;
  m.ports.push_back({"select_relu", PortDir::kInput, 1, false});
  m.ports.push_back({"din", PortDir::kInput, w, false});
  m.ports.push_back({"lut_value", PortDir::kInput, w, false});
  m.ports.push_back({"lut_key", PortDir::kOutput, w, false});
  m.ports.push_back({"dout", PortDir::kOutput, w, true});
  m.assigns.push_back({"lut_key", "din"});
  VAlways a;
  a.sensitivity = "posedge clk";
  a.body = {
      "if (!rst_n) dout <= 0;",
      StrFormat("else if (select_relu) dout <= $signed(din) > 0 ? din : "
                "{%d{1'b0}};",
                w),
      "else dout <= lut_value;"};
  m.always_blocks.push_back(std::move(a));
  return m;
}

VModule EmitConnectionBox(const BlockConfig& c) {
  // Crossbar reconnecting producer blocks to consumer blocks, plus the
  // shifting latch for approximate division (paper §3.2).
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "Connection box: " + DescribeBlock(c);
  AddClkRst(m);
  const int w = c.bit_width;
  const int p = c.ports;
  const int sel_bits = std::max(
      1, static_cast<int>(std::ceil(std::log2(static_cast<double>(p)))));
  m.ports.push_back({"din", PortDir::kInput, w * p, false});
  m.ports.push_back({"select", PortDir::kInput, sel_bits * p, false});
  m.ports.push_back({"shift", PortDir::kInput, 4, false});
  m.ports.push_back({"dout", PortDir::kOutput, w * p, true});

  VAlways a;
  a.sensitivity = "posedge clk";
  a.body.push_back("if (!rst_n) dout <= 0;");
  a.body.push_back("else begin");
  for (int out = 0; out < p; ++out) {
    std::ostringstream line;
    line << "  dout[" << w * (out + 1) - 1 << ":" << w * out
         << "] <= $signed(din[select[" << sel_bits * (out + 1) - 1 << ":"
         << sel_bits * out << "]*" << w << " +: " << w << "]) >>> shift;";
    a.body.push_back(line.str());
  }
  a.body.push_back("end");
  m.always_blocks.push_back(std::move(a));
  return m;
}

VModule EmitAgu(const BlockConfig& c) {
  // Template AGU of Fig. 6: pattern registers (start, footprint, x/y
  // length, stride, offset) stepped by a nested x/y counter pair; emits
  // an address stream and the data-driven trigger events.
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "AGU (" + AguRoleName(c.agu_role) + "): " + DescribeBlock(c);
  AddClkRst(m);
  const int aw = c.agu_role == AguRole::kMain ? 32 : 18;
  const int pat_bits = std::max(
      1, static_cast<int>(
             std::ceil(std::log2(static_cast<double>(c.patterns)))));
  m.ports.push_back({"start_event", PortDir::kInput, 1, false});
  m.ports.push_back({"pattern_sel", PortDir::kInput, pat_bits, false});
  m.ports.push_back({"cfg_start", PortDir::kInput, aw, false});
  m.ports.push_back({"cfg_x_len", PortDir::kInput, 16, false});
  m.ports.push_back({"cfg_y_len", PortDir::kInput, 16, false});
  m.ports.push_back({"cfg_stride", PortDir::kInput, 16, false});
  m.ports.push_back({"cfg_offset", PortDir::kInput, aw, false});
  m.ports.push_back({"addr", PortDir::kOutput, aw, true});
  m.ports.push_back({"addr_valid", PortDir::kOutput, 1, true});
  m.ports.push_back({"pattern_done", PortDir::kOutput, 1, true});

  m.nets.push_back({"x_cnt", 16, true, 0});
  m.nets.push_back({"y_cnt", 16, true, 0});
  m.nets.push_back({"row_base", aw, true, 0});
  m.nets.push_back({"running", 1, true, 0});

  VAlways a;
  a.sensitivity = "posedge clk";
  a.body = {
      "if (!rst_n) begin",
      "  x_cnt <= 0; y_cnt <= 0; row_base <= 0; running <= 1'b0;",
      "  addr <= 0; addr_valid <= 1'b0; pattern_done <= 1'b0;",
      "end else if (start_event) begin",
      "  x_cnt <= 0; y_cnt <= 0; row_base <= cfg_start;",
      "  addr <= cfg_start; addr_valid <= 1'b1; running <= 1'b1;",
      "  pattern_done <= 1'b0;",
      "end else if (running) begin",
      "  if (x_cnt + 1 < cfg_x_len) begin",
      "    x_cnt <= x_cnt + 1;",
      "    addr <= addr + cfg_stride;",
      "  end else if (y_cnt + 1 < cfg_y_len) begin",
      "    x_cnt <= 0; y_cnt <= y_cnt + 1;",
      "    row_base <= row_base + cfg_offset;",
      "    addr <= row_base + cfg_offset;",
      "  end else begin",
      "    running <= 1'b0; addr_valid <= 1'b0; pattern_done <= 1'b1;",
      "  end",
      "end else begin",
      "  pattern_done <= 1'b0;",
      "end"};
  m.always_blocks.push_back(std::move(a));
  return m;
}

VModule EmitCoordinator(const BlockConfig& c) {
  // Central FSM: walks the fold schedule, raising the pattern-trigger
  // event of each step when the previous step's AGUs report done
  // (data-driven producer/consumer reconnection, paper §3.3).
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "Scheduling coordinator: " + DescribeBlock(c);
  AddClkRst(m);
  const int ev = c.fold_events;
  const int st_bits = std::max(
      1, static_cast<int>(
             std::ceil(std::log2(static_cast<double>(ev + 1)))));
  m.ports.push_back({"go", PortDir::kInput, 1, false});
  m.ports.push_back({"step_done", PortDir::kInput, 1, false});
  m.ports.push_back({"trigger", PortDir::kOutput, ev, true});
  m.ports.push_back({"state", PortDir::kOutput, st_bits, true});
  m.ports.push_back({"all_done", PortDir::kOutput, 1, true});

  VAlways a;
  a.sensitivity = "posedge clk";
  a.body = {
      "if (!rst_n) begin",
      "  state <= 0; trigger <= 0; all_done <= 1'b0;",
      "end else if (go && state == 0) begin",
      StrFormat("  state <= 1; trigger <= %d'b1; all_done <= 1'b0;", ev),
      "end else if (step_done && state != 0) begin",
      StrFormat("  if (state == %d) begin", ev),
      "    state <= 0; trigger <= 0; all_done <= 1'b1;",
      "  end else begin",
      "    state <= state + 1;",
      "    trigger <= trigger << 1;",
      "  end",
      "end else begin",
      "  trigger <= 0;",
      "end"};
  m.always_blocks.push_back(std::move(a));
  return m;
}

VModule EmitBufferBank(const BlockConfig& c) {
  // Simple dual-port on-chip buffer of `depth` bytes, `lanes` elements
  // wide per access.
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "On-chip buffer bank: " + DescribeBlock(c);
  AddClkRst(m);
  const int w = c.bit_width * c.lanes;
  const std::int64_t words =
      std::max<std::int64_t>(1, c.depth * 8 / std::max(1, w));
  const int aw = std::max(
      1, static_cast<int>(
             std::ceil(std::log2(static_cast<double>(words)))));
  m.ports.push_back({"wr_en", PortDir::kInput, 1, false});
  m.ports.push_back({"wr_addr", PortDir::kInput, aw, false});
  m.ports.push_back({"wr_data", PortDir::kInput, w, false});
  m.ports.push_back({"rd_addr", PortDir::kInput, aw, false});
  m.ports.push_back({"rd_data", PortDir::kOutput, w, true});
  m.nets.push_back({"mem", w, true, words});
  VAlways a;
  a.sensitivity = "posedge clk";
  a.body = {"if (wr_en) mem[wr_addr] <= wr_data;",
            "rd_data <= mem[rd_addr];"};
  m.always_blocks.push_back(std::move(a));
  return m;
}

}  // namespace

std::string BlockModuleName(const BlockConfig& c) {
  std::ostringstream os;
  os << "db_" << BlockTypeName(c.type) << "_w" << c.bit_width;
  switch (c.type) {
    case BlockType::kSynergyNeuron:
      os << "_l" << c.lanes << (c.use_dsp ? "_dsp" : "_lut");
      break;
    case BlockType::kAccumulator:
    case BlockType::kPoolingUnit:
    case BlockType::kActivationUnit:
    case BlockType::kLrnUnit:
    case BlockType::kDropoutUnit:
      os << "_l" << c.lanes;
      break;
    case BlockType::kClassifier:
      os << "_k" << c.lanes;
      break;
    case BlockType::kApproxLut:
      os << "_d" << c.depth << (c.interpolate ? "_interp" : "_nearest");
      break;
    case BlockType::kConnectionBox:
      os << "_p" << c.ports;
      break;
    case BlockType::kAgu:
      os << "_" << AguRoleName(c.agu_role) << "_pat" << c.patterns;
      break;
    case BlockType::kCoordinator:
      os << "_ev" << c.fold_events;
      break;
    case BlockType::kBufferBank:
      os << "_l" << c.lanes << "_b" << c.depth;
      break;
  }
  return ToIdentifier(os.str());
}

VModule EmitBlockModule(const BlockConfig& c) {
  ValidateBlockConfig(c);
  switch (c.type) {
    case BlockType::kSynergyNeuron: return EmitSynergyNeuron(c);
    case BlockType::kAccumulator: return EmitAccumulator(c);
    case BlockType::kPoolingUnit: return EmitPoolingUnit(c);
    case BlockType::kLrnUnit: return EmitLrnUnit(c);
    case BlockType::kDropoutUnit: return EmitDropoutUnit(c);
    case BlockType::kClassifier: return EmitClassifier(c);
    case BlockType::kActivationUnit: return EmitActivationUnit(c);
    case BlockType::kApproxLut: return EmitApproxLut(c);
    case BlockType::kConnectionBox: return EmitConnectionBox(c);
    case BlockType::kAgu: return EmitAgu(c);
    case BlockType::kCoordinator: return EmitCoordinator(c);
    case BlockType::kBufferBank: return EmitBufferBank(c);
  }
  DB_THROW("unhandled block type");
}

}  // namespace db
