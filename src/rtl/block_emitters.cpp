#include "rtl/block_emitters.h"

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace db {
namespace {

void AddClkRst(VModule& m) {
  m.ports.push_back({"clk", PortDir::kInput, 1, false});
  m.ports.push_back({"rst_n", PortDir::kInput, 1, false});
}

/// Lane slice helper: name[w*(lane+1)-1 : w*lane].
VExpr Lane(const std::string& name, int w, int lane) {
  return VSlice(VId(name), w * (lane + 1) - 1, w * lane);
}

/// Single-bit binary literal: 1'b0 / 1'b1.
VExpr Bit1(int v) { return VLit(1, v, 'b'); }

VExpr NotRstN() { return VUnary("!", VId("rst_n")); }

VModule EmitSynergyNeuron(const BlockConfig& c) {
  // A lane array of multiply-accumulate neurons: each lane multiplies a
  // feature element by a weight element and accumulates; `clear` starts a
  // new dot product, `valid_in` gates accumulation.
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "Synergy neuron: " + DescribeBlock(c);
  AddClkRst(m);
  const int w = c.bit_width;
  m.ports.push_back({"valid_in", PortDir::kInput, 1, false});
  m.ports.push_back({"clear", PortDir::kInput, 1, false});
  m.ports.push_back({"feature", PortDir::kInput, w * c.lanes, false});
  m.ports.push_back({"weight", PortDir::kInput, w * c.lanes, false});
  m.ports.push_back({"acc_out", PortDir::kOutput, 2 * w * c.lanes, true});
  m.ports.push_back({"valid_out", PortDir::kOutput, 1, true});

  m.nets.push_back({"product", 2 * w * c.lanes, false, 0});
  for (int lane = 0; lane < c.lanes; ++lane)
    m.assigns.push_back(
        {Lane("product", 2 * w, lane),
         VBin(VSigned(Lane("feature", w, lane)), "*",
              VSigned(Lane("weight", w, lane)))});

  const auto clear_state = [] {
    return std::vector<VStmt>{VNonBlocking(VId("acc_out"), VLit(0)),
                              VNonBlocking(VId("valid_out"), Bit1(0))};
  };
  std::vector<VStmt> accumulate;
  for (int lane = 0; lane < c.lanes; ++lane)
    accumulate.push_back(
        VNonBlocking(Lane("acc_out", 2 * w, lane),
                     VBin(Lane("acc_out", 2 * w, lane), "+",
                          Lane("product", 2 * w, lane))));
  accumulate.push_back(VNonBlocking(VId("valid_out"), Bit1(1)));

  VAlways acc;
  acc.sensitivity = "posedge clk";
  acc.body = {VIf(
      NotRstN(), clear_state(),
      {VIf(VId("clear"), clear_state(),
           {VIf(VId("valid_in"), std::move(accumulate))})})};
  m.always_blocks.push_back(std::move(acc));
  return m;
}

VModule EmitAccumulator(const BlockConfig& c) {
  // Adder tree folding `lanes` partial sums into one; saturating output.
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "Partial-sum accumulator: " + DescribeBlock(c);
  AddClkRst(m);
  const int w = 2 * c.bit_width;  // accepts full-precision partial sums
  m.ports.push_back({"valid_in", PortDir::kInput, 1, false});
  m.ports.push_back({"partials", PortDir::kInput, w * c.lanes, false});
  m.ports.push_back({"sum", PortDir::kOutput, w, true});
  m.ports.push_back({"valid_out", PortDir::kOutput, 1, true});

  VExpr tree = VSigned(Lane("partials", w, 0));
  for (int lane = 1; lane < c.lanes; ++lane)
    tree = VBin(std::move(tree), "+", VSigned(Lane("partials", w, lane)));
  m.nets.push_back({"tree_sum", w, false, 0});
  m.assigns.push_back({VId("tree_sum"), std::move(tree)});

  VAlways reg;
  reg.sensitivity = "posedge clk";
  reg.body = {VIf(NotRstN(),
                  {VNonBlocking(VId("sum"), VLit(0)),
                   VNonBlocking(VId("valid_out"), Bit1(0))},
                  {VNonBlocking(VId("sum"), VId("tree_sum")),
                   VNonBlocking(VId("valid_out"), VId("valid_in"))})};
  m.always_blocks.push_back(std::move(reg));
  return m;
}

VModule EmitPoolingUnit(const BlockConfig& c) {
  // Streaming window reduction: running max or running sum with a final
  // shift (average pooling divides by a power-of-two window via shift —
  // the connection box's shifting latch, folded in here).
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "Pooling unit: " + DescribeBlock(c);
  AddClkRst(m);
  const int w = c.bit_width;
  m.ports.push_back({"valid_in", PortDir::kInput, 1, false});
  m.ports.push_back({"window_start", PortDir::kInput, 1, false});
  m.ports.push_back({"mode_max", PortDir::kInput, 1, false});
  m.ports.push_back({"shift", PortDir::kInput, 4, false});
  m.ports.push_back({"din", PortDir::kInput, w * c.lanes, false});
  m.ports.push_back({"dout", PortDir::kOutput, w * c.lanes, true});

  for (int lane = 0; lane < c.lanes; ++lane) {
    const VExpr din_s = Lane("din", w, lane);
    const VExpr dout_s = Lane("dout", w, lane);
    VStmt reduce = VIf(
        VId("mode_max"),
        {VIf(VBin(VSigned(din_s), ">", VSigned(dout_s)),
             {VNonBlocking(dout_s, din_s)}, {}, VBranchStyle::kInline)},
        {VNonBlocking(dout_s,
                      VBin(VParen(VBin(VSigned(dout_s), "+",
                                       VSigned(din_s))),
                           ">>>", VId("shift")))});
    VAlways a;
    a.sensitivity = "posedge clk";
    a.body = {VIf(NotRstN(), {VNonBlocking(dout_s, VLit(0))},
                  {VIf(VId("window_start"), {VNonBlocking(dout_s, din_s)},
                       {VIf(VId("valid_in"), {std::move(reduce)})},
                       VBranchStyle::kInline)},
                  VBranchStyle::kInline)};
    m.always_blocks.push_back(std::move(a));
  }
  return m;
}

VModule EmitLrnUnit(const BlockConfig& c) {
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "LRN unit: squares a channel window, accumulates, and drives "
              "the scale through the approx LUT interface.\n" +
              DescribeBlock(c);
  AddClkRst(m);
  const int w = c.bit_width;
  m.ports.push_back({"valid_in", PortDir::kInput, 1, false});
  m.ports.push_back({"window_start", PortDir::kInput, 1, false});
  m.ports.push_back({"din", PortDir::kInput, w, false});
  m.ports.push_back({"sum_sq", PortDir::kOutput, 2 * w, true});
  m.ports.push_back({"lut_key", PortDir::kOutput, w, false});

  m.nets.push_back({"sq", 2 * w, false, 0});
  m.assigns.push_back(
      {VId("sq"), VBin(VSigned(VId("din")), "*", VSigned(VId("din")))});
  m.assigns.push_back({VId("lut_key"), VSlice(VId("sum_sq"), 2 * w - 1, w)});

  VAlways a;
  a.sensitivity = "posedge clk";
  a.body = {VIf(NotRstN(), {VNonBlocking(VId("sum_sq"), VLit(0))},
                {VIf(VId("window_start"),
                     {VNonBlocking(VId("sum_sq"), VId("sq"))},
                     {VIf(VId("valid_in"),
                          {VNonBlocking(VId("sum_sq"),
                                        VBin(VId("sum_sq"), "+",
                                             VId("sq")))},
                          {}, VBranchStyle::kInline)},
                     VBranchStyle::kInline)},
                VBranchStyle::kInline)};
  m.always_blocks.push_back(std::move(a));
  return m;
}

VModule EmitDropoutUnit(const BlockConfig& c) {
  // LFSR-driven mask inserter used during accelerator-assisted training.
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "Drop-out inserter: " + DescribeBlock(c);
  AddClkRst(m);
  const int w = c.bit_width;
  m.ports.push_back({"enable", PortDir::kInput, 1, false});
  m.ports.push_back({"threshold", PortDir::kInput, 16, false});
  m.ports.push_back({"din", PortDir::kInput, w, false});
  m.ports.push_back({"dout", PortDir::kOutput, w, false});
  m.nets.push_back({"lfsr", 16, true, 0});
  m.assigns.push_back(
      {VId("dout"),
       VTernary(VParen(VBin(VId("enable"), "&&",
                            VParen(VBin(VId("lfsr"), "<",
                                        VId("threshold"))))),
                VRepeat(w, Bit1(0)), VId("din"))});
  const auto lfsr_bit = [](int i) {
    return VIndex(VId("lfsr"), VLit(i));
  };
  VAlways a;
  a.sensitivity = "posedge clk";
  a.body = {VIf(
      NotRstN(), {VNonBlocking(VId("lfsr"), VLit(16, 0xACE1, 'h'))},
      {VNonBlocking(
          VId("lfsr"),
          VConcat({VSlice(VId("lfsr"), 14, 0),
                   VBin(VBin(VBin(lfsr_bit(15), "^", lfsr_bit(13)), "^",
                             lfsr_bit(12)),
                        "^", lfsr_bit(10))}))},
      VBranchStyle::kInline, VBranchStyle::kInline)};
  m.always_blocks.push_back(std::move(a));
  return m;
}

VModule EmitClassifier(const BlockConfig& c) {
  // k-sorter (Beigel & Gill [11]): one compare-exchange insertion stage
  // per cycle over a k-deep sorted register file of (value, index) pairs.
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "K-sorter classifier: " + DescribeBlock(c);
  AddClkRst(m);
  const int w = c.bit_width;
  const int k = c.lanes;
  const int iw = 16;  // index width
  m.ports.push_back({"valid_in", PortDir::kInput, 1, false});
  m.ports.push_back({"flush", PortDir::kInput, 1, false});
  m.ports.push_back({"din", PortDir::kInput, w, false});
  m.ports.push_back({"din_index", PortDir::kInput, iw, false});
  m.ports.push_back({"top_values", PortDir::kOutput, w * k, true});
  m.ports.push_back({"top_indices", PortDir::kOutput, iw * k, true});

  std::vector<VStmt> reset;
  for (int i = 0; i < k; ++i) {
    reset.push_back(
        VNonBlocking(Lane("top_values", w, i),
                     VConcat({Bit1(1), VRepeat(w - 1, Bit1(0))})));
    reset.push_back(VNonBlocking(Lane("top_indices", iw, i), VLit(0)));
  }

  // Insertion network: shift-down from the position where din wins.
  std::vector<VStmt> insert;
  for (int i = k - 1; i >= 0; --i) {
    std::vector<VStmt> shift_down;
    for (int j = k - 1; j > i; --j) {
      shift_down.push_back(
          VNonBlocking(Lane("top_values", w, j),
                       VSlice(VId("top_values"), w * j - 1, w * (j - 1))));
      shift_down.push_back(
          VNonBlocking(Lane("top_indices", iw, j),
                       VSlice(VId("top_indices"), iw * j - 1,
                              iw * (j - 1))));
    }
    shift_down.push_back(VNonBlocking(Lane("top_values", w, i), VId("din")));
    shift_down.push_back(
        VNonBlocking(Lane("top_indices", iw, i), VId("din_index")));
    insert.push_back(VIf(VBin(VSigned(VId("din")), ">",
                              VSigned(Lane("top_values", w, i))),
                         std::move(shift_down), {},
                         VBranchStyle::kBlockOwnLine));
  }

  VAlways a;
  a.sensitivity = "posedge clk";
  a.body = {VIf(VBin(NotRstN(), "||", VId("flush")), std::move(reset),
                {VIf(VId("valid_in"), std::move(insert))})};
  m.always_blocks.push_back(std::move(a));
  return m;
}

VModule EmitApproxLut(const BlockConfig& c) {
  // Approx LUT (paper §3.3): sampled function store; keys that miss are
  // resolved by interpolating between the adjacent sampled entries.
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "Approx LUT: " + DescribeBlock(c);
  AddClkRst(m);
  const int w = c.bit_width;
  const int idx_bits =
      std::max(1, static_cast<int>(std::llround(
                      std::log2(static_cast<double>(c.depth)))));
  m.ports.push_back({"key", PortDir::kInput, w, false});
  m.ports.push_back({"value", PortDir::kOutput, w, true});
  m.nets.push_back({"table_mem", w, true, c.depth});
  m.nets.push_back({"index", idx_bits, false, 0});
  m.assigns.push_back(
      {VId("index"), VSlice(VId("key"), w - 1, w - idx_bits)});

  VAlways a;
  a.sensitivity = "posedge clk";
  // Interpolation needs fractional key bits below the index field; a
  // table indexed by the full key has nothing to interpolate on.
  const bool interpolate = c.interpolate && w - idx_bits >= 1;
  if (interpolate) {
    m.nets.push_back({"lo", w, false, 0});
    m.nets.push_back({"hi", w, false, 0});
    m.nets.push_back({"frac", w - idx_bits, false, 0});
    m.assigns.push_back({VId("lo"), VIndex(VId("table_mem"), VId("index"))});
    m.assigns.push_back(
        {VId("hi"),
         VIndex(VId("table_mem"),
                VTernary(VBin(VId("index"), "==", VLit(c.depth - 1)),
                         VId("index"), VBin(VId("index"), "+", VLit(1))))});
    m.assigns.push_back(
        {VId("frac"), VSlice(VId("key"), w - idx_bits - 1, 0)});
    a.body = {VNonBlocking(
        VId("value"),
        VBin(VId("lo"), "+",
             VParen(VBin(
                 VParen(VBin(VParen(VBin(VSigned(VId("hi")), "-",
                                         VSigned(VId("lo")))),
                             "*",
                             VSigned(VConcat({Bit1(0), VId("frac")})))),
                 ">>>", VLit(w - idx_bits)))))};
  } else {
    a.body = {VNonBlocking(VId("value"),
                           VIndex(VId("table_mem"), VId("index")))};
  }
  m.always_blocks.push_back(std::move(a));
  return m;
}

VModule EmitActivationUnit(const BlockConfig& c) {
  // Thin pipeline stage wrapping the approx LUT; selects between the
  // hard-wired ReLU comparator and the LUT-backed smooth functions.
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "Activation unit: " + DescribeBlock(c);
  AddClkRst(m);
  const int w = c.bit_width;
  m.ports.push_back({"select_relu", PortDir::kInput, 1, false});
  m.ports.push_back({"din", PortDir::kInput, w, false});
  m.ports.push_back({"lut_value", PortDir::kInput, w, false});
  m.ports.push_back({"lut_key", PortDir::kOutput, w, false});
  m.ports.push_back({"dout", PortDir::kOutput, w, true});
  m.assigns.push_back({VId("lut_key"), VId("din")});
  VAlways a;
  a.sensitivity = "posedge clk";
  a.body = {VIf(NotRstN(), {VNonBlocking(VId("dout"), VLit(0))},
                {VIf(VId("select_relu"),
                     {VNonBlocking(
                         VId("dout"),
                         VTernary(VBin(VSigned(VId("din")), ">", VLit(0)),
                                  VId("din"), VRepeat(w, Bit1(0))))},
                     {VNonBlocking(VId("dout"), VId("lut_value"))},
                     VBranchStyle::kInline, VBranchStyle::kInline)},
                VBranchStyle::kInline)};
  m.always_blocks.push_back(std::move(a));
  return m;
}

VModule EmitConnectionBox(const BlockConfig& c) {
  // Crossbar reconnecting producer blocks to consumer blocks, plus the
  // shifting latch for approximate division (paper §3.2).
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "Connection box: " + DescribeBlock(c);
  AddClkRst(m);
  const int w = c.bit_width;
  const int p = c.ports;
  const int sel_bits = std::max(
      1, static_cast<int>(std::ceil(std::log2(static_cast<double>(p)))));
  m.ports.push_back({"din", PortDir::kInput, w * p, false});
  m.ports.push_back({"select", PortDir::kInput, sel_bits * p, false});
  m.ports.push_back({"shift", PortDir::kInput, 4, false});
  m.ports.push_back({"dout", PortDir::kOutput, w * p, true});

  std::vector<VStmt> route;
  for (int out = 0; out < p; ++out)
    route.push_back(VNonBlocking(
        Lane("dout", w, out),
        VBin(VSigned(VPart(VId("din"),
                           VBinCompact(Lane("select", sel_bits, out), "*",
                                       VLit(w)),
                           w)),
             ">>>", VId("shift"))));

  VAlways a;
  a.sensitivity = "posedge clk";
  a.body = {VIf(NotRstN(), {VNonBlocking(VId("dout"), VLit(0))},
                std::move(route), VBranchStyle::kInline)};
  m.always_blocks.push_back(std::move(a));
  return m;
}

VModule EmitAgu(const BlockConfig& c) {
  // Template AGU of Fig. 6: pattern registers (start, footprint, x/y
  // length, stride, offset) stepped by a nested x/y counter pair; emits
  // an address stream and the data-driven trigger events.
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "AGU (" + AguRoleName(c.agu_role) + "): " + DescribeBlock(c);
  AddClkRst(m);
  const int aw = c.agu_role == AguRole::kMain ? 32 : 18;
  const int pat_bits = std::max(
      1, static_cast<int>(
             std::ceil(std::log2(static_cast<double>(c.patterns)))));
  m.ports.push_back({"start_event", PortDir::kInput, 1, false});
  m.ports.push_back({"pattern_sel", PortDir::kInput, pat_bits, false});
  m.ports.push_back({"cfg_start", PortDir::kInput, aw, false});
  m.ports.push_back({"cfg_x_len", PortDir::kInput, 16, false});
  m.ports.push_back({"cfg_y_len", PortDir::kInput, 16, false});
  m.ports.push_back({"cfg_stride", PortDir::kInput, 16, false});
  m.ports.push_back({"cfg_offset", PortDir::kInput, aw, false});
  m.ports.push_back({"addr", PortDir::kOutput, aw, true});
  m.ports.push_back({"addr_valid", PortDir::kOutput, 1, true});
  m.ports.push_back({"pattern_done", PortDir::kOutput, 1, true});

  m.nets.push_back({"x_cnt", 16, true, 0});
  m.nets.push_back({"y_cnt", 16, true, 0});
  m.nets.push_back({"row_base", aw, true, 0});
  m.nets.push_back({"running", 1, true, 0});

  VStmt step = VIf(
      VBin(VBin(VId("x_cnt"), "+", VLit(1)), "<", VId("cfg_x_len")),
      {VNonBlocking(VId("x_cnt"), VBin(VId("x_cnt"), "+", VLit(1))),
       VNonBlocking(VId("addr"), VBin(VId("addr"), "+", VId("cfg_stride")))},
      {VIf(VBin(VBin(VId("y_cnt"), "+", VLit(1)), "<", VId("cfg_y_len")),
           {VSeq({VNonBlocking(VId("x_cnt"), VLit(0)),
                  VNonBlocking(VId("y_cnt"),
                               VBin(VId("y_cnt"), "+", VLit(1)))}),
            VNonBlocking(VId("row_base"),
                         VBin(VId("row_base"), "+", VId("cfg_offset"))),
            VNonBlocking(VId("addr"),
                         VBin(VId("row_base"), "+", VId("cfg_offset")))},
           {VSeq({VNonBlocking(VId("running"), Bit1(0)),
                  VNonBlocking(VId("addr_valid"), Bit1(0)),
                  VNonBlocking(VId("pattern_done"), Bit1(1))})})});

  VAlways a;
  a.sensitivity = "posedge clk";
  a.body = {VIf(
      NotRstN(),
      {VSeq({VNonBlocking(VId("x_cnt"), VLit(0)),
             VNonBlocking(VId("y_cnt"), VLit(0)),
             VNonBlocking(VId("row_base"), VLit(0)),
             VNonBlocking(VId("running"), Bit1(0))}),
       VSeq({VNonBlocking(VId("addr"), VLit(0)),
             VNonBlocking(VId("addr_valid"), Bit1(0)),
             VNonBlocking(VId("pattern_done"), Bit1(0))})},
      {VIf(VId("start_event"),
           {VSeq({VNonBlocking(VId("x_cnt"), VLit(0)),
                  VNonBlocking(VId("y_cnt"), VLit(0)),
                  VNonBlocking(VId("row_base"), VId("cfg_start"))}),
            VSeq({VNonBlocking(VId("addr"), VId("cfg_start")),
                  VNonBlocking(VId("addr_valid"), Bit1(1)),
                  VNonBlocking(VId("running"), Bit1(1))}),
            VNonBlocking(VId("pattern_done"), Bit1(0))},
           {VIf(VId("running"), {std::move(step)},
                {VNonBlocking(VId("pattern_done"), Bit1(0))})})})};
  m.always_blocks.push_back(std::move(a));
  return m;
}

VModule EmitCoordinator(const BlockConfig& c) {
  // Central FSM: walks the fold schedule, raising the pattern-trigger
  // event of each step when the previous step's AGUs report done
  // (data-driven producer/consumer reconnection, paper §3.3).
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "Scheduling coordinator: " + DescribeBlock(c);
  AddClkRst(m);
  const int ev = c.fold_events;
  const int st_bits = std::max(
      1, static_cast<int>(
             std::ceil(std::log2(static_cast<double>(ev + 1)))));
  m.ports.push_back({"go", PortDir::kInput, 1, false});
  m.ports.push_back({"step_done", PortDir::kInput, 1, false});
  m.ports.push_back({"trigger", PortDir::kOutput, ev, true});
  m.ports.push_back({"state", PortDir::kOutput, st_bits, true});
  m.ports.push_back({"all_done", PortDir::kOutput, 1, true});

  VAlways a;
  a.sensitivity = "posedge clk";
  a.body = {VIf(
      NotRstN(),
      {VSeq({VNonBlocking(VId("state"), VLit(0)),
             VNonBlocking(VId("trigger"), VLit(0)),
             VNonBlocking(VId("all_done"), Bit1(0))})},
      {VIf(VBin(VId("go"), "&&", VBin(VId("state"), "==", VLit(0))),
           {VSeq({VNonBlocking(VId("state"), VLit(1)),
                  VNonBlocking(VId("trigger"), VLit(ev, 1, 'b')),
                  VNonBlocking(VId("all_done"), Bit1(0))})},
           {VIf(VBin(VId("step_done"), "&&",
                     VBin(VId("state"), "!=", VLit(0))),
                {VIf(VBin(VId("state"), "==", VLit(ev)),
                     {VSeq({VNonBlocking(VId("state"), VLit(0)),
                            VNonBlocking(VId("trigger"), VLit(0)),
                            VNonBlocking(VId("all_done"), Bit1(1))})},
                     {VNonBlocking(VId("state"),
                                   VBin(VId("state"), "+", VLit(1))),
                      VNonBlocking(VId("trigger"),
                                   VBin(VId("trigger"), "<<", VLit(1)))})},
                {VNonBlocking(VId("trigger"), VLit(0))})})})};
  m.always_blocks.push_back(std::move(a));
  return m;
}

VModule EmitBufferBank(const BlockConfig& c) {
  // Simple dual-port on-chip buffer of `depth` bytes, `lanes` elements
  // wide per access.
  VModule m;
  m.name = BlockModuleName(c);
  m.comment = "On-chip buffer bank: " + DescribeBlock(c);
  AddClkRst(m);
  const int w = c.bit_width * c.lanes;
  const std::int64_t words =
      std::max<std::int64_t>(1, c.depth * 8 / std::max(1, w));
  const int aw = std::max(
      1, static_cast<int>(
             std::ceil(std::log2(static_cast<double>(words)))));
  m.ports.push_back({"wr_en", PortDir::kInput, 1, false});
  m.ports.push_back({"wr_addr", PortDir::kInput, aw, false});
  m.ports.push_back({"wr_data", PortDir::kInput, w, false});
  m.ports.push_back({"rd_addr", PortDir::kInput, aw, false});
  m.ports.push_back({"rd_data", PortDir::kOutput, w, true});
  m.nets.push_back({"mem", w, true, words});
  VAlways a;
  a.sensitivity = "posedge clk";
  a.body = {VIf(VId("wr_en"),
                {VNonBlocking(VIndex(VId("mem"), VId("wr_addr")),
                              VId("wr_data"))},
                {}, VBranchStyle::kInline),
            VNonBlocking(VId("rd_data"),
                         VIndex(VId("mem"), VId("rd_addr")))};
  m.always_blocks.push_back(std::move(a));
  return m;
}

}  // namespace

std::string BlockModuleName(const BlockConfig& c) {
  std::ostringstream os;
  os << "db_" << BlockTypeName(c.type) << "_w" << c.bit_width;
  switch (c.type) {
    case BlockType::kSynergyNeuron:
      os << "_l" << c.lanes << (c.use_dsp ? "_dsp" : "_lut");
      break;
    case BlockType::kAccumulator:
    case BlockType::kPoolingUnit:
    case BlockType::kActivationUnit:
    case BlockType::kLrnUnit:
    case BlockType::kDropoutUnit:
      os << "_l" << c.lanes;
      break;
    case BlockType::kClassifier:
      os << "_k" << c.lanes;
      break;
    case BlockType::kApproxLut:
      os << "_d" << c.depth << (c.interpolate ? "_interp" : "_nearest");
      break;
    case BlockType::kConnectionBox:
      os << "_p" << c.ports;
      break;
    case BlockType::kAgu:
      os << "_" << AguRoleName(c.agu_role) << "_pat" << c.patterns;
      break;
    case BlockType::kCoordinator:
      os << "_ev" << c.fold_events;
      break;
    case BlockType::kBufferBank:
      os << "_l" << c.lanes << "_b" << c.depth;
      break;
  }
  return ToIdentifier(os.str());
}

VModule EmitBlockModule(const BlockConfig& c) {
  ValidateBlockConfig(c);
  switch (c.type) {
    case BlockType::kSynergyNeuron: return EmitSynergyNeuron(c);
    case BlockType::kAccumulator: return EmitAccumulator(c);
    case BlockType::kPoolingUnit: return EmitPoolingUnit(c);
    case BlockType::kLrnUnit: return EmitLrnUnit(c);
    case BlockType::kDropoutUnit: return EmitDropoutUnit(c);
    case BlockType::kClassifier: return EmitClassifier(c);
    case BlockType::kActivationUnit: return EmitActivationUnit(c);
    case BlockType::kApproxLut: return EmitApproxLut(c);
    case BlockType::kConnectionBox: return EmitConnectionBox(c);
    case BlockType::kAgu: return EmitAgu(c);
    case BlockType::kCoordinator: return EmitCoordinator(c);
    case BlockType::kBufferBank: return EmitBufferBank(c);
  }
  DB_THROW("unhandled block type");
}

}  // namespace db
