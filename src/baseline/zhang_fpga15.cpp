#include "baseline/zhang_fpga15.h"

namespace db {

// Constants are defined inline in the header; this translation unit
// anchors the library target.
constexpr double ZhangFpga15::kAlexnetSeconds;
constexpr double ZhangFpga15::kBoardWatts;

}  // namespace db
