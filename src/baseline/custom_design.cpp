#include "baseline/custom_design.h"

#include <cmath>

#include "models/zoo.h"

namespace db {

CustomDesignResult BuildCustomDesign(const Network& net,
                                     const CustomFactors& factors) {
  CustomDesignResult result;
  result.design = GenerateAccelerator(net, DbConstraint());

  result.resources = result.design.resources.total;
  result.resources.lut = static_cast<std::int64_t>(
      std::llround(static_cast<double>(result.resources.lut) *
                   factors.lut_factor));
  result.resources.ff = static_cast<std::int64_t>(
      std::llround(static_cast<double>(result.resources.ff) *
                   factors.ff_factor));
  result.resources.bram_bytes = static_cast<std::int64_t>(
      std::llround(static_cast<double>(result.resources.bram_bytes) *
                   factors.bram_factor));

  PerfOptions opts;
  opts.segment_overhead_cycles = factors.segment_overhead_cycles;
  opts.layer_overhead_cycles = factors.layer_overhead_cycles;
  result.perf = SimulatePerformance(net, result.design, opts);
  // Apply the hand-tuned dataflow efficiency uniformly.
  auto scale = [&](std::int64_t cycles) {
    return static_cast<std::int64_t>(
        std::llround(static_cast<double>(cycles) *
                     factors.datapath_efficiency));
  };
  result.perf.total_cycles = scale(result.perf.total_cycles);
  for (LayerTiming& lt : result.perf.layers) {
    lt.total_cycles = scale(lt.total_cycles);
    lt.compute_cycles = scale(lt.compute_cycles);
    lt.memory_cycles = scale(lt.memory_cycles);
  }
  result.energy = EstimateEnergy(result.resources, result.perf,
                                 DeviceCatalog("zynq-7045"));
  return result;
}

}  // namespace db
