// "Custom" baseline: the manually-designed accelerators of the paper's
// evaluation (a graduate student hand-wrote one per application).
//
// A hand design differs from the NN-Gen output in two systematic ways the
// evaluation exposes: (1) hand-written RTL carries none of the generator's
// generality overhead, so it spends slightly fewer LUTs/FFs (Table 3's CU
// columns sit a few percent below DB); (2) a hand-tuned schedule shaves
// the coordinator/AGU conservatism, running moderately faster (Fig. 8:
// "Custom mostly beats DB").  We model the custom design as the same
// datapath with those two documented adjustments applied.
#pragma once

#include "core/generator.h"
#include "sim/perf_model.h"
#include "sim/power_model.h"

namespace db {

/// Documented hand-tuning factors.
struct CustomFactors {
  double lut_factor = 0.92;   // generator's reconfigurability overhead
  double ff_factor = 0.96;
  double bram_factor = 1.0;
  /// Hand schedules cut the per-segment retrigger and per-layer drain.
  std::int64_t segment_overhead_cycles = 3;
  std::int64_t layer_overhead_cycles = 10;
  /// A hand-crafted dataflow (layer fusion, tuned unrolling, exact
  /// double-buffer depths) retires the same work in fewer cycles than the
  /// generated general-purpose schedule; Fig. 8 shows Custom roughly 2x
  /// ahead of DB on the large CNNs.
  double datapath_efficiency = 0.5;
};

struct CustomDesignResult {
  AcceleratorDesign design;     // underlying datapath (shared generator IP)
  ResourceBudget resources;     // adjusted hand-design resources
  PerfResult perf;
  EnergyResult energy;
};

/// Build the per-application custom accelerator at the paper's "Custom"
/// scale (the medium Z-7045 budget the DB scheme also uses).
CustomDesignResult BuildCustomDesign(const Network& net,
                                     const CustomFactors& factors = {});

}  // namespace db
