// CPU baseline timing/energy model (the paper's Xeon 2.4 GHz software
// runs).
//
// Fig. 8/9 compare forward-propagation time and energy against software
// NN inference on a Xeon.  On this substrate the CPU time is modelled
// from the network's FLOP count and a calibrated effective-throughput
// figure (Caffe-era single-socket CPU inference sustains a few GFLOP/s),
// plus a fixed per-invocation overhead that dominates for the tiny ANN
// models.  An optional measured mode times the in-repo float executor on
// the host for sanity checking.
#pragma once

#include <string>

#include "graph/network.h"
#include "nn/weights.h"

namespace db {

struct CpuModelParams {
  double effective_gflops = 5.5;  // sustained NN throughput of the Xeon
  double invocation_overhead_s = 30e-6;  // Caffe dispatch + cache warmup
  double package_watts = 95.0;          // Xeon TDP-class draw under load
};

struct CpuRunEstimate {
  double seconds = 0.0;
  double joules = 0.0;
};

/// Model-based CPU estimate for one forward propagation of `net`.
CpuRunEstimate EstimateCpuRun(const Network& net,
                              const CpuModelParams& params = {});

/// Measured mode: wall-clock one forward propagation of the float
/// executor on this host (non-deterministic across hosts; for sanity
/// checks only, never used in the reproduced figures).
double MeasureCpuSeconds(const Network& net, const WeightStore& weights);

}  // namespace db
