// Reference numbers from Zhang et al., "Optimizing FPGA-based Accelerator
// Design for Deep Convolutional Neural Networks", FPGA 2015 [7] — the
// customized Alexnet accelerator the paper compares against in Fig. 8/9
// (Virtex-7 VC707, 100 MHz).
#pragma once

namespace db {

struct ZhangFpga15 {
  /// Alexnet forward propagation (convolutional layers dominated), as
  /// reported by the FPGA'15 paper.
  static constexpr double kAlexnetSeconds = 0.02161;  // 21.61 ms
  /// Reported board power on the VC707.
  static constexpr double kBoardWatts = 18.61;
  /// Energy per inference (the DeepBurning paper quotes ~0.5 J).
  static constexpr double kAlexnetJoules = kAlexnetSeconds * kBoardWatts;
};

}  // namespace db
