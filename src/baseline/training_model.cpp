#include "baseline/training_model.h"

#include "graph/layer_stats.h"
#include "sim/power_model.h"

namespace db {

TrainingEstimate EstimateAcceleratorTraining(
    const Network& net, const AcceleratorDesign& design,
    std::int64_t samples_per_epoch, std::int64_t epochs,
    const std::string& device_name, const TrainingModelParams& params) {
  const PerfResult forward = SimulatePerformance(net, design);
  const LayerStats stats = ComputeNetworkStats(net);

  // Backward pass reuses the forward schedule's datapath utilisation.
  const double compute_s =
      forward.TotalSeconds() * (1.0 + params.backward_compute_factor);
  // Weight update traffic streams every parameter several times.
  const double update_bytes =
      static_cast<double>(stats.weight_count) *
      static_cast<double>(design.config.ElementBytes()) *
      params.weight_update_passes;
  const double update_s =
      update_bytes / (design.config.dram_bandwidth_gbs * 1e9);

  TrainingEstimate est;
  est.seconds_per_sample = compute_s + update_s;
  est.seconds_per_epoch =
      est.seconds_per_sample * static_cast<double>(samples_per_epoch);
  est.total_seconds =
      est.seconds_per_epoch * static_cast<double>(epochs);

  // Energy: scale the single-inference energy by the same work ratio.
  const EnergyResult inference_energy = EstimateEnergy(
      design.resources.total, forward, DeviceCatalog(device_name));
  const double per_sample_j =
      inference_energy.total_joules * est.seconds_per_sample /
      std::max(forward.TotalSeconds(), 1e-12);
  est.joules = per_sample_j * static_cast<double>(samples_per_epoch) *
               static_cast<double>(epochs);
  return est;
}

TrainingEstimate EstimateCpuTraining(const Network& net,
                                     std::int64_t samples_per_epoch,
                                     std::int64_t epochs,
                                     const CpuModelParams& cpu,
                                     const TrainingModelParams& params) {
  const CpuRunEstimate forward = EstimateCpuRun(net, cpu);
  TrainingEstimate est;
  est.seconds_per_sample =
      forward.seconds * (1.0 + params.backward_compute_factor +
                         /*update pass on cached weights*/ 0.1);
  est.seconds_per_epoch =
      est.seconds_per_sample * static_cast<double>(samples_per_epoch);
  est.total_seconds =
      est.seconds_per_epoch * static_cast<double>(epochs);
  est.joules = est.total_seconds * cpu.package_watts;
  return est;
}

}  // namespace db
