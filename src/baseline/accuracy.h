// Accuracy metrics for Fig. 10.
//
// Classification models report the fraction of correctly-classified
// inputs; non-classification models use the paper's Eq. (1):
//     accuracy = (1 - (A - B)^2 / B^2) * 100%
// with B the golden-reference result and A the NN (or accelerator)
// result.  For vector outputs the squared terms aggregate over elements.
#pragma once

#include <functional>
#include <span>

#include "models/trained.h"
#include "tensor/tensor.h"

namespace db {

/// Eq. (1) on scalars, in percent, clamped to [0, 100].
double Eq1Accuracy(double a, double b);

/// Eq. (1) with vector aggregation: 1 - ||A-B||^2 / ||B||^2, in percent.
double Eq1AccuracyTensors(const Tensor& a, const Tensor& b);

/// Fraction of samples where `infer(input)`'s argmax matches the target
/// argmax, in percent.
double ClassificationAccuracyPct(
    std::span<const TrainSample> samples,
    const std::function<Tensor(const Tensor&)>& infer);

/// Mean Eq. (1) accuracy of `infer` against the sample targets.
double RegressionAccuracyPct(
    std::span<const TrainSample> samples,
    const std::function<Tensor(const Tensor&)>& infer);

/// Mean Eq. (1) accuracy of `infer` against a reference inference
/// function evaluated on the same inputs (fidelity for the random-weight
/// ImageNet models).
double FidelityPct(std::span<const TrainSample> samples,
                   const std::function<Tensor(const Tensor&)>& infer,
                   const std::function<Tensor(const Tensor&)>& reference);

/// Layer whose activation fidelity comparisons should probe: the
/// pre-softmax logits when the network ends in softmax (a 1000-way
/// softmax's ~1e-3 outputs sit below the fixed-point LSB, so comparing
/// there measures quantisation floor, not datapath fidelity), otherwise
/// the output layer itself.
std::string FidelityProbeLayer(const Network& net);

/// Score one trained model with the scoring rule its AccuracyKind
/// demands.  `infer` runs the implementation under test (CPU executor or
/// accelerator functional simulation); `reference` is only consulted for
/// kFidelity.
double ScoreModelPct(
    const TrainedModel& model,
    const std::function<Tensor(const Tensor&)>& infer,
    const std::function<Tensor(const Tensor&)>& reference = {});

}  // namespace db
