#include "baseline/accuracy.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "models/golden.h"

namespace db {

double Eq1Accuracy(double a, double b) {
  const double denom = b * b;
  if (denom < 1e-30) return a == b ? 100.0 : 0.0;
  const double acc = (1.0 - (a - b) * (a - b) / denom) * 100.0;
  return std::clamp(acc, 0.0, 100.0);
}

double Eq1AccuracyTensors(const Tensor& a, const Tensor& b) {
  DB_CHECK_MSG(a.shape() == b.shape(), "Eq1 shape mismatch");
  double diff_sq = 0.0;
  double ref_sq = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    diff_sq += d * d;
    ref_sq += static_cast<double>(b[i]) * b[i];
  }
  if (ref_sq < 1e-30) return diff_sq < 1e-30 ? 100.0 : 0.0;
  return std::clamp((1.0 - diff_sq / ref_sq) * 100.0, 0.0, 100.0);
}

double ClassificationAccuracyPct(
    std::span<const TrainSample> samples,
    const std::function<Tensor(const Tensor&)>& infer) {
  if (samples.empty()) return 0.0;
  std::int64_t correct = 0;
  for (const TrainSample& s : samples)
    if (infer(s.input).ArgMax() == s.target.ArgMax()) ++correct;
  return 100.0 * static_cast<double>(correct) /
         static_cast<double>(samples.size());
}

double RegressionAccuracyPct(
    std::span<const TrainSample> samples,
    const std::function<Tensor(const Tensor&)>& infer) {
  if (samples.empty()) return 0.0;
  double total = 0.0;
  for (const TrainSample& s : samples)
    total += Eq1AccuracyTensors(infer(s.input), s.target);
  return total / static_cast<double>(samples.size());
}

double FidelityPct(std::span<const TrainSample> samples,
                   const std::function<Tensor(const Tensor&)>& infer,
                   const std::function<Tensor(const Tensor&)>& reference) {
  if (samples.empty()) return 0.0;
  double total = 0.0;
  for (const TrainSample& s : samples)
    total += Eq1AccuracyTensors(infer(s.input), reference(s.input));
  return total / static_cast<double>(samples.size());
}

std::string FidelityProbeLayer(const Network& net) {
  const IrLayer& out = net.OutputLayer();
  if (out.kind() == LayerKind::kSoftmax && !out.input_ids.empty())
    return net.layer(out.input_ids.front()).name();
  return out.name();
}

double ScoreModelPct(const TrainedModel& model,
                     const std::function<Tensor(const Tensor&)>& infer,
                     const std::function<Tensor(const Tensor&)>& reference) {
  switch (model.accuracy_kind) {
    case AccuracyKind::kClassification:
      return ClassificationAccuracyPct(model.test_set, infer);
    case AccuracyKind::kRelativeError:
      return RegressionAccuracyPct(model.test_set, infer);
    case AccuracyKind::kTourQuality: {
      // Decode the settled activations into a tour; accuracy is Eq. (1)
      // on tour length vs the brute-force optimum.
      double total = 0.0;
      for (const TrainSample& s : model.test_set) {
        const Tensor acts = infer(s.input);
        const std::vector<int> tour =
            DecodeTourFromActivations(acts, kHopfieldCities);
        double len = 0.0;
        for (std::size_t i = 0; i < tour.size(); ++i) {
          const int a = tour[i];
          const int b = tour[(i + 1) % tour.size()];
          len += model.tsp_distances[static_cast<std::size_t>(a)]
                                    [static_cast<std::size_t>(b)];
        }
        total += Eq1Accuracy(len, model.tsp_optimal_length);
      }
      return model.test_set.empty()
                 ? 0.0
                 : total / static_cast<double>(model.test_set.size());
    }
    case AccuracyKind::kFidelity:
      DB_CHECK_MSG(static_cast<bool>(reference),
                   "fidelity scoring needs a reference function");
      return FidelityPct(model.test_set, infer, reference);
  }
  DB_THROW("unhandled accuracy kind");
}

}  // namespace db
