// Accelerator-assisted training time estimation.
//
// The paper motivates DeepBurning with model search: "FPGAs are fast and
// power-efficient enough to accelerate the time-consuming NN training, at
// the same time [they] possess the reconfigurability to enable the
// designers to explore the space of NN models".  Training runs the same
// datapath as inference with "repetitive network inference in training"
// (§4.2): each sample costs one forward pass plus a backward pass of
// roughly twice the forward MACs, plus a weight-update sweep through DRAM.
#pragma once

#include <string>

#include "baseline/cpu_model.h"
#include "core/generator.h"
#include "sim/perf_model.h"

namespace db {

struct TrainingModelParams {
  /// Backward-pass arithmetic relative to forward (dX and dW each cost
  /// about one forward's MACs on the same lanes).
  double backward_compute_factor = 2.0;
  /// Weight update: every parameter is read, updated and written back
  /// once per sample (momentum buffer included).
  double weight_update_passes = 3.0;
};

struct TrainingEstimate {
  double seconds_per_sample = 0.0;
  double seconds_per_epoch = 0.0;
  double total_seconds = 0.0;
  double joules = 0.0;
};

/// Training-time estimate on a generated accelerator.
TrainingEstimate EstimateAcceleratorTraining(
    const Network& net, const AcceleratorDesign& design,
    std::int64_t samples_per_epoch, std::int64_t epochs,
    const std::string& device_name = "zynq-7045",
    const TrainingModelParams& params = {});

/// Training-time estimate on the CPU baseline.
TrainingEstimate EstimateCpuTraining(const Network& net,
                                     std::int64_t samples_per_epoch,
                                     std::int64_t epochs,
                                     const CpuModelParams& cpu = {},
                                     const TrainingModelParams& params = {});

}  // namespace db
