#include "baseline/cpu_model.h"

#include <chrono>

#include "graph/layer_stats.h"
#include "nn/executor.h"

namespace db {

CpuRunEstimate EstimateCpuRun(const Network& net,
                              const CpuModelParams& params) {
  const LayerStats stats = ComputeNetworkStats(net);
  CpuRunEstimate est;
  est.seconds = params.invocation_overhead_s +
                static_cast<double>(stats.Flops()) /
                    (params.effective_gflops * 1e9);
  est.joules = est.seconds * params.package_watts;
  return est;
}

double MeasureCpuSeconds(const Network& net, const WeightStore& weights) {
  Executor exec(net, weights);
  const IrLayer& in_layer = net.layer(net.input_ids().front());
  const BlobShape& shape = in_layer.output_shape;
  Tensor input(Shape{shape.channels, shape.height, shape.width});
  Rng rng(1);
  input.FillUniform(rng, 0.0f, 1.0f);

  const auto start = std::chrono::steady_clock::now();
  (void)exec.ForwardOutput(input);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace db
