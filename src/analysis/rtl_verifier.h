// RTL static analysis over the elaborated netlist (rtl/netlist.h).
//
// VerifyDesign (analysis/verifier.h) proves schedule/memory legality of
// the *plan*; nothing proved the emitted hardware itself until this
// suite.  VerifyRtl elaborates design.rtl into a flattened netlist and
// runs five structural passes, reporting through the same diagnostics
// engine (canonical ordering, byte-stable text/JSON).
//
// Rule catalogue (ids are stable; see DESIGN.md §10):
//   rtl.drive      every loaded bit has a driver, no two distinct
//                  drivers overlap on a bit, primary inputs are never
//                  driven internally; elaboration failures (undeclared
//                  nets, undefined modules, instantiation cycles)
//                  surface here.  Memories are exempt (externally
//                  initialised ROM images)
//   rtl.width      bottom-up expression width inference: assignment
//                  truncation, out-of-range slices and bit-selects,
//                  unsized literals inside concatenations, instance
//                  binding width mismatches, reversed slice bounds
//   rtl.comb.loop  Tarjan SCC over the combinational edge set (assigns,
//                  always @* blocks, instance bindings); every cycle is
//                  one error listing its member nets
//   rtl.clock      single-clock discipline: sensitivity is `*` or
//                  `posedge <declared net>`, one clock per module,
//                  non-blocking assignments only in clocked blocks,
//                  blocking only in combinational blocks
//   rtl.dead       registers written but never read (warning), dangling
//                  nets (warning), wires driven but never read (note;
//                  silent for instance-output taps).  Ports are exempt:
//                  an unread input port is the instantiator's contract,
//                  not a bug in the module
#pragma once

#include "analysis/diagnostics.h"
#include "rtl/verilog.h"

namespace db::analysis {

// Stable rule identifiers (also the `analysis.rtl.rule.<id>` metrics).
inline constexpr char kRuleRtlDrive[] = "rtl.drive";
inline constexpr char kRuleRtlWidth[] = "rtl.width";
inline constexpr char kRuleRtlCombLoop[] = "rtl.comb.loop";
inline constexpr char kRuleRtlClock[] = "rtl.clock";
inline constexpr char kRuleRtlDead[] = "rtl.dead";

/// Run every rtl.* pass over the design's RTL and collect diagnostics.
/// Never throws: structurally broken RTL becomes error diagnostics.
AnalysisReport VerifyRtl(const VDesign& design);

/// Gate form: throws db::Error carrying the report text when VerifyRtl
/// finds any error-severity diagnostic.  Warnings and notes pass.
void VerifyRtlOrThrow(const VDesign& design);

}  // namespace db::analysis
