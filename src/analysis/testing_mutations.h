// Deliberate single-rule design corruptions, shared by the analysis
// negative tests and the `deepburning verify --self-test-break` fixture
// path (tests/cli_exit_codes.cmake) so both exercise the same breakage.
#pragma once

#include <string>
#include <vector>

#include "core/generator.h"

namespace db::analysis {

/// The rule ids BreakRule knows how to trip, in catalogue order.
std::vector<std::string> BreakableRules();

/// Minimally corrupt `design` so that VerifyDesign reports the given rule
/// with error severity.  The corruption stays within the serde value
/// domain (it survives an encode/decode round trip untouched).  Throws
/// db::Error for an unknown rule id or a design without the artifact the
/// rule needs.
void BreakRule(AcceleratorDesign& design, const std::string& rule);

}  // namespace db::analysis
