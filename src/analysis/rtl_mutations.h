// Deliberate single-class RTL corruptions, shared by the rtl.* negative
// tests and the `deepburning verify --self-test-break-rtl` fixture path
// (tests/cli_exit_codes.cmake).  Each mutation class is designed to trip
// exactly one rtl.* rule at error severity (dead.reg trips rtl.dead at
// warning severity and leaves the design legal), proving the rules
// neither alias nor shadow each other.
#pragma once

#include <string>
#include <vector>

#include "rtl/verilog.h"

namespace db::analysis {

/// The mutation classes BreakRtlRule knows, in catalogue order, with the
/// rule each one trips:
///   drive.unbound   rtl.drive      remove an input-port binding whose
///                                  child reads the port
///   drive.double    rtl.drive      point a second continuous assign at
///                                  an already-driven target
///   width.slice     rtl.width      widen a rhs slice one bit past the
///                                  declared net
///   clock.blocking  rtl.clock      turn a non-blocking assignment in a
///                                  clocked block into a blocking one
///   comb.cycle      rtl.comb.loop  splice two mutually-dependent
///                                  assigns into the top module
///   dead.reg        rtl.dead       add a register that is written every
///                                  cycle and never read (warning only)
std::vector<std::string> BreakableRtlMutations();

/// Minimally corrupt `design` per the given mutation class.  The
/// corruption stays within the serde value domain (it survives an
/// encode/decode round trip untouched).  Throws db::Error for an unknown
/// class or RTL without the construct the class needs.
void BreakRtlRule(VDesign& design, const std::string& mutation);

}  // namespace db::analysis
