// Whole-design static verifier: proves schedule/AGU/memory-map legality
// of a generated AcceleratorDesign before a single simulated cycle.
//
// The generator's invariants (paper §3.3–§3.4) are only implicit in the
// passes that construct a design; nothing re-checks them once a design
// leaves NN-Gen — a corrupted cache entry or a buggy compiler pass is
// otherwise caught dynamically, by the simulator crashing or a
// differential test diverging.  VerifyDesign re-derives every invariant
// from the design artifacts alone and reports violations through the
// diagnostics engine (analysis/diagnostics.h).
//
// Rule catalogue (ids are stable; see DESIGN.md §8 for the severity
// policy):
//   agu.bounds       every AGU pattern footprint resolves inside its
//                    mapped DRAM region (main role) or the on-chip
//                    buffer window (data/weight roles), with no
//                    degenerate loops and no address wrap
//   mem.layout       memory-map regions are non-empty, port-aligned,
//                    non-overlapping, uniquely named, and consistent
//                    with the recorded total size
//   sched.hazard     no step reads a producer blob before the steps
//                    that write it completed; no block is producer and
//                    consumer of the same slot; pattern triggers arm
//                    exactly once and belong to the firing layer
//   fold.coverage    spatial segments partition each folded layer
//                    exactly (no gap, no double-compute) and lane
//                    grants fit the configured pools
//   buffer.capacity  ping/pong/staging slots sit inside the data
//                    buffer, never overlap, and hold the planned tiles
//   conn.ports       the crossbar microcode mirrors the schedule and
//                    only drives ports whose blocks are instantiated
//   lut.domain       every required Approx LUT exists, covers a
//                    non-empty domain in the datapath format, and its
//                    generated table is key-monotone
//   res.budget       the block inventory re-tallies to the recorded
//                    resource report, fits the constraint budget, and
//                    block parameterisations are library-realisable
#pragma once

#include <string>

#include "analysis/diagnostics.h"
#include "core/generator.h"
#include "core/range_profiler.h"
#include "graph/network.h"

namespace db::analysis {

// Stable rule identifiers (also the `analysis.rule.<id>` metric names).
inline constexpr char kRuleAguBounds[] = "agu.bounds";
inline constexpr char kRuleMemLayout[] = "mem.layout";
inline constexpr char kRuleSchedHazard[] = "sched.hazard";
inline constexpr char kRuleFoldCoverage[] = "fold.coverage";
inline constexpr char kRuleBufferCapacity[] = "buffer.capacity";
inline constexpr char kRuleConnPorts[] = "conn.ports";
inline constexpr char kRuleLutDomain[] = "lut.domain";
inline constexpr char kRuleResBudget[] = "res.budget";

struct VerifyOptions {
  /// Observed activation ranges from the calibration profiler; when set,
  /// LUT input domains are additionally checked against the observed
  /// magnitudes (saturation outside the table domain is a warning).
  const RangeProfile* ranges = nullptr;
};

/// Run every rule pass over the design and collect diagnostics.  Never
/// throws: a pass that trips over a structurally broken artifact (e.g. a
/// fold plan missing a layer) converts the failure into an error
/// diagnostic under its own rule id.
AnalysisReport VerifyDesign(const Network& net,
                            const AcceleratorDesign& design,
                            const VerifyOptions& options = {});

/// Gate form: throws db::Error carrying the report text when VerifyDesign
/// finds any error-severity diagnostic.  Warnings pass.
void VerifyDesignOrThrow(const Network& net,
                         const AcceleratorDesign& design,
                         const VerifyOptions& options = {});

}  // namespace db::analysis
