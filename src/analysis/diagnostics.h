// Diagnostics engine for the static design verifier (src/analysis).
//
// Every rule pass reports through one AnalysisReport: a flat list of
// Diagnostic{severity, rule id, location path, message} records.  The
// report renders byte-stably — diagnostics are sorted into a canonical
// order (severity, rule, location, message) before text or JSON export,
// so two runs over the same design emit identical bytes regardless of
// the order the passes executed in.
#pragma once

#include <string>
#include <vector>

namespace db::analysis {

enum class Severity { kError, kWarning, kNote };

std::string SeverityName(Severity severity);

/// One finding of one rule pass.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule;      // rule id, e.g. "agu.bounds" (see DESIGN.md §8)
  std::string location;  // slash path into the design, e.g. "agu/pattern:3"
  std::string message;
};

/// The verifier's result: every diagnostic from every rule pass.
class AnalysisReport {
 public:
  void Add(Severity severity, std::string rule, std::string location,
           std::string message);

  /// Append every diagnostic of `other`; rendering re-sorts into the
  /// canonical order, so merged reports stay byte-stable regardless of
  /// merge order.
  void Merge(const AnalysisReport& other);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  int ErrorCount() const;
  int WarningCount() const;
  /// True when no error-severity diagnostic was reported (warnings and
  /// notes do not make a design illegal).
  bool ok() const { return ErrorCount() == 0; }

  /// True when any diagnostic carries the given rule id.
  bool HasRule(const std::string& rule) const;

  /// Canonical human-readable rendering, one line per diagnostic:
  ///   error[agu.bounds] agu/pattern:3: footprint ends at 512 past ...
  /// plus a trailing summary line.  Byte-stable for equal contents.
  std::string ToText() const;

  /// Canonical JSON rendering:
  ///   {"errors":N,"warnings":N,"diagnostics":[{...},...]}
  /// with sorted diagnostics and escaped strings.  Byte-stable.
  std::string ToJson() const;

 private:
  /// The canonical order both renderers use: errors first, then by rule
  /// id, location and message.
  std::vector<Diagnostic> Sorted() const;

  std::vector<Diagnostic> diags_;
};

}  // namespace db::analysis
