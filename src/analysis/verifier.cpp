#include "analysis/verifier.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/math_util.h"
#include "common/strings.h"
#include "core/approx_lut.h"
#include "core/connection_plan.h"
#include "graph/layer_stats.h"
#include "hwlib/resource_model.h"

namespace db::analysis {
namespace {

// ---------------------------------------------------------------------
// Overflow-safe interval arithmetic for AGU address footprints.  A
// corrupted pattern can hold values whose products wrap std::int64_t;
// the verifier must report that as a diagnostic, not exhibit UB itself.
// ---------------------------------------------------------------------

struct AddrInterval {
  std::int64_t lo = 0;   // lowest byte address touched
  std::int64_t hi = 0;   // one past the highest byte touched
  bool wraps = false;    // any intermediate product/sum overflowed
};

bool MulAdd(std::int64_t a, std::int64_t b, std::int64_t c,
            std::int64_t* out) {
  std::int64_t product = 0;
  if (__builtin_mul_overflow(a, b, &product)) return false;
  return !__builtin_add_overflow(product, c, out);
}

/// [lo, hi) of the nested x/y counter sweep, exactly as ExpandPattern
/// walks it, including the final beat's extent.
AddrInterval PatternInterval(const AguPattern& p) {
  AddrInterval iv;
  std::int64_t span_x = 0;
  std::int64_t span_y = 0;
  if (!MulAdd(p.x_length - 1, p.stride, 0, &span_x) ||
      !MulAdd(p.y_length - 1, p.offset, 0, &span_y)) {
    iv.wraps = true;
    return iv;
  }
  std::int64_t lo = p.start_addr;
  std::int64_t hi = p.start_addr;
  if (__builtin_add_overflow(lo, std::min<std::int64_t>(span_x, 0), &lo) ||
      __builtin_add_overflow(lo, std::min<std::int64_t>(span_y, 0), &lo) ||
      __builtin_add_overflow(hi, std::max<std::int64_t>(span_x, 0), &hi) ||
      __builtin_add_overflow(hi, std::max<std::int64_t>(span_y, 0), &hi) ||
      __builtin_add_overflow(hi, p.beat_bytes, &hi)) {
    iv.wraps = true;
    return iv;
  }
  iv.lo = lo;
  iv.hi = hi;
  return iv;
}

std::string LayerNameOrId(const Network& net, int layer_id) {
  for (const IrLayer& layer : net.layers())
    if (layer.id == layer_id) return layer.name();
  return "#" + std::to_string(layer_id);
}

const IrLayer* FindLayer(const Network& net, int layer_id) {
  for (const IrLayer& layer : net.layers())
    if (layer.id == layer_id) return &layer;
  return nullptr;
}

std::string I64(std::int64_t v) { return std::to_string(v); }

// ---------------------------------------------------------------------
// Rule 1: agu.bounds
// ---------------------------------------------------------------------
void CheckAguBounds(const Network& net, const AcceleratorDesign& design,
                    AnalysisReport& report) {
  const auto err = [&](const std::string& loc, const std::string& msg) {
    report.Add(Severity::kError, kRuleAguBounds, loc, msg);
  };
  const auto note = [&](const std::string& loc, const std::string& msg) {
    report.Add(Severity::kNote, kRuleAguBounds, loc, msg);
  };

  for (const AguPattern& p : design.agu_program.patterns) {
    const std::string loc = "agu/pattern:" + std::to_string(p.id);
    if (p.x_length < 1 || p.y_length < 1 || p.beat_bytes < 1) {
      err(loc, "degenerate loop bounds (x_length " + I64(p.x_length) +
               ", y_length " + I64(p.y_length) + ", beat_bytes " +
               I64(p.beat_bytes) + ") — every field must be >= 1");
      continue;
    }
    // The trigger event must name the pattern's own layer; a mismatch
    // means the coordinator would fire this transfer for another layer.
    const std::string event_prefix =
        "layer" + std::to_string(p.layer_id) + "_fold";
    if (!StartsWith(p.event, event_prefix))
      err(loc, "trigger event '" + p.event + "' does not belong to layer " +
               LayerNameOrId(net, p.layer_id));

    const AddrInterval iv = PatternInterval(p);
    if (iv.wraps) {
      err(loc, "address arithmetic wraps 64-bit space (start " +
               I64(p.start_addr) + ", stride " + I64(p.stride) +
               ", offset " + I64(p.offset) + ")");
      continue;
    }

    if (p.role == AguRole::kMain) {
      // DRAM pattern: the whole sweep must sit inside the one region
      // that contains its start address, and that region must be of the
      // kind the transfer claims to move.
      const MemoryRegion* home = nullptr;
      for (const MemoryRegion& r : design.memory_map.regions())
        if (p.start_addr >= r.base && p.start_addr < r.end()) home = &r;
      if (home == nullptr) {
        err(loc, "start address " + I64(p.start_addr) +
                 " is outside every mapped DRAM region");
        continue;
      }
      if (iv.lo < home->base || iv.hi > home->end())
        err(loc, "footprint [" + I64(iv.lo) + ", " + I64(iv.hi) +
                 ") escapes region '" + home->name + "' [" +
                 I64(home->base) + ", " + I64(home->end()) + ")");
      // Region-kind consistency per transfer kind.
      const std::string layer_name = LayerNameOrId(net, p.layer_id);
      switch (p.kind) {
        case TransferKind::kLoadWeights:
          if (home->name != "weights:" + layer_name)
            err(loc, "weight load for layer '" + layer_name +
                     "' addresses region '" + home->name + "'");
          break;
        case TransferKind::kStoreOutput:
          if (home->name != "blob:" + layer_name)
            err(loc, "output store for layer '" + layer_name +
                     "' addresses region '" + home->name + "'");
          break;
        case TransferKind::kLoadInput: {
          const IrLayer* layer = FindLayer(net, p.layer_id);
          bool from_producer = false;
          if (layer != nullptr)
            for (int producer_id : layer->input_ids)
              if (home->name == "blob:" + LayerNameOrId(net, producer_id))
                from_producer = true;
          if (!from_producer)
            err(loc, "input load for layer '" + layer_name +
                     "' addresses region '" + home->name +
                     "', which no producer owns");
          break;
        }
        case TransferKind::kStreamData:
        case TransferKind::kStreamWeights:
          err(loc, "stream-kind pattern assigned to the main AGU");
          break;
      }
    } else {
      // Buffer-relative stream: addresses are offsets into the on-chip
      // buffer.  Negative addresses can never be realised; a row wider
      // than the buffer wraps the circular window mid-row.
      const std::int64_t cap = p.role == AguRole::kData
                                   ? design.config.data_buffer_bytes
                                   : design.config.weight_buffer_bytes;
      if (iv.lo < 0) {
        err(loc, "stream pattern reaches negative buffer offset " +
                 I64(iv.lo));
        continue;
      }
      std::int64_t row_end = 0;
      if (!MulAdd(p.x_length - 1, std::max<std::int64_t>(p.stride, 0),
                  p.start_addr, &row_end) ||
          __builtin_add_overflow(row_end, p.beat_bytes, &row_end)) {
        err(loc, "stream row arithmetic wraps 64-bit space");
        continue;
      }
      if (row_end > cap)
        note(loc, "stream row of " + I64(row_end - p.start_addr) +
                  " bytes cycles the " + I64(cap) +
                  "-byte circular buffer window more than once");
    }
  }
}

// ---------------------------------------------------------------------
// Rule 2: mem.layout
// ---------------------------------------------------------------------
void CheckMemLayout(const Network& net, const AcceleratorDesign& design,
                    AnalysisReport& report) {
  const auto err = [&](const std::string& loc, const std::string& msg) {
    report.Add(Severity::kError, kRuleMemLayout, loc, msg);
  };
  const auto& regions = design.memory_map.regions();
  if (regions.empty()) {
    err("memory_map", "no regions mapped");
    return;
  }
  const std::int64_t align = std::max<std::int64_t>(
      design.config.memory_port_elems * design.config.ElementBytes(), 1);
  std::set<std::string> names;
  for (const MemoryRegion& r : regions) {
    const std::string loc = "memory_map/" + r.name;
    if (r.bytes <= 0) err(loc, "region has " + I64(r.bytes) + " bytes");
    if (r.base < 0) err(loc, "region base " + I64(r.base) + " is negative");
    if (r.base % align != 0)
      err(loc, "base " + I64(r.base) + " breaks the " + I64(align) +
               "-byte port alignment");
    if (r.bytes % align != 0)
      err(loc, "size " + I64(r.bytes) + " breaks the " + I64(align) +
               "-byte port alignment");
    if (!names.insert(r.name).second)
      err(loc, "duplicate region name");
  }
  // Overlap scan over the base-sorted view.
  std::vector<const MemoryRegion*> sorted;
  sorted.reserve(regions.size());
  for (const MemoryRegion& r : regions) sorted.push_back(&r);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const MemoryRegion* a, const MemoryRegion* b) {
                     return a->base < b->base;
                   });
  std::int64_t max_end = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    max_end = std::max(max_end, sorted[i]->end());
    if (i + 1 < sorted.size() && sorted[i]->end() > sorted[i + 1]->base)
      err("memory_map/" + sorted[i]->name,
          "overlaps region '" + sorted[i + 1]->name + "' ([" +
              I64(sorted[i]->base) + ", " + I64(sorted[i]->end()) +
              ") vs base " + I64(sorted[i + 1]->base) + ")");
  }
  if (design.memory_map.total_bytes() != max_end)
    err("memory_map", "recorded total of " +
                          I64(design.memory_map.total_bytes()) +
                          " bytes disagrees with the last region end " +
                          I64(max_end));
  // Weight regions must be sized for exactly the layer's parameter
  // count: smaller underflows the decode, larger leaves trailing bytes
  // beyond the port-alignment padding that DecodeWeights would have to
  // silently skip.
  const std::int64_t elem_bytes = design.config.ElementBytes();
  for (const IrLayer* layer : net.ComputeLayers()) {
    const LayerStats stats = ComputeLayerStats(*layer);
    if (stats.weight_count <= 0 ||
        !design.memory_map.HasWeights(layer->name()))
      continue;
    const MemoryRegion& r = design.memory_map.Weights(layer->name());
    const std::int64_t needed = stats.weight_count * elem_bytes;
    const std::int64_t padded = (needed + align - 1) / align * align;
    if (r.bytes < needed)
      err("memory_map/" + r.name,
          "weight region holds " + I64(r.bytes) + " bytes but layer '" +
              layer->name() + "' needs " + I64(needed));
    else if (r.bytes > padded)
      err("memory_map/" + r.name,
          "weight region holds " + I64(r.bytes) + " bytes but layer '" +
              layer->name() + "' needs only " + I64(needed) + " (" +
              I64(padded) + " after port alignment) — trailing bytes "
              "would decode as garbage");
  }
}

// ---------------------------------------------------------------------
// Rule 3: sched.hazard
// ---------------------------------------------------------------------
void CheckSchedHazards(const Network& net, const AcceleratorDesign& design,
                       AnalysisReport& report) {
  const auto err = [&](const std::string& loc, const std::string& msg) {
    report.Add(Severity::kError, kRuleSchedHazard, loc, msg);
  };
  const auto& steps = design.schedule.steps;
  if (steps.empty()) {
    err("schedule", "empty schedule");
    return;
  }

  std::set<std::string> events;
  std::map<int, int> first_step;  // layer_id -> first step index
  std::map<int, int> last_step;   // layer_id -> last step index
  std::map<int, int> armed;       // pattern id -> arming step count
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const ScheduleStep& s = steps[i];
    const std::string loc = "schedule/step:" + std::to_string(i);
    if (s.index != static_cast<int>(i))
      err(loc, "step index " + std::to_string(s.index) +
               " breaks the dense 0..n-1 FSM state numbering");
    const std::string expected_event =
        "layer" + std::to_string(s.layer_id) + "_fold" + I64(s.segment);
    if (s.event != expected_event)
      err(loc, "event '" + s.event + "' does not match layer/segment ('" +
               expected_event + "' expected)");
    if (!events.insert(s.event).second)
      err(loc, "duplicate fold event '" + s.event + "'");
    if (first_step.find(s.layer_id) == first_step.end())
      first_step[s.layer_id] = static_cast<int>(i);
    last_step[s.layer_id] = static_cast<int>(i);
    for (int pattern_id : s.pattern_ids) {
      const AguPattern* pattern = nullptr;
      for (const AguPattern& p : design.agu_program.patterns)
        if (p.id == pattern_id) pattern = &p;
      if (pattern == nullptr) {
        err(loc, "triggers unknown AGU pattern id " +
                 std::to_string(pattern_id));
        continue;
      }
      if (pattern->layer_id != s.layer_id)
        err(loc, "triggers pattern " + std::to_string(pattern_id) +
                 " of layer '" + LayerNameOrId(net, pattern->layer_id) +
                 "' from layer '" + LayerNameOrId(net, s.layer_id) + "'");
      ++armed[pattern_id];
    }
  }

  // Read-after-write: every producer layer's steps must complete before
  // the consumer's first step fires (temporal folding legality).
  for (const IrLayer* layer : net.ComputeLayers()) {
    auto mine = first_step.find(layer->id);
    if (mine == first_step.end()) {
      err("schedule", "layer '" + layer->name() +
                      "' never executes (no schedule step)");
      continue;
    }
    for (int producer_id : layer->input_ids) {
      auto produced = last_step.find(producer_id);
      if (produced == last_step.end()) continue;  // network input blob
      if (produced->second >= mine->second)
        err("schedule/step:" + std::to_string(mine->second),
            "layer '" + layer->name() + "' reads the blob of '" +
                LayerNameOrId(net, producer_id) + "' at step " +
                std::to_string(mine->second) +
                " before its final write at step " +
                std::to_string(produced->second));
    }
  }

  // Every AGU pattern must arm exactly once: never firing leaves a
  // transfer dead; firing twice replays a completed sweep.
  for (const AguPattern& p : design.agu_program.patterns) {
    const int count = armed.count(p.id) ? armed[p.id] : 0;
    if (count != 1)
      err("agu/pattern:" + std::to_string(p.id),
          "pattern arms " + std::to_string(count) +
              " time(s) across the schedule (must be exactly 1)");
  }

  // Producer chaining: each layer's steps inherit the previous layer's
  // consumer ("data_buffer" ahead of the first layer), and all segments
  // of one layer share it.
  std::string previous_consumer = "data_buffer";
  int previous_layer = steps.front().layer_id;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const ScheduleStep& s = steps[i];
    if (i > 0 && s.layer_id != previous_layer) {
      previous_consumer = steps[i - 1].consumer_block;
      previous_layer = s.layer_id;
    }
    if (s.producer_block != previous_consumer)
      err("schedule/step:" + std::to_string(i),
          "producer '" + s.producer_block + "' breaks the dataflow chain "
          "(previous consumer is '" + previous_consumer + "')");
  }
}

// ---------------------------------------------------------------------
// Rule 4: fold.coverage
// ---------------------------------------------------------------------
void CheckFoldCoverage(const Network& net, const AcceleratorDesign& design,
                       AnalysisReport& report) {
  const auto err = [&](const std::string& loc, const std::string& msg) {
    report.Add(Severity::kError, kRuleFoldCoverage, loc, msg);
  };
  const AcceleratorConfig& config = design.config;
  std::set<int> planned;
  for (const LayerFold& fold : design.fold_plan.folds) {
    const std::string loc = "fold/" + fold.layer_name;
    if (!planned.insert(fold.layer_id).second)
      err(loc, "layer folded twice");
    if (fold.segments < 1 || fold.lanes_used < 1 ||
        fold.parallel_units < 1) {
      err(loc, "degenerate fold (segments " + I64(fold.segments) +
               ", lanes " + I64(fold.lanes_used) + ", units " +
               I64(fold.parallel_units) + ")");
      continue;
    }
    std::int64_t pool_lanes = 1;
    switch (fold.pool) {
      case LanePool::kMac: pool_lanes = config.TotalLanes(); break;
      case LanePool::kPooling: pool_lanes = config.pooling_lanes; break;
      case LanePool::kActivation:
        pool_lanes = config.activation_lanes;
        break;
      case LanePool::kNone: pool_lanes = 1; break;
    }
    if (fold.lanes_used > pool_lanes)
      err(loc, "grants " + I64(fold.lanes_used) + " lanes but the " +
               LanePoolName(fold.pool) + " pool has only " +
               I64(pool_lanes));
    if (fold.pool == LanePool::kMac) {
      // Spatial folding legality: the segments must partition the
      // layer's units — enough slots to cover all of them, and no
      // fully-redundant trailing slot recomputing covered units.
      if (fold.segments * fold.lanes_used < fold.parallel_units)
        err(loc, "fold gap: " + I64(fold.segments) + " segments x " +
                 I64(fold.lanes_used) + " lanes cover only " +
                 I64(fold.segments * fold.lanes_used) + " of " +
                 I64(fold.parallel_units) + " units");
      if ((fold.segments - 1) * fold.lanes_used >= fold.parallel_units)
        err(loc, "fold overlap: segment " + I64(fold.segments - 1) +
                 " re-computes units already covered by earlier segments");
    } else if (fold.segments != 1) {
      err(loc, LanePoolName(fold.pool) +
               "-pool layers stream in one data-driven pass, not " +
               I64(fold.segments) + " segments");
    }
    if (fold.pool == LanePool::kMac) {
      if (fold.total_ops != fold.parallel_units * fold.unit_work)
        err(loc, "total_ops " + I64(fold.total_ops) +
                 " disagrees with units x unit_work = " +
                 I64(fold.parallel_units * fold.unit_work));
    } else {
      // Non-MAC layers fold the serialisation factor into unit_work
      // (segments stays 1), so the recorded total relates through it.
      const std::int64_t serial =
          CeilDiv(fold.parallel_units, fold.lanes_used);
      if (fold.parallel_units * fold.unit_work != fold.total_ops * serial)
        err(loc, "total_ops " + I64(fold.total_ops) +
                 " disagrees with the lane-folded unit_work (units x "
                 "unit_work = " + I64(fold.parallel_units * fold.unit_work) +
                 ", serialisation factor " + I64(serial) + ")");
    }

    // The schedule must realise exactly this layer's segment set.
    std::set<std::int64_t> seen;
    std::int64_t step_count = 0;
    for (const ScheduleStep& s : design.schedule.steps) {
      if (s.layer_id != fold.layer_id) continue;
      ++step_count;
      if (!seen.insert(s.segment).second)
        err(loc, "segment " + I64(s.segment) +
                 " appears twice in the schedule (double-compute)");
      if (s.segment < 0 || s.segment >= fold.segments)
        err(loc, "schedule names segment " + I64(s.segment) +
                 " outside [0, " + I64(fold.segments) + ")");
    }
    if (step_count != fold.segments)
      err(loc, "schedule executes " + I64(step_count) + " of " +
               I64(fold.segments) + " segments");
  }
  for (const IrLayer* layer : net.ComputeLayers())
    if (planned.find(layer->id) == planned.end())
      err("fold/" + layer->name(), "compute layer has no fold entry");
}

// ---------------------------------------------------------------------
// Rule 5: buffer.capacity
// ---------------------------------------------------------------------
void CheckBufferCapacity(const AcceleratorDesign& design,
                         AnalysisReport& report) {
  const auto err = [&](const std::string& loc, const std::string& msg) {
    report.Add(Severity::kError, kRuleBufferCapacity, loc, msg);
  };
  const auto warn = [&](const std::string& loc, const std::string& msg) {
    report.Add(Severity::kWarning, kRuleBufferCapacity, loc, msg);
  };
  const std::int64_t capacity = design.config.data_buffer_bytes;
  if (design.buffer_plan.data_buffer_bytes != capacity)
    err("buffer_plan", "planned for a " +
                           I64(design.buffer_plan.data_buffer_bytes) +
                           "-byte buffer but the datapath allocates " +
                           I64(capacity));
  const std::int64_t elem = design.config.ElementBytes();
  for (const BufferPlanEntry& e : design.buffer_plan.entries) {
    const std::string loc = "buffer/" + e.layer_name;
    if (e.tile_bytes < 1)
      err(loc, "tile of " + I64(e.tile_bytes) + " bytes");
    const BufferSlot* slots[] = {&e.ping, &e.pong, &e.out_stage};
    for (const BufferSlot* slot : slots) {
      if (slot->base < 0 || slot->bytes < 1 || slot->end() > capacity)
        err(loc, "slot '" + slot->name + "' [" + I64(slot->base) + ", " +
                 I64(slot->end()) + ") escapes the " + I64(capacity) +
                 "-byte data buffer");
    }
    for (int a = 0; a < 3; ++a)
      for (int b = a + 1; b < 3; ++b)
        if (slots[a]->base < slots[b]->end() &&
            slots[b]->base < slots[a]->end())
          err(loc, "slots '" + slots[a]->name + "' and '" +
                   slots[b]->name + "' overlap");
    if (e.tile_bytes > e.ping.bytes || e.tile_bytes > e.pong.bytes)
      err(loc, "tile of " + I64(e.tile_bytes) +
               " bytes overflows its ping/pong slot (" +
               I64(e.ping.bytes) + "/" + I64(e.pong.bytes) + " bytes)");

    // Cross-check against the data layout: a single Method-1 tile that
    // cannot fit a slot forces mid-tile re-streaming from DRAM.
    for (const DataLayoutPlan::Entry& lay : design.layout.entries) {
      if (lay.layer_id != e.layer_id) continue;
      const std::int64_t tile_unit =
          lay.input_layout.tile_h * lay.input_layout.tile_w * elem;
      if (tile_unit > e.ping.bytes)
        warn(loc, "one " + I64(tile_unit) + "-byte layout tile exceeds "
                  "the " + I64(e.ping.bytes) + "-byte slot "
                  "(mid-tile re-streaming)");
    }
  }
}

// ---------------------------------------------------------------------
// Rule 6: conn.ports
// ---------------------------------------------------------------------
void CheckConnectionPorts(const AcceleratorDesign& design,
                          AnalysisReport& report) {
  const auto err = [&](const std::string& loc, const std::string& msg) {
    report.Add(Severity::kError, kRuleConnPorts, loc, msg);
  };
  const auto& settings = design.connection_plan.settings;
  const auto& steps = design.schedule.steps;
  if (settings.size() != steps.size())
    err("connection_plan", std::to_string(settings.size()) +
                               " crossbar settings for " +
                               std::to_string(steps.size()) +
                               " schedule steps");

  // Which port endpoints actually have instantiated blocks behind them.
  std::set<DatapathPort> instantiated{DatapathPort::kDataBuffer};
  for (const BlockInstance& block : design.blocks) {
    switch (block.config.type) {
      case BlockType::kSynergyNeuron:
        instantiated.insert(DatapathPort::kSynergyArray);
        break;
      case BlockType::kAccumulator:
        instantiated.insert(DatapathPort::kAccumulator);
        break;
      case BlockType::kPoolingUnit:
        instantiated.insert(DatapathPort::kPoolingUnit);
        break;
      case BlockType::kActivationUnit:
        instantiated.insert(DatapathPort::kActivationUnit);
        break;
      case BlockType::kClassifier:
        instantiated.insert(DatapathPort::kClassifier);
        break;
      case BlockType::kConnectionBox:
        instantiated.insert(DatapathPort::kConnectionBox);
        break;
      default:
        break;
    }
  }

  const std::size_t n = std::min(settings.size(), steps.size());
  for (std::size_t i = 0; i < n; ++i) {
    const CrossbarSetting& setting = settings[i];
    const ScheduleStep& step = steps[i];
    const std::string loc = "connection/step:" + std::to_string(i);
    if (setting.step_index != step.index || setting.event != step.event)
      err(loc, "setting (step " + std::to_string(setting.step_index) +
               ", event '" + setting.event +
               "') does not mirror schedule step " +
               std::to_string(step.index) + " ('" + step.event + "')");
    try {
      const DatapathPort want_producer = PortForBlock(step.producer_block);
      if (setting.producer != want_producer)
        err(loc, "producer port '" + DatapathPortName(setting.producer) +
                 "' does not match schedule block '" +
                 step.producer_block + "'");
    } catch (const Error& e) {
      err(loc, e.what());
    }
    try {
      const DatapathPort want_consumer = PortForBlock(step.consumer_block);
      if (setting.consumer != want_consumer)
        err(loc, "consumer port '" + DatapathPortName(setting.consumer) +
                 "' does not match schedule block '" +
                 step.consumer_block + "'");
    } catch (const Error& e) {
      err(loc, e.what());
    }
    for (DatapathPort port : {setting.producer, setting.consumer})
      if (instantiated.find(port) == instantiated.end())
        err(loc, "drives port '" + DatapathPortName(port) +
                 "' but the design instantiates no such block");
    if (setting.shift < 0 ||
        setting.shift >= design.config.format.total_bits())
      err(loc, "shift " + std::to_string(setting.shift) +
               " outside the " +
               std::to_string(design.config.format.total_bits()) +
               "-bit datapath");
    if (setting.consumer == DatapathPort::kConnectionBox &&
        (!design.config.has_connection_box ||
         design.config.connection_box_ports < 2))
      err(loc, "routes through the connection box but the configuration "
               "provides none");
  }
}

// ---------------------------------------------------------------------
// Rule 7: lut.domain
// ---------------------------------------------------------------------

/// Reference monotonicity direction over the spec's domain: +1
/// non-decreasing, -1 non-increasing.
int LutDirection(const ApproxLutSpec& spec) {
  switch (spec.function) {
    case LutFunction::kSigmoid:
    case LutFunction::kTanh:
    case LutFunction::kExp:
      return 1;
    case LutFunction::kRecip:
    case LutFunction::kLrnPow:
      // Decreasing on the positive domain the generator samples.
      return spec.in_min > 0.0 ? -1 : 0;
  }
  return 0;
}

void CheckLutDomains(const Network& net, const AcceleratorDesign& design,
                     const VerifyOptions& options, AnalysisReport& report) {
  const auto err = [&](const std::string& loc, const std::string& msg) {
    report.Add(Severity::kError, kRuleLutDomain, loc, msg);
  };
  const auto warn = [&](const std::string& loc, const std::string& msg) {
    report.Add(Severity::kWarning, kRuleLutDomain, loc, msg);
  };

  std::map<LutFunction, int> have;
  for (const ApproxLutSpec& spec : design.lut_specs)
    ++have[spec.function];
  for (LutFunction fn : RequiredLutFunctions(net)) {
    if (have.find(fn) == have.end())
      err("lut/" + LutFunctionName(fn),
          "network requires this function but the design generates no "
          "Approx LUT for it");
    else if (have[fn] > 1)
      err("lut/" + LutFunctionName(fn),
          std::to_string(have[fn]) + " tables generated for one function");
  }

  for (const ApproxLutSpec& spec : design.lut_specs) {
    const std::string loc = "lut/" + LutFunctionName(spec.function);
    if (!(spec.in_min < spec.in_max)) {
      err(loc, "empty input domain [" + std::to_string(spec.in_min) +
               ", " + std::to_string(spec.in_max) + "]");
      continue;
    }
    if (spec.entries < 2 || !IsPow2(spec.entries)) {
      err(loc, "entry count " + I64(spec.entries) +
               " is not a power of two >= 2");
      continue;
    }
    if (!(spec.format == design.config.format))
      err(loc, "table format " + spec.format.ToString() +
               " differs from the datapath format " +
               design.config.format.ToString());
    if (spec.entries != design.config.approx_lut_entries)
      warn(loc, "sized at " + I64(spec.entries) +
                " entries against a configured " +
                I64(design.config.approx_lut_entries));
    if (spec.function == LutFunction::kLrnPow && spec.beta <= 0.0)
      err(loc, "non-positive LRN beta " + std::to_string(spec.beta));

    // The input domain is a pure function of (function, config) — the
    // library policy DefaultLutSpec encodes.  A deviating domain still
    // produces a well-formed table, so it is a warning, but it means the
    // table samples a window the generator never chooses (a corrupted
    // record, or a spec edited behind the compiler's back).
    const ApproxLutSpec expected =
        DefaultLutSpec(spec.function, design.config);
    if (spec.in_min != expected.in_min || spec.in_max != expected.in_max)
      warn(loc, "input domain [" + std::to_string(spec.in_min) + ", " +
                std::to_string(spec.in_max) +
                "] deviates from the library policy [" +
                std::to_string(expected.in_min) + ", " +
                std::to_string(expected.in_max) + "] for this function");

    try {
      const ApproxLut lut = ApproxLut::Generate(spec);
      const int direction = LutDirection(spec);
      if (direction != 0) {
        for (std::size_t i = 1; i < lut.table().size(); ++i) {
          const std::int64_t delta = lut.table()[i] - lut.table()[i - 1];
          if (direction * delta < 0) {
            err(loc, "stored table breaks key monotonicity at entry " +
                     std::to_string(i) + " (the interpolator would read "
                     "a reversed segment)");
            break;
          }
        }
      }
    } catch (const Error& e) {
      err(loc, std::string("table generation rejects the spec: ") +
               e.what());
    }

    // Observed dynamic range vs table domain (saturation outside).
    if (options.ranges != nullptr &&
        (spec.function == LutFunction::kSigmoid ||
         spec.function == LutFunction::kTanh)) {
      const double peak =
          static_cast<double>(options.ranges->max_abs_activation);
      if (peak > spec.in_max || -peak < spec.in_min)
        warn(loc, "observed activation magnitude " + std::to_string(peak) +
                  " exceeds the table domain [" +
                  std::to_string(spec.in_min) + ", " +
                  std::to_string(spec.in_max) + "] (keys saturate)");
    }
  }
}

// ---------------------------------------------------------------------
// Rule 8: res.budget
// ---------------------------------------------------------------------
void CheckResourceBudget(const AcceleratorDesign& design,
                         AnalysisReport& report) {
  const auto err = [&](const std::string& loc, const std::string& msg) {
    report.Add(Severity::kError, kRuleResBudget, loc, msg);
  };
  if (design.blocks.empty()) {
    err("blocks", "empty block inventory");
    return;
  }
  std::set<std::string> names;
  const BlockInstance* coordinator = nullptr;
  std::map<AguRole, const BlockInstance*> agus;
  std::map<std::string, const BlockInstance*> buffers;
  for (const BlockInstance& block : design.blocks) {
    const std::string loc = "blocks/" + block.name;
    if (!names.insert(block.name).second)
      err(loc, "duplicate block instance name");
    try {
      ValidateBlockConfig(block.config);
    } catch (const Error& e) {
      err(loc, std::string("library cannot realise this configuration: ") +
               e.what());
    }
    if (block.config.type == BlockType::kCoordinator) coordinator = &block;
    if (block.config.type == BlockType::kAgu)
      agus[block.config.agu_role] = &block;
    if (block.config.type == BlockType::kBufferBank)
      buffers[block.name] = &block;
  }

  // AGU capacity: the reduced hardware template must hold at least the
  // pattern count the compiler emitted for its role.
  for (AguRole role : {AguRole::kMain, AguRole::kData, AguRole::kWeight}) {
    const int emitted = design.agu_program.CountFor(role);
    if (emitted == 0) continue;
    auto it = agus.find(role);
    if (it == agus.end())
      err("blocks/agu_" + AguRoleName(role),
          "program emits " + std::to_string(emitted) +
              " patterns but no AGU instance exists for the role");
    else if (it->second->config.patterns < emitted)
      err("blocks/" + it->second->name,
          "holds " + std::to_string(it->second->config.patterns) +
              " patterns but the program needs " + std::to_string(emitted));
  }
  if (coordinator == nullptr) {
    err("blocks/coordinator0", "no coordinator instance");
  } else if (coordinator->config.fold_events <
             design.fold_plan.TemporalFolds()) {
    err("blocks/" + coordinator->name,
        "sequences " + std::to_string(coordinator->config.fold_events) +
            " fold events but the plan temporally folds " +
            I64(design.fold_plan.TemporalFolds()) + " layers");
  }
  for (const auto& [name, expected_depth] :
       {std::pair<std::string, std::int64_t>{
            "buffer_data", design.config.data_buffer_bytes},
        {"buffer_weight", design.config.weight_buffer_bytes}}) {
    auto it = buffers.find(name);
    if (it == buffers.end())
      err("blocks/" + name, "buffer bank missing from the inventory");
    else if (it->second->config.depth != expected_depth)
      err("blocks/" + name,
          "bank depth " + I64(it->second->config.depth) +
              " disagrees with the configured " + I64(expected_depth) +
              " bytes");
  }

  // Accounting: the recorded report must re-tally from the inventory,
  // and the total must fit the constraint the design was sized against.
  const ResourceReport retally = TallyResources(design.blocks);
  const ResourceBudget& recorded = design.resources.total;
  if (retally.total.dsp != recorded.dsp ||
      retally.total.lut != recorded.lut ||
      retally.total.ff != recorded.ff ||
      retally.total.bram_bytes != recorded.bram_bytes)
    err("resources", "recorded total " + recorded.ToString() +
                         " is stale; the inventory re-tallies to " +
                         retally.total.ToString());
  if (!design.config.budget.Fits(retally.total))
    err("resources", "inventory uses " + retally.total.ToString() +
                         ", breaking the budget " +
                         design.config.budget.ToString());
}

using RulePass = void (*)(const Network&, const AcceleratorDesign&,
                          const VerifyOptions&, AnalysisReport&);

}  // namespace

AnalysisReport VerifyDesign(const Network& net,
                            const AcceleratorDesign& design,
                            const VerifyOptions& options) {
  AnalysisReport report;
  struct Pass {
    const char* rule;
    RulePass run;
  };
  const Pass passes[] = {
      {kRuleAguBounds,
       [](const Network& n, const AcceleratorDesign& d,
          const VerifyOptions&, AnalysisReport& r) {
         CheckAguBounds(n, d, r);
       }},
      {kRuleMemLayout,
       [](const Network& n, const AcceleratorDesign& d,
          const VerifyOptions&, AnalysisReport& r) {
         CheckMemLayout(n, d, r);
       }},
      {kRuleSchedHazard,
       [](const Network& n, const AcceleratorDesign& d,
          const VerifyOptions&, AnalysisReport& r) {
         CheckSchedHazards(n, d, r);
       }},
      {kRuleFoldCoverage,
       [](const Network& n, const AcceleratorDesign& d,
          const VerifyOptions&, AnalysisReport& r) {
         CheckFoldCoverage(n, d, r);
       }},
      {kRuleBufferCapacity,
       [](const Network&, const AcceleratorDesign& d, const VerifyOptions&,
          AnalysisReport& r) { CheckBufferCapacity(d, r); }},
      {kRuleConnPorts,
       [](const Network&, const AcceleratorDesign& d, const VerifyOptions&,
          AnalysisReport& r) { CheckConnectionPorts(d, r); }},
      {kRuleLutDomain,
       [](const Network& n, const AcceleratorDesign& d,
          const VerifyOptions& o, AnalysisReport& r) {
         CheckLutDomains(n, d, o, r);
       }},
      {kRuleResBudget,
       [](const Network&, const AcceleratorDesign& d, const VerifyOptions&,
          AnalysisReport& r) { CheckResourceBudget(d, r); }},
  };
  for (const Pass& pass : passes) {
    try {
      pass.run(net, design, options, report);
    } catch (const std::exception& e) {
      // A rule that trips over a structurally broken artifact still
      // yields a diagnostic under its own id — the verifier never
      // propagates exceptions out of a pass.
      report.Add(Severity::kError, pass.rule, "verifier",
                 std::string("pass aborted: ") + e.what());
    }
  }
  return report;
}

void VerifyDesignOrThrow(const Network& net,
                         const AcceleratorDesign& design,
                         const VerifyOptions& options) {
  const AnalysisReport report = VerifyDesign(net, design, options);
  if (report.ok()) return;
  throw Error("design verification failed for '" +
              design.config.network_name + "':\n" + report.ToText());
}

}  // namespace db::analysis
