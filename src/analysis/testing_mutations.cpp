#include "analysis/testing_mutations.h"

#include <algorithm>

#include "analysis/verifier.h"
#include "common/error.h"

namespace db::analysis {

std::vector<std::string> BreakableRules() {
  return {kRuleAguBounds,      kRuleMemLayout, kRuleSchedHazard,
          kRuleFoldCoverage,   kRuleBufferCapacity, kRuleConnPorts,
          kRuleLutDomain,      kRuleResBudget};
}

void BreakRule(AcceleratorDesign& design, const std::string& rule) {
  if (rule == kRuleAguBounds) {
    for (AguPattern& p : design.agu_program.patterns) {
      if (p.role != AguRole::kMain) continue;
      // One extra outer row marches the sweep past its region's end.
      p.y_length += 1;
      return;
    }
    DB_THROW("design has no main-AGU pattern to break");
  }
  if (rule == kRuleMemLayout) {
    DB_CHECK_MSG(!design.memory_map.regions().empty(), "no regions");
    // Grow the first region into its successor (overlap) without moving
    // any base, so every AGU pattern still resolves in its own region.
    std::vector<MemoryRegion> regions = design.memory_map.regions();
    const std::int64_t align = std::max<std::int64_t>(
        design.config.memory_port_elems * design.config.ElementBytes(), 1);
    if (regions.size() > 1)
      regions[0].bytes += align;
    else
      regions[0].bytes += 1;  // single region: break the alignment instead
    design.memory_map = MemoryMap::FromRegions(std::move(regions));
    return;
  }
  if (rule == kRuleSchedHazard) {
    DB_CHECK_MSG(design.schedule.steps.size() >= 2,
                 "need a multi-step schedule to replay an event");
    // Replay the first step's fold event on the last step: duplicate
    // event, and (for multi-layer nets) a read of a blob that is not
    // written yet when the FSM loops back.  The crossbar microcode is
    // edited in lock-step so only the schedule itself is inconsistent.
    design.schedule.steps.back().event =
        design.schedule.steps.front().event;
    if (!design.connection_plan.settings.empty())
      design.connection_plan.settings.back().event =
          design.schedule.steps.back().event;
    return;
  }
  if (rule == kRuleFoldCoverage) {
    DB_CHECK_MSG(!design.fold_plan.folds.empty(), "empty fold plan");
    for (LayerFold& fold : design.fold_plan.folds) {
      if (fold.pool != LanePool::kMac) continue;
      // Drop one segment: the last lanes_used units never compute.
      fold.parallel_units += fold.lanes_used;
      fold.total_ops = fold.parallel_units * fold.unit_work;
      return;
    }
    design.fold_plan.folds.front().segments += 1;
    return;
  }
  if (rule == kRuleBufferCapacity) {
    DB_CHECK_MSG(!design.buffer_plan.entries.empty(), "empty buffer plan");
    // Grow the ping slot past the end of the physical buffer.
    BufferPlanEntry& e = design.buffer_plan.entries.front();
    e.ping.bytes = design.buffer_plan.data_buffer_bytes + 1;
    return;
  }
  if (rule == kRuleConnPorts) {
    DB_CHECK_MSG(!design.connection_plan.settings.empty(), "empty plan");
    // Re-route the first step's consumer to the classifier port; either
    // no classifier block exists, or the schedule block disagrees.
    CrossbarSetting& s = design.connection_plan.settings.front();
    s.consumer = s.consumer == DatapathPort::kClassifier
                     ? DatapathPort::kPoolingUnit
                     : DatapathPort::kClassifier;
    return;
  }
  if (rule == kRuleLutDomain) {
    DB_CHECK_MSG(!design.lut_specs.empty(),
                 "design approximates no function");
    // Collapse the input domain: the table covers nothing.
    ApproxLutSpec& spec = design.lut_specs.front();
    spec.in_max = spec.in_min;
    return;
  }
  if (rule == kRuleResBudget) {
    DB_CHECK_MSG(!design.blocks.empty(), "empty block inventory");
    // Stale accounting: the recorded total no longer re-tallies.
    design.resources.total.lut += 1;
    return;
  }
  DB_THROW("unknown verifier rule '" << rule << "'");
}

}  // namespace db::analysis
