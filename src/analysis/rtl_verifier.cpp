#include "analysis/rtl_verifier.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/error.h"
#include "rtl/netlist.h"

namespace db::analysis {
namespace {

std::string Bits(int lo, int hi) {
  if (lo == hi) return "bit " + std::to_string(lo);
  return "bits [" + std::to_string(hi) + ":" + std::to_string(lo) + "]";
}

// -------------------------------------------------------------------
// rtl.drive
// -------------------------------------------------------------------

bool RangesOverlap(const std::vector<BitRange>& a,
                   const std::vector<BitRange>& b) {
  for (const BitRange& x : a)
    for (const BitRange& y : b)
      if (x.lo <= y.hi && y.lo <= x.hi) return true;
  return false;
}

void CheckDrive(const Netlist& netlist, AnalysisReport& report) {
  for (const ElabIssue& issue : netlist.issues)
    report.Add(Severity::kError, kRuleRtlDrive, issue.location,
               issue.message);

  for (const NetInfo& net : netlist.nets) {
    if (net.is_memory) continue;  // ROM images are loaded externally

    // A primary input is driven by the outside world only.
    if (net.is_primary_input) {
      for (const NetDriver& d : net.drivers)
        if (d.kind != NetDriver::Kind::kPrimaryInput)
          report.Add(Severity::kError, kRuleRtlDrive, net.path,
                     "primary input is driven inside the design by " +
                         d.where);
      continue;
    }

    // Two distinct drivers must not touch the same bit.
    for (std::size_t i = 0; i < net.drivers.size(); ++i)
      for (std::size_t j = i + 1; j < net.drivers.size(); ++j)
        if (RangesOverlap(net.drivers[i].ranges, net.drivers[j].ranges))
          report.Add(Severity::kError, kRuleRtlDrive, net.path,
                     "multiple drivers overlap: " + net.drivers[i].where +
                         " and " + net.drivers[j].where);

    // Every loaded bit needs a driver.
    if (net.loads.empty()) continue;
    std::vector<bool> driven(static_cast<std::size_t>(net.width), false);
    for (const NetDriver& d : net.drivers)
      for (const BitRange& r : d.ranges)
        for (int b = r.lo; b <= r.hi && b < net.width; ++b)
          driven[static_cast<std::size_t>(b)] = true;
    std::vector<bool> loaded(static_cast<std::size_t>(net.width), false);
    for (const BitRange& r : net.loads)
      for (int b = r.lo; b <= r.hi && b < net.width; ++b)
        loaded[static_cast<std::size_t>(b)] = true;
    int span_lo = -1;
    std::vector<std::string> spans;
    for (int b = 0; b <= net.width; ++b) {
      const bool gap = b < net.width &&
                       loaded[static_cast<std::size_t>(b)] &&
                       !driven[static_cast<std::size_t>(b)];
      if (gap && span_lo < 0) span_lo = b;
      if (!gap && span_lo >= 0) {
        spans.push_back(Bits(span_lo, b - 1));
        span_lo = -1;
      }
    }
    if (!spans.empty()) {
      std::string joined;
      for (std::size_t i = 0; i < spans.size(); ++i)
        joined += (i ? ", " : "") + spans[i];
      report.Add(Severity::kError, kRuleRtlDrive, net.path,
                 joined + " loaded but never driven");
    }
  }
}

// -------------------------------------------------------------------
// rtl.width
// -------------------------------------------------------------------

/// Effective width of an instance's formal port, honouring a literal
/// parameter override of the port's width parameter.
int BoundWidth(const VModule& target, const VInstance& inst,
               const VPort& formal) {
  if (formal.width_param.empty()) return formal.width;
  for (const VBinding& b : inst.params)
    if (b.formal == formal.width_param &&
        b.actual.kind == VExprKind::kLit)
      return static_cast<int>(b.actual.value);
  return ResolvedPortWidth(target, formal);
}

/// Structural checks on one expression tree: reversed or out-of-range
/// selects, unsized literals inside concatenations.
void CheckExpr(const VModule& m, const VExpr& expr,
               const std::string& where, AnalysisReport& report) {
  switch (expr.kind) {
    case VExprKind::kSlice: {
      if (expr.msb < expr.lsb)
        report.Add(Severity::kError, kRuleRtlWidth, where,
                   "slice [" + std::to_string(expr.msb) + ":" +
                       std::to_string(expr.lsb) + "] has msb < lsb");
      if (expr.args[0].kind == VExprKind::kId) {
        const int w = InferWidth(m, expr.args[0]);
        if (w > 0 && expr.msb >= w)
          report.Add(Severity::kError, kRuleRtlWidth, where,
                     "slice " + RenderExpr(expr) + " exceeds the " +
                         std::to_string(w) + "-bit net '" +
                         expr.args[0].text + "'");
      }
      break;
    }
    case VExprKind::kIndex: {
      if (expr.args[0].kind == VExprKind::kId &&
          expr.args[1].kind == VExprKind::kLit) {
        const VNet* n = m.FindNet(expr.args[0].text);
        const std::int64_t limit =
            (n != nullptr && n->depth > 0)
                ? n->depth
                : static_cast<std::int64_t>(InferWidth(m, expr.args[0]));
        if (limit > 0 && expr.args[1].value >= limit)
          report.Add(Severity::kError, kRuleRtlWidth, where,
                     "index " + RenderExpr(expr) + " exceeds '" +
                         expr.args[0].text + "' (limit " +
                         std::to_string(limit) + ")");
      }
      break;
    }
    case VExprKind::kConcat:
    case VExprKind::kRepeat: {
      for (const VExpr& arg : expr.args)
        if (arg.kind == VExprKind::kLit && arg.width == 0)
          report.Add(Severity::kError, kRuleRtlWidth, where,
                     "unsized literal " + std::to_string(arg.value) +
                         " inside a concatenation");
      break;
    }
    default:
      break;
  }
  for (const VExpr& arg : expr.args) CheckExpr(m, arg, where, report);
}

/// Assignment check: the rhs must not be wider than the lhs.  A narrower
/// rhs zero/sign-extends in Verilog and is deliberately not diagnosed
/// (lane products assign a w-bit max-rule expression into a 2w lane).
void CheckAssign(const VModule& m, const VExpr& lhs, const VExpr& rhs,
                 const std::string& where, AnalysisReport& report) {
  CheckExpr(m, lhs, where, report);
  CheckExpr(m, rhs, where, report);
  const int wl = InferWidth(m, lhs);
  const int wr = InferWidth(m, rhs);
  if (wl > 0 && wr > wl)
    report.Add(Severity::kError, kRuleRtlWidth, where,
               "assignment truncates a " + std::to_string(wr) +
                   "-bit expression into the " + std::to_string(wl) +
                   "-bit target " + RenderExpr(lhs));
}

void CheckStmtWidths(const VModule& m, const VStmt& stmt,
                     const std::string& where, AnalysisReport& report) {
  if (stmt.kind == VStmtKind::kAssign) {
    CheckAssign(m, stmt.lhs, stmt.rhs, where, report);
    return;
  }
  if (stmt.kind == VStmtKind::kIf) CheckExpr(m, stmt.cond, where, report);
  for (const VStmt& s : stmt.then_stmts)
    CheckStmtWidths(m, s, where, report);
  for (const VStmt& s : stmt.else_stmts)
    CheckStmtWidths(m, s, where, report);
}

void CheckWidths(const VDesign& design, AnalysisReport& report) {
  for (const VModule& m : design.modules) {
    for (std::size_t i = 0; i < m.assigns.size(); ++i)
      CheckAssign(m, m.assigns[i].lhs, m.assigns[i].rhs,
                  m.name + "/assign[" + std::to_string(i) + "]", report);
    for (std::size_t j = 0; j < m.always_blocks.size(); ++j)
      for (const VStmt& s : m.always_blocks[j].body)
        CheckStmtWidths(m, s,
                        m.name + "/always[" + std::to_string(j) + "]",
                        report);
    for (const VInstance& inst : m.instances) {
      const VModule* def = design.FindModule(inst.module_name);
      if (def == nullptr) continue;  // rtl.drive reports this
      for (const VBinding& b : inst.ports) {
        const VPort* formal = def->FindPort(b.formal);
        if (formal == nullptr) continue;
        const std::string where =
            m.name + "/" + inst.instance_name + "." + b.formal;
        CheckExpr(m, b.actual, where, report);
        const int wa = InferWidth(m, b.actual);
        const int wf = BoundWidth(*def, inst, *formal);
        if (wa > 0 && wf > 0 && wa != wf)
          report.Add(Severity::kError, kRuleRtlWidth, where,
                     "binding " + RenderExpr(b.actual) + " (" +
                         std::to_string(wa) + " bits) to " +
                         std::to_string(wf) + "-bit port '" + b.formal +
                         "'");
      }
    }
  }
}

// -------------------------------------------------------------------
// rtl.comb.loop
// -------------------------------------------------------------------

void CheckCombLoops(const Netlist& netlist, AnalysisReport& report) {
  const int n = static_cast<int>(netlist.nets.size());
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  std::set<std::pair<int, int>> seen;
  for (const auto& [src, dst] : netlist.comb_edges)
    if (seen.insert({src, dst}).second)
      adj[static_cast<std::size_t>(src)].push_back(dst);

  // Tarjan strongly-connected components.
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  int next_index = 0;
  std::vector<std::vector<int>> sccs;

  std::function<void(int)> strongconnect = [&](int v) {
    index[static_cast<std::size_t>(v)] = next_index;
    low[static_cast<std::size_t>(v)] = next_index;
    ++next_index;
    stack.push_back(v);
    on_stack[static_cast<std::size_t>(v)] = true;
    for (int w : adj[static_cast<std::size_t>(v)]) {
      if (index[static_cast<std::size_t>(w)] < 0) {
        strongconnect(w);
        low[static_cast<std::size_t>(v)] =
            std::min(low[static_cast<std::size_t>(v)],
                     low[static_cast<std::size_t>(w)]);
      } else if (on_stack[static_cast<std::size_t>(w)]) {
        low[static_cast<std::size_t>(v)] =
            std::min(low[static_cast<std::size_t>(v)],
                     index[static_cast<std::size_t>(w)]);
      }
    }
    if (low[static_cast<std::size_t>(v)] ==
        index[static_cast<std::size_t>(v)]) {
      std::vector<int> scc;
      int w;
      do {
        w = stack.back();
        stack.pop_back();
        on_stack[static_cast<std::size_t>(w)] = false;
        scc.push_back(w);
      } while (w != v);
      sccs.push_back(std::move(scc));
    }
  };
  for (int v = 0; v < n; ++v)
    if (index[static_cast<std::size_t>(v)] < 0) strongconnect(v);

  for (const std::vector<int>& scc : sccs) {
    bool cyclic = scc.size() > 1;
    if (!cyclic)
      cyclic = seen.count({scc[0], scc[0]}) > 0;  // self-loop
    if (!cyclic) continue;
    std::vector<std::string> members;
    members.reserve(scc.size());
    for (int v : scc)
      members.push_back(netlist.nets[static_cast<std::size_t>(v)].path);
    std::sort(members.begin(), members.end());
    std::string joined;
    for (std::size_t i = 0; i < members.size(); ++i)
      joined += (i ? ", " : "") + members[i];
    report.Add(Severity::kError, kRuleRtlCombLoop, members.front(),
               "combinational loop through: " + joined);
  }
}

// -------------------------------------------------------------------
// rtl.clock
// -------------------------------------------------------------------

void CheckClockedStmts(const VStmt& stmt, bool clocked,
                       const std::string& where, AnalysisReport& report) {
  if (stmt.kind == VStmtKind::kAssign) {
    if (clocked && !stmt.non_blocking)
      report.Add(Severity::kError, kRuleRtlClock, where,
                 "blocking assignment to " + RenderExpr(stmt.lhs) +
                     " in a clocked block");
    if (!clocked && stmt.non_blocking)
      report.Add(Severity::kError, kRuleRtlClock, where,
                 "non-blocking assignment to " + RenderExpr(stmt.lhs) +
                     " in a combinational block");
    return;
  }
  for (const VStmt& s : stmt.then_stmts)
    CheckClockedStmts(s, clocked, where, report);
  for (const VStmt& s : stmt.else_stmts)
    CheckClockedStmts(s, clocked, where, report);
}

void CheckClocks(const VDesign& design, AnalysisReport& report) {
  for (const VModule& m : design.modules) {
    std::string module_clock;
    for (std::size_t j = 0; j < m.always_blocks.size(); ++j) {
      const VAlways& blk = m.always_blocks[j];
      const std::string where =
          m.name + "/always[" + std::to_string(j) + "]";
      bool clocked = false;
      if (blk.sensitivity == "*") {
        clocked = false;
      } else if (blk.sensitivity.rfind("posedge ", 0) == 0 &&
                 blk.sensitivity.size() > 8) {
        clocked = true;
        const std::string clock = blk.sensitivity.substr(8);
        if (m.FindPort(clock) == nullptr && m.FindNet(clock) == nullptr)
          report.Add(Severity::kError, kRuleRtlClock, where,
                     "clock '" + clock + "' is not declared");
        if (module_clock.empty()) {
          module_clock = clock;
        } else if (clock != module_clock) {
          report.Add(Severity::kError, kRuleRtlClock, where,
                     "clocks on '" + clock + "' but the module clocks on '" +
                         module_clock + "'");
        }
      } else {
        report.Add(Severity::kError, kRuleRtlClock, where,
                   "unsupported sensitivity '" + blk.sensitivity +
                       "' (expected '*' or 'posedge <net>')");
        continue;
      }
      for (const VStmt& s : blk.body)
        CheckClockedStmts(s, clocked, where, report);
    }
  }
}

// -------------------------------------------------------------------
// rtl.dead
// -------------------------------------------------------------------

void CheckDead(const Netlist& netlist, AnalysisReport& report) {
  for (const NetInfo& net : netlist.nets) {
    // An unread port is the instantiator's contract, not a module bug.
    if (net.is_port || net.is_memory) continue;
    if (net.drivers.empty() && net.loads.empty()) {
      report.Add(Severity::kWarning, kRuleRtlDead, net.path,
                 "net is never driven and never read");
      continue;
    }
    if (net.loads.empty()) {
      if (net.is_reg) {
        report.Add(Severity::kWarning, kRuleRtlDead, net.path,
                   "register is written but never read");
        continue;
      }
      // Instance-output taps (a child output wired up but unused) are a
      // deliberate idiom; anything else driven-never-read is worth a note.
      const bool all_taps = std::all_of(
          net.drivers.begin(), net.drivers.end(), [](const NetDriver& d) {
            return d.kind == NetDriver::Kind::kInstanceOutput;
          });
      if (!all_taps)
        report.Add(Severity::kNote, kRuleRtlDead, net.path,
                   "wire is driven but never read");
    }
  }
}

}  // namespace

AnalysisReport VerifyRtl(const VDesign& design) {
  AnalysisReport report;
  const Netlist netlist = Elaborate(design);
  CheckDrive(netlist, report);
  CheckWidths(design, report);
  CheckCombLoops(netlist, report);
  CheckClocks(design, report);
  CheckDead(netlist, report);
  return report;
}

void VerifyRtlOrThrow(const VDesign& design) {
  const AnalysisReport report = VerifyRtl(design);
  if (!report.ok())
    DB_THROW("RTL verification failed:\n" + report.ToText());
}

}  // namespace db::analysis
