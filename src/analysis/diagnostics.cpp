#include "analysis/diagnostics.h"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace db::analysis {

namespace {

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int SeverityRank(Severity severity) {
  switch (severity) {
    case Severity::kError: return 0;
    case Severity::kWarning: return 1;
    case Severity::kNote: return 2;
  }
  return 3;
}

}  // namespace

std::string SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

void AnalysisReport::Add(Severity severity, std::string rule,
                         std::string location, std::string message) {
  diags_.push_back({severity, std::move(rule), std::move(location),
                    std::move(message)});
}

void AnalysisReport::Merge(const AnalysisReport& other) {
  diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

int AnalysisReport::ErrorCount() const {
  int n = 0;
  for (const Diagnostic& d : diags_)
    if (d.severity == Severity::kError) ++n;
  return n;
}

int AnalysisReport::WarningCount() const {
  int n = 0;
  for (const Diagnostic& d : diags_)
    if (d.severity == Severity::kWarning) ++n;
  return n;
}

bool AnalysisReport::HasRule(const std::string& rule) const {
  for (const Diagnostic& d : diags_)
    if (d.rule == rule) return true;
  return false;
}

std::vector<Diagnostic> AnalysisReport::Sorted() const {
  std::vector<Diagnostic> sorted = diags_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::make_tuple(SeverityRank(a.severity),
                                            std::cref(a.rule),
                                            std::cref(a.location),
                                            std::cref(a.message)) <
                            std::make_tuple(SeverityRank(b.severity),
                                            std::cref(b.rule),
                                            std::cref(b.location),
                                            std::cref(b.message));
                   });
  return sorted;
}

std::string AnalysisReport::ToText() const {
  std::ostringstream os;
  for (const Diagnostic& d : Sorted())
    os << SeverityName(d.severity) << "[" << d.rule << "] " << d.location
       << ": " << d.message << "\n";
  os << "verdict: " << (ok() ? "clean" : "ILLEGAL") << " ("
     << ErrorCount() << " error(s), " << WarningCount()
     << " warning(s))\n";
  return os.str();
}

std::string AnalysisReport::ToJson() const {
  std::ostringstream os;
  os << "{\"errors\":" << ErrorCount()
     << ",\"warnings\":" << WarningCount() << ",\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : Sorted()) {
    if (!first) os << ",";
    first = false;
    os << "{\"severity\":\"" << SeverityName(d.severity) << "\",\"rule\":\""
       << EscapeJson(d.rule) << "\",\"location\":\""
       << EscapeJson(d.location) << "\",\"message\":\""
       << EscapeJson(d.message) << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace db::analysis
