#include "analysis/rtl_mutations.h"

#include <functional>

#include "common/error.h"
#include "rtl/netlist.h"

namespace db::analysis {
namespace {

bool ExprReads(const VExpr& expr, const std::string& name) {
  if (expr.kind == VExprKind::kId && expr.text == name) return true;
  for (const VExpr& arg : expr.args)
    if (ExprReads(arg, name)) return true;
  return false;
}

bool StmtReads(const VStmt& stmt, const std::string& name) {
  if (stmt.kind == VStmtKind::kAssign) return ExprReads(stmt.rhs, name);
  if (stmt.kind == VStmtKind::kIf && ExprReads(stmt.cond, name))
    return true;
  for (const VStmt& s : stmt.then_stmts)
    if (StmtReads(s, name)) return true;
  for (const VStmt& s : stmt.else_stmts)
    if (StmtReads(s, name)) return true;
  return false;
}

/// True when `module` reads `name` anywhere (assign rhs, always body,
/// instance binding actual).
bool ModuleReads(const VModule& module, const std::string& name) {
  for (const VAssign& a : module.assigns)
    if (ExprReads(a.rhs, name)) return true;
  for (const VAlways& blk : module.always_blocks)
    for (const VStmt& s : blk.body)
      if (StmtReads(s, name)) return true;
  for (const VInstance& inst : module.instances)
    for (const VBinding& b : inst.ports)
      if (ExprReads(b.actual, name)) return true;
  return false;
}

VModule& TopModule(VDesign& design) {
  for (VModule& m : design.modules)
    if (m.name == design.top) return m;
  DB_THROW("design has no top module '" + design.top + "'");
}

/// Remove an input-port binding whose child module actually reads the
/// port, leaving a loaded-but-undriven net behind.
void BreakDriveUnbound(VDesign& design) {
  VModule& top = TopModule(design);
  for (VInstance& inst : top.instances) {
    const VModule* def = design.FindModule(inst.module_name);
    if (def == nullptr) continue;
    for (std::size_t i = 0; i < inst.ports.size(); ++i) {
      const VPort* formal = def->FindPort(inst.ports[i].formal);
      if (formal == nullptr || formal->dir != PortDir::kInput) continue;
      if (formal->name == "clk" || formal->name == "rst_n") continue;
      if (!ModuleReads(*def, formal->name)) continue;
      inst.ports.erase(inst.ports.begin() +
                       static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
  DB_THROW("no removable input binding in the top module");
}

/// Point a later continuous assign at an earlier assign's target,
/// creating overlapping drivers without a width or loop side effect.
void BreakDriveDouble(VDesign& design) {
  VModule& top = TopModule(design);
  for (std::size_t j = 1; j < top.assigns.size(); ++j)
    for (std::size_t i = 0; i < j; ++i) {
      const int wl = InferWidth(top, top.assigns[i].lhs);
      const int wr = InferWidth(top, top.assigns[j].rhs);
      if (wl <= 0 || wr > wl) continue;  // would add an rtl.width error
      const std::string base = LvalueBase(top.assigns[i].lhs);
      if (base.empty() || ExprReads(top.assigns[j].rhs, base))
        continue;  // would add an rtl.comb.loop error
      top.assigns[j].lhs = top.assigns[i].lhs;
      return;
    }
  DB_THROW("no assign pair in the top module supports double-driving");
}

bool WidenFirstSlice(const VModule& m, VExpr& expr) {
  if (expr.kind == VExprKind::kSlice &&
      expr.args[0].kind == VExprKind::kId &&
      InferWidth(m, expr.args[0]) > 0) {
    ++expr.msb;
    return true;
  }
  for (VExpr& arg : expr.args)
    if (WidenFirstSlice(m, arg)) return true;
  return false;
}

/// Widen the first rhs slice one bit past its declared net.
void BreakWidthSlice(VDesign& design) {
  for (VModule& m : design.modules)
    for (VAssign& a : m.assigns)
      if (WidenFirstSlice(m, a.rhs)) return;
  DB_THROW("no sliced assign rhs to widen");
}

bool BlockFirstAssign(VStmt& stmt) {
  if (stmt.kind == VStmtKind::kAssign) {
    if (!stmt.non_blocking) return false;
    stmt.non_blocking = false;
    return true;
  }
  for (VStmt& s : stmt.then_stmts)
    if (BlockFirstAssign(s)) return true;
  for (VStmt& s : stmt.else_stmts)
    if (BlockFirstAssign(s)) return true;
  return false;
}

/// Turn the first non-blocking assignment of the first clocked block
/// into a blocking one.
void BreakClockBlocking(VDesign& design) {
  for (VModule& m : design.modules)
    for (VAlways& blk : m.always_blocks) {
      if (blk.sensitivity.rfind("posedge ", 0) != 0) continue;
      for (VStmt& s : blk.body)
        if (BlockFirstAssign(s)) return;
    }
  DB_THROW("no clocked always block with a non-blocking assignment");
}

/// Splice two mutually-dependent continuous assigns into the top module.
void BreakCombCycle(VDesign& design) {
  VModule& top = TopModule(design);
  top.nets.push_back({"comb_a", 1, false, 0});
  top.nets.push_back({"comb_b", 1, false, 0});
  top.assigns.push_back({VId("comb_a"), VId("comb_b")});
  top.assigns.push_back({VId("comb_b"), VId("comb_a")});
}

/// Add a register that is written every cycle and never read.
void BreakDeadReg(VDesign& design) {
  for (VModule& m : design.modules)
    for (VAlways& blk : m.always_blocks) {
      if (blk.sensitivity.rfind("posedge ", 0) != 0) continue;
      m.nets.push_back({"dead_reg", 8, true, 0});
      blk.body.push_back(VNonBlocking(VId("dead_reg"), VLit(8, 0)));
      return;
    }
  DB_THROW("no clocked always block to host a dead register");
}

}  // namespace

std::vector<std::string> BreakableRtlMutations() {
  return {"drive.unbound", "drive.double", "width.slice",
          "clock.blocking", "comb.cycle",  "dead.reg"};
}

void BreakRtlRule(VDesign& design, const std::string& mutation) {
  if (mutation == "drive.unbound") return BreakDriveUnbound(design);
  if (mutation == "drive.double") return BreakDriveDouble(design);
  if (mutation == "width.slice") return BreakWidthSlice(design);
  if (mutation == "clock.blocking") return BreakClockBlocking(design);
  if (mutation == "comb.cycle") return BreakCombCycle(design);
  if (mutation == "dead.reg") return BreakDeadReg(design);
  DB_THROW("unknown RTL mutation class '" + mutation + "'");
}

}  // namespace db::analysis
