#include "nn/weights.h"

#include <cmath>

#include "common/error.h"

namespace db {
namespace {

/// Shapes of the parameter tensors for one layer; empty shapes mean the
/// tensor is absent for this kind.
struct ParamShapes {
  Shape weights;
  Shape bias;
  Shape recurrent;
  bool any = false;
};

ParamShapes ShapesFor(const IrLayer& layer) {
  ParamShapes s;
  switch (layer.kind()) {
    case LayerKind::kConvolution: {
      const ConvolutionParams& p = *layer.def.conv;
      const BlobShape& in = layer.input_shapes.front();
      s.weights = Shape{p.num_output, in.channels / p.group,
                        p.kernel_size, p.kernel_size};
      if (p.bias) s.bias = Shape{p.num_output};
      s.any = true;
      break;
    }
    case LayerKind::kInnerProduct: {
      const InnerProductParams& p = *layer.def.fc;
      const std::int64_t in_n = layer.input_shapes.front().NumElements();
      s.weights = Shape{p.num_output, in_n};
      if (p.bias) s.bias = Shape{p.num_output};
      s.any = true;
      break;
    }
    case LayerKind::kRecurrent: {
      const RecurrentParams& p = *layer.def.recurrent;
      const std::int64_t in_n = layer.input_shapes.front().NumElements();
      s.weights = Shape{p.num_output, in_n};
      s.recurrent = Shape{p.num_output, p.num_output};
      s.bias = Shape{p.num_output};
      s.any = true;
      break;
    }
    case LayerKind::kLstm: {
      const LstmParams& p = *layer.def.lstm;
      const std::int64_t in_n = layer.input_shapes.front().NumElements();
      // Gate order along the first axis: input, forget, cell, output.
      s.weights = Shape{4 * p.num_output, in_n};
      s.recurrent = Shape{4 * p.num_output, p.num_output};
      s.bias = Shape{4 * p.num_output};
      s.any = true;
      break;
    }
    case LayerKind::kAssociative: {
      const AssociativeParams& p = *layer.def.associative;
      s.weights = Shape{p.num_output, p.num_cells};
      s.any = true;
      break;
    }
    default:
      break;
  }
  return s;
}

double FanSum(const IrLayer& layer) {
  const double fan_in =
      static_cast<double>(layer.input_shapes.front().NumElements());
  const double fan_out =
      static_cast<double>(layer.output_shape.NumElements());
  return fan_in + fan_out;
}

}  // namespace

WeightStore WeightStore::CreateFor(const Network& net) {
  WeightStore store;
  for (const IrLayer* layer : net.ComputeLayers()) {
    const ParamShapes shapes = ShapesFor(*layer);
    if (!shapes.any) continue;
    LayerParams params;
    params.weights = Tensor(shapes.weights);
    if (shapes.bias.NumElements() > 0 && shapes.bias.rank() > 0)
      params.bias = Tensor(shapes.bias);
    if (shapes.recurrent.rank() > 0)
      params.recurrent = Tensor(shapes.recurrent);
    store.params_.emplace(layer->name(), std::move(params));
  }
  return store;
}

WeightStore WeightStore::CreateRandomHe(const Network& net, Rng& rng) {
  WeightStore store = CreateFor(net);
  for (const IrLayer* layer : net.ComputeLayers()) {
    auto it = store.params_.find(layer->name());
    if (it == store.params_.end()) continue;
    // Receptive-field fan-in: conv uses k*k*Cin, everything else the
    // flattened input size.
    double fan_in =
        static_cast<double>(layer->input_shapes.front().NumElements());
    if (layer->kind() == LayerKind::kConvolution) {
      const ConvolutionParams& p = *layer->def.conv;
      fan_in = static_cast<double>(
          p.kernel_size * p.kernel_size *
          (layer->input_shapes.front().channels / p.group));
    }
    const float stddev = static_cast<float>(std::sqrt(2.0 / fan_in));
    it->second.weights.FillGaussian(rng, 0.0f, stddev);
    if (it->second.recurrent.size() > 0)
      it->second.recurrent.FillGaussian(rng, 0.0f, stddev);
  }
  return store;
}

WeightStore WeightStore::CreateRandom(const Network& net, Rng& rng) {
  WeightStore store = CreateFor(net);
  for (const IrLayer* layer : net.ComputeLayers()) {
    auto it = store.params_.find(layer->name());
    if (it == store.params_.end()) continue;
    const double bound = std::sqrt(6.0 / FanSum(*layer));
    it->second.weights.FillUniform(rng, static_cast<float>(-bound),
                                   static_cast<float>(bound));
    if (it->second.recurrent.size() > 0)
      it->second.recurrent.FillUniform(rng, static_cast<float>(-bound),
                                       static_cast<float>(bound));
    // biases stay zero
  }
  return store;
}

LayerParams& WeightStore::at(const std::string& layer_name) {
  auto it = params_.find(layer_name);
  if (it == params_.end())
    DB_THROW("no parameters stored for layer '" << layer_name << "'");
  return it->second;
}

const LayerParams& WeightStore::at(const std::string& layer_name) const {
  auto it = params_.find(layer_name);
  if (it == params_.end())
    DB_THROW("no parameters stored for layer '" << layer_name << "'");
  return it->second;
}

std::int64_t WeightStore::TotalCount() const {
  std::int64_t n = 0;
  for (const auto& [name, params] : params_) n += params.TotalCount();
  return n;
}

}  // namespace db
