// CMAC (Cerebellar Model Articulation Controller) support.
//
// The paper's Table 1/2 include a 2-layer CMAC used for robot arm control;
// its association layer maps to DeepBurning's "associative layer"
// (connection-box hardware).  The association hashing here is shared by
// the float executor, the fixed-point functional simulator and the
// stand-alone CmacModel trainer so all three activate identical cells.
#pragma once

#include <cstdint>
#include <vector>

#include "frontend/network_def.h"
#include "tensor/tensor.h"

namespace db {

/// Indices of the `generalization` cells activated by input `x`
/// (components expected in [0, 1]; values outside are clamped).
/// Deterministic FNV-based hashing onto `num_cells` table entries, one
/// cell per overlapping quantisation offset — the classic CMAC scheme.
std::vector<std::int64_t> CmacActiveCells(const std::vector<float>& x,
                                          const AssociativeParams& p);

/// Stand-alone CMAC learner: lookup table trained with the LMS delta rule.
/// Used by the robot-arm benchmark; the learned table is then installed
/// into a WeightStore associative layer for accelerator generation.
class CmacModel {
 public:
  CmacModel(AssociativeParams params, std::int64_t input_dims);

  /// Predict outputs for input x (components in [0,1]).
  std::vector<double> Predict(const std::vector<float>& x) const;

  /// One LMS update: distribute the prediction error equally over the
  /// active cells.  Returns the pre-update squared error.
  double TrainStep(const std::vector<float>& x,
                   const std::vector<double>& target, double learning_rate);

  /// The cell table, shaped {num_output, num_cells}; transferable into a
  /// WeightStore associative layer.
  const Tensor& table() const { return table_; }
  Tensor& table() { return table_; }

  const AssociativeParams& params() const { return params_; }
  std::int64_t input_dims() const { return input_dims_; }

 private:
  AssociativeParams params_;
  std::int64_t input_dims_;
  Tensor table_;
};

}  // namespace db
