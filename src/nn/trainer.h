// SGD/backprop trainer for feed-forward networks.
//
// The paper trains its models offline in Caffe/Matlab and loads the
// weights onto the board.  This trainer is the in-repo substitute: it
// covers the feed-forward layer kinds (convolution, pooling, inner
// product, ReLU/sigmoid/tanh, softmax, dropout, concat), enough to train
// the ANN-0/1/2 approximators and the MNIST/Cifar-style CNNs on the
// synthetic datasets.  Recurrent/associative models are trained by their
// dedicated substrates (HopfieldTsp builds weights analytically, CmacModel
// uses LMS).
#pragma once

#include <span>
#include <vector>

#include "nn/executor.h"

namespace db {

/// One supervised example.  For kMse the target has the output layer's
/// shape; for kSoftmaxCrossEntropy it is a class distribution (usually
/// one-hot) over the pre-softmax logits' elements.
struct TrainSample {
  Tensor input;
  Tensor target;
};

enum class LossKind { kMse, kSoftmaxCrossEntropy };

struct TrainerOptions {
  double learning_rate = 0.01;
  double momentum = 0.9;
  /// Per-sample gradients are rescaled to this global L2 norm when they
  /// exceed it; guards the per-sample SGD against the exploding updates
  /// that kill ReLU networks.  <= 0 disables clipping.
  double max_grad_norm = 5.0;
  /// Samples whose gradients accumulate before one weight update.
  /// Mini-batching removes the last-sample bias that stalls pure SGD on
  /// multi-class tasks.
  int batch_size = 1;
  LossKind loss = LossKind::kMse;
  std::uint64_t seed = 1;  // shuffling + dropout masks
};

/// Mini SGD trainer.  Holds gradient and momentum buffers shaped like the
/// WeightStore it updates.
class Trainer {
 public:
  Trainer(const Network& net, WeightStore& weights, TrainerOptions opts);

  /// One pass over all samples in shuffled order, updating weights after
  /// every sample (pure SGD).  Returns the mean loss over the epoch.
  double TrainEpoch(std::span<const TrainSample> samples);

  /// Mean loss without updating weights.
  double Evaluate(std::span<const TrainSample> samples) const;

  /// Loss of a single (input, target) pair under the configured LossKind.
  double SampleLoss(const TrainSample& sample) const;

  /// Classification accuracy: fraction of samples whose output argmax
  /// matches the target argmax.
  double ClassificationAccuracy(std::span<const TrainSample> samples) const;

 private:
  /// Forward pass caching every layer's input/output; returns d(loss)/d(output)
  /// of the final layer and accumulates parameter gradients on the way back.
  double ForwardBackward(const TrainSample& sample);
  void ApplyGradients(int batch = 1);

  const Network& net_;
  WeightStore& weights_;
  TrainerOptions opts_;
  WeightStore grads_;
  WeightStore velocity_;
  Rng rng_;
  std::uint64_t step_ = 0;
};

}  // namespace db
