// Trained-parameter storage for a network.
//
// The paper trains models in Caffe/Matlab and pre-loads the weights into
// board DRAM; here the WeightStore is the in-memory equivalent that both
// the float reference executor and the fixed-point functional simulator
// read, and that the compiler lays out into the accelerator's memory
// image.
#pragma once

#include <map>
#include <string>

#include "common/rng.h"
#include "graph/network.h"
#include "tensor/tensor.h"

namespace db {

/// Parameters of one layer.  Which tensors are populated depends on kind:
///   convolution  : weights {outC, inC, k, k}, bias {outC}
///   inner product: weights {outN, inN},       bias {outN}
///   recurrent    : weights {outN, inN}, recurrent {outN, outN}, bias {outN}
///   associative  : weights {outN, num_cells}  (the CMAC cell table)
struct LayerParams {
  Tensor weights;
  Tensor bias;
  Tensor recurrent;

  std::int64_t TotalCount() const {
    return weights.size() + bias.size() + recurrent.size();
  }
};

/// All trainable parameters of a network, keyed by layer name.
class WeightStore {
 public:
  /// Allocate correctly-shaped zero tensors for every parameterised layer.
  static WeightStore CreateFor(const Network& net);

  /// Allocate and Xavier-initialise (uniform in +-sqrt(6/(fan_in+fan_out))).
  static WeightStore CreateRandom(const Network& net, Rng& rng);

  /// Allocate and He-initialise (Gaussian with std sqrt(2/fan_in), where
  /// fan_in is the receptive-field size).  Keeps activation magnitudes
  /// O(1) through deep ReLU stacks — required when a random-weight deep
  /// model must produce fixed-point-representable activations (the
  /// fidelity-evaluated ImageNet models).
  static WeightStore CreateRandomHe(const Network& net, Rng& rng);

  bool Has(const std::string& layer_name) const {
    return params_.count(layer_name) > 0;
  }
  LayerParams& at(const std::string& layer_name);
  const LayerParams& at(const std::string& layer_name) const;

  const std::map<std::string, LayerParams>& all() const { return params_; }
  std::map<std::string, LayerParams>& all() { return params_; }

  /// Total number of scalar parameters (matches LayerStats weight counts).
  std::int64_t TotalCount() const;

 private:
  std::map<std::string, LayerParams> params_;
};

}  // namespace db
