#include "nn/trainer.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"

namespace db {
namespace {

bool KindTrainable(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput:
    case LayerKind::kConvolution:
    case LayerKind::kPooling:
    case LayerKind::kInnerProduct:
    case LayerKind::kRelu:
    case LayerKind::kSigmoid:
    case LayerKind::kTanh:
    case LayerKind::kSoftmax:
    case LayerKind::kDropout:
    case LayerKind::kConcat:
      return true;
    default:
      return false;
  }
}

}  // namespace

Trainer::Trainer(const Network& net, WeightStore& weights,
                 TrainerOptions opts)
    : net_(net),
      weights_(weights),
      opts_(opts),
      grads_(WeightStore::CreateFor(net)),
      velocity_(WeightStore::CreateFor(net)),
      rng_(opts.seed) {
  for (const IrLayer* layer : net.ComputeLayers()) {
    if (!KindTrainable(layer->kind()))
      DB_THROW("Trainer does not support layer kind "
               << LayerKindName(layer->kind()) << " (layer '"
               << layer->name() << "'); use the dedicated substrate");
    if (layer->kind() == LayerKind::kConvolution &&
        layer->def.conv->group != 1)
      DB_THROW("Trainer does not support grouped convolution (layer '"
               << layer->name() << "')");
  }
  if (opts.loss == LossKind::kSoftmaxCrossEntropy &&
      net.OutputLayer().kind() != LayerKind::kSoftmax)
    DB_THROW("softmax cross-entropy loss requires a SOFTMAX output layer");
}

double Trainer::SampleLoss(const TrainSample& sample) const {
  Executor exec(net_, weights_);
  const Tensor out = exec.ForwardOutput(sample.input);
  DB_CHECK_MSG(out.shape() == sample.target.shape(),
               "target shape mismatch");
  if (opts_.loss == LossKind::kMse) {
    double sum = 0.0;
    for (std::int64_t i = 0; i < out.size(); ++i) {
      const double d = static_cast<double>(out[i]) - sample.target[i];
      sum += d * d;
    }
    return sum / static_cast<double>(out.size());
  }
  // Cross-entropy against the softmax output.
  double loss = 0.0;
  for (std::int64_t i = 0; i < out.size(); ++i)
    if (sample.target[i] > 0.0f)
      loss -= static_cast<double>(sample.target[i]) *
              std::log(std::max(static_cast<double>(out[i]), 1e-12));
  return loss;
}

double Trainer::Evaluate(std::span<const TrainSample> samples) const {
  if (samples.empty()) return 0.0;
  double total = 0.0;
  for (const TrainSample& s : samples) total += SampleLoss(s);
  return total / static_cast<double>(samples.size());
}

double Trainer::ClassificationAccuracy(
    std::span<const TrainSample> samples) const {
  if (samples.empty()) return 0.0;
  Executor exec(net_, weights_);
  std::int64_t correct = 0;
  for (const TrainSample& s : samples) {
    const Tensor out = exec.ForwardOutput(s.input);
    if (out.ArgMax() == s.target.ArgMax()) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(samples.size());
}

double Trainer::TrainEpoch(std::span<const TrainSample> samples) {
  std::vector<std::size_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng_.UniformInt(i)]);

  const int batch = std::max(opts_.batch_size, 1);
  double total = 0.0;
  int pending = 0;
  for (std::size_t idx : order) {
    total += ForwardBackward(samples[idx]);
    if (++pending == batch) {
      ApplyGradients(pending);
      pending = 0;
    }
  }
  if (pending > 0) ApplyGradients(pending);
  return samples.empty() ? 0.0 : total / static_cast<double>(samples.size());
}

double Trainer::ForwardBackward(const TrainSample& sample) {
  ++step_;
  const std::size_t n = net_.layers().size();
  std::vector<Tensor> acts(n);       // output of each layer
  std::vector<Tensor> masks(n);      // dropout masks (scaled)
  // ---- forward ----
  ExecutorOptions fwd_opts;
  fwd_opts.training_mode = true;
  for (const IrLayer& layer : net_.layers()) {
    const std::size_t id = static_cast<std::size_t>(layer.id);
    std::vector<const Tensor*> ins;
    for (int in_id : layer.input_ids)
      ins.push_back(&acts[static_cast<std::size_t>(in_id)]);
    switch (layer.kind()) {
      case LayerKind::kInput: {
        const BlobShape& bs = layer.output_shape;
        DB_CHECK_MSG(sample.input.shape() ==
                         Shape({bs.channels, bs.height, bs.width}),
                     "training input shape mismatch");
        acts[id] = sample.input;
        break;
      }
      case LayerKind::kConvolution:
        acts[id] = ConvolutionForward(*ins.front(),
                                      weights_.at(layer.name()),
                                      *layer.def.conv);
        break;
      case LayerKind::kPooling:
        acts[id] = PoolingForward(*ins.front(), *layer.def.pool);
        break;
      case LayerKind::kInnerProduct:
        acts[id] = InnerProductForward(*ins.front(),
                                       weights_.at(layer.name()),
                                       *layer.def.fc);
        break;
      case LayerKind::kRelu:
        acts[id] = ReluForward(*ins.front());
        break;
      case LayerKind::kSigmoid:
        acts[id] = SigmoidForward(*ins.front());
        break;
      case LayerKind::kTanh:
        acts[id] = TanhForward(*ins.front());
        break;
      case LayerKind::kSoftmax:
        acts[id] = SoftmaxForward(*ins.front());
        break;
      case LayerKind::kDropout: {
        // Generate and cache the mask so backward replays it exactly.
        const Tensor& x = *ins.front();
        Tensor mask(x.shape());
        const float scale =
            static_cast<float>(1.0 / (1.0 - layer.def.dropout->ratio));
        Rng mask_rng(opts_.seed ^ (step_ * 0x9E3779B97F4A7C15ull) ^
                     static_cast<std::uint64_t>(layer.id));
        for (std::int64_t i = 0; i < x.size(); ++i)
          mask[i] = mask_rng.Bernoulli(layer.def.dropout->ratio) ? 0.0f
                                                                 : scale;
        Tensor y(x.shape());
        for (std::int64_t i = 0; i < x.size(); ++i) y[i] = x[i] * mask[i];
        masks[id] = std::move(mask);
        acts[id] = std::move(y);
        break;
      }
      case LayerKind::kConcat: {
        std::vector<Tensor> owned;
        owned.reserve(ins.size());
        for (const Tensor* t : ins) owned.push_back(*t);
        acts[id] = ConcatForward(owned);
        break;
      }
      default:
        DB_THROW("unreachable: untrainable kind in ForwardBackward");
    }
  }

  // ---- loss and output gradient ----
  const IrLayer& out_layer = net_.OutputLayer();
  const Tensor& out = acts[static_cast<std::size_t>(out_layer.id)];
  DB_CHECK_MSG(out.shape() == sample.target.shape(),
               "target shape mismatch");
  std::vector<Tensor> grads(n);  // d(loss)/d(layer output)
  for (std::size_t i = 0; i < n; ++i)
    grads[i] = Tensor(net_.layer(static_cast<int>(i)).output_shape.channels
                          ? Shape{net_.layer(static_cast<int>(i))
                                      .output_shape.channels,
                                  net_.layer(static_cast<int>(i))
                                      .output_shape.height,
                                  net_.layer(static_cast<int>(i))
                                      .output_shape.width}
                          : Shape{0});

  double loss = 0.0;
  Tensor& dout = grads[static_cast<std::size_t>(out_layer.id)];
  if (opts_.loss == LossKind::kMse) {
    for (std::int64_t i = 0; i < out.size(); ++i) {
      const double d = static_cast<double>(out[i]) - sample.target[i];
      loss += d * d;
      dout[i] = static_cast<float>(2.0 * d /
                                   static_cast<double>(out.size()));
    }
    loss /= static_cast<double>(out.size());
  } else {
    // Softmax + cross-entropy: gradient w.r.t. the softmax *input* is
    // (p - t).  We set the softmax layer's output grad to (p - t) and let
    // the softmax backward below pass it through unchanged.
    for (std::int64_t i = 0; i < out.size(); ++i) {
      if (sample.target[i] > 0.0f)
        loss -= static_cast<double>(sample.target[i]) *
                std::log(std::max(static_cast<double>(out[i]), 1e-12));
      dout[i] = out[i] - sample.target[i];
    }
  }

  // ---- backward ----
  for (auto it = net_.layers().rbegin(); it != net_.layers().rend(); ++it) {
    const IrLayer& layer = *it;
    const std::size_t id = static_cast<std::size_t>(layer.id);
    if (layer.kind() == LayerKind::kInput) continue;
    const Tensor& dy = grads[id];
    auto add_input_grad = [&](int which, const Tensor& dx) {
      Tensor& g = grads[static_cast<std::size_t>(
          layer.input_ids[static_cast<std::size_t>(which)])];
      DB_CHECK(g.shape() == dx.shape());
      for (std::int64_t i = 0; i < dx.size(); ++i) g[i] += dx[i];
    };
    const Tensor& x0 =
        acts[static_cast<std::size_t>(layer.input_ids.front())];

    switch (layer.kind()) {
      case LayerKind::kConvolution: {
        const ConvolutionParams& p = *layer.def.conv;
        const LayerParams& w = weights_.at(layer.name());
        LayerParams& gw = grads_.at(layer.name());
        Tensor dx(x0.shape());
        const std::int64_t in_c = x0.shape().dim(0);
        const std::int64_t in_h = x0.shape().dim(1);
        const std::int64_t in_w = x0.shape().dim(2);
        const std::int64_t oh = dy.shape().dim(1);
        const std::int64_t ow = dy.shape().dim(2);
        for (std::int64_t oc = 0; oc < p.num_output; ++oc) {
          for (std::int64_t y = 0; y < oh; ++y) {
            for (std::int64_t x = 0; x < ow; ++x) {
              const float g = dy.at3(oc, y, x);
              if (g == 0.0f) continue;
              if (gw.bias.size() > 0) gw.bias[oc] += g;
              for (std::int64_t ic = 0; ic < in_c; ++ic) {
                for (std::int64_t ky = 0; ky < p.kernel_size; ++ky) {
                  const std::int64_t iy = y * p.stride + ky - p.pad;
                  if (iy < 0 || iy >= in_h) continue;
                  for (std::int64_t kx = 0; kx < p.kernel_size; ++kx) {
                    const std::int64_t ix = x * p.stride + kx - p.pad;
                    if (ix < 0 || ix >= in_w) continue;
                    gw.weights.at({oc, ic, ky, kx}) +=
                        g * x0.at3(ic, iy, ix);
                    dx.at3(ic, iy, ix) +=
                        g * w.weights.at({oc, ic, ky, kx});
                  }
                }
              }
            }
          }
        }
        add_input_grad(0, dx);
        break;
      }
      case LayerKind::kInnerProduct: {
        const InnerProductParams& p = *layer.def.fc;
        const LayerParams& w = weights_.at(layer.name());
        LayerParams& gw = grads_.at(layer.name());
        Tensor dx(x0.shape());
        const std::int64_t in_n = x0.size();
        for (std::int64_t o = 0; o < p.num_output; ++o) {
          const float g = dy[o];
          if (gw.bias.size() > 0) gw.bias[o] += g;
          for (std::int64_t i = 0; i < in_n; ++i) {
            gw.weights.at({o, i}) += g * x0[i];
            dx[i] += g * w.weights.at({o, i});
          }
        }
        add_input_grad(0, dx);
        break;
      }
      case LayerKind::kPooling: {
        const PoolingParams& p = *layer.def.pool;
        Tensor dx(x0.shape());
        const std::int64_t c = x0.shape().dim(0);
        const std::int64_t in_h = x0.shape().dim(1);
        const std::int64_t in_w = x0.shape().dim(2);
        const std::int64_t oh = dy.shape().dim(1);
        const std::int64_t ow = dy.shape().dim(2);
        for (std::int64_t ch = 0; ch < c; ++ch) {
          for (std::int64_t y = 0; y < oh; ++y) {
            for (std::int64_t x = 0; x < ow; ++x) {
              const std::int64_t y0 =
                  std::max<std::int64_t>(y * p.stride - p.pad, 0);
              const std::int64_t x0i =
                  std::max<std::int64_t>(x * p.stride - p.pad, 0);
              const std::int64_t y1 =
                  std::min(y * p.stride - p.pad + p.kernel_size, in_h);
              const std::int64_t x1 =
                  std::min(x * p.stride - p.pad + p.kernel_size, in_w);
              const float g = dy.at3(ch, y, x);
              if (p.method == PoolMethod::kMax) {
                std::int64_t by = y0, bx = x0i;
                float best = -std::numeric_limits<float>::infinity();
                for (std::int64_t iy = y0; iy < y1; ++iy)
                  for (std::int64_t ix = x0i; ix < x1; ++ix)
                    if (x0.at3(ch, iy, ix) > best) {
                      best = x0.at3(ch, iy, ix);
                      by = iy;
                      bx = ix;
                    }
                dx.at3(ch, by, bx) += g;
              } else {
                const float share = g / static_cast<float>(
                                            p.kernel_size * p.kernel_size);
                for (std::int64_t iy = y0; iy < y1; ++iy)
                  for (std::int64_t ix = x0i; ix < x1; ++ix)
                    dx.at3(ch, iy, ix) += share;
              }
            }
          }
        }
        add_input_grad(0, dx);
        break;
      }
      case LayerKind::kRelu: {
        Tensor dx(x0.shape());
        for (std::int64_t i = 0; i < x0.size(); ++i)
          dx[i] = x0[i] > 0.0f ? dy[i] : 0.0f;
        add_input_grad(0, dx);
        break;
      }
      case LayerKind::kSigmoid: {
        const Tensor& y = acts[id];
        Tensor dx(x0.shape());
        for (std::int64_t i = 0; i < y.size(); ++i)
          dx[i] = dy[i] * y[i] * (1.0f - y[i]);
        add_input_grad(0, dx);
        break;
      }
      case LayerKind::kTanh: {
        const Tensor& y = acts[id];
        Tensor dx(x0.shape());
        for (std::int64_t i = 0; i < y.size(); ++i)
          dx[i] = dy[i] * (1.0f - y[i] * y[i]);
        add_input_grad(0, dx);
        break;
      }
      case LayerKind::kSoftmax: {
        if (opts_.loss == LossKind::kSoftmaxCrossEntropy &&
            layer.id == out_layer.id) {
          // dy already holds (p - t) = d(loss)/d(logits).
          add_input_grad(0, dy);
        } else {
          const Tensor& y = acts[id];
          double dot = 0.0;
          for (std::int64_t i = 0; i < y.size(); ++i)
            dot += static_cast<double>(dy[i]) * y[i];
          Tensor dx(x0.shape());
          for (std::int64_t i = 0; i < y.size(); ++i)
            dx[i] = static_cast<float>(
                y[i] * (static_cast<double>(dy[i]) - dot));
          add_input_grad(0, dx);
        }
        break;
      }
      case LayerKind::kDropout: {
        const Tensor& mask = masks[id];
        Tensor dx(x0.shape());
        for (std::int64_t i = 0; i < x0.size(); ++i)
          dx[i] = dy[i] * mask[i];
        add_input_grad(0, dx);
        break;
      }
      case LayerKind::kConcat: {
        std::int64_t c_off = 0;
        for (std::size_t which = 0; which < layer.input_ids.size();
             ++which) {
          const Tensor& xin = acts[static_cast<std::size_t>(
              layer.input_ids[which])];
          Tensor dx(xin.shape());
          const std::int64_t cc = xin.shape().dim(0);
          const std::int64_t h = xin.shape().dim(1);
          const std::int64_t w = xin.shape().dim(2);
          for (std::int64_t c = 0; c < cc; ++c)
            for (std::int64_t y = 0; y < h; ++y)
              for (std::int64_t x = 0; x < w; ++x)
                dx.at3(c, y, x) = dy.at3(c_off + c, y, x);
          add_input_grad(static_cast<int>(which), dx);
          c_off += cc;
        }
        break;
      }
      default:
        DB_THROW("unreachable: untrainable kind in backward pass");
    }
  }
  return loss;
}

void Trainer::ApplyGradients(int batch) {
  // Average over the accumulated batch, then clip to the global norm.
  float pre_scale = 1.0f / static_cast<float>(std::max(batch, 1));
  if (opts_.max_grad_norm > 0.0) {
    double norm_sq = 0.0;
    for (const auto& [name, g] : grads_.all())
      norm_sq += g.weights.SumSquares() + g.bias.SumSquares() +
                 g.recurrent.SumSquares();
    const double norm = std::sqrt(norm_sq) * pre_scale;
    if (norm > opts_.max_grad_norm)
      pre_scale *= static_cast<float>(opts_.max_grad_norm / norm);
  }
  if (pre_scale != 1.0f) {
    for (auto& [name, g] : grads_.all()) {
      for (std::int64_t i = 0; i < g.weights.size(); ++i)
        g.weights[i] *= pre_scale;
      for (std::int64_t i = 0; i < g.bias.size(); ++i)
        g.bias[i] *= pre_scale;
      for (std::int64_t i = 0; i < g.recurrent.size(); ++i)
        g.recurrent[i] *= pre_scale;
    }
  }
  for (auto& [name, g] : grads_.all()) {
    LayerParams& w = weights_.at(name);
    LayerParams& v = velocity_.at(name);
    auto update = [&](Tensor& wt, Tensor& gt, Tensor& vt) {
      for (std::int64_t i = 0; i < wt.size(); ++i) {
        vt[i] = static_cast<float>(opts_.momentum * vt[i] -
                                   opts_.learning_rate * gt[i]);
        wt[i] += vt[i];
        gt[i] = 0.0f;
      }
    };
    update(w.weights, g.weights, v.weights);
    if (w.bias.size() > 0) update(w.bias, g.bias, v.bias);
    if (w.recurrent.size() > 0)
      update(w.recurrent, g.recurrent, v.recurrent);
  }
}

}  // namespace db
