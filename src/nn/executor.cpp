#include "nn/executor.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"
#include "nn/cmac.h"

namespace db {

Tensor ConvolutionForward(const Tensor& in, const LayerParams& params,
                          const ConvolutionParams& p) {
  DB_CHECK_MSG(in.shape().rank() == 3, "convolution input must be CHW");
  const std::int64_t in_c = in.shape().dim(0);
  const std::int64_t in_h = in.shape().dim(1);
  const std::int64_t in_w = in.shape().dim(2);
  const std::int64_t oh = ConvOutDim(in_h, p.kernel_size, p.stride, p.pad);
  const std::int64_t ow = ConvOutDim(in_w, p.kernel_size, p.stride, p.pad);
  DB_CHECK_MSG(oh > 0 && ow > 0, "convolution output is empty");
  DB_CHECK_MSG(params.weights.shape() ==
                   Shape({p.num_output, in_c / p.group, p.kernel_size,
                          p.kernel_size}),
               "convolution weight shape mismatch");

  Tensor out(Shape{p.num_output, oh, ow});
  const bool has_bias = params.bias.size() > 0;
  const std::int64_t group_in = in_c / p.group;
  const std::int64_t group_out = p.num_output / p.group;
  for (std::int64_t oc = 0; oc < p.num_output; ++oc) {
    const std::int64_t ic_base = (oc / group_out) * group_in;
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        double acc = has_bias ? params.bias[oc] : 0.0;
        for (std::int64_t g = 0; g < group_in; ++g) {
          const std::int64_t ic = ic_base + g;
          for (std::int64_t ky = 0; ky < p.kernel_size; ++ky) {
            const std::int64_t iy = y * p.stride + ky - p.pad;
            if (iy < 0 || iy >= in_h) continue;
            for (std::int64_t kx = 0; kx < p.kernel_size; ++kx) {
              const std::int64_t ix = x * p.stride + kx - p.pad;
              if (ix < 0 || ix >= in_w) continue;
              acc += static_cast<double>(in.at3(ic, iy, ix)) *
                     params.weights.at({oc, g, ky, kx});
            }
          }
        }
        out.at3(oc, y, x) = static_cast<float>(acc);
      }
    }
  }
  return out;
}

Tensor PoolingForward(const Tensor& in, const PoolingParams& p) {
  DB_CHECK_MSG(in.shape().rank() == 3, "pooling input must be CHW");
  const std::int64_t c = in.shape().dim(0);
  const std::int64_t in_h = in.shape().dim(1);
  const std::int64_t in_w = in.shape().dim(2);
  // Ceil-mode output size; a kernel wider than the padded input still
  // yields one (partial) window, hence the clamp to zero.
  const std::int64_t oh =
      CeilDiv(std::max<std::int64_t>(in_h + 2 * p.pad - p.kernel_size, 0),
              p.stride) +
      1;
  const std::int64_t ow =
      CeilDiv(std::max<std::int64_t>(in_w + 2 * p.pad - p.kernel_size, 0),
              p.stride) +
      1;

  Tensor out(Shape{c, oh, ow});
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        const std::int64_t y0 = std::max<std::int64_t>(y * p.stride - p.pad,
                                                       0);
        const std::int64_t x0 = std::max<std::int64_t>(x * p.stride - p.pad,
                                                       0);
        const std::int64_t y1 =
            std::min(y * p.stride - p.pad + p.kernel_size, in_h);
        const std::int64_t x1 =
            std::min(x * p.stride - p.pad + p.kernel_size, in_w);
        if (p.method == PoolMethod::kMax) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::int64_t iy = y0; iy < y1; ++iy)
            for (std::int64_t ix = x0; ix < x1; ++ix)
              best = std::max(best, in.at3(ch, iy, ix));
          out.at3(ch, y, x) = best;
        } else {
          double sum = 0.0;
          for (std::int64_t iy = y0; iy < y1; ++iy)
            for (std::int64_t ix = x0; ix < x1; ++ix)
              sum += in.at3(ch, iy, ix);
          // Average over the nominal window (Caffe divides by k*k).
          out.at3(ch, y, x) = static_cast<float>(
              sum / static_cast<double>(p.kernel_size * p.kernel_size));
        }
      }
    }
  }
  return out;
}

Tensor InnerProductForward(const Tensor& in, const LayerParams& params,
                           const InnerProductParams& p) {
  const std::int64_t in_n = in.size();
  DB_CHECK_MSG(params.weights.shape() == Shape({p.num_output, in_n}),
               "inner product weight shape mismatch");
  Tensor out(Shape{p.num_output, 1, 1});
  const bool has_bias = params.bias.size() > 0;
  for (std::int64_t o = 0; o < p.num_output; ++o) {
    double acc = has_bias ? params.bias[o] : 0.0;
    for (std::int64_t i = 0; i < in_n; ++i)
      acc += static_cast<double>(params.weights.at({o, i})) * in[i];
    out[o] = static_cast<float>(acc);
  }
  return out;
}

namespace {
template <typename Fn>
Tensor ElementwiseForward(const Tensor& in, Fn fn) {
  Tensor out(in.shape());
  for (std::int64_t i = 0; i < in.size(); ++i)
    out[i] = static_cast<float>(fn(static_cast<double>(in[i])));
  return out;
}
}  // namespace

Tensor ReluForward(const Tensor& in) {
  return ElementwiseForward(in, [](double x) { return Relu(x); });
}

Tensor SigmoidForward(const Tensor& in) {
  return ElementwiseForward(in, [](double x) { return Sigmoid(x); });
}

Tensor TanhForward(const Tensor& in) {
  return ElementwiseForward(in, [](double x) { return TanhFn(x); });
}

Tensor LrnForward(const Tensor& in, const LrnParams& p) {
  DB_CHECK_MSG(in.shape().rank() == 3, "lrn input must be CHW");
  const std::int64_t c = in.shape().dim(0);
  const std::int64_t h = in.shape().dim(1);
  const std::int64_t w = in.shape().dim(2);
  Tensor out(in.shape());
  const std::int64_t half = p.local_size / 2;
  for (std::int64_t ch = 0; ch < c; ++ch) {
    const std::int64_t c0 = std::max<std::int64_t>(ch - half, 0);
    const std::int64_t c1 = std::min<std::int64_t>(ch + half + 1, c);
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        double sum_sq = 0.0;
        for (std::int64_t cc = c0; cc < c1; ++cc) {
          const double v = in.at3(cc, y, x);
          sum_sq += v * v;
        }
        const double scale =
            1.0 + p.alpha / static_cast<double>(p.local_size) * sum_sq;
        out.at3(ch, y, x) = static_cast<float>(
            in.at3(ch, y, x) / std::pow(scale, p.beta));
      }
    }
  }
  return out;
}

Tensor SoftmaxForward(const Tensor& in) {
  Tensor out(in.shape());
  double max_v = -std::numeric_limits<double>::infinity();
  for (std::int64_t i = 0; i < in.size(); ++i)
    max_v = std::max(max_v, static_cast<double>(in[i]));
  double sum = 0.0;
  for (std::int64_t i = 0; i < in.size(); ++i) {
    const double e = std::exp(static_cast<double>(in[i]) - max_v);
    out[i] = static_cast<float>(e);
    sum += e;
  }
  for (std::int64_t i = 0; i < in.size(); ++i)
    out[i] = static_cast<float>(out[i] / sum);
  return out;
}

Tensor DropoutForward(const Tensor& in, const DropoutParams& p,
                      const ExecutorOptions& opts) {
  if (!opts.training_mode) return in;  // inverted dropout: identity at test
  Tensor out(in.shape());
  Rng rng(opts.dropout_seed);
  const float scale = static_cast<float>(1.0 / (1.0 - p.ratio));
  for (std::int64_t i = 0; i < in.size(); ++i)
    out[i] = rng.Bernoulli(p.ratio) ? 0.0f : in[i] * scale;
  return out;
}

Tensor RecurrentForward(const Tensor& in, const LayerParams& params,
                        const RecurrentParams& p) {
  const std::int64_t in_n = in.size();
  DB_CHECK_MSG(params.weights.shape() == Shape({p.num_output, in_n}),
               "recurrent input-weight shape mismatch");
  DB_CHECK_MSG(params.recurrent.shape() ==
                   Shape({p.num_output, p.num_output}),
               "recurrent state-weight shape mismatch");
  std::vector<double> h(static_cast<std::size_t>(p.num_output), 0.0);
  std::vector<double> next(h.size(), 0.0);
  for (std::int64_t t = 0; t < p.time_steps; ++t) {
    for (std::int64_t o = 0; o < p.num_output; ++o) {
      double acc = params.bias.size() > 0 ? params.bias[o] : 0.0;
      for (std::int64_t i = 0; i < in_n; ++i)
        acc += static_cast<double>(params.weights.at({o, i})) * in[i];
      for (std::int64_t j = 0; j < p.num_output; ++j)
        acc += static_cast<double>(params.recurrent.at({o, j})) *
               h[static_cast<std::size_t>(j)];
      switch (p.activation) {
        case RecurrentActivation::kTanh: acc = TanhFn(acc); break;
        case RecurrentActivation::kSigmoid: acc = Sigmoid(acc); break;
        case RecurrentActivation::kNone: break;
      }
      next[static_cast<std::size_t>(o)] = acc;
    }
    h.swap(next);
  }
  Tensor out(Shape{p.num_output, 1, 1});
  for (std::int64_t o = 0; o < p.num_output; ++o)
    out[o] = static_cast<float>(h[static_cast<std::size_t>(o)]);
  return out;
}

Tensor LstmForward(const Tensor& in, const LayerParams& params,
                   const LstmParams& p) {
  const std::int64_t in_n = in.size();
  const std::int64_t h = p.num_output;
  DB_CHECK_MSG(params.weights.shape() == Shape({4 * h, in_n}),
               "lstm input-weight shape mismatch");
  DB_CHECK_MSG(params.recurrent.shape() == Shape({4 * h, h}),
               "lstm state-weight shape mismatch");
  // Gate rows: [0,H) input, [H,2H) forget, [2H,3H) cell, [3H,4H) output.
  std::vector<double> hidden(static_cast<std::size_t>(h), 0.0);
  std::vector<double> cell(static_cast<std::size_t>(h), 0.0);
  std::vector<double> gates(static_cast<std::size_t>(4 * h), 0.0);
  for (std::int64_t t = 0; t < p.time_steps; ++t) {
    for (std::int64_t g = 0; g < 4 * h; ++g) {
      double acc = params.bias.size() > 0 ? params.bias[g] : 0.0;
      for (std::int64_t i = 0; i < in_n; ++i)
        acc += static_cast<double>(params.weights.at({g, i})) * in[i];
      for (std::int64_t j = 0; j < h; ++j)
        acc += static_cast<double>(params.recurrent.at({g, j})) *
               hidden[static_cast<std::size_t>(j)];
      gates[static_cast<std::size_t>(g)] = acc;
    }
    for (std::int64_t j = 0; j < h; ++j) {
      const double gi = Sigmoid(gates[static_cast<std::size_t>(j)]);
      const double gf = Sigmoid(gates[static_cast<std::size_t>(h + j)]);
      const double gc = TanhFn(gates[static_cast<std::size_t>(2 * h + j)]);
      const double go = Sigmoid(gates[static_cast<std::size_t>(3 * h + j)]);
      cell[static_cast<std::size_t>(j)] =
          gf * cell[static_cast<std::size_t>(j)] + gi * gc;
      hidden[static_cast<std::size_t>(j)] =
          go * TanhFn(cell[static_cast<std::size_t>(j)]);
    }
  }
  Tensor out(Shape{h, 1, 1});
  for (std::int64_t j = 0; j < h; ++j)
    out[j] = static_cast<float>(hidden[static_cast<std::size_t>(j)]);
  return out;
}

Tensor AssociativeForward(const Tensor& in, const LayerParams& params,
                          const AssociativeParams& p) {
  DB_CHECK_MSG(params.weights.shape() == Shape({p.num_output, p.num_cells}),
               "associative table shape mismatch");
  std::vector<float> x(in.data(), in.data() + in.size());
  const std::vector<std::int64_t> cells = CmacActiveCells(x, p);
  Tensor out(Shape{p.num_output, 1, 1});
  for (std::int64_t o = 0; o < p.num_output; ++o) {
    double acc = 0.0;
    for (std::int64_t cell : cells) acc += params.weights.at({o, cell});
    out[o] = static_cast<float>(acc);
  }
  return out;
}

Tensor ConcatForward(const std::vector<Tensor>& ins) {
  DB_CHECK_MSG(!ins.empty(), "concat of zero tensors");
  std::int64_t channels = 0;
  const std::int64_t h = ins.front().shape().dim(1);
  const std::int64_t w = ins.front().shape().dim(2);
  for (const Tensor& t : ins) {
    DB_CHECK_MSG(t.shape().rank() == 3 && t.shape().dim(1) == h &&
                     t.shape().dim(2) == w,
                 "concat spatial mismatch");
    channels += t.shape().dim(0);
  }
  Tensor out(Shape{channels, h, w});
  std::int64_t c_off = 0;
  for (const Tensor& t : ins) {
    for (std::int64_t c = 0; c < t.shape().dim(0); ++c)
      for (std::int64_t y = 0; y < h; ++y)
        for (std::int64_t x = 0; x < w; ++x)
          out.at3(c_off + c, y, x) = t.at3(c, y, x);
    c_off += t.shape().dim(0);
  }
  return out;
}

Tensor ClassifierForward(const Tensor& in, const ClassifierParams& p) {
  // k-sorter: emit the indices of the top-k activations, best first.
  std::vector<std::int64_t> order(static_cast<std::size_t>(in.size()));
  for (std::int64_t i = 0; i < in.size(); ++i)
    order[static_cast<std::size_t>(i)] = i;
  const std::int64_t k = std::min<std::int64_t>(p.top_k, in.size());
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](std::int64_t a, std::int64_t b) {
                      if (in[a] != in[b]) return in[a] > in[b];
                      return a < b;  // deterministic tie-break
                    });
  Tensor out(Shape{p.top_k, 1, 1});
  for (std::int64_t i = 0; i < k; ++i)
    out[i] = static_cast<float>(order[static_cast<std::size_t>(i)]);
  return out;
}

Executor::Executor(const Network& net, const WeightStore& weights,
                   ExecutorOptions opts)
    : net_(net), weights_(weights), opts_(opts) {}

std::map<std::string, Tensor> Executor::Forward(
    const std::map<std::string, Tensor>& inputs) const {
  std::map<std::string, Tensor> acts;  // layer name -> activation
  std::vector<Tensor> by_id(net_.layers().size());

  for (const IrLayer& layer : net_.layers()) {
    if (layer.kind() == LayerKind::kInput) {
      const auto it = inputs.find(layer.name());
      if (it == inputs.end())
        DB_THROW("missing input tensor for blob '" << layer.name() << "'");
      const BlobShape& bs = layer.output_shape;
      if (it->second.shape() != Shape({bs.channels, bs.height, bs.width}))
        DB_THROW("input '" << layer.name() << "' has shape "
                 << it->second.shape().ToString() << ", expected "
                 << bs.ToString());
      by_id[static_cast<std::size_t>(layer.id)] = it->second;
      acts[layer.name()] = it->second;
      continue;
    }

    std::vector<Tensor> ins;
    ins.reserve(layer.input_ids.size());
    for (int id : layer.input_ids)
      ins.push_back(by_id[static_cast<std::size_t>(id)]);

    Tensor out;
    switch (layer.kind()) {
      case LayerKind::kConvolution:
        out = ConvolutionForward(ins.front(), weights_.at(layer.name()),
                                 *layer.def.conv);
        break;
      case LayerKind::kPooling:
        out = PoolingForward(ins.front(), *layer.def.pool);
        break;
      case LayerKind::kInnerProduct:
        out = InnerProductForward(ins.front(), weights_.at(layer.name()),
                                  *layer.def.fc);
        break;
      case LayerKind::kRelu:
        out = ReluForward(ins.front());
        break;
      case LayerKind::kSigmoid:
        out = SigmoidForward(ins.front());
        break;
      case LayerKind::kTanh:
        out = TanhForward(ins.front());
        break;
      case LayerKind::kLrn:
        out = LrnForward(ins.front(), *layer.def.lrn);
        break;
      case LayerKind::kDropout:
        out = DropoutForward(ins.front(), *layer.def.dropout, opts_);
        break;
      case LayerKind::kSoftmax:
        out = SoftmaxForward(ins.front());
        break;
      case LayerKind::kRecurrent:
        out = RecurrentForward(ins.front(), weights_.at(layer.name()),
                               *layer.def.recurrent);
        break;
      case LayerKind::kLstm:
        out = LstmForward(ins.front(), weights_.at(layer.name()),
                          *layer.def.lstm);
        break;
      case LayerKind::kAssociative:
        out = AssociativeForward(ins.front(), weights_.at(layer.name()),
                                 *layer.def.associative);
        break;
      case LayerKind::kConcat:
        out = ConcatForward(ins);
        break;
      case LayerKind::kClassifier:
        out = ClassifierForward(ins.front(), *layer.def.classifier);
        break;
      case LayerKind::kInput:
        break;  // handled above
    }
    // The executor stores per-layer activations under the layer name even
    // for in-place layers, so accuracy probes can inspect any point.
    by_id[static_cast<std::size_t>(layer.id)] = out;
    acts[layer.name()] = std::move(out);
  }
  return acts;
}

Tensor Executor::ForwardOutput(const Tensor& input) const {
  DB_CHECK_MSG(net_.input_ids().size() == 1,
               "ForwardOutput requires a single-input network");
  const IrLayer& in_layer = net_.layer(net_.input_ids().front());
  std::map<std::string, Tensor> inputs{{in_layer.name(), input}};
  auto acts = Forward(inputs);
  return acts.at(net_.OutputLayer().name());
}

}  // namespace db
