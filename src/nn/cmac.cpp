#include "nn/cmac.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace db {
namespace {

std::uint64_t FnvCombine(std::uint64_t hash, std::uint64_t value) {
  // FNV-1a over the 8 bytes of `value`.
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFFu;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

}  // namespace

std::vector<std::int64_t> CmacActiveCells(const std::vector<float>& x,
                                          const AssociativeParams& p) {
  DB_CHECK_MSG(!x.empty(), "CMAC input is empty");
  std::vector<std::int64_t> cells;
  cells.reserve(static_cast<std::size_t>(p.generalization));
  for (std::int64_t j = 0; j < p.generalization; ++j) {
    std::uint64_t hash = 0xCBF29CE484222325ull;
    hash = FnvCombine(hash, static_cast<std::uint64_t>(j));
    for (float xv : x) {
      const double clamped = std::clamp(static_cast<double>(xv), 0.0, 1.0);
      // Quantise onto the conceptual grid, shifted by offset j, then
      // coarsened by the generalisation width — overlapping receptive
      // fields, one per offset layer.
      const std::int64_t fine = static_cast<std::int64_t>(
          clamped * static_cast<double>(p.num_cells - 1));
      const std::int64_t coarse = (fine + j) / p.generalization;
      hash = FnvCombine(hash, static_cast<std::uint64_t>(coarse));
    }
    cells.push_back(static_cast<std::int64_t>(
        hash % static_cast<std::uint64_t>(p.num_cells)));
  }
  return cells;
}

CmacModel::CmacModel(AssociativeParams params, std::int64_t input_dims)
    : params_(params),
      input_dims_(input_dims),
      table_(Shape{params.num_output, params.num_cells}) {
  DB_CHECK_MSG(input_dims > 0, "CMAC input_dims must be positive");
}

std::vector<double> CmacModel::Predict(const std::vector<float>& x) const {
  DB_CHECK_MSG(static_cast<std::int64_t>(x.size()) == input_dims_,
               "CMAC input dimension mismatch");
  const std::vector<std::int64_t> cells = CmacActiveCells(x, params_);
  std::vector<double> out(static_cast<std::size_t>(params_.num_output), 0.0);
  for (std::int64_t o = 0; o < params_.num_output; ++o)
    for (std::int64_t cell : cells)
      out[static_cast<std::size_t>(o)] += table_.at({o, cell});
  return out;
}

double CmacModel::TrainStep(const std::vector<float>& x,
                            const std::vector<double>& target,
                            double learning_rate) {
  DB_CHECK_MSG(static_cast<std::int64_t>(target.size()) ==
                   params_.num_output,
               "CMAC target dimension mismatch");
  const std::vector<std::int64_t> cells = CmacActiveCells(x, params_);
  const std::vector<double> pred = Predict(x);
  double sq_err = 0.0;
  const double share = learning_rate / static_cast<double>(cells.size());
  for (std::int64_t o = 0; o < params_.num_output; ++o) {
    const double err =
        target[static_cast<std::size_t>(o)] - pred[static_cast<std::size_t>(o)];
    sq_err += err * err;
    for (std::int64_t cell : cells)
      table_.at({o, cell}) += static_cast<float>(share * err);
  }
  return sq_err;
}

}  // namespace db
