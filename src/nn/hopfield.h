// Hopfield network with continuous (Hopfield–Tank) dynamics.
//
// The paper's 2-layer Hopfield benchmark is a TSP solver; the recurrent
// dynamics map onto DeepBurning's recurrent layer (synergy neurons +
// connection box).  This class provides the energy-descent reference used
// to build the TSP benchmark weights and to validate tours.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace db {

struct HopfieldTspParams {
  // Hopfield–Tank penalty coefficients: row constraint (A), column
  // constraint (B), global count (C), tour length objective (D).
  double a = 500.0;
  double b = 500.0;
  double c = 200.0;
  double d = 500.0;
  double gain = 50.0;       // sigmoid slope u0
  double dt = 1e-5;         // integration step
  int steps = 2000;         // settling iterations
};

/// Hopfield network over n*n "city at position" neurons for an n-city TSP
/// instance.  Weights are constructed analytically from the distance
/// matrix (no training; the paper loads pre-determined weights the same
/// way).
class HopfieldTsp {
 public:
  /// `distances` is a symmetric n x n matrix.
  HopfieldTsp(const std::vector<std::vector<double>>& distances,
              HopfieldTspParams params);

  int num_cities() const { return n_; }

  /// Reset the neuron potentials to small random perturbations.
  void Reset(Rng& rng);

  /// Run one Euler step of the continuous dynamics; returns the network
  /// energy after the step.
  double Step();

  /// Run `params.steps` iterations from a fresh random state.
  void Settle(Rng& rng);

  /// Current activations as an n x n tensor (city i at tour position j).
  Tensor Activations() const;

  /// Decode a tour (city index per position) from the activation matrix
  /// by greedy row-unique argmax.  The tour is always a permutation.
  std::vector<int> DecodeTour() const;

  /// Energy of the current state (monotonically non-increasing in the
  /// ideal continuous limit; property tests check the trend).
  double Energy() const;

  /// Tour length under the instance's distance matrix.
  double TourLength(const std::vector<int>& tour) const;

  /// The effective synaptic weight between neuron (x,i) and (y,j); public
  /// so the benchmark can install the same weights into a recurrent-layer
  /// WeightStore for accelerator generation.
  double Weight(int x, int i, int y, int j) const;

  /// External bias driving each neuron.
  double Bias() const;

 private:
  int Index(int city, int pos) const { return city * n_ + pos; }

  int n_;
  HopfieldTspParams params_;
  std::vector<std::vector<double>> dist_;
  std::vector<double> u_;  // potentials
  std::vector<double> v_;  // activations = sigmoid(u / u0)
};

}  // namespace db
