// Float reference executor: the "software NN on CPU" of the paper's
// evaluation.  It is the golden functional model the fixed-point
// accelerator simulator is checked against (Fig. 10), and doubles as the
// inference engine behind the SGD trainer.
//
// The per-layer kernels are exposed as free functions so unit tests and
// the functional simulator can exercise them individually.
#pragma once

#include <map>
#include <string>

#include "nn/weights.h"

namespace db {

struct ExecutorOptions {
  bool training_mode = false;   // dropout applies a random mask when true
  std::uint64_t dropout_seed = 1;
};

/// Per-layer reference kernels.  Feature maps are (C, H, W) tensors.
Tensor ConvolutionForward(const Tensor& in, const LayerParams& params,
                          const ConvolutionParams& p);
Tensor PoolingForward(const Tensor& in, const PoolingParams& p);
Tensor InnerProductForward(const Tensor& in, const LayerParams& params,
                           const InnerProductParams& p);
Tensor ReluForward(const Tensor& in);
Tensor SigmoidForward(const Tensor& in);
Tensor TanhForward(const Tensor& in);
Tensor LrnForward(const Tensor& in, const LrnParams& p);
Tensor SoftmaxForward(const Tensor& in);
Tensor DropoutForward(const Tensor& in, const DropoutParams& p,
                      const ExecutorOptions& opts);
Tensor RecurrentForward(const Tensor& in, const LayerParams& params,
                        const RecurrentParams& p);
Tensor LstmForward(const Tensor& in, const LayerParams& params,
                   const LstmParams& p);
Tensor AssociativeForward(const Tensor& in, const LayerParams& params,
                          const AssociativeParams& p);
Tensor ConcatForward(const std::vector<Tensor>& ins);
Tensor ClassifierForward(const Tensor& in, const ClassifierParams& p);

/// Forward-propagation engine over a shape-inferred Network.
class Executor {
 public:
  Executor(const Network& net, const WeightStore& weights,
           ExecutorOptions opts = {});

  /// Run one forward propagation.  `inputs` is keyed by input-layer name;
  /// shapes must match the network's declared input geometry.  Returns the
  /// activation of every layer keyed by layer name (the output layer's
  /// entry is the network result).
  std::map<std::string, Tensor> Forward(
      const std::map<std::string, Tensor>& inputs) const;

  /// Single-input convenience: feed `input` to the sole input layer and
  /// return the output layer's activation.
  Tensor ForwardOutput(const Tensor& input) const;

  const Network& network() const { return net_; }

 private:
  const Network& net_;
  const WeightStore& weights_;
  ExecutorOptions opts_;
};

}  // namespace db
