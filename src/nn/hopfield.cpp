#include "nn/hopfield.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"

namespace db {

HopfieldTsp::HopfieldTsp(const std::vector<std::vector<double>>& distances,
                         HopfieldTspParams params)
    : n_(static_cast<int>(distances.size())),
      params_(params),
      dist_(distances),
      u_(static_cast<std::size_t>(n_ * n_), 0.0),
      v_(static_cast<std::size_t>(n_ * n_), 0.0) {
  DB_CHECK_MSG(n_ >= 2, "TSP needs at least two cities");
  for (const auto& row : dist_)
    DB_CHECK_MSG(static_cast<int>(row.size()) == n_,
                 "distance matrix must be square");
}

void HopfieldTsp::Reset(Rng& rng) {
  // Bias potentials so activations start near the uniform n-cities/n-slots
  // fixed point, plus a small symmetry-breaking perturbation.
  const double u00 =
      params_.gain * std::atanh(2.0 / static_cast<double>(n_) - 1.0);
  for (std::size_t i = 0; i < u_.size(); ++i) {
    u_[i] = u00 + rng.Uniform(-0.1, 0.1) * params_.gain;
    v_[i] = Sigmoid(2.0 * u_[i] / params_.gain);
  }
}

double HopfieldTsp::Weight(int x, int i, int y, int j) const {
  double w = 0.0;
  const bool same_city = x == y;
  const bool same_pos = i == j;
  if (same_city && !same_pos) w -= params_.a;          // one slot per city
  if (same_pos && !same_city) w -= params_.b;          // one city per slot
  w -= params_.c;                                      // global neuron count
  if (!same_city) {
    // Tour-length term couples adjacent positions (cyclic).
    const int prev = (j + n_ - 1) % n_;
    const int next = (j + 1) % n_;
    if (i == prev || i == next)
      w -= params_.d * dist_[static_cast<std::size_t>(x)]
                            [static_cast<std::size_t>(y)];
  }
  return w;
}

double HopfieldTsp::Bias() const {
  return params_.c * static_cast<double>(n_);
}

double HopfieldTsp::Step() {
  std::vector<double> du(u_.size(), 0.0);
  for (int x = 0; x < n_; ++x) {
    for (int i = 0; i < n_; ++i) {
      const int xi = Index(x, i);
      double net = Bias();
      for (int y = 0; y < n_; ++y)
        for (int j = 0; j < n_; ++j)
          net += Weight(x, i, y, j) * v_[static_cast<std::size_t>(
                                         Index(y, j))];
      du[static_cast<std::size_t>(xi)] =
          -u_[static_cast<std::size_t>(xi)] + net;
    }
  }
  for (std::size_t k = 0; k < u_.size(); ++k) {
    u_[k] += params_.dt * du[k];
    v_[k] = Sigmoid(2.0 * u_[k] / params_.gain);
  }
  return Energy();
}

void HopfieldTsp::Settle(Rng& rng) {
  Reset(rng);
  for (int s = 0; s < params_.steps; ++s) Step();
}

Tensor HopfieldTsp::Activations() const {
  Tensor t(Shape{n_, n_});
  for (int x = 0; x < n_; ++x)
    for (int i = 0; i < n_; ++i)
      t.at({x, i}) =
          static_cast<float>(v_[static_cast<std::size_t>(Index(x, i))]);
  return t;
}

std::vector<int> HopfieldTsp::DecodeTour() const {
  // Greedy assignment: repeatedly take the strongest remaining
  // (city, position) activation.  Guarantees a valid permutation even if
  // the network has not fully converged.
  std::vector<int> tour(static_cast<std::size_t>(n_), -1);
  std::vector<bool> city_used(static_cast<std::size_t>(n_), false);
  std::vector<bool> pos_used(static_cast<std::size_t>(n_), false);
  for (int assigned = 0; assigned < n_; ++assigned) {
    double best = -1.0;
    int best_city = -1;
    int best_pos = -1;
    for (int x = 0; x < n_; ++x) {
      if (city_used[static_cast<std::size_t>(x)]) continue;
      for (int i = 0; i < n_; ++i) {
        if (pos_used[static_cast<std::size_t>(i)]) continue;
        const double act = v_[static_cast<std::size_t>(Index(x, i))];
        if (act > best) {
          best = act;
          best_city = x;
          best_pos = i;
        }
      }
    }
    tour[static_cast<std::size_t>(best_pos)] = best_city;
    city_used[static_cast<std::size_t>(best_city)] = true;
    pos_used[static_cast<std::size_t>(best_pos)] = true;
  }
  return tour;
}

double HopfieldTsp::Energy() const {
  double e = 0.0;
  for (int x = 0; x < n_; ++x)
    for (int i = 0; i < n_; ++i)
      for (int y = 0; y < n_; ++y)
        for (int j = 0; j < n_; ++j)
          e -= 0.5 * Weight(x, i, y, j) *
               v_[static_cast<std::size_t>(Index(x, i))] *
               v_[static_cast<std::size_t>(Index(y, j))];
  for (int x = 0; x < n_; ++x)
    for (int i = 0; i < n_; ++i)
      e -= Bias() * v_[static_cast<std::size_t>(Index(x, i))];
  return e;
}

double HopfieldTsp::TourLength(const std::vector<int>& tour) const {
  DB_CHECK_MSG(static_cast<int>(tour.size()) == n_, "tour size mismatch");
  double len = 0.0;
  for (int i = 0; i < n_; ++i) {
    const int a = tour[static_cast<std::size_t>(i)];
    const int b = tour[static_cast<std::size_t>((i + 1) % n_)];
    len += dist_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
  }
  return len;
}

}  // namespace db
