// Per-layer operation and storage statistics.
//
// The generator uses these to size the datapath and pick fold factors; the
// compiler uses them to derive buffer tiles; the CPU baseline model turns
// them into FLOP counts; the power model turns them into switching
// activity.
#pragma once

#include <cstdint>
#include <string>

#include "graph/network.h"

namespace db {

/// Operation counts for one forward propagation of a layer.
struct LayerStats {
  std::int64_t macs = 0;       // multiply-accumulate operations
  std::int64_t adds = 0;       // standalone additions (pooling-avg, etc.)
  std::int64_t compares = 0;   // max-pool / k-sorter comparisons
  std::int64_t lut_ops = 0;    // Approx-LUT evaluations (activations, exp)
  std::int64_t weight_count = 0;  // trained weights incl. biases
  std::int64_t input_elems = 0;
  std::int64_t output_elems = 0;

  /// Total arithmetic work expressed as FLOPs (MAC = 2 FLOPs), used by the
  /// CPU baseline timing model.
  std::int64_t Flops() const {
    return 2 * macs + adds + compares + lut_ops;
  }

  LayerStats& operator+=(const LayerStats& other);
  std::string ToString() const;
};

/// Compute the statistics of one IR layer.
LayerStats ComputeLayerStats(const IrLayer& layer);

/// Aggregate statistics over all compute layers of a network.
LayerStats ComputeNetworkStats(const Network& net);

}  // namespace db
