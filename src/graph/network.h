// Shape-inferred network IR.
//
// A Network is the validated, connected form of a NetworkDef: every blob
// resolves to a producer, every layer knows its input and output feature
// map geometry, and the layers are in topological (propagation) order.
// This IR is what NN-Gen's generator and compiler consume.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "frontend/network_def.h"

namespace db {

/// Geometry of a feature-map blob: channels x height x width.
struct BlobShape {
  std::int64_t channels = 0;
  std::int64_t height = 0;
  std::int64_t width = 0;

  std::int64_t NumElements() const { return channels * height * width; }
  std::string ToString() const;
  bool operator==(const BlobShape&) const = default;
};

/// One node of the IR.  `def` keeps the full frontend parameters; the IR
/// adds resolved connectivity and inferred shapes.
struct IrLayer {
  int id = 0;
  LayerDef def;
  std::vector<int> input_ids;    // producer layer ids, in bottom order
  std::vector<BlobShape> input_shapes;
  BlobShape output_shape;
  bool in_place = false;  // activation/dropout applied onto its bottom blob

  const std::string& name() const { return def.name; }
  LayerKind kind() const { return def.kind; }
};

/// Validated, shape-inferred network.
class Network {
 public:
  /// Build from a parsed definition.  Throws db::Error on dangling blobs,
  /// duplicate layer names, cycles (other than declared recurrent
  /// connects), or shape mismatches.
  static Network Build(const NetworkDef& def);

  const std::string& name() const { return name_; }
  const std::vector<IrLayer>& layers() const { return layers_; }
  const IrLayer& layer(int id) const;

  /// Layers excluding the synthetic input layers.
  std::vector<const IrLayer*> ComputeLayers() const;

  /// The final (sink) layer of the propagation — the network output.
  const IrLayer& OutputLayer() const;

  /// Ids of the synthetic input layers.
  const std::vector<int>& input_ids() const { return input_ids_; }

  /// True if any layer declares a recurrent connect (RNN/Hopfield/CMAC).
  bool HasRecurrence() const;

  /// Layer-kind presence map for the Table-1 decomposition report.
  std::map<LayerKind, int> KindHistogram() const;

  /// Human-readable summary (name, per-layer geometry) for logs/examples.
  std::string Summary() const;

 private:
  std::string name_;
  std::vector<IrLayer> layers_;
  std::vector<int> input_ids_;
};

/// Infer the output shape of one layer from its input shapes; exposed for
/// unit tests.  Throws db::Error for invalid geometry.
BlobShape InferOutputShape(const LayerDef& def,
                           const std::vector<BlobShape>& inputs);

}  // namespace db
