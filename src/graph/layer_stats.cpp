#include "graph/layer_stats.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace db {

LayerStats& LayerStats::operator+=(const LayerStats& other) {
  macs += other.macs;
  adds += other.adds;
  compares += other.compares;
  lut_ops += other.lut_ops;
  weight_count += other.weight_count;
  input_elems += other.input_elems;
  output_elems += other.output_elems;
  return *this;
}

std::string LayerStats::ToString() const {
  std::ostringstream os;
  os << "{macs=" << macs << ", adds=" << adds << ", cmp=" << compares
     << ", lut=" << lut_ops << ", weights=" << weight_count << ", in="
     << input_elems << ", out=" << output_elems << "}";
  return os.str();
}

LayerStats ComputeLayerStats(const IrLayer& layer) {
  LayerStats s;
  for (const BlobShape& in : layer.input_shapes)
    s.input_elems += in.NumElements();
  s.output_elems = layer.output_shape.NumElements();

  switch (layer.kind()) {
    case LayerKind::kInput:
      s.input_elems = 0;
      break;
    case LayerKind::kConvolution: {
      const ConvolutionParams& p = *layer.def.conv;
      const BlobShape& in = layer.input_shapes.front();
      // Grouped convolution: each output map sees in.channels/group maps.
      const std::int64_t window =
          p.kernel_size * p.kernel_size * (in.channels / p.group);
      s.macs = s.output_elems * window;
      s.weight_count = p.num_output * window + (p.bias ? p.num_output : 0);
      break;
    }
    case LayerKind::kInnerProduct: {
      const InnerProductParams& p = *layer.def.fc;
      const std::int64_t in_n = layer.input_shapes.front().NumElements();
      s.macs = p.num_output * in_n;
      s.weight_count = p.num_output * in_n + (p.bias ? p.num_output : 0);
      break;
    }
    case LayerKind::kPooling: {
      const PoolingParams& p = *layer.def.pool;
      const std::int64_t window = p.kernel_size * p.kernel_size;
      if (p.method == PoolMethod::kMax)
        s.compares = s.output_elems * (window - 1);
      else
        s.adds = s.output_elems * window;  // sum + shift-divide
      break;
    }
    case LayerKind::kRelu:
      s.compares = s.output_elems;  // max(x, 0)
      break;
    case LayerKind::kSigmoid:
    case LayerKind::kTanh:
      s.lut_ops = s.output_elems;
      break;
    case LayerKind::kLrn: {
      const LrnParams& p = *layer.def.lrn;
      // Square + windowed sum per element, then the pow/divide via LUT.
      s.macs = s.output_elems * (p.local_size + 1);
      s.lut_ops = s.output_elems;
      break;
    }
    case LayerKind::kDropout:
      // Inference-time dropout scales by (1 - ratio): one multiply/elem.
      s.macs = s.output_elems;
      break;
    case LayerKind::kSoftmax:
      s.lut_ops = 2 * s.output_elems;  // exp and divide via LUT
      s.adds = s.output_elems;
      break;
    case LayerKind::kRecurrent: {
      const RecurrentParams& p = *layer.def.recurrent;
      const std::int64_t in_n = layer.input_shapes.front().NumElements();
      const std::int64_t per_step = p.num_output * (in_n + p.num_output);
      s.macs = p.time_steps * per_step;
      s.lut_ops = p.time_steps * p.num_output;  // state activation
      s.weight_count = per_step + p.num_output;
      break;
    }
    case LayerKind::kLstm: {
      const LstmParams& p = *layer.def.lstm;
      const std::int64_t in_n = layer.input_shapes.front().NumElements();
      const std::int64_t h = p.num_output;
      // Four gates per step: 4H x (in + H) MACs; per-element gate
      // activations (3 sigmoid + 2 tanh) and cell update multiplies.
      const std::int64_t per_step = 4 * h * (in_n + h);
      s.macs = p.time_steps * (per_step + 2 * h);
      s.lut_ops = p.time_steps * 5 * h;
      s.weight_count = per_step + 4 * h;
      break;
    }
    case LayerKind::kAssociative: {
      const AssociativeParams& p = *layer.def.associative;
      // CMAC: each lookup activates `generalization` cells per output.
      s.adds = p.generalization * p.num_output;
      s.weight_count = p.num_cells * p.num_output;
      break;
    }
    case LayerKind::kConcat:
      break;  // wiring only
    case LayerKind::kClassifier: {
      const std::int64_t n = layer.input_shapes.front().NumElements();
      // k-sorter comparison network (Beigel & Gill): O(n log n) compares.
      const double logn = n > 1 ? std::log2(static_cast<double>(n)) : 1.0;
      s.compares = static_cast<std::int64_t>(
          std::ceil(static_cast<double>(n) * logn));
      break;
    }
  }
  return s;
}

LayerStats ComputeNetworkStats(const Network& net) {
  LayerStats total;
  for (const IrLayer* layer : net.ComputeLayers())
    total += ComputeLayerStats(*layer);
  return total;
}

}  // namespace db
