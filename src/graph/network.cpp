#include "graph/network.h"

#include <set>
#include <sstream>

#include "common/error.h"
#include "common/math_util.h"

namespace db {

std::string BlobShape::ToString() const {
  std::ostringstream os;
  os << channels << "x" << height << "x" << width;
  return os.str();
}

BlobShape InferOutputShape(const LayerDef& def,
                           const std::vector<BlobShape>& inputs) {
  auto require_one_input = [&]() -> const BlobShape& {
    if (inputs.size() != 1)
      DB_THROW("layer '" << def.name << "' ("
               << LayerKindName(def.kind) << ") expects exactly one bottom, "
               "got " << inputs.size());
    return inputs.front();
  };

  switch (def.kind) {
    case LayerKind::kInput:
      DB_THROW("input layers have no inferred shape");
    case LayerKind::kConvolution: {
      const BlobShape& in = require_one_input();
      const ConvolutionParams& p = *def.conv;
      if (in.channels % p.group != 0)
        DB_THROW("convolution '" << def.name << "': input channels "
                 << in.channels << " not divisible by group " << p.group);
      const std::int64_t oh =
          ConvOutDim(in.height, p.kernel_size, p.stride, p.pad);
      const std::int64_t ow =
          ConvOutDim(in.width, p.kernel_size, p.stride, p.pad);
      if (oh <= 0 || ow <= 0)
        DB_THROW("convolution '" << def.name << "': kernel "
                 << p.kernel_size << " does not fit input "
                 << in.ToString());
      return {p.num_output, oh, ow};
    }
    case LayerKind::kPooling: {
      const BlobShape& in = require_one_input();
      const PoolingParams& p = *def.pool;
      // Caffe-style ceil semantics: a partially-covered window at the edge
      // still yields an output pixel.
      const std::int64_t oh =
          CeilDiv(in.height + 2 * p.pad - p.kernel_size, p.stride) + 1;
      const std::int64_t ow =
          CeilDiv(in.width + 2 * p.pad - p.kernel_size, p.stride) + 1;
      if (oh <= 0 || ow <= 0)
        DB_THROW("pooling '" << def.name << "': kernel does not fit input "
                 << in.ToString());
      return {in.channels, oh, ow};
    }
    case LayerKind::kInnerProduct: {
      const BlobShape& in = require_one_input();
      if (in.NumElements() <= 0)
        DB_THROW("inner_product '" << def.name << "' has empty input");
      return {def.fc->num_output, 1, 1};
    }
    case LayerKind::kRelu:
    case LayerKind::kSigmoid:
    case LayerKind::kTanh:
    case LayerKind::kDropout:
    case LayerKind::kSoftmax:
      return require_one_input();
    case LayerKind::kLrn: {
      const BlobShape& in = require_one_input();
      if (def.lrn->local_size > in.channels)
        DB_THROW("lrn '" << def.name << "': local_size "
                 << def.lrn->local_size << " exceeds channel count "
                 << in.channels);
      return in;
    }
    case LayerKind::kRecurrent: {
      const BlobShape& in = require_one_input();
      (void)in;
      return {def.recurrent->num_output, 1, 1};
    }
    case LayerKind::kLstm: {
      require_one_input();
      return {def.lstm->num_output, 1, 1};
    }
    case LayerKind::kAssociative: {
      require_one_input();
      return {def.associative->num_output, 1, 1};
    }
    case LayerKind::kConcat: {
      if (inputs.empty())
        DB_THROW("concat '" << def.name << "' needs at least one bottom");
      BlobShape out = inputs.front();
      out.channels = 0;
      for (const BlobShape& in : inputs) {
        if (in.height != out.height || in.width != out.width)
          DB_THROW("concat '" << def.name
                   << "': spatial dimensions differ across bottoms");
        out.channels += in.channels;
      }
      return out;
    }
    case LayerKind::kClassifier: {
      const BlobShape& in = require_one_input();
      (void)in;
      return {def.classifier->top_k, 1, 1};
    }
  }
  DB_THROW("unhandled layer kind in shape inference");
}

namespace {

bool IsInPlaceKind(LayerKind kind) {
  switch (kind) {
    case LayerKind::kRelu:
    case LayerKind::kSigmoid:
    case LayerKind::kTanh:
    case LayerKind::kDropout:
      return true;
    default:
      return false;
  }
}

}  // namespace

Network Network::Build(const NetworkDef& def) {
  Network net;
  net.name_ = def.name;
  if (def.inputs.empty())
    DB_THROW("network '" << def.name
             << "' declares no inputs (need input/input_dim)");

  // blob name -> producing layer id
  std::map<std::string, int> blob_producer;
  std::set<std::string> layer_names;

  for (const InputDef& in : def.inputs) {
    IrLayer layer;
    layer.id = static_cast<int>(net.layers_.size());
    layer.def.name = in.name;
    layer.def.kind = LayerKind::kInput;
    layer.def.tops = {in.name};
    layer.output_shape = {in.channels, in.height, in.width};
    if (!blob_producer.emplace(in.name, layer.id).second)
      DB_THROW("duplicate input blob '" << in.name << "'");
    layer_names.insert(in.name);
    net.input_ids_.push_back(layer.id);
    net.layers_.push_back(std::move(layer));
  }

  for (const LayerDef& ldef : def.layers) {
    if (!layer_names.insert(ldef.name).second)
      DB_THROW("duplicate layer name '" << ldef.name << "'");
    IrLayer layer;
    layer.id = static_cast<int>(net.layers_.size());
    layer.def = ldef;
    if (ldef.bottoms.empty())
      DB_THROW("layer '" << ldef.name << "' has no bottom blob");
    for (const std::string& bottom : ldef.bottoms) {
      const auto it = blob_producer.find(bottom);
      if (it == blob_producer.end())
        DB_THROW("layer '" << ldef.name << "' consumes undefined blob '"
                 << bottom << "' (layers must be listed in propagation "
                 "order)");
      layer.input_ids.push_back(it->second);
      layer.input_shapes.push_back(
          net.layers_[static_cast<std::size_t>(it->second)].output_shape);
    }
    layer.output_shape = InferOutputShape(ldef, layer.input_shapes);
    layer.in_place = IsInPlaceKind(ldef.kind) && ldef.tops == ldef.bottoms;

    if (ldef.tops.empty())
      DB_THROW("layer '" << ldef.name << "' has no top blob");
    if (ldef.tops.size() != 1)
      DB_THROW("layer '" << ldef.name
               << "': multiple tops are not supported");
    blob_producer[ldef.tops.front()] = layer.id;
    net.layers_.push_back(std::move(layer));
  }

  // Recurrent connects are declared edges back in time, not graph cycles;
  // everything else must be a DAG, which the "bottoms must already exist"
  // rule above guarantees.  Sanity-check that a recurrent connect only
  // appears on kinds that can carry state.
  for (const IrLayer& layer : net.layers_) {
    for (const ConnectDef& c : layer.def.connects) {
      if (c.direction == ConnectDef::Direction::kRecurrent &&
          layer.kind() != LayerKind::kRecurrent &&
          layer.kind() != LayerKind::kLstm &&
          layer.kind() != LayerKind::kInnerProduct &&
          layer.kind() != LayerKind::kAssociative)
        DB_THROW("layer '" << layer.name() << "' declares a recurrent "
                 "connect but kind " << LayerKindName(layer.kind())
                 << " cannot carry state");
    }
  }
  return net;
}

const IrLayer& Network::layer(int id) const {
  DB_CHECK_MSG(id >= 0 && id < static_cast<int>(layers_.size()),
               "layer id out of range");
  return layers_[static_cast<std::size_t>(id)];
}

std::vector<const IrLayer*> Network::ComputeLayers() const {
  std::vector<const IrLayer*> out;
  for (const IrLayer& layer : layers_)
    if (layer.kind() != LayerKind::kInput) out.push_back(&layer);
  return out;
}

const IrLayer& Network::OutputLayer() const {
  // The sink is the last layer whose top no other layer consumes.
  std::set<int> consumed;
  for (const IrLayer& layer : layers_)
    for (int in : layer.input_ids) consumed.insert(in);
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    if (consumed.find(it->id) == consumed.end() &&
        it->kind() != LayerKind::kInput)
      return *it;
  DB_THROW("network '" << name_ << "' has no output layer");
}

bool Network::HasRecurrence() const {
  for (const IrLayer& layer : layers_) {
    if (layer.kind() == LayerKind::kRecurrent ||
        layer.kind() == LayerKind::kLstm)
      return true;
    for (const ConnectDef& c : layer.def.connects)
      if (c.direction == ConnectDef::Direction::kRecurrent) return true;
  }
  return false;
}

std::map<LayerKind, int> Network::KindHistogram() const {
  std::map<LayerKind, int> hist;
  for (const IrLayer& layer : layers_)
    if (layer.kind() != LayerKind::kInput) ++hist[layer.kind()];
  return hist;
}

std::string Network::Summary() const {
  std::ostringstream os;
  os << "network '" << name_ << "' (" << ComputeLayers().size()
     << " compute layers)\n";
  for (const IrLayer& layer : layers_) {
    os << "  [" << layer.id << "] " << layer.name() << " "
       << LayerKindName(layer.kind());
    if (layer.kind() != LayerKind::kInput) {
      os << "  in=";
      for (std::size_t i = 0; i < layer.input_shapes.size(); ++i) {
        if (i > 0) os << "+";
        os << layer.input_shapes[i].ToString();
      }
    }
    os << "  out=" << layer.output_shape.ToString() << "\n";
  }
  return os.str();
}

}  // namespace db
