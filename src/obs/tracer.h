// Deterministic span tracing: the software-shaped sibling of the perf
// simulator's VCD export (sim/trace.h).
//
// A Span is one closed interval on a named *track*.  All timestamps are
// deterministic ticks — simulated accelerator cycles on the simulator
// and serve tracks, ordinal phase ticks on the toolchain track — never
// wall-clock time, so the recorded trace (and its Chrome-trace export,
// see obs/chrome_trace.h) is bit-reproducible across runs and thread
// interleavings.
//
// Track taxonomy used across the repo:
//   "toolchain"        generator phases (parse → … → rtl emit), ticks
//   "sim/dram"         per-layer DRAM-channel busy intervals, cycles
//   "sim/datapath"     per-layer datapath busy intervals, cycles
//   "serve/worker N"   batch + per-request service spans, cycles
//   "serve/queue"      per-request queue residency (async spans), cycles
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace db::obs {

/// One interval [start, end) on a track, in deterministic ticks.
struct Span {
  std::string track;
  std::string name;
  std::string category;  // Chrome-trace "cat"; groups spans for filtering
  std::int64_t start = 0;
  std::int64_t end = 0;
  /// Async spans may overlap others on their track (request lifetimes in
  /// a queue); the exporter renders them as paired begin/end events
  /// keyed by `id` instead of a single nested duration event.
  bool async = false;
  std::int64_t id = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Thread-safe span sink.  Record order does not matter: consumers read
/// through Sorted(), which imposes a deterministic total order.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Record(Span span);

  /// Convenience for the common synchronous case.
  void RecordSpan(std::string track, std::string name, std::int64_t start,
                  std::int64_t end, std::string category = {});

  bool empty() const;
  std::size_t size() const;

  /// Largest end tick recorded on `track` (0 if none) — lets a later
  /// stage continue a track's timeline where the previous one stopped.
  std::int64_t TrackEnd(std::string_view track) const;

  /// Snapshot in deterministic order: (start, track, longest-first,
  /// name, id).  Equal-start spans sort longest first so Chrome-trace
  /// nesting renders parents before children.
  std::vector<Span> Sorted() const;

 private:
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

/// Monotonic deterministic clock for ScopedSpan: the owner advances it
/// explicitly (one tick per toolchain phase, N cycles of simulated
/// work, ...); nothing ever reads wall-clock time.
class TickClock {
 public:
  explicit TickClock(std::int64_t start = 0) : now_(start) {}
  std::int64_t now() const { return now_; }
  void Advance(std::int64_t ticks) { now_ += ticks; }

 private:
  std::int64_t now_ = 0;
};

/// RAII span: samples `clock` at construction and destruction and
/// records [ctor tick, dtor tick) into the tracer.  A null tracer makes
/// the whole object a no-op, so call sites need no branching.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const TickClock& clock, std::string track,
             std::string name, std::string category = {});
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void AddArg(std::string key, std::string value);

 private:
  Tracer* tracer_;
  const TickClock& clock_;
  Span span_;
};

}  // namespace db::obs
