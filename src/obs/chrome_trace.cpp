#include "obs/chrome_trace.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace db::obs {
namespace {

std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += StrFormat("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

std::string Microseconds(std::int64_t ticks, double frequency_mhz) {
  return StrFormat("%.3f",
                   static_cast<double>(ticks) / frequency_mhz);
}

std::string ArgsJson(const Span& span) {
  if (span.args.empty()) return {};
  std::string out = ",\"args\":{";
  for (std::size_t i = 0; i < span.args.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + EscapeJson(span.args[i].first) + "\":\"" +
           EscapeJson(span.args[i].second) + "\"";
  }
  out += "}";
  return out;
}

/// One emitted trace event with its deterministic sort key.  Async
/// begins rank before ends at equal ts so a zero-length span still
/// opens before it closes (pairs are matched by id, so order across
/// different spans at one ts is free).
struct Event {
  std::int64_t ts_ticks = 0;
  int kind_rank = 0;  // async-begin < complete < async-end at equal ts
  std::int64_t dur_ticks = 0;
  std::string track;
  std::string name;
  std::int64_t id = 0;
  std::string json;
};

}  // namespace

std::string WriteChromeTrace(const Tracer& tracer, double frequency_mhz) {
  DB_CHECK_MSG(frequency_mhz > 0, "frequency must be positive");
  const std::vector<Span> spans = tracer.Sorted();

  // Tracks in sorted-name order get dense thread ids: identical span
  // sets map to identical tids no matter which thread recorded first.
  std::map<std::string, int> tids;
  for (const Span& span : spans) tids.emplace(span.track, 0);
  int next_tid = 1;
  for (auto& [track, tid] : tids) tid = next_tid++;

  std::vector<Event> events;
  events.reserve(spans.size() * 2);
  for (const Span& span : spans) {
    const int tid = tids.at(span.track);
    const std::string cat =
        EscapeJson(span.category.empty() ? "span" : span.category);
    const std::string name = EscapeJson(span.name);
    if (span.async) {
      Event begin;
      begin.ts_ticks = span.start;
      begin.kind_rank = 0;
      begin.dur_ticks = span.end - span.start;
      begin.track = span.track;
      begin.name = span.name;
      begin.id = span.id;
      begin.json = StrFormat(
          "{\"ph\":\"b\",\"pid\":1,\"tid\":%d,\"id\":%lld,\"cat\":\"%s\","
          "\"name\":\"%s\",\"ts\":%s%s}",
          tid, static_cast<long long>(span.id), cat.c_str(), name.c_str(),
          Microseconds(span.start, frequency_mhz).c_str(),
          ArgsJson(span).c_str());
      Event end = begin;
      end.ts_ticks = span.end;
      end.kind_rank = 2;
      end.json = StrFormat(
          "{\"ph\":\"e\",\"pid\":1,\"tid\":%d,\"id\":%lld,\"cat\":\"%s\","
          "\"name\":\"%s\",\"ts\":%s}",
          tid, static_cast<long long>(span.id), cat.c_str(), name.c_str(),
          Microseconds(span.end, frequency_mhz).c_str());
      events.push_back(std::move(begin));
      events.push_back(std::move(end));
    } else {
      Event ev;
      ev.ts_ticks = span.start;
      ev.kind_rank = 1;
      ev.dur_ticks = span.end - span.start;
      ev.track = span.track;
      ev.name = span.name;
      ev.id = span.id;
      ev.json = StrFormat(
          "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"cat\":\"%s\","
          "\"name\":\"%s\",\"ts\":%s,\"dur\":%s%s}",
          tid, cat.c_str(), name.c_str(),
          Microseconds(span.start, frequency_mhz).c_str(),
          Microseconds(span.end - span.start, frequency_mhz).c_str(),
          ArgsJson(span).c_str());
      events.push_back(std::move(ev));
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              if (a.ts_ticks != b.ts_ticks) return a.ts_ticks < b.ts_ticks;
              if (a.kind_rank != b.kind_rank)
                return a.kind_rank < b.kind_rank;
              if (a.dur_ticks != b.dur_ticks)
                return a.dur_ticks > b.dur_ticks;  // parents before children
              if (a.track != b.track) return a.track < b.track;
              if (a.name != b.name) return a.name < b.name;
              return a.id < b.id;
            });

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"frequency_mhz\":"
     << StrFormat("%.6g", frequency_mhz) << "},\"traceEvents\":[\n";
  os << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"deepburning\"}}";
  for (const auto& [track, tid] : tids)
    os << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << EscapeJson(track) << "\"}}";
  for (const Event& ev : events) os << ",\n" << ev.json;
  os << "\n]}\n";
  return os.str();
}

}  // namespace db::obs
