// MetricsRegistry: named counters, gauges and histograms shared by the
// toolchain, the simulators and the inference server.
//
// Design rules, chosen so the registry never breaks the repo's
// determinism guarantee (PR 1: every reported number is a pure function
// of the simulated workload, not of thread timing):
//
//   * Counters and histograms are *commutative* — concurrent publishers
//     (server workers) may interleave arbitrarily and the final value is
//     still identical run to run.
//   * Gauges are last-write-wins and must therefore only be set from
//     deterministic single-threaded code (e.g. InferenceServer::Drain
//     after the workers joined).
//   * Iteration and JSON export walk the metric names in sorted order,
//     so two runs that published the same values emit byte-identical
//     JSON regardless of publication order.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include <map>

namespace db::obs {

/// Streaming summary of one histogram metric (no sample buffer: the
/// registry stays O(#metrics) no matter how many samples flow through).
struct HistogramStats {
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  double Mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Add `delta` to the named counter (created at zero on first use).
  void AddCounter(std::string_view name, std::int64_t delta = 1);

  /// Set the named gauge (single-writer; see header comment).
  void SetGauge(std::string_view name, double value);

  /// Feed one sample into the named histogram.
  void Observe(std::string_view name, double value);

  /// Reads return the zero value for names never published.
  std::int64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;
  HistogramStats HistogramOf(std::string_view name) const;

  std::size_t size() const;  // total metrics across all three kinds

  /// JSON object {"counters":{...},"gauges":{...},"histograms":{...}}
  /// with names in sorted order; byte-stable for equal contents.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::int64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, HistogramStats, std::less<>> histograms_;
};

}  // namespace db::obs
