// MetricsRegistry: named counters, gauges and histograms shared by the
// toolchain, the simulators and the inference server.
//
// Design rules, chosen so the registry never breaks the repo's
// determinism guarantee (PR 1: every reported number is a pure function
// of the simulated workload, not of thread timing):
//
//   * Counters and histograms are *commutative* — concurrent publishers
//     (server workers) may interleave arbitrarily and the final value is
//     still identical run to run.
//   * Gauges are last-write-wins and must therefore only be set from
//     deterministic single-threaded code (e.g. InferenceServer::Drain
//     after the workers joined).
//   * Iteration and JSON export walk the metric names in sorted order,
//     so two runs that published the same values emit byte-identical
//     JSON regardless of publication order.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include <map>

namespace db::obs {

/// Fixed-boundary log-scaled bucket histogram (HdrHistogram-style).
///
/// Bucket scheme: values below 1.0 (including negatives) land in the
/// underflow bucket 0; a value v >= 1.0 lands in octave e = floor(log2
/// v), subdivided into kSubBuckets linear sub-buckets, so the bucket
/// index is 1 + e*kSubBuckets + floor((v/2^e - 1)*kSubBuckets).  The
/// boundaries are fixed properties of the scheme — never derived from
/// the data — which makes merges commutative (bucket counts add) and
/// quantile reads exact deterministic functions of the bucket counts:
/// Quantile(q) is the lower boundary of the bucket holding the
/// nearest-rank sample, clamped into [min, max].  With 32 sub-buckets
/// per octave the relative quantile error is bounded by 1/32 (~3.1%),
/// and a single-sample histogram reports every quantile exactly.
///
/// Zero state: a default-constructed (or never-observed) histogram is
/// the documented empty value — count 0, sum/min/max/mean and every
/// quantile exactly 0.0, no buckets.  `min`/`max` are only meaningful
/// when count > 0 (the first sample initialises both).
struct HistogramStats {
  static constexpr std::int32_t kSubBuckets = 32;

  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Sparse bucket counts, keyed by bucket index (sorted, so export and
  /// iteration are deterministic).
  std::map<std::int32_t, std::int64_t> buckets;

  /// Bucket index of `value` under the fixed boundary scheme.
  static std::int32_t BucketIndex(double value);
  /// Inclusive lower boundary of bucket `index` (0.0 for bucket 0).
  static double BucketLowerBound(std::int32_t index);

  /// Feed one sample (commutative with any other Observe/Merge order).
  void Observe(double value);

  /// Merge another histogram in (commutative and associative: bucket
  /// counts and sums add, min/max combine).
  void Merge(const HistogramStats& other);

  double Mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }

  /// Nearest-rank quantile from the bucket counts; `q` is a percentile
  /// in [0, 100].  Returns the sample's bucket lower boundary clamped
  /// into [min, max]; 0.0 on an empty histogram (the zero state).
  double Quantile(double q) const;

  double P50() const { return Quantile(50.0); }
  double P90() const { return Quantile(90.0); }
  double P99() const { return Quantile(99.0); }
  double P999() const { return Quantile(99.9); }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Add `delta` to the named counter (created at zero on first use).
  void AddCounter(std::string_view name, std::int64_t delta = 1);

  /// Set the named gauge (single-writer; see header comment).
  void SetGauge(std::string_view name, double value);

  /// Feed one sample into the named histogram.
  void Observe(std::string_view name, double value);

  /// Merge the commutative kinds of `other` into this registry:
  /// counters add, histograms merge bucket-wise, gauges last-write-win
  /// (the caller sequences gauge-bearing merges deterministically).
  void MergeFrom(const MetricsRegistry& other);

  /// Reads return the zero value for names never published: counters 0,
  /// gauges 0.0, histograms the documented HistogramStats zero state.
  std::int64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;
  HistogramStats HistogramOf(std::string_view name) const;

  std::size_t size() const;  // total metrics across all three kinds

  /// JSON object {"counters":{...},"gauges":{...},"histograms":{...}}
  /// with names in sorted order; histograms render count/sum/min/max/
  /// mean plus the p50/p90/p99/p999 bucket quantiles.  Byte-stable for
  /// equal contents.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::int64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, HistogramStats, std::less<>> histograms_;
};

}  // namespace db::obs
