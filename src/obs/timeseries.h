// Deterministic load time-series: named series sampled on simulated-
// cycle boundaries — the load-signal substrate a (future) autoscaler
// reads.
//
// Sampling contract: the *producer* picks a fixed sample interval in
// simulated cycles and appends one point per series per boundary, in
// non-decreasing cycle order (enforced).  Because the grid is derived
// from the simulated schedule — never from wall-clock time — two runs
// of the same workload append identical points, and the JSON export
// (series in sorted name order, points in append order) is
// byte-identical.  The inference server samples queue depth, in-flight
// requests, cumulative admission sheds and per-replica busy fractions
// at every boundary of a power-of-two interval covering its makespan
// (see serve/inference_server.h).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace db::obs {

/// One sample: the simulated cycle of the boundary and the value there.
struct TimeSeriesPoint {
  std::int64_t cycle = 0;
  double value = 0.0;
};

class TimeSeriesRecorder {
 public:
  TimeSeriesRecorder() = default;
  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  /// Record the sampling interval the producer chose (cycles between
  /// boundaries; >= 1).  Exported with the series so consumers can
  /// reconstruct the grid.
  void SetSampleInterval(std::int64_t cycles);
  std::int64_t sample_interval() const;

  /// Append one point to the named series (created on first use).
  /// Cycles must be non-decreasing within a series.
  void Append(std::string_view series, std::int64_t cycle, double value);

  /// The named series' points (empty for a never-appended name).
  std::vector<TimeSeriesPoint> SeriesOf(std::string_view series) const;

  std::size_t size() const;  // number of series

  /// JSON object {"sample_interval_cycles": N, "series": {name:
  /// [[cycle, value], ...], ...}} with series names in sorted order;
  /// byte-stable for equal contents.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::int64_t sample_interval_ = 1;
  std::map<std::string, std::vector<TimeSeriesPoint>, std::less<>>
      series_;
};

}  // namespace db::obs
