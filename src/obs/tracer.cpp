#include "obs/tracer.h"

#include <algorithm>

#include "common/error.h"

namespace db::obs {

void Tracer::Record(Span span) {
  DB_CHECK_MSG(span.end >= span.start,
               "span '" + span.name + "' ends before it starts");
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

void Tracer::RecordSpan(std::string track, std::string name,
                        std::int64_t start, std::int64_t end,
                        std::string category) {
  Span span;
  span.track = std::move(track);
  span.name = std::move(name);
  span.category = std::move(category);
  span.start = start;
  span.end = end;
  Record(std::move(span));
}

bool Tracer::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.empty();
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::int64_t Tracer::TrackEnd(std::string_view track) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t end = 0;
  for (const Span& span : spans_)
    if (span.track == track) end = std::max(end, span.end);
  return end;
}

std::vector<Span> Tracer::Sorted() const {
  std::vector<Span> spans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
  }
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.track != b.track) return a.track < b.track;
    if (a.end != b.end) return a.end > b.end;  // longest first: parents
    if (a.name != b.name) return a.name < b.name;
    return a.id < b.id;
  });
  return spans;
}

ScopedSpan::ScopedSpan(Tracer* tracer, const TickClock& clock,
                       std::string track, std::string name,
                       std::string category)
    : tracer_(tracer), clock_(clock) {
  if (tracer_ == nullptr) return;
  span_.track = std::move(track);
  span_.name = std::move(name);
  span_.category = std::move(category);
  span_.start = clock_.now();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  span_.end = clock_.now();
  tracer_->Record(std::move(span_));
}

void ScopedSpan::AddArg(std::string key, std::string value) {
  if (tracer_ == nullptr) return;
  span_.args.emplace_back(std::move(key), std::move(value));
}

}  // namespace db::obs
