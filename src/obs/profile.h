// Per-layer bottleneck-attribution report: where a generated design's
// simulated cycles go, layer by layer, split into the three buckets the
// roofline question needs — DRAM transfer (memory-bound time), datapath
// MAC work (compute-bound time) and control/stall overhead.
//
// The report is a pure data structure: src/sim owns the attribution
// (BuildProfileReport in sim/perf_model.h derives the entries from the
// performance model's interval timeline), src/obs owns the rendering.
// Both renderings are byte-stable: entries are sorted hottest-first
// (total cycles descending, layer id ascending on ties) and every
// number is a deterministic function of the simulated workload, so two
// runs over the same design emit identical bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace db::obs {

/// One layer's share of the simulated run.  The three attribution
/// buckets partition `total_cycles` exactly (no lost or double-counted
/// cycles — asserted against SimulatePerformance in profile_test):
///
///   total_cycles = dram_cycles + mac_cycles + stall_cycles
struct LayerProfile {
  int layer_id = 0;
  std::string name;
  std::int64_t segments = 1;
  std::int64_t total_cycles = 0;
  /// Exposed DRAM-transfer time: cycles the DRAM channel was busy while
  /// the datapath sat idle (the memory-bound share).
  std::int64_t dram_cycles = 0;
  /// Pure MAC-array work: fold unit work summed over the segments (the
  /// compute-bound share).
  std::int64_t mac_cycles = 0;
  /// Everything else on the critical path: segment/coordinator
  /// overheads, pipeline fill/drain, and waits where both resources
  /// idled.
  std::int64_t stall_cycles = 0;
  std::int64_t dram_bytes = 0;
  std::int64_t refetch_passes = 1;
  /// Useful MAC operations over the layer's wall clock across all lanes:
  /// macs / (lanes * total_cycles), in [0, 1].
  double pe_utilization = 0.0;
  /// Input working set over the on-chip data buffer, capped at 1.0 (a
  /// value of 1.0 with refetch_passes > 1 marks buffer overflow).
  double buffer_utilization = 0.0;

  /// Roofline classification: "memory" when the exposed DRAM time
  /// dominates the MAC time, else "compute".
  const char* Bound() const {
    return dram_cycles > mac_cycles ? "memory" : "compute";
  }
};

/// Whole-design profile: the sorted per-layer attribution plus the run
/// totals the shares are quoted against.
struct ProfileReport {
  std::string model;
  double frequency_mhz = 100.0;
  int lanes = 0;
  std::int64_t total_cycles = 0;
  std::int64_t total_dram_bytes = 0;
  std::vector<LayerProfile> layers;  // hottest first after Sort()

  std::int64_t TotalDramCycles() const;
  std::int64_t TotalMacCycles() const;
  std::int64_t TotalStallCycles() const;

  /// Bottleneck order: total cycles descending, layer id ascending on
  /// ties.  Both renderings require (and Build* guarantees) this order.
  void Sort();

  /// Fixed-width text table, hottest layer first, with a totals footer;
  /// byte-stable.
  std::string ToText() const;

  /// Canonical JSON (fixed key order, deterministic float formatting);
  /// byte-stable.
  std::string ToJson() const;
};

}  // namespace db::obs
