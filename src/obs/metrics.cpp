#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace db::obs {
namespace {

/// Shortest %g rendering that still survives a JSON round-trip; integral
/// values print without an exponent so counters-as-gauges stay readable.
std::string FormatDouble(double value) {
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      std::abs(value) < 1e15)
    return StrFormat("%lld", static_cast<long long>(value));
  return StrFormat("%.9g", value);
}

}  // namespace

std::int32_t HistogramStats::BucketIndex(double value) {
  if (!(value >= 1.0)) return 0;  // underflow bucket (incl. negatives/NaN)
  int exp = 0;
  // frexp: value = m * 2^exp with m in [0.5, 1) — so the octave is
  // exp - 1 and value / 2^octave lands in [1, 2).
  const double mantissa = std::frexp(value, &exp);
  const std::int32_t octave = exp - 1;
  const auto sub = std::min<std::int32_t>(
      kSubBuckets - 1,
      static_cast<std::int32_t>((mantissa * 2.0 - 1.0) * kSubBuckets));
  return 1 + octave * kSubBuckets + sub;
}

double HistogramStats::BucketLowerBound(std::int32_t index) {
  if (index <= 0) return 0.0;
  const std::int32_t octave = (index - 1) / kSubBuckets;
  const std::int32_t sub = (index - 1) % kSubBuckets;
  return std::ldexp(
      1.0 + static_cast<double>(sub) / static_cast<double>(kSubBuckets),
      octave);
}

void HistogramStats::Observe(double value) {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  ++buckets[BucketIndex(value)];
}

void HistogramStats::Merge(const HistogramStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (const auto& [index, n] : other.buckets) buckets[index] += n;
}

double HistogramStats::Quantile(double q) const {
  DB_CHECK_MSG(q >= 0.0 && q <= 100.0,
               "quantile must be a percentile in [0, 100]");
  if (count == 0) return 0.0;  // the documented zero state
  // Nearest rank: the smallest rank whose cumulative share covers q.
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(q / 100.0 * static_cast<double>(count))));
  std::int64_t cumulative = 0;
  for (const auto& [index, n] : buckets) {
    cumulative += n;
    if (cumulative >= rank)
      return std::clamp(BucketLowerBound(index), min, max);
  }
  return max;  // unreachable: bucket counts always sum to `count`
}

void MetricsRegistry::AddCounter(std::string_view name,
                                 std::int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    counters_.emplace(std::string(name), delta);
  else
    it->second += delta;
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    gauges_.emplace(std::string(name), value);
  else
    it->second = value;
}

void MetricsRegistry::Observe(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[std::string(name)].Observe(value);
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  // Snapshot `other` first so locks never nest between two registries.
  std::map<std::string, std::int64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, HistogramStats, std::less<>> histograms;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    counters = other.counters_;
    gauges = other.gauges_;
    histograms = other.histograms_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, value] : counters) counters_[name] += value;
  for (const auto& [name, value] : gauges) gauges_[name] = value;
  for (const auto& [name, h] : histograms) histograms_[name].Merge(h);
}

std::int64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::GaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramStats MetricsRegistry::HistogramOf(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramStats{} : it->second;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << name
       << "\": " << FormatDouble(value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": "
       << h.count << ", \"sum\": " << FormatDouble(h.sum)
       << ", \"min\": " << FormatDouble(h.min)
       << ", \"max\": " << FormatDouble(h.max)
       << ", \"mean\": " << FormatDouble(h.Mean())
       << ", \"p50\": " << FormatDouble(h.P50())
       << ", \"p90\": " << FormatDouble(h.P90())
       << ", \"p99\": " << FormatDouble(h.P99())
       << ", \"p999\": " << FormatDouble(h.P999()) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

}  // namespace db::obs
