#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"

namespace db::obs {
namespace {

/// Shortest %g rendering that still survives a JSON round-trip; integral
/// values print without an exponent so counters-as-gauges stay readable.
std::string FormatDouble(double value) {
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      std::abs(value) < 1e15)
    return StrFormat("%lld", static_cast<long long>(value));
  return StrFormat("%.9g", value);
}

}  // namespace

void MetricsRegistry::AddCounter(std::string_view name,
                                 std::int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    counters_.emplace(std::string(name), delta);
  else
    it->second += delta;
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    gauges_.emplace(std::string(name), value);
  else
    it->second = value;
}

void MetricsRegistry::Observe(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    histograms_.emplace(std::string(name),
                        HistogramStats{1, value, value, value});
    return;
  }
  HistogramStats& h = it->second;
  ++h.count;
  h.sum += value;
  h.min = std::min(h.min, value);
  h.max = std::max(h.max, value);
}

std::int64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::GaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramStats MetricsRegistry::HistogramOf(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramStats{} : it->second;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << name
       << "\": " << FormatDouble(value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": "
       << h.count << ", \"sum\": " << FormatDouble(h.sum)
       << ", \"min\": " << FormatDouble(h.min)
       << ", \"max\": " << FormatDouble(h.max)
       << ", \"mean\": " << FormatDouble(h.Mean()) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

}  // namespace db::obs
