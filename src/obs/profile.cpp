#include "obs/profile.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"

namespace db::obs {
namespace {

/// Deterministic float rendering for the JSON report (round-trippable,
/// no trailing-zero jitter, integral values without an exponent).
std::string JsonDouble(double value) {
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      value < 1e15 && value > -1e15)
    return StrFormat("%lld", static_cast<long long>(value));
  return StrFormat("%.9g", value);
}

double Share(std::int64_t part, std::int64_t whole) {
  return whole > 0
             ? static_cast<double>(part) / static_cast<double>(whole)
             : 0.0;
}

}  // namespace

std::int64_t ProfileReport::TotalDramCycles() const {
  std::int64_t total = 0;
  for (const LayerProfile& l : layers) total += l.dram_cycles;
  return total;
}

std::int64_t ProfileReport::TotalMacCycles() const {
  std::int64_t total = 0;
  for (const LayerProfile& l : layers) total += l.mac_cycles;
  return total;
}

std::int64_t ProfileReport::TotalStallCycles() const {
  std::int64_t total = 0;
  for (const LayerProfile& l : layers) total += l.stall_cycles;
  return total;
}

void ProfileReport::Sort() {
  std::sort(layers.begin(), layers.end(),
            [](const LayerProfile& a, const LayerProfile& b) {
              if (a.total_cycles != b.total_cycles)
                return a.total_cycles > b.total_cycles;
              return a.layer_id < b.layer_id;
            });
}

std::string ProfileReport::ToText() const {
  std::ostringstream os;
  os << StrFormat(
      "profile: %s @ %.0f MHz, %d MAC lanes — %lld cycles (%.4f ms), "
      "%lld DRAM bytes\n",
      model.c_str(), frequency_mhz, lanes,
      static_cast<long long>(total_cycles),
      static_cast<double>(total_cycles) / (frequency_mhz * 1e3),
      static_cast<long long>(total_dram_bytes));
  os << StrFormat("  %-16s %5s %11s %6s %11s %11s %11s %10s %7s %7s %s\n",
                  "layer", "segs", "total_cyc", "share", "dram_cyc",
                  "mac_cyc", "stall_cyc", "dram_bytes", "pe_use",
                  "buf_use", "bound");
  for (const LayerProfile& l : layers)
    os << StrFormat(
        "  %-16s %5lld %11lld %5.1f%% %11lld %11lld %11lld %10lld "
        "%6.1f%% %6.1f%% %s\n",
        l.name.c_str(), static_cast<long long>(l.segments),
        static_cast<long long>(l.total_cycles),
        Share(l.total_cycles, total_cycles) * 100.0,
        static_cast<long long>(l.dram_cycles),
        static_cast<long long>(l.mac_cycles),
        static_cast<long long>(l.stall_cycles),
        static_cast<long long>(l.dram_bytes), l.pe_utilization * 100.0,
        l.buffer_utilization * 100.0, l.Bound());
  const std::int64_t dram = TotalDramCycles();
  const std::int64_t mac = TotalMacCycles();
  const std::int64_t stall = TotalStallCycles();
  os << StrFormat(
      "  attribution: dram %lld (%.1f%%)  mac %lld (%.1f%%)  stall %lld "
      "(%.1f%%)  — design is %s-bound\n",
      static_cast<long long>(dram), Share(dram, total_cycles) * 100.0,
      static_cast<long long>(mac), Share(mac, total_cycles) * 100.0,
      static_cast<long long>(stall), Share(stall, total_cycles) * 100.0,
      dram > mac ? "memory" : "compute");
  return os.str();
}

std::string ProfileReport::ToJson() const {
  std::ostringstream os;
  os << "{\n  \"model\": \"" << model << "\",\n"
     << "  \"frequency_mhz\": " << JsonDouble(frequency_mhz) << ",\n"
     << "  \"lanes\": " << lanes << ",\n"
     << "  \"total_cycles\": " << total_cycles << ",\n"
     << "  \"total_dram_bytes\": " << total_dram_bytes << ",\n"
     << "  \"dram_cycles\": " << TotalDramCycles() << ",\n"
     << "  \"mac_cycles\": " << TotalMacCycles() << ",\n"
     << "  \"stall_cycles\": " << TotalStallCycles() << ",\n"
     << "  \"layers\": [";
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const LayerProfile& l = layers[i];
    os << (i == 0 ? "" : ",") << "\n    {\"layer_id\": " << l.layer_id
       << ", \"name\": \"" << l.name << "\", \"segments\": " << l.segments
       << ", \"total_cycles\": " << l.total_cycles
       << ", \"dram_cycles\": " << l.dram_cycles
       << ", \"mac_cycles\": " << l.mac_cycles
       << ", \"stall_cycles\": " << l.stall_cycles
       << ", \"dram_bytes\": " << l.dram_bytes
       << ", \"refetch_passes\": " << l.refetch_passes
       << ", \"pe_utilization\": " << JsonDouble(l.pe_utilization)
       << ", \"buffer_utilization\": " << JsonDouble(l.buffer_utilization)
       << ", \"bound\": \"" << l.Bound() << "\"}";
  }
  os << (layers.empty() ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

}  // namespace db::obs
