// Chrome Trace Event JSON export of a Tracer — loadable in Perfetto /
// chrome://tracing, the software-shaped sibling of sim/trace.h's VCD.
//
// Mapping: every track becomes one named thread of a single
// "deepburning" process; synchronous spans become complete ("X") events
// and async spans become begin/end ("b"/"e") pairs keyed by span id so
// overlapping lifetimes (queue residency) render on their own rows.
// Timestamps are microseconds derived from deterministic ticks at the
// design clock: ts_us = ticks / frequency_mhz.  The emission order is a
// pure function of the span set, so two runs that recorded the same
// spans produce byte-identical files.
#pragma once

#include <string>

#include "obs/tracer.h"

namespace db::obs {

/// Render the whole tracer as one Chrome Trace Event JSON document.
/// `frequency_mhz` is the simulated clock used for the tick→µs mapping
/// and must be positive.
std::string WriteChromeTrace(const Tracer& tracer, double frequency_mhz);

}  // namespace db::obs
