#include "obs/timeseries.h"

#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace db::obs {
namespace {

std::string FormatDouble(double value) {
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      value < 1e15 && value > -1e15)
    return StrFormat("%lld", static_cast<long long>(value));
  return StrFormat("%.9g", value);
}

}  // namespace

void TimeSeriesRecorder::SetSampleInterval(std::int64_t cycles) {
  DB_CHECK_MSG(cycles >= 1, "sample interval must be >= 1 cycle");
  std::lock_guard<std::mutex> lock(mu_);
  sample_interval_ = cycles;
}

std::int64_t TimeSeriesRecorder::sample_interval() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sample_interval_;
}

void TimeSeriesRecorder::Append(std::string_view series,
                                std::int64_t cycle, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end())
    it = series_.emplace(std::string(series),
                         std::vector<TimeSeriesPoint>())
             .first;
  DB_CHECK_MSG(it->second.empty() || it->second.back().cycle <= cycle,
               "time-series cycles must be non-decreasing");
  it->second.push_back(TimeSeriesPoint{cycle, value});
}

std::vector<TimeSeriesPoint> TimeSeriesRecorder::SeriesOf(
    std::string_view series) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(series);
  return it == series_.end() ? std::vector<TimeSeriesPoint>()
                             : it->second;
}

std::size_t TimeSeriesRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

std::string TimeSeriesRecorder::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"sample_interval_cycles\": " << sample_interval_
     << ",\n  \"series\": {";
  bool first = true;
  for (const auto& [name, points] : series_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": [";
    for (std::size_t i = 0; i < points.size(); ++i)
      os << (i == 0 ? "" : ", ") << "[" << points[i].cycle << ", "
         << FormatDouble(points[i].value) << "]";
    os << "]";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

}  // namespace db::obs
