#include "frontend/prototxt.h"

#include <cctype>
#include <cstdlib>

#include "common/error.h"
#include "common/strings.h"

namespace db {
namespace {

enum class TokKind { kIdent, kNumber, kString, kLBrace, kRBrace, kColon,
                     kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  double number = 0.0;
  int line = 1;
};

/// Hand-rolled lexer: identifiers, numbers, quoted strings, braces, colon.
class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Token Next() {
    SkipWhitespaceAndComments();
    Token tok;
    tok.line = line_;
    if (pos_ >= text_.size()) {
      tok.kind = TokKind::kEnd;
      return tok;
    }
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      tok.kind = TokKind::kLBrace;
      return tok;
    }
    if (c == '}') {
      ++pos_;
      tok.kind = TokKind::kRBrace;
      return tok;
    }
    if (c == ':') {
      ++pos_;
      tok.kind = TokKind::kColon;
      return tok;
    }
    if (c == '"' || c == '\'') return LexString(c);
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
        c == '+' || c == '.')
      return LexNumber();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
      return LexIdent();
    throw ParseError(line_, std::string("unexpected character '") + c + "'");
  }

 private:
  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c)) || c == ',' ||
                 c == ';') {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        return;
      }
    }
  }

  Token LexString(char quote) {
    Token tok;
    tok.line = line_;
    tok.kind = TokKind::kString;
    ++pos_;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != quote) {
      if (text_[pos_] == '\n')
        throw ParseError(line_, "unterminated string literal");
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      tok.text += text_[pos_++];
    }
    if (pos_ >= text_.size())
      throw ParseError(line_, "unterminated string literal");
    ++pos_;  // closing quote
    return tok;
  }

  Token LexNumber() {
    Token tok;
    tok.line = line_;
    tok.kind = TokKind::kNumber;
    const std::size_t start = pos_;
    if (text_[pos_] == '-' || text_[pos_] == '+') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))))
      ++pos_;
    tok.text = text_.substr(start, pos_ - start);
    char* end = nullptr;
    tok.number = std::strtod(tok.text.c_str(), &end);
    if (end != tok.text.c_str() + tok.text.size())
      throw ParseError(tok.line, "malformed number '" + tok.text + "'");
    return tok;
  }

  Token LexIdent() {
    Token tok;
    tok.line = line_;
    tok.kind = TokKind::kIdent;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '.'))
      ++pos_;
    tok.text = text_.substr(start, pos_ - start);
    return tok;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) { Advance(); }

  PtMessage ParseTopLevel() {
    PtMessage msg = ParseFields(/*nested=*/false);
    if (cur_.kind != TokKind::kEnd)
      throw ParseError(cur_.line, "unexpected trailing '}'");
    return msg;
  }

 private:
  void Advance() { cur_ = lexer_.Next(); }

  PtMessage ParseFields(bool nested) {
    PtMessage msg;
    while (true) {
      if (cur_.kind == TokKind::kEnd) {
        if (nested)
          throw ParseError(cur_.line, "missing '}' before end of input");
        return msg;
      }
      if (cur_.kind == TokKind::kRBrace) {
        if (!nested)
          return msg;  // caller reports the stray brace
        Advance();
        return msg;
      }
      msg.Add(ParseField());
    }
  }

  PtField ParseField() {
    if (cur_.kind != TokKind::kIdent)
      throw ParseError(cur_.line, "expected field name, got '" +
                                      cur_.text + "'");
    PtField field;
    field.name = cur_.text;
    field.line = cur_.line;
    Advance();

    bool saw_colon = false;
    if (cur_.kind == TokKind::kColon) {
      saw_colon = true;
      Advance();
    }

    if (cur_.kind == TokKind::kLBrace) {
      Advance();
      field.message =
          std::make_shared<PtMessage>(ParseFields(/*nested=*/true));
      return field;
    }
    if (!saw_colon)
      throw ParseError(field.line,
                       "expected ':' or '{' after field '" + field.name +
                           "'");

    PtScalar scalar;
    switch (cur_.kind) {
      case TokKind::kNumber:
        scalar.kind = PtScalar::Kind::kNumber;
        scalar.number = cur_.number;
        scalar.text = cur_.text;
        break;
      case TokKind::kString:
        scalar.kind = PtScalar::Kind::kString;
        scalar.text = cur_.text;
        break;
      case TokKind::kIdent:
        if (cur_.text == "true" || cur_.text == "false") {
          scalar.kind = PtScalar::Kind::kBool;
          scalar.number = cur_.text == "true" ? 1.0 : 0.0;
        } else {
          scalar.kind = PtScalar::Kind::kEnum;
        }
        scalar.text = cur_.text;
        break;
      default:
        throw ParseError(cur_.line, "expected value for field '" +
                                        field.name + "'");
    }
    Advance();
    field.scalar = std::move(scalar);
    return field;
  }

  Lexer lexer_;
  Token cur_;
};

}  // namespace

std::string PtScalar::ToString() const {
  switch (kind) {
    case Kind::kNumber: return text.empty() ? std::to_string(number) : text;
    case Kind::kString: return "\"" + text + "\"";
    case Kind::kEnum: return text;
    case Kind::kBool: return number != 0.0 ? "true" : "false";
  }
  return {};
}

std::vector<const PtField*> PtMessage::All(const std::string& name) const {
  std::vector<const PtField*> out;
  for (const PtField& f : fields_)
    if (f.name == name) out.push_back(&f);
  return out;
}

const PtField* PtMessage::Find(const std::string& name) const {
  const PtField* found = nullptr;
  for (const PtField& f : fields_) {
    if (f.name != name) continue;
    if (found != nullptr)
      DB_THROW("field '" << name << "' repeats but a single value was "
               "expected (line " << f.line << ")");
    found = &f;
  }
  return found;
}

std::int64_t PtMessage::GetInt(const std::string& name,
                               std::int64_t def) const {
  const PtField* f = Find(name);
  if (f == nullptr) return def;
  if (!f->scalar || f->scalar->kind != PtScalar::Kind::kNumber)
    DB_THROW("field '" << name << "' is not a number (line " << f->line
             << ")");
  return static_cast<std::int64_t>(f->scalar->number);
}

double PtMessage::GetDouble(const std::string& name, double def) const {
  const PtField* f = Find(name);
  if (f == nullptr) return def;
  if (!f->scalar || f->scalar->kind != PtScalar::Kind::kNumber)
    DB_THROW("field '" << name << "' is not a number (line " << f->line
             << ")");
  return f->scalar->number;
}

std::string PtMessage::GetString(const std::string& name,
                                 const std::string& def) const {
  const PtField* f = Find(name);
  if (f == nullptr) return def;
  if (!f->scalar || (f->scalar->kind != PtScalar::Kind::kString &&
                     f->scalar->kind != PtScalar::Kind::kEnum))
    DB_THROW("field '" << name << "' is not a string (line " << f->line
             << ")");
  return f->scalar->text;
}

std::string PtMessage::GetEnum(const std::string& name,
                               const std::string& def) const {
  const PtField* f = Find(name);
  if (f == nullptr) return def;
  if (!f->scalar || (f->scalar->kind != PtScalar::Kind::kEnum &&
                     f->scalar->kind != PtScalar::Kind::kString))
    DB_THROW("field '" << name << "' is not an enum (line " << f->line
             << ")");
  return ToLower(f->scalar->text);
}

bool PtMessage::GetBool(const std::string& name, bool def) const {
  const PtField* f = Find(name);
  if (f == nullptr) return def;
  if (!f->scalar || f->scalar->kind != PtScalar::Kind::kBool)
    DB_THROW("field '" << name << "' is not a bool (line " << f->line
             << ")");
  return f->scalar->number != 0.0;
}

PtMessage ParsePrototxt(const std::string& text) {
  Parser parser(text);
  return parser.ParseTopLevel();
}

}  // namespace db
