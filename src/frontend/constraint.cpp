#include "frontend/constraint.h"

#include <sstream>

#include "common/error.h"
#include "common/strings.h"
#include "frontend/prototxt.h"

namespace db {

std::string BudgetLevelName(BudgetLevel level) {
  switch (level) {
    case BudgetLevel::kLow: return "LOW";
    case BudgetLevel::kMedium: return "MEDIUM";
    case BudgetLevel::kHigh: return "HIGH";
  }
  return "?";
}

ResourceBudget ResourceBudget::Scaled(double fraction) const {
  ResourceBudget out;
  out.dsp = static_cast<std::int64_t>(static_cast<double>(dsp) * fraction);
  out.lut = static_cast<std::int64_t>(static_cast<double>(lut) * fraction);
  out.ff = static_cast<std::int64_t>(static_cast<double>(ff) * fraction);
  out.bram_bytes = static_cast<std::int64_t>(
      static_cast<double>(bram_bytes) * fraction);
  return out;
}

std::string ResourceBudget::ToString() const {
  std::ostringstream os;
  os << "{dsp=" << dsp << ", lut=" << lut << ", ff=" << ff
     << ", bram=" << bram_bytes / 1024 << "KiB}";
  return os.str();
}

DesignConstraint ParseConstraint(const std::string& prototxt_text) {
  const PtMessage root = ParsePrototxt(prototxt_text);
  DesignConstraint c;
  for (const PtField& f : root.fields()) {
    if (f.name == "device") {
      c.device = ToLower(root.GetString("device", c.device));
    } else if (f.name == "budget") {
      const std::string level = root.GetEnum("budget", "medium");
      if (level == "low") {
        c.budget = BudgetLevel::kLow;
      } else if (level == "medium" || level == "mediate") {
        c.budget = BudgetLevel::kMedium;
      } else if (level == "high") {
        c.budget = BudgetLevel::kHigh;
      } else {
        throw ParseError(f.line, "unknown budget level '" + level + "'");
      }
    } else if (f.name == "bit_width") {
      c.bit_width = static_cast<int>(root.GetInt("bit_width", c.bit_width));
    } else if (f.name == "frac_bits") {
      c.frac_bits = static_cast<int>(root.GetInt("frac_bits", c.frac_bits));
    } else if (f.name == "frequency_mhz") {
      c.frequency_mhz = root.GetDouble("frequency_mhz", c.frequency_mhz);
    } else if (f.name == "dram_bandwidth_gbs") {
      c.dram_bandwidth_gbs =
          root.GetDouble("dram_bandwidth_gbs", c.dram_bandwidth_gbs);
    } else if (f.name == "approx_lut_entries") {
      c.approx_lut_entries =
          root.GetInt("approx_lut_entries", c.approx_lut_entries);
    } else if (f.name == "approx_lut_interpolate") {
      c.approx_lut_interpolate =
          root.GetBool("approx_lut_interpolate", true);
    } else if (f.name == "dsp") {
      c.explicit_budget.dsp = root.GetInt("dsp", 0);
    } else if (f.name == "lut") {
      c.explicit_budget.lut = root.GetInt("lut", 0);
    } else if (f.name == "ff") {
      c.explicit_budget.ff = root.GetInt("ff", 0);
    } else if (f.name == "bram_kb") {
      c.explicit_budget.bram_bytes = root.GetInt("bram_kb", 0) * 1024;
    } else {
      throw ParseError(f.line, "unknown constraint field '" + f.name + "'");
    }
  }
  if (c.bit_width < 4 || c.bit_width > 32)
    DB_THROW("constraint bit_width must be in [4,32], got " << c.bit_width);
  if (c.frac_bits < 0 || c.frac_bits >= c.bit_width)
    DB_THROW("constraint frac_bits must be in [0,bit_width)");
  if (c.frequency_mhz <= 0.0) DB_THROW("frequency_mhz must be positive");
  if (c.dram_bandwidth_gbs <= 0.0)
    DB_THROW("dram_bandwidth_gbs must be positive");
  if (c.approx_lut_entries < 2)
    DB_THROW("approx_lut_entries must be >= 2");
  return c;
}

std::string ConstraintToPrototxt(const DesignConstraint& c) {
  std::ostringstream os;
  os << "device: \"" << c.device << "\"\n";
  os << "budget: " << BudgetLevelName(c.budget) << "\n";
  os << "bit_width: " << c.bit_width << "\n";
  os << "frac_bits: " << c.frac_bits << "\n";
  os << "frequency_mhz: " << c.frequency_mhz << "\n";
  os << "dram_bandwidth_gbs: " << c.dram_bandwidth_gbs << "\n";
  os << "approx_lut_entries: " << c.approx_lut_entries << "\n";
  os << "approx_lut_interpolate: "
     << (c.approx_lut_interpolate ? "true" : "false") << "\n";
  if (c.explicit_budget.dsp > 0) os << "dsp: " << c.explicit_budget.dsp
                                    << "\n";
  if (c.explicit_budget.lut > 0) os << "lut: " << c.explicit_budget.lut
                                    << "\n";
  if (c.explicit_budget.ff > 0) os << "ff: " << c.explicit_budget.ff << "\n";
  if (c.explicit_budget.bram_bytes > 0)
    os << "bram_kb: " << c.explicit_budget.bram_bytes / 1024 << "\n";
  return os.str();
}

}  // namespace db
