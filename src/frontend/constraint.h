// Designer-specified overhead constraint (paper §3.1): the resource budget
// and datapath parameters NN-Gen must respect when scaling the generated
// accelerator.
//
// Constraints use the same prototxt syntax as model scripts:
//
//   device: "zynq-7045"
//   budget: MEDIUM          # LOW / MEDIUM / HIGH fraction of the device
//   bit_width: 16
//   frac_bits: 8
//   frequency_mhz: 100
//   dsp: 220                # optional explicit overrides
//
#pragma once

#include <cstdint>
#include <string>

namespace db {

/// Coarse budget level; translated into a fraction of the target device's
/// resources (DB-S = kLow on Z-7020, DB = kMedium, DB-L = kHigh on Z-7045).
enum class BudgetLevel { kLow, kMedium, kHigh };

std::string BudgetLevelName(BudgetLevel level);

/// Absolute programmable-logic resources available to the design.
struct ResourceBudget {
  std::int64_t dsp = 0;
  std::int64_t lut = 0;
  std::int64_t ff = 0;
  std::int64_t bram_bytes = 0;

  /// True if `used` fits within this budget on every axis.
  bool Fits(const ResourceBudget& used) const {
    return used.dsp <= dsp && used.lut <= lut && used.ff <= ff &&
           used.bram_bytes <= bram_bytes;
  }

  ResourceBudget Scaled(double fraction) const;
  std::string ToString() const;
};

/// Full design constraint passed to NN-Gen.
struct DesignConstraint {
  std::string device = "zynq-7045";
  BudgetLevel budget = BudgetLevel::kMedium;
  /// Explicit budget override; any field left 0 is filled from the device
  /// catalogue scaled by `budget`.
  ResourceBudget explicit_budget;
  int bit_width = 16;   // datapath fixed-point total bits
  int frac_bits = 8;    // fractional bits
  double frequency_mhz = 100.0;
  /// Off-chip DDR bandwidth available to the accelerator's AXI ports, in
  /// gigabytes per second.  Capped by the target device's board figure.
  double dram_bandwidth_gbs = 16.0;
  /// Approx LUT entries for activation approximation.
  std::int64_t approx_lut_entries = 256;
  bool approx_lut_interpolate = true;
};

/// Parse a constraint script.  Unknown fields are rejected so typos fail
/// loudly (the constraint is small and user-authored).
DesignConstraint ParseConstraint(const std::string& prototxt_text);

/// Canonical serialisation (round-trip tests).
std::string ConstraintToPrototxt(const DesignConstraint& constraint);

}  // namespace db
