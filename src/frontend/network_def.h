// Typed network definition built from the prototxt message tree.
//
// This mirrors the descriptive script of Fig. 4: a list of layers with
// Caffe-style parameter blocks plus DeepBurning `connect` blocks that
// describe forward / recurrent inter-layer wiring.  The graph module turns
// a NetworkDef into a shape-inferred Network IR.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "frontend/prototxt.h"

namespace db {

/// Layer kinds DeepBurning supports (paper §3.1: convolutional, pooling,
/// full-connection, recurrent, associative layers and common CNN/ANN ops).
enum class LayerKind {
  kInput,
  kConvolution,
  kPooling,
  kInnerProduct,  // full-connection
  kRelu,
  kSigmoid,
  kTanh,
  kLrn,
  kDropout,
  kSoftmax,
  kRecurrent,
  kLstm,         // long short-term memory cell, unrolled
  kAssociative,  // CMAC-style association layer
  kConcat,       // inception-style channel concatenation
  kClassifier,   // k-sorter based top-k classifier
};

/// Human-readable (prototxt) name of a layer kind, e.g. "CONVOLUTION".
std::string LayerKindName(LayerKind kind);

/// Parse a prototxt type word (case-insensitive) into a LayerKind.
LayerKind ParseLayerKind(const std::string& word, int line);

enum class PoolMethod { kMax, kAverage };

struct ConvolutionParams {
  std::int64_t num_output = 0;  // output feature maps (D_out)
  std::int64_t kernel_size = 1;
  std::int64_t stride = 1;
  std::int64_t pad = 0;
  /// Channel groups (AlexNet-style): inputs and outputs split into
  /// `group` independent convolutions.
  std::int64_t group = 1;
  bool bias = true;
};

struct PoolingParams {
  PoolMethod method = PoolMethod::kMax;
  std::int64_t kernel_size = 2;
  std::int64_t stride = 2;
  std::int64_t pad = 0;
};

struct InnerProductParams {
  std::int64_t num_output = 0;
  bool bias = true;
};

struct LrnParams {
  std::int64_t local_size = 5;
  double alpha = 1e-4;
  double beta = 0.75;
};

struct DropoutParams {
  double ratio = 0.5;
};

/// Activation applied inside a recurrent layer's state update.
enum class RecurrentActivation { kTanh, kSigmoid, kNone };

struct RecurrentParams {
  std::int64_t num_output = 0;
  std::int64_t time_steps = 1;  // unrolled steps for forward propagation
  RecurrentActivation activation = RecurrentActivation::kTanh;
};

struct LstmParams {
  std::int64_t num_output = 0;   // hidden/cell width H
  std::int64_t time_steps = 1;   // unrolled steps
};

struct AssociativeParams {
  // CMAC association: each input activates `generalization` adjacent cells
  // out of a conceptual table of `num_cells` per dimension.
  std::int64_t num_cells = 32;
  std::int64_t generalization = 4;
  std::int64_t num_output = 1;
};

struct ClassifierParams {
  std::int64_t top_k = 1;  // k-sorter width
};

/// DeepBurning `connect` block (Fig. 4 right): explicit inter-layer wiring.
struct ConnectDef {
  std::string name;
  enum class Direction { kForward, kRecurrent } direction =
      Direction::kForward;
  enum class Pattern { kFull, kFullPerChannel, kFileSpecified } pattern =
      Pattern::kFull;
  std::string file;  // for kFileSpecified
};

/// One layer of the descriptive script.
struct LayerDef {
  std::string name;
  LayerKind kind = LayerKind::kInput;
  std::vector<std::string> bottoms;
  std::vector<std::string> tops;
  int line = 0;

  // Exactly the sub-struct matching `kind` is populated.
  std::optional<ConvolutionParams> conv;
  std::optional<PoolingParams> pool;
  std::optional<InnerProductParams> fc;
  std::optional<LrnParams> lrn;
  std::optional<DropoutParams> dropout;
  std::optional<RecurrentParams> recurrent;
  std::optional<LstmParams> lstm;
  std::optional<AssociativeParams> associative;
  std::optional<ClassifierParams> classifier;

  std::vector<ConnectDef> connects;
};

/// Network input blob: named tensor with (channels, height, width) shape.
struct InputDef {
  std::string name = "data";
  std::int64_t channels = 1;
  std::int64_t height = 1;
  std::int64_t width = 1;
};

/// A complete parsed network description.
struct NetworkDef {
  std::string name;
  std::vector<InputDef> inputs;
  std::vector<LayerDef> layers;
};

/// Build a NetworkDef from prototxt text.  Performs syntactic and local
/// semantic validation (unknown fields tolerated, bad values rejected);
/// graph construction performs the global checks.
NetworkDef ParseNetworkDef(const std::string& prototxt_text);

/// Re-serialise a NetworkDef to canonical prototxt (round-trip support and
/// golden-file tests).  The emitted field order is fixed, so two scripts
/// that parse to the same definition — whatever order their fields were
/// written in — serialise to identical text.  This is the canonical form
/// the content-addressed design cache hashes.
std::string NetworkDefToPrototxt(const NetworkDef& net);

/// FNV-1a digest of the canonical serialisation: stable across prototxt
/// field reordering, comments and whitespace, different for any change
/// that survives parsing (layer geometry, parameters, wiring).  Not
/// collision-free — identity decisions must pair it with a compare of
/// the canonical text (see cluster::DesignCache).
std::uint64_t NetworkDefDigest(const NetworkDef& net);

}  // namespace db
