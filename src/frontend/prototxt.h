// Parser for the Caffe-compatible descriptive script of Fig. 4.
//
// The format is Google protobuf text format as used by Caffe:
//
//   layers {
//     name: "conv1"
//     type: CONVOLUTION
//     bottom: "data"
//     top: "conv1"
//     param { num_output: 20  kernel_size: 5  stride: 1 }
//     connect { name: "c2p1"  direction: forward  type: full_per_channel }
//   }
//
// The parser builds a generic message tree (PtMessage); the frontend's
// NetworkDef builder interprets it.  Fields keep their source order and
// may repeat (Caffe repeats `layers`, `bottom`, `top`, ...).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace db {

class PtMessage;

/// A scalar prototxt value: number, quoted string, or bare enum word.
struct PtScalar {
  enum class Kind { kNumber, kString, kEnum, kBool };
  Kind kind = Kind::kNumber;
  double number = 0.0;
  std::string text;  // string contents or enum word

  std::string ToString() const;
};

/// One `name: scalar` or `name { ... }` entry.
struct PtField {
  std::string name;
  int line = 0;                          // source line, for error messages
  std::optional<PtScalar> scalar;        // set for scalar fields
  std::shared_ptr<PtMessage> message;    // set for block fields

  bool is_message() const { return message != nullptr; }
};

/// An ordered multimap of fields.
class PtMessage {
 public:
  void Add(PtField field) { fields_.push_back(std::move(field)); }

  const std::vector<PtField>& fields() const { return fields_; }

  /// All fields with the given name, in source order.
  std::vector<const PtField*> All(const std::string& name) const;

  /// The unique field with the given name, or nullptr if absent.
  /// Throws db::Error if the field repeats.
  const PtField* Find(const std::string& name) const;

  /// Typed scalar accessors with defaults.  Each throws db::Error when the
  /// field exists but has the wrong kind.
  std::int64_t GetInt(const std::string& name, std::int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  std::string GetString(const std::string& name,
                        const std::string& def) const;
  /// Enum words are returned lower-cased ("CONVOLUTION" -> "convolution").
  std::string GetEnum(const std::string& name, const std::string& def) const;
  bool GetBool(const std::string& name, bool def) const;

  bool Has(const std::string& name) const { return Find(name) != nullptr; }

 private:
  std::vector<PtField> fields_;
};

/// Parse prototxt text into a message tree.  Throws db::ParseError with a
/// line number on malformed input.  Supports `#` line comments, optional
/// `:` before sub-messages, and `,`/`;` as whitespace (Caffe tolerance).
PtMessage ParsePrototxt(const std::string& text);

}  // namespace db
