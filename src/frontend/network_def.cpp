#include "frontend/network_def.h"

#include <sstream>

#include "common/error.h"
#include "common/hash.h"
#include "common/strings.h"

namespace db {
namespace {

ConnectDef ParseConnect(const PtMessage& msg, int line) {
  ConnectDef c;
  c.name = msg.GetString("name", "");
  const std::string dir = msg.GetEnum("direction", "forward");
  if (dir == "forward") {
    c.direction = ConnectDef::Direction::kForward;
  } else if (dir == "recurrent") {
    c.direction = ConnectDef::Direction::kRecurrent;
  } else {
    throw ParseError(line, "unknown connect direction '" + dir + "'");
  }
  const std::string pat = msg.GetEnum("type", "full");
  if (pat == "full") {
    c.pattern = ConnectDef::Pattern::kFull;
  } else if (pat == "full_per_channel") {
    c.pattern = ConnectDef::Pattern::kFullPerChannel;
  } else if (pat == "file_specified") {
    c.pattern = ConnectDef::Pattern::kFileSpecified;
    c.file = msg.GetString("file", "");
  } else {
    throw ParseError(line, "unknown connect type '" + pat + "'");
  }
  return c;
}

/// Caffe uses both `param { ... }` (old style, Fig. 4) and
/// `<layer>_param { ... }`; accept either, preferring the specific one.
const PtMessage* FindParamBlock(const PtMessage& layer,
                                const std::string& specific) {
  if (const PtField* f = layer.Find(specific); f && f->is_message())
    return f->message.get();
  if (const PtField* f = layer.Find("param"); f && f->is_message())
    return f->message.get();
  return nullptr;
}

void ParseLayerParams(const PtMessage& msg, LayerDef& layer) {
  switch (layer.kind) {
    case LayerKind::kConvolution: {
      ConvolutionParams p;
      if (const PtMessage* block = FindParamBlock(msg, "convolution_param")) {
        p.num_output = block->GetInt("num_output", 0);
        p.kernel_size = block->GetInt("kernel_size", 1);
        p.stride = block->GetInt("stride", 1);
        p.pad = block->GetInt("pad", 0);
        p.group = block->GetInt("group", 1);
        p.bias = block->GetBool("bias_term", true);
      }
      if (p.num_output <= 0)
        throw ParseError(layer.line, "convolution layer '" + layer.name +
                                         "' needs num_output > 0");
      if (p.kernel_size <= 0 || p.stride <= 0 || p.pad < 0)
        throw ParseError(layer.line, "convolution layer '" + layer.name +
                                         "' has invalid geometry");
      if (p.group <= 0 || p.num_output % p.group != 0)
        throw ParseError(layer.line, "convolution layer '" + layer.name +
                                         "' has invalid group count");
      layer.conv = p;
      break;
    }
    case LayerKind::kPooling: {
      PoolingParams p;
      if (const PtMessage* block = FindParamBlock(msg, "pooling_param")) {
        const std::string method = block->GetEnum("pool", "max");
        if (method == "max") {
          p.method = PoolMethod::kMax;
        } else if (method == "ave" || method == "average") {
          p.method = PoolMethod::kAverage;
        } else {
          throw ParseError(layer.line, "unknown pool method '" + method +
                                           "'");
        }
        p.kernel_size = block->GetInt("kernel_size", 2);
        p.stride = block->GetInt("stride", p.kernel_size);
        p.pad = block->GetInt("pad", 0);
      }
      if (p.kernel_size <= 0 || p.stride <= 0 || p.pad < 0)
        throw ParseError(layer.line, "pooling layer '" + layer.name +
                                         "' has invalid geometry");
      layer.pool = p;
      break;
    }
    case LayerKind::kInnerProduct: {
      InnerProductParams p;
      if (const PtMessage* block =
              FindParamBlock(msg, "inner_product_param")) {
        p.num_output = block->GetInt("num_output", 0);
        p.bias = block->GetBool("bias_term", true);
      }
      if (p.num_output <= 0)
        throw ParseError(layer.line, "inner_product layer '" + layer.name +
                                         "' needs num_output > 0");
      layer.fc = p;
      break;
    }
    case LayerKind::kLrn: {
      LrnParams p;
      if (const PtMessage* block = FindParamBlock(msg, "lrn_param")) {
        p.local_size = block->GetInt("local_size", 5);
        p.alpha = block->GetDouble("alpha", 1e-4);
        p.beta = block->GetDouble("beta", 0.75);
      }
      if (p.local_size <= 0 || p.local_size % 2 == 0)
        throw ParseError(layer.line,
                         "lrn local_size must be a positive odd number");
      layer.lrn = p;
      break;
    }
    case LayerKind::kDropout: {
      DropoutParams p;
      if (const PtMessage* block = FindParamBlock(msg, "dropout_param"))
        p.ratio = block->GetDouble("dropout_ratio", 0.5);
      if (p.ratio < 0.0 || p.ratio >= 1.0)
        throw ParseError(layer.line, "dropout_ratio must be in [0,1)");
      layer.dropout = p;
      break;
    }
    case LayerKind::kRecurrent: {
      RecurrentParams p;
      if (const PtMessage* block = FindParamBlock(msg, "recurrent_param")) {
        p.num_output = block->GetInt("num_output", 0);
        p.time_steps = block->GetInt("time_steps", 1);
        const std::string act = block->GetEnum("activation", "tanh");
        if (act == "tanh") {
          p.activation = RecurrentActivation::kTanh;
        } else if (act == "sigmoid") {
          p.activation = RecurrentActivation::kSigmoid;
        } else if (act == "none" || act == "linear") {
          p.activation = RecurrentActivation::kNone;
        } else {
          throw ParseError(layer.line,
                           "unknown recurrent activation '" + act + "'");
        }
      }
      if (p.num_output <= 0)
        throw ParseError(layer.line, "recurrent layer '" + layer.name +
                                         "' needs num_output > 0");
      if (p.time_steps <= 0)
        throw ParseError(layer.line, "recurrent time_steps must be >= 1");
      layer.recurrent = p;
      break;
    }
    case LayerKind::kLstm: {
      LstmParams p;
      if (const PtMessage* block = FindParamBlock(msg, "lstm_param")) {
        p.num_output = block->GetInt("num_output", 0);
        p.time_steps = block->GetInt("time_steps", 1);
      }
      if (p.num_output <= 0)
        throw ParseError(layer.line, "lstm layer '" + layer.name +
                                         "' needs num_output > 0");
      if (p.time_steps <= 0)
        throw ParseError(layer.line, "lstm time_steps must be >= 1");
      layer.lstm = p;
      break;
    }
    case LayerKind::kAssociative: {
      AssociativeParams p;
      if (const PtMessage* block =
              FindParamBlock(msg, "associative_param")) {
        p.num_cells = block->GetInt("num_cells", 32);
        p.generalization = block->GetInt("generalization", 4);
        p.num_output = block->GetInt("num_output", 1);
      }
      if (p.num_cells <= 0 || p.generalization <= 0 ||
          p.generalization > p.num_cells || p.num_output <= 0)
        throw ParseError(layer.line, "associative layer '" + layer.name +
                                         "' has invalid parameters");
      layer.associative = p;
      break;
    }
    case LayerKind::kClassifier: {
      ClassifierParams p;
      if (const PtMessage* block =
              FindParamBlock(msg, "classifier_param"))
        p.top_k = block->GetInt("top_k", 1);
      if (p.top_k <= 0)
        throw ParseError(layer.line, "classifier top_k must be >= 1");
      layer.classifier = p;
      break;
    }
    case LayerKind::kInput:
    case LayerKind::kRelu:
    case LayerKind::kSigmoid:
    case LayerKind::kTanh:
    case LayerKind::kSoftmax:
    case LayerKind::kConcat:
      break;  // no parameters
  }
}

}  // namespace

std::string LayerKindName(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput: return "INPUT";
    case LayerKind::kConvolution: return "CONVOLUTION";
    case LayerKind::kPooling: return "POOLING";
    case LayerKind::kInnerProduct: return "INNER_PRODUCT";
    case LayerKind::kRelu: return "RELU";
    case LayerKind::kSigmoid: return "SIGMOID";
    case LayerKind::kTanh: return "TANH";
    case LayerKind::kLrn: return "LRN";
    case LayerKind::kDropout: return "DROPOUT";
    case LayerKind::kSoftmax: return "SOFTMAX";
    case LayerKind::kRecurrent: return "RECURRENT";
    case LayerKind::kLstm: return "LSTM";
    case LayerKind::kAssociative: return "ASSOCIATIVE";
    case LayerKind::kConcat: return "CONCAT";
    case LayerKind::kClassifier: return "CLASSIFIER";
  }
  return "?";
}

LayerKind ParseLayerKind(const std::string& word, int line) {
  const std::string w = ToLower(word);
  if (w == "input") return LayerKind::kInput;
  if (w == "convolution" || w == "conv") return LayerKind::kConvolution;
  if (w == "pooling" || w == "pool") return LayerKind::kPooling;
  if (w == "inner_product" || w == "innerproduct" || w == "fc" ||
      w == "full_connection")
    return LayerKind::kInnerProduct;
  if (w == "relu") return LayerKind::kRelu;
  if (w == "sigmoid") return LayerKind::kSigmoid;
  if (w == "tanh") return LayerKind::kTanh;
  if (w == "lrn") return LayerKind::kLrn;
  if (w == "dropout") return LayerKind::kDropout;
  if (w == "softmax") return LayerKind::kSoftmax;
  if (w == "recurrent" || w == "rnn") return LayerKind::kRecurrent;
  if (w == "lstm") return LayerKind::kLstm;
  if (w == "associative" || w == "cmac") return LayerKind::kAssociative;
  if (w == "concat" || w == "inception") return LayerKind::kConcat;
  if (w == "classifier" || w == "argmax") return LayerKind::kClassifier;
  throw ParseError(line, "unknown layer type '" + word + "'");
}

NetworkDef ParseNetworkDef(const std::string& prototxt_text) {
  const PtMessage root = ParsePrototxt(prototxt_text);
  NetworkDef net;
  net.name = root.GetString("name", "net");

  // Old-style Caffe inputs: `input: "data"` + four `input_dim:` values
  // (batch, channels, height, width); batch is ignored (the accelerator
  // processes one input set per propagation round).
  const auto input_names = root.All("input");
  const auto input_dims = root.All("input_dim");
  if (!input_names.empty()) {
    if (input_dims.size() != 4 * input_names.size())
      DB_THROW("expected 4 input_dim entries per input, got "
               << input_dims.size());
    for (std::size_t i = 0; i < input_names.size(); ++i) {
      InputDef in;
      in.name = input_names[i]->scalar ? input_names[i]->scalar->text : "";
      auto dim = [&](std::size_t j) {
        const PtField* f = input_dims[4 * i + j];
        if (!f->scalar || f->scalar->kind != PtScalar::Kind::kNumber)
          throw ParseError(f->line, "input_dim must be a number");
        return static_cast<std::int64_t>(f->scalar->number);
      };
      in.channels = dim(1);
      in.height = dim(2);
      in.width = dim(3);
      if (in.channels <= 0 || in.height <= 0 || in.width <= 0)
        DB_THROW("input '" << in.name << "' has non-positive dimensions");
      net.inputs.push_back(in);
    }
  }

  for (const PtField* f : root.All("layers")) {
    if (!f->is_message())
      throw ParseError(f->line, "'layers' must be a block");
    const PtMessage& msg = *f->message;
    LayerDef layer;
    layer.line = f->line;
    layer.name = msg.GetString("name", "");
    if (layer.name.empty())
      throw ParseError(f->line, "layer is missing a name");
    const PtField* type = msg.Find("type");
    if (type == nullptr || !type->scalar)
      throw ParseError(f->line, "layer '" + layer.name +
                                    "' is missing a type");
    layer.kind = ParseLayerKind(type->scalar->text, type->line);
    for (const PtField* b : msg.All("bottom"))
      if (b->scalar) layer.bottoms.push_back(b->scalar->text);
    for (const PtField* t : msg.All("top"))
      if (t->scalar) layer.tops.push_back(t->scalar->text);
    ParseLayerParams(msg, layer);
    for (const PtField* c : msg.All("connect")) {
      if (!c->is_message())
        throw ParseError(c->line, "'connect' must be a block");
      layer.connects.push_back(ParseConnect(*c->message, c->line));
    }
    net.layers.push_back(std::move(layer));
  }

  if (net.layers.empty()) DB_THROW("network has no layers");
  return net;
}

namespace {

void EmitConnect(std::ostringstream& os, const ConnectDef& c) {
  os << "  connect {\n";
  os << "    name: \"" << c.name << "\"\n";
  os << "    direction: "
     << (c.direction == ConnectDef::Direction::kForward ? "forward"
                                                        : "recurrent")
     << "\n";
  switch (c.pattern) {
    case ConnectDef::Pattern::kFull:
      os << "    type: full\n";
      break;
    case ConnectDef::Pattern::kFullPerChannel:
      os << "    type: full_per_channel\n";
      break;
    case ConnectDef::Pattern::kFileSpecified:
      os << "    type: file_specified\n";
      if (!c.file.empty()) os << "    file: \"" << c.file << "\"\n";
      break;
  }
  os << "  }\n";
}

}  // namespace

std::string NetworkDefToPrototxt(const NetworkDef& net) {
  std::ostringstream os;
  os << "name: \"" << net.name << "\"\n";
  for (const InputDef& in : net.inputs) {
    os << "input: \"" << in.name << "\"\n";
    os << "input_dim: 1\n";
    os << "input_dim: " << in.channels << "\n";
    os << "input_dim: " << in.height << "\n";
    os << "input_dim: " << in.width << "\n";
  }
  for (const LayerDef& layer : net.layers) {
    os << "layers {\n";
    os << "  name: \"" << layer.name << "\"\n";
    os << "  type: " << LayerKindName(layer.kind) << "\n";
    for (const std::string& b : layer.bottoms)
      os << "  bottom: \"" << b << "\"\n";
    for (const std::string& t : layer.tops)
      os << "  top: \"" << t << "\"\n";
    if (layer.conv) {
      os << "  convolution_param {\n";
      os << "    num_output: " << layer.conv->num_output << "\n";
      os << "    kernel_size: " << layer.conv->kernel_size << "\n";
      os << "    stride: " << layer.conv->stride << "\n";
      if (layer.conv->pad != 0) os << "    pad: " << layer.conv->pad << "\n";
      if (layer.conv->group != 1)
        os << "    group: " << layer.conv->group << "\n";
      if (!layer.conv->bias) os << "    bias_term: false\n";
      os << "  }\n";
    }
    if (layer.pool) {
      os << "  pooling_param {\n";
      os << "    pool: "
         << (layer.pool->method == PoolMethod::kMax ? "MAX" : "AVE") << "\n";
      os << "    kernel_size: " << layer.pool->kernel_size << "\n";
      os << "    stride: " << layer.pool->stride << "\n";
      if (layer.pool->pad != 0) os << "    pad: " << layer.pool->pad << "\n";
      os << "  }\n";
    }
    if (layer.fc) {
      os << "  inner_product_param {\n";
      os << "    num_output: " << layer.fc->num_output << "\n";
      if (!layer.fc->bias) os << "    bias_term: false\n";
      os << "  }\n";
    }
    if (layer.lrn) {
      os << "  lrn_param {\n";
      os << "    local_size: " << layer.lrn->local_size << "\n";
      os << "    alpha: " << layer.lrn->alpha << "\n";
      os << "    beta: " << layer.lrn->beta << "\n";
      os << "  }\n";
    }
    if (layer.dropout) {
      os << "  dropout_param {\n";
      os << "    dropout_ratio: " << layer.dropout->ratio << "\n";
      os << "  }\n";
    }
    if (layer.recurrent) {
      os << "  recurrent_param {\n";
      os << "    num_output: " << layer.recurrent->num_output << "\n";
      os << "    time_steps: " << layer.recurrent->time_steps << "\n";
      switch (layer.recurrent->activation) {
        case RecurrentActivation::kTanh:
          os << "    activation: TANH\n";
          break;
        case RecurrentActivation::kSigmoid:
          os << "    activation: SIGMOID\n";
          break;
        case RecurrentActivation::kNone:
          os << "    activation: NONE\n";
          break;
      }
      os << "  }\n";
    }
    if (layer.lstm) {
      os << "  lstm_param {\n";
      os << "    num_output: " << layer.lstm->num_output << "\n";
      os << "    time_steps: " << layer.lstm->time_steps << "\n";
      os << "  }\n";
    }
    if (layer.associative) {
      os << "  associative_param {\n";
      os << "    num_cells: " << layer.associative->num_cells << "\n";
      os << "    generalization: " << layer.associative->generalization
         << "\n";
      os << "    num_output: " << layer.associative->num_output << "\n";
      os << "  }\n";
    }
    if (layer.classifier) {
      os << "  classifier_param {\n";
      os << "    top_k: " << layer.classifier->top_k << "\n";
      os << "  }\n";
    }
    for (const ConnectDef& c : layer.connects) EmitConnect(os, c);
    os << "}\n";
  }
  return os.str();
}

std::uint64_t NetworkDefDigest(const NetworkDef& net) {
  return Fnv1a64(NetworkDefToPrototxt(net));
}

}  // namespace db
