#include "hwlib/blocks.h"

#include <sstream>

#include "common/error.h"
#include "common/math_util.h"

namespace db {

std::string BlockTypeName(BlockType type) {
  switch (type) {
    case BlockType::kSynergyNeuron: return "synergy_neuron";
    case BlockType::kAccumulator: return "accumulator";
    case BlockType::kPoolingUnit: return "pooling_unit";
    case BlockType::kLrnUnit: return "lrn_unit";
    case BlockType::kDropoutUnit: return "dropout_unit";
    case BlockType::kClassifier: return "classifier";
    case BlockType::kActivationUnit: return "activation_unit";
    case BlockType::kApproxLut: return "approx_lut";
    case BlockType::kConnectionBox: return "connection_box";
    case BlockType::kAgu: return "agu";
    case BlockType::kCoordinator: return "coordinator";
    case BlockType::kBufferBank: return "buffer_bank";
  }
  return "?";
}

std::string AguRoleName(AguRole role) {
  switch (role) {
    case AguRole::kMain: return "main";
    case AguRole::kData: return "data";
    case AguRole::kWeight: return "weight";
  }
  return "?";
}

void ValidateBlockConfig(const BlockConfig& config) {
  if (config.bit_width < 4 || config.bit_width > 32)
    DB_THROW("block " << BlockTypeName(config.type)
             << ": bit_width must be in [4,32]");
  if (config.lanes < 1)
    DB_THROW("block " << BlockTypeName(config.type)
             << ": lanes must be >= 1");
  switch (config.type) {
    case BlockType::kApproxLut:
      if (config.depth < 2)
        DB_THROW("approx_lut depth must be >= 2 entries");
      if (!IsPow2(config.depth))
        DB_THROW("approx_lut depth must be a power of two (index by the "
                 "top bits of the key), got " << config.depth);
      break;
    case BlockType::kBufferBank:
      if (config.depth < 1) DB_THROW("buffer_bank depth must be >= 1 byte");
      break;
    case BlockType::kConnectionBox:
      if (config.ports < 2)
        DB_THROW("connection_box needs at least 2 ports");
      break;
    case BlockType::kAgu:
      if (config.patterns < 1)
        DB_THROW("agu must support at least one access pattern");
      break;
    case BlockType::kCoordinator:
      if (config.fold_events < 1)
        DB_THROW("coordinator must sequence at least one fold event");
      break;
    default:
      break;
  }
}

std::string DescribeBlock(const BlockConfig& config) {
  std::ostringstream os;
  os << BlockTypeName(config.type) << "[" << config.bit_width << "b x"
     << config.lanes;
  switch (config.type) {
    case BlockType::kSynergyNeuron:
      os << (config.use_dsp ? " dsp" : " lut");
      break;
    case BlockType::kApproxLut:
      os << " d" << config.depth
         << (config.interpolate ? " interp" : " nearest");
      break;
    case BlockType::kBufferBank:
      os << " " << config.depth << "B";
      break;
    case BlockType::kConnectionBox:
      os << " p" << config.ports;
      break;
    case BlockType::kAgu:
      os << " " << AguRoleName(config.agu_role) << " pat"
         << config.patterns;
      break;
    case BlockType::kCoordinator:
      os << " ev" << config.fold_events;
      break;
    default:
      break;
  }
  os << "]";
  return os.str();
}

}  // namespace db
