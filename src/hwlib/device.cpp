#include "hwlib/device.h"

#include <array>

#include "common/error.h"
#include "common/strings.h"

namespace db {
namespace {

// Capacities from the Xilinx 7-series datasheets (logic cells reported as
// 6-input LUTs; BRAM as total bytes).  Static watts approximate the board
// idle draw of the full evaluation board (PS + DDR + fabric idle): ZC706-class for the Z-7045, Zedboard-class for the Z-7020.
const std::array<DeviceInfo, 3> kDevices = {{
    {"zynq-7045",
     {/*dsp=*/900, /*lut=*/218600, /*ff=*/437200,
      /*bram_bytes=*/2448 * 1024},
     /*static_watts=*/4.0,
     /*dram_bandwidth_gbs=*/8.5},  // 4 AXI HP ports aggregated
    {"zynq-7020",
     {/*dsp=*/220, /*lut=*/53200, /*ff=*/106400,
      /*bram_bytes=*/560 * 1024},
     /*static_watts=*/1.2,
     /*dram_bandwidth_gbs=*/4.2},
    {"virtex7-vc707",
     {/*dsp=*/2800, /*lut=*/303600, /*ff=*/607200,
      /*bram_bytes=*/4680 * 1024},
     /*static_watts=*/3.0,
     /*dram_bandwidth_gbs=*/12.8},
}};

}  // namespace

const DeviceInfo& DeviceCatalog(const std::string& name) {
  const std::string key = ToLower(name);
  for (const DeviceInfo& dev : kDevices)
    if (dev.name == key) return dev;
  DB_THROW("unknown device '" << name << "' (known: zynq-7045, zynq-7020, "
           "virtex7-vc707)");
}

std::vector<std::string> DeviceNames() {
  std::vector<std::string> names;
  for (const DeviceInfo& dev : kDevices) names.push_back(dev.name);
  return names;
}

double BudgetFraction(BudgetLevel level) {
  // LOW targets a heavily-shared datapath on a small device; HIGH grants
  // most of the fabric (DB-L in the paper), leaving room for the SoC
  // infrastructure (AXI interconnect, host interface).
  switch (level) {
    case BudgetLevel::kLow: return 0.25;
    case BudgetLevel::kMedium: return 0.45;
    case BudgetLevel::kHigh: return 0.80;
  }
  return 0.45;
}

ResourceBudget ResolveBudget(const DesignConstraint& constraint) {
  const DeviceInfo& dev = DeviceCatalog(constraint.device);
  const ResourceBudget scaled =
      dev.capacity.Scaled(BudgetFraction(constraint.budget));
  ResourceBudget out = constraint.explicit_budget;
  if (out.dsp <= 0) out.dsp = scaled.dsp;
  if (out.lut <= 0) out.lut = scaled.lut;
  if (out.ff <= 0) out.ff = scaled.ff;
  if (out.bram_bytes <= 0) out.bram_bytes = scaled.bram_bytes;
  return out;
}

}  // namespace db
