// The NN component library of Fig. 5: reconfigurable RTL building blocks.
//
// Blocks are "not hardwired in the RTL library but leave out multiple
// reconfigurable parameters" (paper §3.2) — bit width, neuron-level
// parallelism, disablable ports — which NN-Gen fixes per design.  A
// BlockConfig is the fixed parameterisation; a BlockInstance is one named
// instantiation inside a generated accelerator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace db {

/// Every block type in the component library (Fig. 5), plus the two
/// control building blocks (§3.2 end): the scheduling coordinator and the
/// Address Generation Unit.
enum class BlockType {
  kSynergyNeuron,   // weight-by-feature MAC lane array
  kAccumulator,     // partial-sum accumulation tree
  kPoolingUnit,     // max/average window reduction
  kLrnUnit,         // local response normalisation pipeline
  kDropoutUnit,     // mask/scale inserter
  kClassifier,      // k-sorter based top-k selector (Beigel & Gill)
  kActivationUnit,  // activation function evaluator (wraps an Approx LUT)
  kApproxLut,       // approximate lookup table with interpolation
  kConnectionBox,   // inter-layer crossbar + shifting latch
  kAgu,             // address generation unit (main / data / weight)
  kCoordinator,     // FSM-based central scheduling coordinator
  kBufferBank,      // on-chip BRAM buffer (feature or weight)
};

std::string BlockTypeName(BlockType type);

/// Role of an AGU instance (paper §3.3): main moves data between DRAM and
/// on-chip buffers; data/weight stream operands into the datapath.
enum class AguRole { kMain, kData, kWeight };

std::string AguRoleName(AguRole role);

/// One block's fixed parameterisation.  Fields are interpreted per type;
/// unused fields stay at their defaults and cost nothing.
struct BlockConfig {
  BlockType type = BlockType::kSynergyNeuron;
  int bit_width = 16;   // datapath element width
  int lanes = 1;        // parallel processing elements in the block
  bool use_dsp = true;  // synergy neuron: DSP-slice vs LUT-fabric multiplier
  int ports = 2;        // connection box port count
  std::int64_t depth = 0;      // buffer bytes or Approx LUT entries
  int patterns = 1;     // AGU: distinct access patterns supported
  AguRole agu_role = AguRole::kData;
  int fold_events = 1;  // coordinator: schedule steps it sequences
  bool interpolate = true;  // Approx LUT: super-linear interpolation stage
};

/// A named instantiation of a configured block inside one design.
struct BlockInstance {
  std::string name;  // unique Verilog-legal instance name
  BlockConfig config;
};

/// Library-level validation: rejects configurations the reconfigurable
/// RTL templates cannot realise (e.g. zero lanes, LUT depth not a power
/// of two).  Throws db::Error.
void ValidateBlockConfig(const BlockConfig& config);

/// Short human-readable description, e.g. "synergy_neuron[16b x32 dsp]".
std::string DescribeBlock(const BlockConfig& config);

}  // namespace db
