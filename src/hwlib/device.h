// FPGA device catalogue and budget resolution.
//
// The paper evaluates on Xilinx Zynq Z-7045 (DB, DB-L) and Z-7020 (DB-S)
// boards; Zhang et al. FPGA'15 used a Virtex-7 VC707.  The catalogue holds
// each device's programmable-logic capacity and power envelope for the
// resource and power models.
#pragma once

#include <string>
#include <vector>

#include "frontend/constraint.h"

namespace db {

/// Static description of one FPGA device.
struct DeviceInfo {
  std::string name;
  ResourceBudget capacity;
  double static_watts = 0.0;   // device + board static power
  /// Aggregate DDR bandwidth at the AXI ports, gigabytes per second.
  double dram_bandwidth_gbs = 0.0;
};

/// Look up a device by (case-insensitive) name: "zynq-7045", "zynq-7020",
/// "virtex7-vc707".  Throws db::Error for unknown devices.
const DeviceInfo& DeviceCatalog(const std::string& name);

/// Names of all catalogued devices.
std::vector<std::string> DeviceNames();

/// Resolve the absolute resource budget of a constraint: explicit fields
/// win; unset fields come from the device capacity scaled by the budget
/// level (LOW/MEDIUM/HIGH fractions).
ResourceBudget ResolveBudget(const DesignConstraint& constraint);

/// Fraction of device capacity granted per budget level.
double BudgetFraction(BudgetLevel level);

}  // namespace db
