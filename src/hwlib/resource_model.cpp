#include "hwlib/resource_model.h"

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/math_util.h"
#include "common/strings.h"

namespace db {
namespace {

/// LUT cost of one w-bit array multiplier built in fabric (no DSP):
/// roughly w*w/2 6-input LUTs on 7-series.
std::int64_t LutMultiplierCost(int w) {
  return static_cast<std::int64_t>(w) * w / 2;
}

/// Width scale relative to the 16-bit calibration point.
double WidthScale(int bit_width) {
  return static_cast<double>(bit_width) / 16.0;
}

std::int64_t ScaleW(std::int64_t base, int bit_width) {
  return static_cast<std::int64_t>(
      std::ceil(static_cast<double>(base) * WidthScale(bit_width)));
}

}  // namespace

ResourceBudget BlockCost(const BlockConfig& c) {
  ValidateBlockConfig(c);
  ResourceBudget r;
  const std::int64_t lanes = c.lanes;
  switch (c.type) {
    case BlockType::kSynergyNeuron:
      // One MAC lane: multiplier + operand registers + partial-sum reg.
      if (c.use_dsp) {
        r.dsp = lanes;
        r.lut = lanes * ScaleW(12, c.bit_width);   // routing + control
        r.ff = lanes * ScaleW(24, c.bit_width);    // pipeline registers
      } else {
        r.lut = lanes * (LutMultiplierCost(c.bit_width) +
                         ScaleW(12, c.bit_width));
        r.ff = lanes * ScaleW(40, c.bit_width);
      }
      break;
    case BlockType::kAccumulator:
      r.lut = lanes * ScaleW(10, c.bit_width);
      r.ff = lanes * ScaleW(18, c.bit_width);
      break;
    case BlockType::kPoolingUnit:
      // Comparator / adder tree + window registers per lane.
      r.lut = lanes * ScaleW(22, c.bit_width);
      r.ff = lanes * ScaleW(20, c.bit_width);
      break;
    case BlockType::kLrnUnit:
      // Square-accumulate window + LUT-assisted power stage.
      r.lut = lanes * ScaleW(160, c.bit_width);
      r.ff = lanes * ScaleW(120, c.bit_width);
      r.dsp = lanes;  // the squaring multiplier
      break;
    case BlockType::kDropoutUnit:
      // LFSR + mask multiplexers.
      r.lut = ScaleW(24, c.bit_width) + 8 * lanes;
      r.ff = ScaleW(20, c.bit_width);
      break;
    case BlockType::kClassifier: {
      // k-sorter comparison network: lanes = k, cost ~ k log2 k stages of
      // compare-exchange on full-width values.
      const double stages =
          lanes > 1 ? std::ceil(std::log2(static_cast<double>(lanes))) : 1.0;
      const std::int64_t ce = static_cast<std::int64_t>(
          static_cast<double>(lanes) * stages);
      r.lut = ce * ScaleW(18, c.bit_width) + 16;
      r.ff = ce * ScaleW(16, c.bit_width);
      break;
    }
    case BlockType::kActivationUnit:
      // Pipeline wrapper around an Approx LUT (costed separately).
      r.lut = lanes * ScaleW(8, c.bit_width);
      r.ff = lanes * ScaleW(12, c.bit_width);
      break;
    case BlockType::kApproxLut: {
      // Sample store in BRAM; interpolation needs a slope multiplier and
      // the adjacent-key fetch/compare logic.  The table product
      // saturates: an absurd depth/width combination from a DSE sweep
      // must tally as over-budget, never wrap into a small number.
      r.bram_bytes = SatMul(SatMul(c.depth, CeilDiv(c.bit_width, 8)),
                            2);  // key+value
      r.lut = ScaleW(14, c.bit_width);
      r.ff = ScaleW(12, c.bit_width);
      if (c.interpolate) {
        r.lut += LutMultiplierCost(c.bit_width) / 2 +
                 ScaleW(18, c.bit_width);
        r.ff += ScaleW(16, c.bit_width);
      }
      break;
    }
    case BlockType::kConnectionBox: {
      // ports x ports crossbar of bit_width buses + shifting latch.
      const std::int64_t cross =
          static_cast<std::int64_t>(c.ports) * c.ports;
      r.lut = cross * ScaleW(4, c.bit_width) + ScaleW(10, c.bit_width);
      r.ff = c.ports * ScaleW(8, c.bit_width);
      break;
    }
    case BlockType::kAgu: {
      // Pattern registers (start, footprint, x/y length, stride, offset)
      // plus the stepping adders; main AGUs carry wider addresses.
      const std::int64_t addr_bits = c.agu_role == AguRole::kMain ? 32 : 18;
      r.lut = addr_bits + 6 * c.patterns + 12;
      r.ff = addr_bits + 8 * c.patterns;
      break;
    }
    case BlockType::kCoordinator: {
      // FSM logic is bounded (the step sequencing datapath); the fold
      // schedule itself lives in a BRAM context buffer, 4 bytes per
      // event, so logic cost does not scale with network depth.
      const std::int64_t logic_events =
          std::min<std::int64_t>(c.fold_events, 64);
      r.lut = 18 + 3 * logic_events;
      r.ff = 12 + 2 * logic_events;
      r.bram_bytes = 4 * c.fold_events;
      break;
    }
    case BlockType::kBufferBank:
      r.bram_bytes = c.depth;
      r.lut = 10;  // port muxing
      r.ff = 8;
      break;
  }
  return r;
}

std::string ResourceReport::ToString() const {
  std::ostringstream os;
  os << StrFormat("%-28s %-34s %6s %8s %8s %9s\n", "instance", "block",
                  "DSP", "LUT", "FF", "BRAM(B)");
  for (const Entry& e : entries)
    os << StrFormat("%-28s %-34s %6lld %8lld %8lld %9lld\n",
                    e.instance.c_str(), e.description.c_str(),
                    static_cast<long long>(e.cost.dsp),
                    static_cast<long long>(e.cost.lut),
                    static_cast<long long>(e.cost.ff),
                    static_cast<long long>(e.cost.bram_bytes));
  os << StrFormat("%-28s %-34s %6lld %8lld %8lld %9lld\n", "TOTAL", "",
                  static_cast<long long>(total.dsp),
                  static_cast<long long>(total.lut),
                  static_cast<long long>(total.ff),
                  static_cast<long long>(total.bram_bytes));
  return os.str();
}

ResourceReport TallyResources(const std::vector<BlockInstance>& blocks) {
  ResourceReport report;
  for (const BlockInstance& inst : blocks) {
    ResourceReport::Entry entry;
    entry.instance = inst.name;
    entry.description = DescribeBlock(inst.config);
    entry.cost = BlockCost(inst.config);
    // Saturating totals: one saturated block cost must poison the whole
    // tally (and thus fail every Fits check) instead of wrapping.
    report.total.dsp = SatAdd(report.total.dsp, entry.cost.dsp);
    report.total.lut = SatAdd(report.total.lut, entry.cost.lut);
    report.total.ff = SatAdd(report.total.ff, entry.cost.ff);
    report.total.bram_bytes =
        SatAdd(report.total.bram_bytes, entry.cost.bram_bytes);
    report.entries.push_back(std::move(entry));
  }
  return report;
}

}  // namespace db
