// Analytic resource cost model (substitute for Vivado's synthesis report).
//
// Each building block's DSP/LUT/FF/BRAM cost is a deterministic function
// of its configuration, calibrated so the totals land on the scale of
// Table 3 of the paper (tiny MLP designs: a few DSPs and tens-to-hundreds
// of LUTs; Alexnet-class designs: tens of thousands of LUTs).  Relative
// ordering between designs is what the model must preserve.
#pragma once

#include <string>
#include <vector>

#include "frontend/constraint.h"
#include "hwlib/blocks.h"

namespace db {

/// Resources of a single configured block.
ResourceBudget BlockCost(const BlockConfig& config);

/// Per-instance cost breakdown plus totals for a whole design.
struct ResourceReport {
  struct Entry {
    std::string instance;
    std::string description;
    ResourceBudget cost;
  };
  std::vector<Entry> entries;
  ResourceBudget total;

  /// Formatted table for logs and the Table-3 bench.
  std::string ToString() const;
};

/// Sum the costs of every instance in a design.
ResourceReport TallyResources(const std::vector<BlockInstance>& blocks);

}  // namespace db
