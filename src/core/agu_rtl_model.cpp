#include "core/agu_rtl_model.h"

#include "common/error.h"

namespace db {

AguModelOutputs AguRtlModel::Step(const AguModelInputs& in) {
  // Nonblocking semantics: compute all next-state values from the
  // current registers, then commit — exactly the emitted always block.
  std::int64_t next_x = x_cnt_;
  std::int64_t next_y = y_cnt_;
  std::int64_t next_row_base = row_base_;
  bool next_running = running_;
  AguModelOutputs next_out = out_;

  if (!in.rst_n) {
    next_x = 0;
    next_y = 0;
    next_row_base = 0;
    next_running = false;
    next_out = {};
  } else if (in.start_event) {
    next_x = 0;
    next_y = 0;
    next_row_base = in.cfg_start;
    next_out.addr = in.cfg_start;
    next_out.addr_valid = true;
    next_running = true;
    next_out.pattern_done = false;
  } else if (running_) {
    if (x_cnt_ + 1 < in.cfg_x_len) {
      next_x = x_cnt_ + 1;
      next_out.addr = out_.addr + in.cfg_stride;
    } else if (y_cnt_ + 1 < in.cfg_y_len) {
      next_x = 0;
      next_y = y_cnt_ + 1;
      next_row_base = row_base_ + in.cfg_offset;
      next_out.addr = row_base_ + in.cfg_offset;
    } else {
      next_running = false;
      next_out.addr_valid = false;
      next_out.pattern_done = true;
    }
  } else {
    next_out.pattern_done = false;
  }

  x_cnt_ = next_x;
  y_cnt_ = next_y;
  row_base_ = next_row_base;
  running_ = next_running;
  out_ = next_out;
  return out_;
}

void RunAguPatternInto(const AguPattern& pattern,
                       std::vector<std::int64_t>& addrs,
                       std::int64_t max_cycles) {
  AguRtlModel model;
  AguModelInputs in;
  in.cfg_start = pattern.start_addr;
  in.cfg_x_len = pattern.x_length;
  in.cfg_y_len = pattern.y_length;
  in.cfg_stride = pattern.stride;
  in.cfg_offset = pattern.offset;

  // Reset pulse.
  in.rst_n = false;
  model.Step(in);
  in.rst_n = true;

  // Trigger the pattern for one cycle.
  in.start_event = true;
  addrs.clear();
  AguModelOutputs out = model.Step(in);
  in.start_event = false;
  if (out.addr_valid) addrs.push_back(out.addr);

  for (std::int64_t cycle = 0; cycle < max_cycles; ++cycle) {
    out = model.Step(in);
    if (out.addr_valid) addrs.push_back(out.addr);
    if (out.pattern_done) return;
  }
  DB_THROW("AGU pattern did not complete within " << max_cycles
           << " cycles");
}

std::vector<std::int64_t> RunAguPattern(const AguPattern& pattern,
                                        std::int64_t max_cycles) {
  std::vector<std::int64_t> addrs;
  RunAguPatternInto(pattern, addrs, max_cycles);
  return addrs;
}

}  // namespace db
