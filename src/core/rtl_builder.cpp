#include "core/rtl_builder.h"

#include <map>
#include <set>

#include "common/error.h"
#include "common/strings.h"
#include "rtl/block_emitters.h"

namespace db {
namespace {

/// Wires every port of `inst` to nets named "<instance>_<port>" in the
/// top module, declaring the nets as it goes.  Returns the instantiation.
VInstance WireInstance(VModule& top, const VModule& def,
                       const BlockInstance& inst) {
  VInstance vi;
  vi.module_name = def.name;
  vi.instance_name = ToIdentifier(inst.name);
  for (const VPort& port : def.ports) {
    if (port.name == "clk" || port.name == "rst_n") {
      vi.ports.push_back({port.name, VId(port.name)});
      continue;
    }
    const std::string net = vi.instance_name + "_" + port.name;
    top.nets.push_back({net, port.width, false, 0});
    vi.ports.push_back({port.name, VId(net)});
  }
  return vi;
}

/// Collects every identifier read by `expr` into `out`.
void CollectIds(const VExpr& expr, std::set<std::string>& out) {
  if (expr.kind == VExprKind::kId) out.insert(expr.text);
  for (const VExpr& arg : expr.args) CollectIds(arg, out);
}

/// Ties every loaded-but-undriven top-level net to zero.  The generator
/// wires the dataflow; the remaining block config inputs (AGU pattern
/// registers, buffer write strobes, activation mode selects) are
/// host-programmed at runtime — in the static design they default to
/// zero so every net has exactly one driver.
void TieOffUndrivenNets(const VDesign& design, VModule& top) {
  std::set<std::string> driven;
  std::set<std::string> loaded;
  for (const VPort& p : top.ports)
    if (p.dir == PortDir::kInput) driven.insert(p.name);
  for (const VAssign& a : top.assigns) {
    driven.insert(LvalueBase(a.lhs));
    CollectIds(a.rhs, loaded);
  }
  for (const VInstance& vi : top.instances) {
    const VModule* def = design.FindModule(vi.module_name);
    DB_CHECK_MSG(def != nullptr, "instance of unknown module");
    for (const VBinding& b : vi.ports) {
      const VPort* formal = def->FindPort(b.formal);
      DB_CHECK_MSG(formal != nullptr, "binding of unknown port");
      if (formal->dir == PortDir::kOutput)
        driven.insert(LvalueBase(b.actual));
      else
        CollectIds(b.actual, loaded);
    }
  }
  for (const VNet& n : top.nets) {
    if (driven.count(n.name) > 0 || loaded.count(n.name) == 0) continue;
    top.assigns.push_back(
        {VId(n.name), n.width > 1 ? VRepeat(n.width, VLit(1, 0, 'b'))
                                  : VLit(1, 0, 'b')});
  }
}

}  // namespace

VDesign BuildRtl(const AcceleratorConfig& config,
                 const std::vector<BlockInstance>& blocks) {
  VDesign design;

  // One module definition per unique configuration.
  std::map<std::string, const BlockConfig*> unique;
  for (const BlockInstance& inst : blocks)
    unique.emplace(BlockModuleName(inst.config), &inst.config);
  for (const auto& [name, cfg] : unique)
    design.modules.push_back(EmitBlockModule(*cfg));

  // Top module.
  VModule top;
  top.name = ToIdentifier("db_accel_" + config.network_name);
  top.comment =
      "DeepBurning generated accelerator top for network '" +
      config.network_name + "'\n" +
      StrFormat("format=%s lanes=%d(dsp)+%d(lut) port=%lld elems "
                "buffers=%lld/%lld bytes",
                config.format.ToString().c_str(), config.dsp_lanes,
                config.lut_lanes,
                static_cast<long long>(config.memory_port_elems),
                static_cast<long long>(config.data_buffer_bytes),
                static_cast<long long>(config.weight_buffer_bytes));
  top.ports.push_back({"clk", PortDir::kInput, 1, false});
  top.ports.push_back({"rst_n", PortDir::kInput, 1, false});
  top.ports.push_back({"go", PortDir::kInput, 1, false});
  top.ports.push_back({"axi_rdata", PortDir::kInput,
                       static_cast<int>(config.memory_port_elems) *
                           config.format.total_bits(),
                       false});
  top.ports.push_back({"axi_araddr", PortDir::kOutput, 32, false});
  top.ports.push_back({"axi_awaddr", PortDir::kOutput, 32, false});
  top.ports.push_back({"axi_wdata", PortDir::kOutput,
                       static_cast<int>(config.memory_port_elems) *
                           config.format.total_bits(),
                       false});
  top.ports.push_back({"done", PortDir::kOutput, 1, false});

  std::map<std::string, std::string> instance_module;
  for (const BlockInstance& inst : blocks) {
    const std::string mod_name = BlockModuleName(inst.config);
    const VModule* def = nullptr;
    for (const VModule& m : design.modules)
      if (m.name == mod_name) def = &m;
    DB_CHECK_MSG(def != nullptr, "module definition missing");
    top.instances.push_back(WireInstance(top, *def, inst));
    instance_module[ToIdentifier(inst.name)] = mod_name;
  }

  // Dataflow wiring between the canonical instances.  Every generated
  // design has a main AGU, a coordinator and the two buffers; datapath
  // blocks are conditional.
  auto has_inst = [&](const std::string& name) {
    return instance_module.count(ToIdentifier(name)) > 0;
  };
  auto wire = [&](const std::string& dst, VExpr src) {
    top.assigns.push_back({VId(dst), std::move(src)});
  };

  // AXI address/data plumbing from the main AGU and the data buffer.
  wire("axi_araddr", VId("agu_main_addr"));
  wire("axi_awaddr", VId("agu_main_addr"));
  wire("axi_wdata", VId("buffer_data_rd_data"));
  wire("done", VId("coordinator0_all_done"));
  wire("coordinator0_go", VId("go"));
  wire("coordinator0_step_done", VId("agu_main_pattern_done"));
  wire("agu_main_start_event",
       VIndex(VId("coordinator0_trigger"), VLit(0)));
  wire("buffer_data_wr_data", VId("axi_rdata"));

  if (has_inst("synergy_array")) {
    // Feature and weight operands stream from the on-chip buffers.
    const int primary_lanes =
        config.dsp_lanes > 0 ? config.dsp_lanes : config.lut_lanes;
    const int lane_bits = primary_lanes * config.format.total_bits();
    const int port_bits = static_cast<int>(config.memory_port_elems) *
                          config.format.total_bits();
    if (lane_bits <= port_bits) {
      wire("synergy_array_feature",
           VSlice(VId("buffer_data_rd_data"), lane_bits - 1, 0));
      wire("synergy_array_weight",
           VSlice(VId("buffer_weight_rd_data"), lane_bits - 1, 0));
    } else {
      // Wide datapaths replicate the port across lane groups via
      // intermediate replication nets (a concatenation cannot be sliced
      // directly in Verilog-2001).
      const int repeat = (lane_bits + port_bits - 1) / port_bits;
      top.nets.push_back({"feature_rep", repeat * port_bits, false, 0});
      top.nets.push_back({"weight_rep", repeat * port_bits, false, 0});
      wire("feature_rep", VRepeat(repeat, VId("buffer_data_rd_data")));
      wire("weight_rep", VRepeat(repeat, VId("buffer_weight_rd_data")));
      wire("synergy_array_feature",
           VSlice(VId("feature_rep"), lane_bits - 1, 0));
      wire("synergy_array_weight",
           VSlice(VId("weight_rep"), lane_bits - 1, 0));
    }
    wire("synergy_array_valid_in", VId("agu_data_addr_valid"));
    wire("synergy_array_clear", VId("agu_data_pattern_done"));
  }
  if (has_inst("accumulator0") && has_inst("synergy_array")) {
    // The primary array's partial sums feed the accumulator tree; its
    // width follows the primary bank (the secondary fabric bank, when
    // present, chains through the connection box at runtime).
    const int first_lanes =
        config.dsp_lanes > 0 ? config.dsp_lanes : config.lut_lanes;
    const int acc_in_bits = 2 * config.format.total_bits() * first_lanes;
    wire("accumulator0_partials",
         VSlice(VId("synergy_array_acc_out"), acc_in_bits - 1, 0));
    wire("accumulator0_valid_in", VId("synergy_array_valid_out"));
  }

  TieOffUndrivenNets(design, top);

  design.modules.push_back(std::move(top));
  design.top = design.modules.back().name;
  return design;
}

}  // namespace db
