#include "core/design_serde.h"

#include <cstring>
#include <type_traits>
#include <utility>

#include "common/error.h"

namespace db {
namespace {

// One symmetric Ser() function per struct drives both directions: the
// Writer appends fields to a byte string, the Reader assigns them back
// in the same order.  Integers are little-endian fixed-width, doubles
// are bit-copied (the round-trip must be bit-exact), strings and
// vectors are length-prefixed.

constexpr char kMagic[4] = {'D', 'B', 'S', 'D'};

class Writer {
 public:
  static constexpr bool kReading = false;

  void P(bool& v) { out_.push_back(v ? 1 : 0); }
  void P(int& v) { Fixed(static_cast<std::uint32_t>(v)); }
  void P(std::uint32_t& v) { Fixed(v); }
  void P(std::int64_t& v) { Fixed(static_cast<std::uint64_t>(v)); }
  void P(std::uint64_t& v) { Fixed(v); }
  void P(double& v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    Fixed(bits);
  }
  void P(std::string& v) {
    std::uint64_t n = v.size();
    Fixed(n);
    out_.append(v);
  }

  std::string Take() && { return std::move(out_); }

 private:
  template <typename U>
  void Fixed(U v) {
    for (std::size_t i = 0; i < sizeof(U); ++i)
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }

  std::string out_;
};

class Reader {
 public:
  static constexpr bool kReading = true;

  explicit Reader(std::string_view in) : in_(in) {}

  void P(bool& v) {
    const std::uint8_t byte = Byte();
    if (byte > 1) throw Error("design decode: invalid bool");
    v = byte != 0;
  }
  void P(int& v) { v = static_cast<int>(Fixed<std::uint32_t>()); }
  void P(std::uint32_t& v) { v = Fixed<std::uint32_t>(); }
  void P(std::int64_t& v) {
    v = static_cast<std::int64_t>(Fixed<std::uint64_t>());
  }
  void P(std::uint64_t& v) { v = Fixed<std::uint64_t>(); }
  void P(double& v) {
    const std::uint64_t bits = Fixed<std::uint64_t>();
    std::memcpy(&v, &bits, sizeof(v));
  }
  void P(std::string& v) {
    const std::uint64_t n = Fixed<std::uint64_t>();
    if (n > Remaining()) throw Error("design decode: truncated string");
    v.assign(in_.substr(pos_, static_cast<std::size_t>(n)));
    pos_ += static_cast<std::size_t>(n);
  }

  std::size_t Remaining() const { return in_.size() - pos_; }

 private:
  std::uint8_t Byte() {
    if (pos_ >= in_.size()) throw Error("design decode: truncated payload");
    return static_cast<std::uint8_t>(in_[pos_++]);
  }
  template <typename U>
  U Fixed() {
    U v = 0;
    for (std::size_t i = 0; i < sizeof(U); ++i)
      v |= static_cast<U>(Byte()) << (8 * i);
    return v;
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

// Primitive / enum / container dispatch.
template <class A, typename T>
  requires(std::is_arithmetic_v<T> || std::is_same_v<T, std::string>)
void Ser(A& a, T& v) {
  a.P(v);
}

template <class A, typename E>
  requires std::is_enum_v<E>
void SerEnum(A& a, E& v, int max_value) {
  int raw = static_cast<int>(v);
  a.P(raw);
  if constexpr (A::kReading) {
    if (raw < 0 || raw > max_value)
      throw Error("design decode: enum value out of range");
    v = static_cast<E>(raw);
  }
}

template <class A, typename T>
void Ser(A& a, std::vector<T>& v);

void Ser(Writer& a, const FixedFormat& fmt) {
  int total = fmt.total_bits(), frac = fmt.frac_bits();
  a.P(total);
  a.P(frac);
}
void Ser(Reader& a, FixedFormat& fmt) {
  int total = 0, frac = 0;
  a.P(total);
  a.P(frac);
  fmt = FixedFormat(total, frac);  // ctor re-validates the widths
}

template <class A>
void Ser(A& a, ResourceBudget& b) {
  Ser(a, b.dsp);
  Ser(a, b.lut);
  Ser(a, b.ff);
  Ser(a, b.bram_bytes);
}

template <class A>
void Ser(A& a, AcceleratorConfig& c) {
  Ser(a, c.network_name);
  Ser(a, c.format);
  Ser(a, c.frequency_mhz);
  Ser(a, c.dram_bandwidth_gbs);
  Ser(a, c.dsp_lanes);
  Ser(a, c.lut_lanes);
  Ser(a, c.pooling_lanes);
  Ser(a, c.activation_lanes);
  Ser(a, c.accumulator_lanes);
  Ser(a, c.has_lrn);
  Ser(a, c.has_dropout);
  Ser(a, c.has_classifier);
  Ser(a, c.classifier_k);
  Ser(a, c.has_connection_box);
  Ser(a, c.connection_box_ports);
  Ser(a, c.data_buffer_bytes);
  Ser(a, c.weight_buffer_bytes);
  Ser(a, c.memory_port_elems);
  Ser(a, c.approx_lut_entries);
  Ser(a, c.approx_lut_interpolate);
  Ser(a, c.budget);
}

template <class A>
void Ser(A& a, LayerFold& f) {
  Ser(a, f.layer_id);
  Ser(a, f.layer_name);
  SerEnum(a, f.kind, static_cast<int>(LayerKind::kClassifier));
  SerEnum(a, f.pool, static_cast<int>(LanePool::kNone));
  Ser(a, f.parallel_units);
  Ser(a, f.lanes_used);
  Ser(a, f.segments);
  Ser(a, f.unit_work);
  Ser(a, f.total_ops);
}

template <class A>
void Ser(A& a, FoldPlan& p) {
  Ser(a, p.folds);
}

template <class A>
void Ser(A& a, TileSpec& t) {
  SerEnum(a, t.rule, static_cast<int>(TileRule::kLinear));
  Ser(a, t.tile_h);
  Ser(a, t.tile_w);
  Ser(a, t.interleave_maps);
  Ser(a, t.port_elems);
  Ser(a, t.utilization);
  Ser(a, t.refetch);
}

template <class A>
void Ser(A& a, DataLayoutPlan::Entry& e) {
  Ser(a, e.layer_id);
  Ser(a, e.layer_name);
  Ser(a, e.input_layout);
  Ser(a, e.weight_layout);
}

template <class A>
void Ser(A& a, DataLayoutPlan& p) {
  Ser(a, p.entries);
}

template <class A>
void Ser(A& a, MemoryRegion& r) {
  Ser(a, r.name);
  Ser(a, r.base);
  Ser(a, r.bytes);
}

void Ser(Writer& a, const MemoryMap& m) {
  std::vector<MemoryRegion> regions = m.regions();
  Ser(a, regions);
}
void Ser(Reader& a, MemoryMap& m) {
  std::vector<MemoryRegion> regions;
  Ser(a, regions);
  m = MemoryMap::FromRegions(std::move(regions));
}

template <class A>
void Ser(A& a, AguPattern& p) {
  Ser(a, p.id);
  SerEnum(a, p.role, static_cast<int>(AguRole::kWeight));
  SerEnum(a, p.kind, static_cast<int>(TransferKind::kStreamWeights));
  Ser(a, p.layer_id);
  Ser(a, p.event);
  Ser(a, p.start_addr);
  Ser(a, p.x_length);
  Ser(a, p.y_length);
  Ser(a, p.stride);
  Ser(a, p.offset);
  Ser(a, p.beat_bytes);
}

template <class A>
void Ser(A& a, AguProgram& p) {
  Ser(a, p.patterns);
}

template <class A>
void Ser(A& a, ScheduleStep& s) {
  Ser(a, s.index);
  Ser(a, s.layer_id);
  Ser(a, s.segment);
  Ser(a, s.event);
  Ser(a, s.producer_block);
  Ser(a, s.consumer_block);
  Ser(a, s.pattern_ids);
}

template <class A>
void Ser(A& a, Schedule& s) {
  Ser(a, s.steps);
}

template <class A>
void Ser(A& a, BufferSlot& s) {
  Ser(a, s.name);
  Ser(a, s.base);
  Ser(a, s.bytes);
}

template <class A>
void Ser(A& a, BufferPlanEntry& e) {
  Ser(a, e.layer_id);
  Ser(a, e.layer_name);
  Ser(a, e.tile_bytes);
  Ser(a, e.ping);
  Ser(a, e.pong);
  Ser(a, e.out_stage);
  Ser(a, e.input_resident);
}

template <class A>
void Ser(A& a, BufferPlan& p) {
  Ser(a, p.data_buffer_bytes);
  Ser(a, p.entries);
}

template <class A>
void Ser(A& a, CrossbarSetting& s) {
  Ser(a, s.step_index);
  Ser(a, s.event);
  SerEnum(a, s.producer, static_cast<int>(DatapathPort::kConnectionBox));
  SerEnum(a, s.consumer, static_cast<int>(DatapathPort::kConnectionBox));
  Ser(a, s.shift);
}

template <class A>
void Ser(A& a, ConnectionPlan& p) {
  Ser(a, p.settings);
}

template <class A>
void Ser(A& a, ApproxLutSpec& s) {
  SerEnum(a, s.function, static_cast<int>(LutFunction::kLrnPow));
  Ser(a, s.entries);
  Ser(a, s.interpolate);
  Ser(a, s.format);
  Ser(a, s.in_min);
  Ser(a, s.in_max);
  Ser(a, s.beta);
}

template <class A>
void Ser(A& a, BlockConfig& c) {
  SerEnum(a, c.type, static_cast<int>(BlockType::kBufferBank));
  Ser(a, c.bit_width);
  Ser(a, c.lanes);
  Ser(a, c.use_dsp);
  Ser(a, c.ports);
  Ser(a, c.depth);
  Ser(a, c.patterns);
  SerEnum(a, c.agu_role, static_cast<int>(AguRole::kWeight));
  Ser(a, c.fold_events);
  Ser(a, c.interpolate);
}

template <class A>
void Ser(A& a, BlockInstance& b) {
  Ser(a, b.name);
  Ser(a, b.config);
}

template <class A>
void Ser(A& a, ResourceReport::Entry& e) {
  Ser(a, e.instance);
  Ser(a, e.description);
  Ser(a, e.cost);
}

template <class A>
void Ser(A& a, ResourceReport& r) {
  Ser(a, r.entries);
  Ser(a, r.total);
}

template <class A>
void Ser(A& a, VExpr& e) {
  SerEnum(a, e.kind, static_cast<int>(VExprKind::kSigned));
  Ser(a, e.text);
  Ser(a, e.value);
  Ser(a, e.width);
  int base = e.base;
  Ser(a, base);
  if constexpr (A::kReading) {
    if (base != 'd' && base != 'b' && base != 'h')
      throw Error("design decode: invalid literal base");
    e.base = static_cast<char>(base);
  }
  Ser(a, e.msb);
  Ser(a, e.lsb);
  Ser(a, e.compact);
  Ser(a, e.args);
}

template <class A>
void Ser(A& a, VStmt& s) {
  SerEnum(a, s.kind, static_cast<int>(VStmtKind::kSeq));
  Ser(a, s.lhs);
  Ser(a, s.rhs);
  Ser(a, s.non_blocking);
  Ser(a, s.cond);
  Ser(a, s.then_stmts);
  Ser(a, s.else_stmts);
  SerEnum(a, s.then_style, static_cast<int>(VBranchStyle::kBlockOwnLine));
  SerEnum(a, s.else_style, static_cast<int>(VBranchStyle::kBlockOwnLine));
}

template <class A>
void Ser(A& a, VPort& p) {
  Ser(a, p.name);
  SerEnum(a, p.dir, static_cast<int>(PortDir::kOutput));
  Ser(a, p.width);
  Ser(a, p.is_reg);
  Ser(a, p.width_param);
}

template <class A>
void Ser(A& a, VParam& p) {
  Ser(a, p.name);
  Ser(a, p.value);
}

template <class A>
void Ser(A& a, VNet& n) {
  Ser(a, n.name);
  Ser(a, n.width);
  Ser(a, n.is_reg);
  Ser(a, n.depth);
}

template <class A>
void Ser(A& a, VAssign& v) {
  Ser(a, v.lhs);
  Ser(a, v.rhs);
}

template <class A>
void Ser(A& a, VBinding& b) {
  Ser(a, b.formal);
  Ser(a, b.actual);
}

template <class A>
void Ser(A& a, VInstance& i) {
  Ser(a, i.module_name);
  Ser(a, i.instance_name);
  Ser(a, i.params);
  Ser(a, i.ports);
}

template <class A>
void Ser(A& a, VAlways& b) {
  Ser(a, b.sensitivity);
  Ser(a, b.body);
}

template <class A>
void Ser(A& a, VModule& m) {
  Ser(a, m.name);
  Ser(a, m.comment);
  Ser(a, m.params);
  Ser(a, m.ports);
  Ser(a, m.nets);
  Ser(a, m.assigns);
  Ser(a, m.instances);
  Ser(a, m.always_blocks);
}

template <class A>
void Ser(A& a, VDesign& d) {
  Ser(a, d.modules);
  Ser(a, d.top);
}

template <class A>
void Ser(A& a, AcceleratorDesign& d) {
  Ser(a, d.config);
  Ser(a, d.fold_plan);
  Ser(a, d.layout);
  Ser(a, d.memory_map);
  Ser(a, d.agu_program);
  Ser(a, d.schedule);
  Ser(a, d.buffer_plan);
  Ser(a, d.connection_plan);
  Ser(a, d.lut_specs);
  Ser(a, d.blocks);
  Ser(a, d.resources);
  Ser(a, d.rtl);
}

template <class A, typename T>
void Ser(A& a, std::vector<T>& v) {
  std::uint64_t n = v.size();
  a.P(n);
  if constexpr (A::kReading) {
    // Every element encodes to at least one byte, so the remaining
    // payload bounds the plausible count — rejects corrupt huge sizes
    // before the resize allocates.
    if (n > a.Remaining()) throw Error("design decode: truncated vector");
    v.resize(static_cast<std::size_t>(n));
  }
  for (T& e : v) Ser(a, e);
}

}  // namespace

std::string SerializeDesign(const AcceleratorDesign& design) {
  Writer w;
  std::string magic(kMagic, sizeof(kMagic));
  w.P(magic);
  std::uint32_t version = kDesignSerdeVersion;
  w.P(version);
  AcceleratorDesign copy = design;  // the symmetric codec mutates in place
  Ser(w, copy);
  return std::move(w).Take();
}

AcceleratorDesign DeserializeDesign(std::string_view bytes) {
  Reader r(bytes);
  std::string magic;
  r.P(magic);
  if (magic != std::string_view(kMagic, sizeof(kMagic)))
    throw Error("design decode: bad magic (not a serialized design)");
  std::uint32_t version = 0;
  r.P(version);
  if (version != kDesignSerdeVersion)
    throw Error("design decode: unsupported version " +
                std::to_string(version));
  AcceleratorDesign design;
  Ser(r, design);
  if (r.Remaining() != 0)
    throw Error("design decode: trailing bytes after payload");
  return design;
}

}  // namespace db
