#include "core/memory_map.h"

#include <sstream>

#include "common/error.h"
#include "common/math_util.h"
#include "common/strings.h"
#include "graph/layer_stats.h"

namespace db {

const MemoryRegion* MemoryMap::Find(const std::string& name) const {
  for (const MemoryRegion& r : regions_)
    if (r.name == name) return &r;
  return nullptr;
}

const MemoryRegion& MemoryMap::Blob(const std::string& layer_name) const {
  const MemoryRegion* r = Find("blob:" + layer_name);
  if (r == nullptr)
    DB_THROW("memory map has no blob region for layer '" << layer_name
             << "'");
  return *r;
}

const MemoryRegion& MemoryMap::Weights(
    const std::string& layer_name) const {
  const MemoryRegion* r = Find("weights:" + layer_name);
  if (r == nullptr)
    DB_THROW("memory map has no weight region for layer '" << layer_name
             << "'");
  return *r;
}

bool MemoryMap::HasWeights(const std::string& layer_name) const {
  return Find("weights:" + layer_name) != nullptr;
}

std::string MemoryMap::ToString() const {
  std::ostringstream os;
  os << StrFormat("  %-28s %12s %12s\n", "region", "base", "bytes");
  for (const MemoryRegion& r : regions_)
    os << StrFormat("  %-28s %12lld %12lld\n", r.name.c_str(),
                    static_cast<long long>(r.base),
                    static_cast<long long>(r.bytes));
  os << StrFormat("  total: %lld bytes\n",
                  static_cast<long long>(total_bytes_));
  return os.str();
}

MemoryMap MemoryMap::Build(const Network& net,
                           const AcceleratorConfig& config) {
  MemoryMap map;
  const std::int64_t elem_bytes = config.ElementBytes();
  const std::int64_t align =
      std::max<std::int64_t>(config.memory_port_elems * elem_bytes, 1);
  std::int64_t cursor = 0;

  auto add = [&](const std::string& name, std::int64_t bytes) {
    MemoryRegion r;
    r.name = name;
    r.base = cursor;
    r.bytes = RoundUp(bytes, align);
    cursor += r.bytes;
    map.regions_.push_back(std::move(r));
  };

  // Input blobs first (the host writes them each invocation), then each
  // layer's output blob and weights in propagation order — matching the
  // streaming order of the main AGU.
  for (int id : net.input_ids()) {
    const IrLayer& in = net.layer(id);
    add("blob:" + in.name(),
        in.output_shape.NumElements() * elem_bytes);
  }
  for (const IrLayer* layer : net.ComputeLayers()) {
    add("blob:" + layer->name(),
        layer->output_shape.NumElements() * elem_bytes);
    const LayerStats stats = ComputeLayerStats(*layer);
    if (stats.weight_count > 0)
      add("weights:" + layer->name(), stats.weight_count * elem_bytes);
  }
  map.total_bytes_ = cursor;
  return map;
}

MemoryMap MemoryMap::FromRegions(std::vector<MemoryRegion> regions) {
  MemoryMap map;
  map.regions_ = std::move(regions);
  for (const MemoryRegion& r : map.regions_)
    map.total_bytes_ = std::max(map.total_bytes_, r.end());
  return map;
}

}  // namespace db
