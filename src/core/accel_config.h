// The datapath configuration NN-Gen fixes for one generated accelerator.
//
// This is the contract between the generator (which sizes the datapath
// under the resource constraint), the compiler passes (folding, layout,
// AGU programs, schedule), the RTL builder and the simulator.
#pragma once

#include <cstdint>
#include <string>

#include "common/fixed_point.h"
#include "frontend/constraint.h"

namespace db {

struct AcceleratorConfig {
  std::string network_name;
  FixedFormat format{16, 8};
  double frequency_mhz = 100.0;
  double dram_bandwidth_gbs = 2.0;

  // Synergy-neuron MAC lanes, split by multiplier implementation.
  int dsp_lanes = 0;
  int lut_lanes = 0;
  int TotalLanes() const { return dsp_lanes + lut_lanes; }

  // Secondary function lanes.
  int pooling_lanes = 0;
  int activation_lanes = 0;
  int accumulator_lanes = 0;

  // Optional units, instantiated only when the network needs them
  // (disablable ports/functions, paper §3.2).
  bool has_lrn = false;
  bool has_dropout = false;
  bool has_classifier = false;
  int classifier_k = 1;
  bool has_connection_box = false;  // recurrent / memory layers
  int connection_box_ports = 0;

  // On-chip buffering.
  std::int64_t data_buffer_bytes = 0;
  std::int64_t weight_buffer_bytes = 0;
  /// Elements per buffer row / memory port activation (the d of Method-1).
  std::int64_t memory_port_elems = 8;

  // Approx LUT sizing for the activation unit.
  std::int64_t approx_lut_entries = 256;
  bool approx_lut_interpolate = true;

  /// The budget the configuration was sized against.
  ResourceBudget budget;

  /// Bytes per datapath element.
  std::int64_t ElementBytes() const {
    return (format.total_bits() + 7) / 8;
  }

  /// Clock period in nanoseconds.
  double ClockNs() const { return 1000.0 / frequency_mhz; }

  /// DRAM bytes deliverable per accelerator clock cycle
  /// (dram_bandwidth_gbs is in gigaBYTES per second).
  double DramBytesPerCycle() const {
    return dram_bandwidth_gbs * 1e9 / (frequency_mhz * 1e6);
  }
};

}  // namespace db
