// Dynamic-range profiling for automatic fixed-point format selection.
//
// The paper leaves the datapath bit-width as a designer knob; picking the
// fractional split by hand is error-prone.  This pass runs the float
// reference executor over calibration inputs, records every layer's
// activation range and the weight ranges, and chooses the narrowest
// Q-format (at a given total width) that covers the observed magnitudes
// with headroom — the standard post-training quantisation calibration
// step, expressed as a compiler pass feeding the NN-Gen constraint.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/fixed_point.h"
#include "frontend/constraint.h"
#include "nn/weights.h"

namespace db {

/// Observed magnitudes for one layer.
struct LayerRange {
  std::string layer;
  float max_abs_activation = 0.0f;
  float max_abs_weight = 0.0f;
};

/// Whole-network profile.
struct RangeProfile {
  std::vector<LayerRange> layers;
  float max_abs_activation = 0.0f;
  float max_abs_weight = 0.0f;

  std::string ToString() const;
};

/// Run the float executor over the calibration inputs and collect ranges.
RangeProfile ProfileRanges(const Network& net, const WeightStore& weights,
                           std::span<const Tensor> calibration_inputs);

/// Choose the Q-format: enough integer bits to hold the profile's peak
/// magnitude times `headroom` (accumulator safety margin), all remaining
/// bits fractional.  Throws db::Error if the magnitude cannot fit the
/// requested total width at all.
FixedFormat ChooseFormat(const RangeProfile& profile, int total_bits,
                         double headroom = 2.0);

/// Convenience: copy `base` with bit_width/frac_bits replaced by the
/// profiled choice.
DesignConstraint AutoQuantize(const DesignConstraint& base,
                              const RangeProfile& profile);

}  // namespace db
