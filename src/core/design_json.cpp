#include "core/design_json.h"

#include <sstream>

namespace db {
namespace {

/// Minimal JSON writer: tracks nesting and comma placement.
class JsonWriter {
 public:
  std::string Take() { return os_.str(); }

  void BeginObject(const std::string& key = "") { Open(key, '{'); }
  void EndObject() { Close('}'); }
  void BeginArray(const std::string& key = "") { Open(key, '['); }
  void EndArray() { Close(']'); }

  void Field(const std::string& key, const std::string& value) {
    Prefix(key);
    os_ << '"' << Escape(value) << '"';
  }
  void Field(const std::string& key, std::int64_t value) {
    Prefix(key);
    os_ << value;
  }
  void Field(const std::string& key, int value) {
    Field(key, static_cast<std::int64_t>(value));
  }
  void Field(const std::string& key, double value) {
    Prefix(key);
    os_ << value;
  }
  void Field(const std::string& key, bool value) {
    Prefix(key);
    os_ << (value ? "true" : "false");
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  void Prefix(const std::string& key) {
    if (needs_comma_) os_ << ",";
    os_ << "\n" << std::string(2 * depth_, ' ');
    if (!key.empty()) os_ << '"' << key << "\": ";
    needs_comma_ = true;
  }

  void Open(const std::string& key, char bracket) {
    Prefix(key);
    os_ << bracket;
    ++depth_;
    needs_comma_ = false;
  }

  void Close(char bracket) {
    --depth_;
    os_ << "\n" << std::string(2 * depth_, ' ') << bracket;
    needs_comma_ = true;
  }

  std::ostringstream os_;
  int depth_ = 0;
  bool needs_comma_ = false;
};

}  // namespace

std::string DesignToJson(const AcceleratorDesign& design) {
  JsonWriter w;
  w.BeginObject();

  w.BeginObject("config");
  w.Field("network", design.config.network_name);
  w.Field("format", design.config.format.ToString());
  w.Field("frequency_mhz", design.config.frequency_mhz);
  w.Field("dsp_lanes", design.config.dsp_lanes);
  w.Field("lut_lanes", design.config.lut_lanes);
  w.Field("pooling_lanes", design.config.pooling_lanes);
  w.Field("activation_lanes", design.config.activation_lanes);
  w.Field("memory_port_elems", design.config.memory_port_elems);
  w.Field("data_buffer_bytes", design.config.data_buffer_bytes);
  w.Field("weight_buffer_bytes", design.config.weight_buffer_bytes);
  w.Field("approx_lut_entries", design.config.approx_lut_entries);
  w.Field("approx_lut_interpolate",
          design.config.approx_lut_interpolate);
  w.EndObject();

  w.BeginObject("resources");
  w.Field("dsp", design.resources.total.dsp);
  w.Field("lut", design.resources.total.lut);
  w.Field("ff", design.resources.total.ff);
  w.Field("bram_bytes", design.resources.total.bram_bytes);
  w.EndObject();

  w.BeginArray("folds");
  for (const LayerFold& f : design.fold_plan.folds) {
    w.BeginObject();
    w.Field("layer", f.layer_name);
    w.Field("kind", LayerKindName(f.kind));
    w.Field("pool", LanePoolName(f.pool));
    w.Field("parallel_units", f.parallel_units);
    w.Field("lanes_used", f.lanes_used);
    w.Field("segments", f.segments);
    w.Field("unit_work", f.unit_work);
    w.EndObject();
  }
  w.EndArray();

  w.BeginArray("memory_map");
  for (const MemoryRegion& r : design.memory_map.regions()) {
    w.BeginObject();
    w.Field("name", r.name);
    w.Field("base", r.base);
    w.Field("bytes", r.bytes);
    w.EndObject();
  }
  w.EndArray();

  w.BeginArray("agu_patterns");
  for (const AguPattern& p : design.agu_program.patterns) {
    w.BeginObject();
    w.Field("id", p.id);
    w.Field("role", AguRoleName(p.role));
    w.Field("kind", TransferKindName(p.kind));
    w.Field("event", p.event);
    w.Field("start", p.start_addr);
    w.Field("x_length", p.x_length);
    w.Field("y_length", p.y_length);
    w.Field("stride", p.stride);
    w.Field("offset", p.offset);
    w.Field("beat_bytes", p.beat_bytes);
    w.EndObject();
  }
  w.EndArray();

  w.BeginArray("schedule");
  for (const ScheduleStep& s : design.schedule.steps) {
    w.BeginObject();
    w.Field("index", s.index);
    w.Field("event", s.event);
    w.Field("producer", s.producer_block);
    w.Field("consumer", s.consumer_block);
    w.EndObject();
  }
  w.EndArray();

  w.BeginArray("approx_luts");
  for (const ApproxLutSpec& spec : design.lut_specs) {
    w.BeginObject();
    w.Field("function", LutFunctionName(spec.function));
    w.Field("entries", spec.entries);
    w.Field("interpolate", spec.interpolate);
    w.Field("in_min", spec.in_min);
    w.Field("in_max", spec.in_max);
    w.EndObject();
  }
  w.EndArray();

  w.Field("rtl_top", design.rtl.top);
  w.Field("rtl_modules",
          static_cast<std::int64_t>(design.rtl.modules.size()));
  w.EndObject();
  return w.Take() + "\n";
}

}  // namespace db
