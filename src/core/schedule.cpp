#include "core/schedule.h"

#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace db {

std::string ConsumerBlockFor(const LayerFold& fold) {
  switch (fold.pool) {
    case LanePool::kMac:
      return "synergy_array";
    case LanePool::kPooling:
      return "pooling_unit0";
    case LanePool::kActivation:
      return "activation_unit0";
    case LanePool::kNone:
      return fold.kind == LayerKind::kClassifier ? "classifier0"
                                                 : "connection_box0";
  }
  return "synergy_array";
}

std::string Schedule::ToString() const {
  std::ostringstream os;
  os << StrFormat("  %-5s %-18s %-20s -> %-20s %s\n", "step", "event",
                  "producer", "consumer", "patterns");
  for (const ScheduleStep& s : steps) {
    std::string pats;
    for (std::size_t i = 0; i < s.pattern_ids.size(); ++i) {
      if (i > 0) pats += ",";
      pats += std::to_string(s.pattern_ids[i]);
    }
    os << StrFormat("  %-5d %-18s %-20s -> %-20s [%s]\n", s.index,
                    s.event.c_str(), s.producer_block.c_str(),
                    s.consumer_block.c_str(), pats.c_str());
  }
  return os.str();
}

Schedule BuildSchedule(const Network& net, const FoldPlan& folds,
                       const AguProgram& agu) {
  Schedule schedule;
  std::string previous_consumer = "data_buffer";
  int index = 0;
  for (const IrLayer* layer : net.ComputeLayers()) {
    const LayerFold& fold = folds.ForLayer(layer->id);
    const std::string consumer = ConsumerBlockFor(fold);
    const std::vector<const AguPattern*> patterns =
        agu.ForLayer(layer->id);
    for (std::int64_t seg = 0; seg < fold.segments; ++seg) {
      ScheduleStep step;
      step.index = index++;
      step.layer_id = layer->id;
      step.segment = seg;
      step.event = "layer" + std::to_string(layer->id) + "_fold" +
                   std::to_string(seg);
      step.producer_block = previous_consumer;
      step.consumer_block = consumer;
      // All of the layer's patterns arm on its first segment; later
      // segments run off the already-armed streaming patterns (their
      // y-loop advances per segment).
      if (seg == 0)
        for (const AguPattern* p : patterns)
          step.pattern_ids.push_back(p->id);
      schedule.steps.push_back(std::move(step));
    }
    previous_consumer = consumer;
  }
  DB_CHECK_MSG(!schedule.steps.empty(), "empty schedule");
  return schedule;
}

}  // namespace db
