// Builds the generated accelerator's Verilog design from the block
// instance list: one module definition per unique configuration plus the
// top-level module wiring AGUs, buffers, datapath and coordinator.
#pragma once

#include <vector>

#include "core/accel_config.h"
#include "hwlib/blocks.h"
#include "rtl/verilog.h"

namespace db {

/// Emit the complete design.  The result passes rtl/lint's CheckDesign.
VDesign BuildRtl(const AcceleratorConfig& config,
                 const std::vector<BlockInstance>& blocks);

}  // namespace db
