// Cycle-accurate C++ model of the emitted AGU Verilog (rtl/block_emitters
// EmitAgu).  The model mirrors the RTL's registers and nonblocking-update
// semantics one-to-one, so equivalence tests between this model and the
// compiler's ExpandPattern validate the generated hardware's address
// logic without an HDL simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "core/agu_program.h"

namespace db {

/// Inputs sampled by the AGU at each rising clock edge.
struct AguModelInputs {
  bool rst_n = true;
  bool start_event = false;
  std::int64_t cfg_start = 0;
  std::int64_t cfg_x_len = 1;
  std::int64_t cfg_y_len = 1;
  std::int64_t cfg_stride = 1;
  std::int64_t cfg_offset = 0;
};

/// Registered outputs (visible after the clock edge).
struct AguModelOutputs {
  std::int64_t addr = 0;
  bool addr_valid = false;
  bool pattern_done = false;
};

/// The template AGU's sequential logic, register for register.
class AguRtlModel {
 public:
  /// One rising clock edge; returns the new registered outputs.
  AguModelOutputs Step(const AguModelInputs& in);

  const AguModelOutputs& outputs() const { return out_; }
  bool running() const { return running_; }

 private:
  // Mirrors of the RTL registers.
  std::int64_t x_cnt_ = 0;
  std::int64_t y_cnt_ = 0;
  std::int64_t row_base_ = 0;
  bool running_ = false;
  AguModelOutputs out_;
};

/// Drive the model through one full pattern and collect the address
/// stream exactly as a bus monitor would (addresses seen while
/// addr_valid).  `max_cycles` bounds runaway patterns.
std::vector<std::int64_t> RunAguPattern(const AguPattern& pattern,
                                        std::int64_t max_cycles = 1 << 22);

/// Buffer-reusing variant: clears `addrs` and refills it, keeping its
/// capacity across calls (pattern sweeps in tests and benches).
void RunAguPatternInto(const AguPattern& pattern,
                       std::vector<std::int64_t>& addrs,
                       std::int64_t max_cycles = 1 << 22);

}  // namespace db
