#include "core/memory_image.h"

#include <algorithm>

#include "common/error.h"
#include "core/data_layout.h"

namespace db {

MemoryImage::MemoryImage(std::int64_t bytes) {
  DB_CHECK_MSG(bytes >= 0, "negative image size");
  bytes_.assign(static_cast<std::size_t>(bytes), 0);
}

void MemoryImage::WriteElem(std::int64_t addr, std::int64_t raw,
                            int elem_bytes) {
  DB_CHECK_MSG(addr >= 0 && addr + elem_bytes <= size(),
               "image write out of bounds");
  for (int b = 0; b < elem_bytes; ++b)
    bytes_[static_cast<std::size_t>(addr + b)] =
        static_cast<std::uint8_t>((raw >> (8 * b)) & 0xFF);
}

std::int64_t MemoryImage::ReadElem(std::int64_t addr,
                                   int elem_bytes) const {
  DB_CHECK_MSG(addr >= 0 && addr + elem_bytes <= size(),
               "image read out of bounds");
  std::uint64_t value = 0;
  for (int b = 0; b < elem_bytes; ++b)
    value |= static_cast<std::uint64_t>(
                 bytes_[static_cast<std::size_t>(addr + b)])
             << (8 * b);
  // Sign-extend from the element's top bit.
  const int bits = 8 * elem_bytes;
  const std::uint64_t sign_bit = std::uint64_t{1} << (bits - 1);
  if (value & sign_bit) value |= ~((sign_bit << 1) - 1);
  return static_cast<std::int64_t>(value);
}

void MemoryImage::FlipBit(std::int64_t addr, int bit) {
  DB_CHECK_MSG(addr >= 0 && addr < size(), "bit flip out of bounds");
  DB_CHECK_MSG(bit >= 0 && bit < 8, "bit index must be in [0, 8)");
  bytes_[static_cast<std::size_t>(addr)] ^=
      static_cast<std::uint8_t>(1u << bit);
}

void MemoryImage::CopyRange(const MemoryImage& src, std::int64_t base,
                            std::int64_t bytes) {
  DB_CHECK_MSG(bytes >= 0, "negative copy length");
  DB_CHECK_MSG(base >= 0 && base + bytes <= size() &&
                   base + bytes <= src.size(),
               "copy range out of bounds");
  std::copy(src.bytes_.begin() + base, src.bytes_.begin() + base + bytes,
            bytes_.begin() + base);
}

std::vector<std::int64_t> BlobTileOrder(const Network& net,
                                        const AcceleratorDesign& design,
                                        int producer_layer_id) {
  const IrLayer& producer = net.layer(producer_layer_id);
  // Find the first consumer; its input layout dictates the blob order.
  for (const IrLayer& layer : net.layers()) {
    for (std::size_t i = 0; i < layer.input_ids.size(); ++i) {
      if (layer.input_ids[i] != producer_layer_id) continue;
      const TileSpec& spec =
          design.layout.ForLayer(layer.id).input_layout;
      return TilePermutation(producer.output_shape, spec);
    }
  }
  // Network output: stored linearly.
  std::vector<std::int64_t> identity(
      static_cast<std::size_t>(producer.output_shape.NumElements()));
  for (std::size_t i = 0; i < identity.size(); ++i)
    identity[i] = static_cast<std::int64_t>(i);
  return identity;
}

MemoryImage BuildMemoryImage(const Network& net,
                             const AcceleratorDesign& design,
                             const WeightStore& weights,
                             const std::map<std::string, Tensor>& inputs) {
  const FixedFormat& fmt = design.config.format;
  const int elem_bytes = static_cast<int>(design.config.ElementBytes());
  MemoryImage image(design.memory_map.total_bytes());

  // Weights: natural order — weight matrix, then bias, then recurrent.
  for (const IrLayer* layer : net.ComputeLayers()) {
    if (!design.memory_map.HasWeights(layer->name())) continue;
    const MemoryRegion& region =
        design.memory_map.Weights(layer->name());
    const LayerParams& params = weights.at(layer->name());
    std::int64_t addr = region.base;
    auto emit = [&](const Tensor& t) {
      for (std::int64_t i = 0; i < t.size(); ++i) {
        DB_CHECK_MSG(addr + elem_bytes <= region.end(),
                     "weights overflow their region");
        image.WriteElem(addr, fmt.Quantize(t[i]), elem_bytes);
        addr += elem_bytes;
      }
    };
    emit(params.weights);
    emit(params.bias);
    emit(params.recurrent);
  }

  // Input blobs, permuted into the consumer's tile order.
  for (int id : net.input_ids()) {
    const IrLayer& in_layer = net.layer(id);
    const auto it = inputs.find(in_layer.name());
    if (it == inputs.end())
      DB_THROW("BuildMemoryImage: missing input '" << in_layer.name()
               << "'");
    StoreBlob(image, net, design, in_layer.name(), it->second);
  }
  return image;
}

void StoreBlob(MemoryImage& image, const AcceleratorDesign& design,
               const MemoryRegion& region,
               const std::vector<std::int64_t>& order,
               const Tensor& value) {
  const FixedFormat& fmt = design.config.format;
  const int elem_bytes = static_cast<int>(design.config.ElementBytes());
  DB_CHECK_MSG(static_cast<std::int64_t>(order.size()) == value.size(),
               "blob size mismatch");
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const std::int64_t addr =
        region.base + static_cast<std::int64_t>(pos) * elem_bytes;
    DB_CHECK_MSG(addr + elem_bytes <= region.end(),
                 "blob overflows its region");
    image.WriteElem(addr, fmt.Quantize(value[order[pos]]), elem_bytes);
  }
}

void StoreBlob(MemoryImage& image, const Network& net,
               const AcceleratorDesign& design,
               const std::string& layer_name, const Tensor& value) {
  const MemoryRegion& region = design.memory_map.Blob(layer_name);
  int layer_id = -1;
  for (const IrLayer& layer : net.layers())
    if (layer.name() == layer_name) layer_id = layer.id;
  DB_CHECK_MSG(layer_id >= 0, "unknown blob layer");
  StoreBlob(image, design, region, BlobTileOrder(net, design, layer_id),
            value);
}

Tensor ExtractBlob(const MemoryImage& image,
                   const AcceleratorDesign& design,
                   const MemoryRegion& region,
                   const std::vector<std::int64_t>& order,
                   const BlobShape& shape) {
  const FixedFormat& fmt = design.config.format;
  const int elem_bytes = static_cast<int>(design.config.ElementBytes());
  Tensor out(Shape{shape.channels, shape.height, shape.width});
  DB_CHECK_MSG(static_cast<std::int64_t>(order.size()) == out.size(),
               "blob size mismatch");
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const std::int64_t addr =
        region.base + static_cast<std::int64_t>(pos) * elem_bytes;
    out[order[pos]] = static_cast<float>(
        fmt.Dequantize(image.ReadElem(addr, elem_bytes)));
  }
  return out;
}

Tensor ExtractBlob(const MemoryImage& image, const Network& net,
                   const AcceleratorDesign& design,
                   const std::string& layer_name) {
  int layer_id = -1;
  for (const IrLayer& layer : net.layers())
    if (layer.name() == layer_name) layer_id = layer.id;
  DB_CHECK_MSG(layer_id >= 0, "unknown blob layer");
  return ExtractBlob(image, design,
                     design.memory_map.Blob(layer_name),
                     BlobTileOrder(net, design, layer_id),
                     net.layer(layer_id).output_shape);
}

}  // namespace db
