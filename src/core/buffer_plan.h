// On-chip buffer allocation: ping/pong tile slots per layer.
//
// The data-driven execution of §3.3 overlaps segment i+1's fetch with
// segment i's compute, which requires two live tile slots in the data
// buffer plus an output staging slot for the write-back drain.  This pass
// assigns concrete buffer addresses per layer and proves the capacity
// claim the performance simulator's double-buffering model relies on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/accel_config.h"
#include "core/data_layout.h"
#include "core/folding.h"
#include "graph/network.h"

namespace db {

/// One contiguous slot inside the on-chip data buffer.
struct BufferSlot {
  std::string name;
  std::int64_t base = 0;
  std::int64_t bytes = 0;

  std::int64_t end() const { return base + bytes; }
};

/// Slot assignment for one layer's fold execution.
struct BufferPlanEntry {
  int layer_id = 0;
  std::string layer_name;
  /// Bytes of one buffered input chunk (a segment's working set, capped
  /// by the buffer's ping/pong half).
  std::int64_t tile_bytes = 0;
  BufferSlot ping;
  BufferSlot pong;
  BufferSlot out_stage;
  /// True when the layer's whole input fits one slot (no DRAM re-streaming).
  bool input_resident = false;
};

/// The whole allocation.
struct BufferPlan {
  std::int64_t data_buffer_bytes = 0;
  std::vector<BufferPlanEntry> entries;

  const BufferPlanEntry& ForLayer(int layer_id) const;
  std::string ToString() const;
};

/// Allocate slots for every compute layer.  Throws db::Error when even a
/// single port beat cannot fit the configured buffer (the generator's
/// minimum-buffer invariant).
BufferPlan PlanBuffers(const Network& net, const AcceleratorConfig& config,
                       const FoldPlan& folds,
                       const DataLayoutPlan& layout);

}  // namespace db
