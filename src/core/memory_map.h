// Off-chip memory map of a generated accelerator.
//
// The compiler assigns every network blob (input, per-layer output) and
// every layer's weight array a region of the board DRAM.  The ARM host
// writes inputs and weights into these regions in the compiler-directed
// tile order; the main AGU's patterns address them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/accel_config.h"
#include "graph/network.h"

namespace db {

/// One contiguous DRAM region.
struct MemoryRegion {
  std::string name;   // "blob:<layer>" or "weights:<layer>"
  std::int64_t base = 0;
  std::int64_t bytes = 0;

  std::int64_t end() const { return base + bytes; }
};

/// The full map.  Regions are non-overlapping and aligned to the memory
/// port width.
class MemoryMap {
 public:
  /// Region holding the output blob of `layer_name` (for input layers,
  /// the network input data).
  const MemoryRegion& Blob(const std::string& layer_name) const;
  /// Region holding the weights (incl. bias, recurrent matrix, LUT
  /// tables) of `layer_name`.
  const MemoryRegion& Weights(const std::string& layer_name) const;

  bool HasWeights(const std::string& layer_name) const;

  const std::vector<MemoryRegion>& regions() const { return regions_; }
  std::int64_t total_bytes() const { return total_bytes_; }

  std::string ToString() const;

  /// Lay out every blob and weight array of the network.
  static MemoryMap Build(const Network& net,
                         const AcceleratorConfig& config);

  /// Reassemble a map from serialised regions (design-cache decode
  /// path).  The regions must be the contiguous, in-order output of a
  /// prior Build(); total size is recomputed from the last region's end.
  static MemoryMap FromRegions(std::vector<MemoryRegion> regions);

 private:
  const MemoryRegion* Find(const std::string& name) const;

  std::vector<MemoryRegion> regions_;
  std::int64_t total_bytes_ = 0;
};

}  // namespace db
