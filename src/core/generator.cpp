#include "core/generator.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "analysis/rtl_verifier.h"
#include "analysis/verifier.h"
#include "common/error.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/strings.h"
#include "core/rtl_builder.h"
#include "graph/layer_stats.h"
#include "hwlib/device.h"
#include "rtl/lint.h"

namespace db {
namespace {

/// Lane ceiling per budget level — the generator's aggressiveness knob.
/// Calibrated so a high-budget (DB-L) Alexnet lands near the paper's
/// ~20 ms while the medium budget (DB) stays ~3-4x behind it.
std::int64_t LaneCeiling(BudgetLevel level) {
  switch (level) {
    case BudgetLevel::kLow: return 64;
    case BudgetLevel::kMedium: return 128;
    case BudgetLevel::kHigh: return 448;
  }
  return 128;
}

std::int64_t PortElems(BudgetLevel level) {
  switch (level) {
    case BudgetLevel::kLow: return 8;
    case BudgetLevel::kMedium: return 16;  // the Fig. 7 example width
    case BudgetLevel::kHigh: return 32;
  }
  return 16;
}

/// LUT cost of one fabric-multiplier MAC lane at the given width
/// (mirrors hwlib/resource_model's synergy-neuron cost).
std::int64_t LutLaneCost(int bit_width) {
  BlockConfig c;
  c.type = BlockType::kSynergyNeuron;
  c.bit_width = bit_width;
  c.lanes = 1;
  c.use_dsp = false;
  return BlockCost(c).lut;
}

std::int64_t DspLaneLutCost(int bit_width) {
  BlockConfig c;
  c.type = BlockType::kSynergyNeuron;
  c.bit_width = bit_width;
  c.lanes = 1;
  c.use_dsp = true;
  return BlockCost(c).lut;
}

struct NetworkNeeds {
  bool mac = false;        // conv / fc / recurrent / lrn / associative
  bool pooling = false;
  bool activation = false;  // relu/sigmoid/tanh/softmax/dropout
  bool lrn = false;
  bool dropout = false;
  bool classifier = false;
  std::int64_t classifier_k = 1;
  bool recurrence = false;
  bool concat = false;
  /// Max independent output units across MAC layers (lane demand cap).
  std::int64_t max_mac_units = 0;
  /// Max MAC work in any single layer (tiny-model lane cap input).
  std::int64_t total_macs = 0;
  /// Largest layer input working set / weight array (buffer sizing).
  std::int64_t max_input_bytes = 0;
  std::int64_t max_weight_bytes = 0;
};

NetworkNeeds AnalyzeNetwork(const Network& net, std::int64_t elem_bytes) {
  NetworkNeeds needs;
  for (const IrLayer* layer : net.ComputeLayers()) {
    const LayerStats stats = ComputeLayerStats(*layer);
    needs.total_macs += stats.macs;
    needs.max_input_bytes =
        std::max(needs.max_input_bytes, stats.input_elems * elem_bytes);
    needs.max_weight_bytes =
        std::max(needs.max_weight_bytes, stats.weight_count * elem_bytes);
    switch (layer->kind()) {
      case LayerKind::kConvolution:
      case LayerKind::kInnerProduct:
      case LayerKind::kRecurrent:
      case LayerKind::kLstm:
      case LayerKind::kAssociative:
        needs.mac = true;
        needs.max_mac_units = std::max(
            needs.max_mac_units, layer->output_shape.NumElements());
        break;
      case LayerKind::kLrn:
        needs.mac = true;
        needs.lrn = true;
        needs.activation = true;
        break;
      case LayerKind::kPooling:
        needs.pooling = true;
        break;
      case LayerKind::kRelu:
      case LayerKind::kSigmoid:
      case LayerKind::kTanh:
      case LayerKind::kSoftmax:
        needs.activation = true;
        break;
      case LayerKind::kDropout:
        needs.dropout = true;
        needs.activation = true;
        break;
      case LayerKind::kClassifier:
        needs.classifier = true;
        needs.classifier_k = std::max(needs.classifier_k,
                                      layer->def.classifier->top_k);
        break;
      case LayerKind::kConcat:
        needs.concat = true;
        break;
      case LayerKind::kInput:
        break;
    }
  }
  needs.recurrence = net.HasRecurrence();
  return needs;
}

}  // namespace

std::vector<LutFunction> RequiredLutFunctions(const Network& net) {
  std::set<LutFunction> fns;
  for (const IrLayer* layer : net.ComputeLayers()) {
    switch (layer->kind()) {
      case LayerKind::kSigmoid:
        fns.insert(LutFunction::kSigmoid);
        break;
      case LayerKind::kTanh:
        fns.insert(LutFunction::kTanh);
        break;
      case LayerKind::kSoftmax:
        fns.insert(LutFunction::kExp);
        fns.insert(LutFunction::kRecip);
        break;
      case LayerKind::kLrn:
        fns.insert(LutFunction::kLrnPow);
        break;
      case LayerKind::kLstm:
        fns.insert(LutFunction::kSigmoid);
        fns.insert(LutFunction::kTanh);
        break;
      case LayerKind::kRecurrent:
        switch (layer->def.recurrent->activation) {
          case RecurrentActivation::kTanh:
            fns.insert(LutFunction::kTanh);
            break;
          case RecurrentActivation::kSigmoid:
            fns.insert(LutFunction::kSigmoid);
            break;
          case RecurrentActivation::kNone:
            break;
        }
        break;
      default:
        break;
    }
  }
  return {fns.begin(), fns.end()};
}

ApproxLutSpec DefaultLutSpec(LutFunction fn, const AcceleratorConfig& config) {
  ApproxLutSpec spec;
  spec.function = fn;
  spec.entries = config.approx_lut_entries;
  spec.interpolate = config.approx_lut_interpolate;
  spec.format = config.format;
  if (fn == LutFunction::kExp) {
    spec.in_min = -16.0;
    spec.in_max = 0.0;  // softmax uses exp(x - max) <= 1
  } else if (fn == LutFunction::kRecip || fn == LutFunction::kLrnPow) {
    spec.in_min = 1.0 / 128.0;
    spec.in_max = config.format.value_max();
  }
  return spec;
}

AcceleratorConfig SizeDatapath(const Network& net,
                               const DesignConstraint& constraint) {
  AcceleratorConfig config;
  config.network_name = net.name();
  config.format = FixedFormat(constraint.bit_width, constraint.frac_bits);
  config.frequency_mhz = constraint.frequency_mhz;
  config.dram_bandwidth_gbs =
      std::min(constraint.dram_bandwidth_gbs,
               DeviceCatalog(constraint.device).dram_bandwidth_gbs);
  config.budget = ResolveBudget(constraint);
  config.approx_lut_entries = constraint.approx_lut_entries;
  config.approx_lut_interpolate = constraint.approx_lut_interpolate;
  config.memory_port_elems = PortElems(constraint.budget);

  const NetworkNeeds needs =
      AnalyzeNetwork(net, config.ElementBytes());

  // ---- MAC lane allocation ----
  if (needs.mac) {
    // Demand: no more lanes than the widest layer exposes, and no more
    // than the budget level's ceiling.  At LOW/MEDIUM budgets the
    // generator also right-sizes to the total work (a 1k-MAC model should
    // not occupy hundreds of multipliers); the HIGH budget (DB-L) trusts
    // the designer's ask and unfolds small models too — that is the
    // performance provision the paper's DB-L scheme buys.
    std::int64_t demand = needs.max_mac_units;
    if (constraint.budget != BudgetLevel::kHigh)
      demand = std::min(
          demand,
          std::max<std::int64_t>(1, CeilDiv(needs.total_macs, 1000)));
    demand = std::min(demand, LaneCeiling(constraint.budget));
    demand = std::max<std::int64_t>(demand, 1);

    // Reserve roughly a third of LUTs/FFs for control, AGUs, buffers and
    // the secondary units before spending the rest on fabric multipliers.
    // DSP slices are shared with the SoC's other masters, so NN-Gen only
    // claims a fraction of the budget's DSPs and builds the remaining
    // lanes as fabric multipliers (Table 3: large models pair a handful
    // of DSPs with tens of thousands of LUTs).
    const std::int64_t dsp_avail = std::max<std::int64_t>(
        std::max<std::int64_t>(config.budget.dsp / 8, 2) -
            (needs.lrn ? 1 : 0),
        0);
    config.dsp_lanes = static_cast<int>(std::min(demand, dsp_avail));
    const std::int64_t lut_for_lanes =
        config.budget.lut * 2 / 3 -
        config.dsp_lanes * DspLaneLutCost(config.format.total_bits());
    const std::int64_t lut_lane_cost =
        LutLaneCost(config.format.total_bits());
    const std::int64_t remaining_demand = demand - config.dsp_lanes;
    config.lut_lanes = static_cast<int>(std::clamp<std::int64_t>(
        std::min(remaining_demand, lut_for_lanes / lut_lane_cost), 0,
        demand));
    if (config.TotalLanes() == 0)
      DB_THROW("constraint too small: no MAC lane fits budget "
               << config.budget.ToString());
    config.accumulator_lanes = config.TotalLanes();
  }

  if (needs.pooling)
    config.pooling_lanes =
        static_cast<int>(std::min<std::int64_t>(config.memory_port_elems,
                                                 16));
  if (needs.activation || needs.mac)
    config.activation_lanes =
        static_cast<int>(std::min<std::int64_t>(config.memory_port_elems,
                                                 16));
  config.has_lrn = needs.lrn;
  config.has_dropout = needs.dropout;
  config.has_classifier = needs.classifier;
  config.classifier_k = static_cast<int>(needs.classifier_k);
  config.has_connection_box = needs.recurrence || needs.concat;
  if (config.has_connection_box)
    config.connection_box_ports = static_cast<int>(
        std::clamp<std::int64_t>(config.memory_port_elems, 2, 32));

  // ---- buffers ----
  const std::int64_t bram = config.budget.bram_bytes;
  const std::int64_t min_buf =
      config.memory_port_elems * config.ElementBytes() * 16;
  config.data_buffer_bytes = std::clamp<std::int64_t>(
      needs.max_input_bytes, min_buf, bram * 3 / 5);
  config.weight_buffer_bytes = std::clamp<std::int64_t>(
      needs.max_weight_bytes, min_buf,
      std::max<std::int64_t>(bram - config.data_buffer_bytes -
                                 config.approx_lut_entries * 4,
                             min_buf));
  return config;
}

namespace {

std::vector<BlockInstance> PickBlocks(const AcceleratorConfig& config,
                                      const Network& net,
                                      const AguProgram& agu,
                                      const FoldPlan& folds,
                                      std::vector<ApproxLutSpec>& lut_specs) {
  std::vector<BlockInstance> blocks;
  const int w = config.format.total_bits();
  auto add = [&](const std::string& name, BlockConfig cfg) {
    cfg.bit_width = w;
    blocks.push_back({name, cfg});
  };

  if (config.TotalLanes() > 0) {
    // The primary lane array is always instantiated as "synergy_array"
    // (the top-level wiring keys on that name); a mixed DSP+fabric
    // allocation adds a secondary bank.
    if (config.dsp_lanes > 0) {
      BlockConfig c;
      c.type = BlockType::kSynergyNeuron;
      c.lanes = config.dsp_lanes;
      c.use_dsp = true;
      add("synergy_array", c);
    }
    if (config.lut_lanes > 0) {
      BlockConfig c;
      c.type = BlockType::kSynergyNeuron;
      c.lanes = config.lut_lanes;
      c.use_dsp = false;
      add(config.dsp_lanes > 0 ? "synergy_array_b" : "synergy_array", c);
    }
    BlockConfig acc;
    acc.type = BlockType::kAccumulator;
    acc.lanes = config.accumulator_lanes;
    add("accumulator0", acc);
  }
  if (config.pooling_lanes > 0) {
    BlockConfig c;
    c.type = BlockType::kPoolingUnit;
    c.lanes = config.pooling_lanes;
    add("pooling_unit0", c);
  }
  if (config.activation_lanes > 0) {
    BlockConfig c;
    c.type = BlockType::kActivationUnit;
    c.lanes = config.activation_lanes;
    add("activation_unit0", c);
  }
  // One Approx LUT per approximated function in the model.
  for (LutFunction fn : RequiredLutFunctions(net)) {
    const ApproxLutSpec spec = DefaultLutSpec(fn, config);
    lut_specs.push_back(spec);
    BlockConfig c;
    c.type = BlockType::kApproxLut;
    c.depth = spec.entries;
    c.interpolate = spec.interpolate;
    add("approx_lut_" + LutFunctionName(fn), c);

  }
  if (config.has_lrn) {
    BlockConfig c;
    c.type = BlockType::kLrnUnit;
    c.lanes = 1;
    add("lrn_unit0", c);
  }
  if (config.has_dropout) {
    BlockConfig c;
    c.type = BlockType::kDropoutUnit;
    c.lanes = 1;
    add("dropout_unit0", c);
  }
  if (config.has_classifier) {
    BlockConfig c;
    c.type = BlockType::kClassifier;
    c.lanes = std::max(config.classifier_k, 1);
    add("classifier0", c);
  }
  if (config.has_connection_box) {
    BlockConfig c;
    c.type = BlockType::kConnectionBox;
    c.ports = config.connection_box_ports;
    add("connection_box0", c);
  }

  // AGUs: reduced from the template to the pattern counts the compiler
  // emitted (paper: "the final AGU ... is reduced from this template").
  for (AguRole role : {AguRole::kMain, AguRole::kData, AguRole::kWeight}) {
    const int patterns = agu.CountFor(role);
    if (patterns == 0 && role == AguRole::kWeight) continue;
    BlockConfig c;
    c.type = BlockType::kAgu;
    c.agu_role = role;
    c.patterns = std::max(patterns, 1);
    add("agu_" + AguRoleName(role), c);
  }
  {
    // The coordinator FSM holds one state per temporal fold (layer); the
    // spatial fold segments inside a layer are iterated by the AGUs'
    // y-counters, so FSM size does not scale with segment count.
    BlockConfig c;
    c.type = BlockType::kCoordinator;
    c.fold_events =
        static_cast<int>(std::max<std::int64_t>(folds.TemporalFolds(), 1));
    add("coordinator0", c);
  }
  {
    BlockConfig c;
    c.type = BlockType::kBufferBank;
    c.lanes = static_cast<int>(config.memory_port_elems);
    c.depth = config.data_buffer_bytes;
    add("buffer_data", c);
    c.depth = config.weight_buffer_bytes;
    add("buffer_weight", c);
  }
  return blocks;
}

/// One full run of the compiler passes for the design's CURRENT config:
/// folding through block picking + resource tally.  `phase` wraps each
/// pass — tracer spans in GenerateAccelerator, a no-op for the DSE
/// explorer's fixed-config candidates.
template <typename Phase>
void CompilePasses(const Network& net, AcceleratorDesign& design,
                   Phase&& phase) {
  design.lut_specs.clear();
  phase("folding",
        [&] { design.fold_plan = PlanFolding(net, design.config); });
  phase("data layout", [&] {
    design.layout = PlanDataLayout(net, design.config.memory_port_elems);
  });
  phase("memory map", [&] {
    design.memory_map = MemoryMap::Build(net, design.config);
  });
  phase("agu program", [&] {
    design.agu_program =
        BuildAguProgram(net, design.config, design.fold_plan,
                        design.layout, design.memory_map);
  });
  phase("schedule", [&] {
    design.schedule =
        BuildSchedule(net, design.fold_plan, design.agu_program);
  });
  phase("buffer plan", [&] {
    design.buffer_plan = PlanBuffers(net, design.config, design.fold_plan,
                                     design.layout);
  });
  phase("connection plan", [&] {
    design.connection_plan = PlanConnections(net, design.schedule);
  });
  phase("pick blocks", [&] {
    design.blocks = PickBlocks(design.config, net, design.agu_program,
                               design.fold_plan, design.lut_specs);
    design.resources = TallyResources(design.blocks);
  });
}

}  // namespace

AcceleratorDesign CompileForConfig(const Network& net,
                                   const AcceleratorConfig& config) {
  AcceleratorDesign design;
  design.config = config;
  CompilePasses(net, design,
                [](const char*, auto&& body) { body(); });
  return design;
}

namespace {

/// The generator's post-pass gate: run the static verifier, publish
/// warning counts, and refuse to return an illegal design.
void VerifyGate(const Network& net, const AcceleratorDesign& design,
                obs::MetricsRegistry* metrics) {
  const analysis::AnalysisReport report = analysis::VerifyDesign(net, design);
  if (metrics != nullptr) {
    metrics->AddCounter("analysis.designs_verified");
    if (report.WarningCount() > 0)
      metrics->AddCounter("analysis.warnings", report.WarningCount());
    for (const analysis::Diagnostic& d : report.diagnostics())
      if (d.severity == analysis::Severity::kWarning)
        metrics->AddCounter("analysis.rule." + d.rule);
  }
  for (const analysis::Diagnostic& d : report.diagnostics()) {
    if (d.severity == analysis::Severity::kWarning) {
      DB_LOG(kWarn) << "verify[" << d.rule << "] " << d.location << ": "
                    << d.message;
    }
  }
  if (!report.ok())
    DB_THROW("design verification failed for '" << net.name() << "':\n"
             << report.ToText());
}

/// The RTL counterpart: elaborate the emitted design and run the rtl.*
/// netlist passes before the hardware can leave the generator.
void RtlVerifyGate(const Network& net, const AcceleratorDesign& design,
                   obs::MetricsRegistry* metrics) {
  const analysis::AnalysisReport report = analysis::VerifyRtl(design.rtl);
  if (metrics != nullptr) {
    metrics->AddCounter("analysis.rtl.designs_verified");
    if (report.WarningCount() > 0)
      metrics->AddCounter("analysis.rtl.warnings", report.WarningCount());
    for (const analysis::Diagnostic& d : report.diagnostics())
      if (d.severity == analysis::Severity::kWarning)
        metrics->AddCounter("analysis.rtl.rule." + d.rule);
  }
  for (const analysis::Diagnostic& d : report.diagnostics()) {
    if (d.severity == analysis::Severity::kWarning) {
      DB_LOG(kWarn) << "rtl-verify[" << d.rule << "] " << d.location
                    << ": " << d.message;
    }
  }
  if (!report.ok())
    DB_THROW("RTL verification failed for '" << net.name() << "':\n"
             << report.ToText());
}

}  // namespace

AcceleratorDesign GenerateAccelerator(const Network& net,
                                      const DesignConstraint& constraint,
                                      obs::Tracer* tracer,
                                      obs::MetricsRegistry* metrics) {
  // Toolchain spans tick an ordinal clock (one tick per phase) starting
  // where the caller's own toolchain spans (parse, constraint) ended —
  // deterministic, unlike wall time.
  obs::TickClock clock(tracer != nullptr ? tracer->TrackEnd("toolchain")
                                         : 0);
  auto phase = [&](const char* name, int attempt, auto&& body) {
    obs::ScopedSpan span(tracer, clock, "toolchain", name, "toolchain");
    if (attempt > 0) span.AddArg("attempt", std::to_string(attempt));
    body();
    clock.Advance(1);
  };

  AcceleratorDesign design;
  phase("size datapath", 0,
        [&] { design.config = SizeDatapath(net, constraint); });

  // Iteratively compile and tally; if the realised design exceeds the
  // budget (LUT-multiplier lanes are the dominant knob), fold harder by
  // halving the lane allocation and recompiling.
  for (int attempt = 0;; ++attempt) {
    CompilePasses(net, design, [&](const char* name, auto&& body) {
      phase(name, attempt, body);
    });
    if (design.config.budget.Fits(design.resources.total)) break;
    if (attempt >= 24)
      DB_THROW("network '" << net.name() << "' does not fit budget "
               << design.config.budget.ToString() << " even at minimum "
               "datapath width (uses "
               << design.resources.total.ToString() << ")");

    const ResourceBudget& used = design.resources.total;
    const std::int64_t min_buf = design.config.memory_port_elems *
                                 design.config.ElementBytes() * 16;
    const bool bram_over =
        used.bram_bytes > design.config.budget.bram_bytes;
    const bool logic_over = used.lut > design.config.budget.lut ||
                            used.ff > design.config.budget.ff ||
                            used.dsp > design.config.budget.dsp;
    bool shrunk = false;
    if (bram_over && design.config.data_buffer_bytes +
                             design.config.weight_buffer_bytes >
                         2 * min_buf) {
      // On-chip memory pressure: shrink buffers toward the port minimum
      // before sacrificing compute lanes.
      design.config.data_buffer_bytes = std::max<std::int64_t>(
          design.config.data_buffer_bytes / 2, min_buf);
      design.config.weight_buffer_bytes = std::max<std::int64_t>(
          design.config.weight_buffer_bytes / 2, min_buf);
      shrunk = true;
    }
    if (logic_over || !shrunk) {
      if (design.config.TotalLanes() <= 1)
        DB_THROW("network '" << net.name() << "' does not fit budget "
                 << design.config.budget.ToString()
                 << " even at minimum datapath width (uses "
                 << design.resources.total.ToString() << ")");
      if (design.config.lut_lanes > 0)
        design.config.lut_lanes /= 2;
      else
        design.config.dsp_lanes = std::max(design.config.dsp_lanes / 2, 1);
      design.config.accumulator_lanes = design.config.TotalLanes();
    }
  }
  phase("rtl emit", 0,
        [&] { design.rtl = BuildRtl(design.config, design.blocks); });
  phase("lint", 0, [&] { CheckDesignOrThrow(design.rtl); });
  phase("rtl verify", 0, [&] { RtlVerifyGate(net, design, metrics); });
  phase("verify", 0, [&] { VerifyGate(net, design, metrics); });

  DB_LOG(kInfo) << "generated accelerator for '" << net.name() << "': "
                << design.config.TotalLanes() << " lanes, "
                << design.schedule.TotalSteps() << " schedule steps, "
                << design.resources.total.ToString();
  return design;
}

AcceleratorDesign GenerateFromScripts(
    const std::string& model_prototxt,
    const std::string& constraint_prototxt,
    obs::Tracer* tracer,
    obs::MetricsRegistry* metrics) {
  obs::TickClock clock(tracer != nullptr ? tracer->TrackEnd("toolchain")
                                         : 0);
  NetworkDef def;
  {
    obs::ScopedSpan span(tracer, clock, "toolchain", "parse model",
                         "toolchain");
    def = ParseNetworkDef(model_prototxt);
    clock.Advance(1);
  }
  const Network net = Network::Build(def);
  DesignConstraint constraint;
  {
    obs::ScopedSpan span(tracer, clock, "toolchain", "parse constraint",
                         "toolchain");
    constraint = ParseConstraint(constraint_prototxt);
    clock.Advance(1);
  }
  return GenerateAccelerator(net, constraint, tracer, metrics);
}

SharedAccelerator GenerateSharedAccelerator(
    const std::vector<const Network*>& nets,
    const DesignConstraint& constraint) {
  if (nets.empty()) DB_THROW("GenerateSharedAccelerator needs >= 1 model");

  SharedAccelerator shared;
  // Union of the per-model datapath needs: max of every sizing axis.
  shared.config = SizeDatapath(*nets.front(), constraint);
  shared.config.network_name = "shared";
  for (std::size_t i = 1; i < nets.size(); ++i) {
    const AcceleratorConfig other = SizeDatapath(*nets[i], constraint);
    shared.config.dsp_lanes =
        std::max(shared.config.dsp_lanes, other.dsp_lanes);
    shared.config.lut_lanes =
        std::max(shared.config.lut_lanes, other.lut_lanes);
    shared.config.accumulator_lanes = shared.config.TotalLanes();
    shared.config.pooling_lanes =
        std::max(shared.config.pooling_lanes, other.pooling_lanes);
    shared.config.activation_lanes =
        std::max(shared.config.activation_lanes, other.activation_lanes);
    shared.config.has_lrn |= other.has_lrn;
    shared.config.has_dropout |= other.has_dropout;
    shared.config.has_classifier |= other.has_classifier;
    shared.config.classifier_k =
        std::max(shared.config.classifier_k, other.classifier_k);
    shared.config.has_connection_box |= other.has_connection_box;
    shared.config.connection_box_ports = std::max(
        shared.config.connection_box_ports, other.connection_box_ports);
    shared.config.data_buffer_bytes = std::max(
        shared.config.data_buffer_bytes, other.data_buffer_bytes);
    shared.config.weight_buffer_bytes = std::max(
        shared.config.weight_buffer_bytes, other.weight_buffer_bytes);
    shared.config.memory_port_elems = std::max(
        shared.config.memory_port_elems, other.memory_port_elems);
  }

  // Compile every model's software bundle against the shared datapath.
  for (const Network* net : nets) {
    AcceleratorDesign design;
    design.config = shared.config;
    design.fold_plan = PlanFolding(*net, design.config);
    design.layout = PlanDataLayout(*net, design.config.memory_port_elems);
    design.memory_map = MemoryMap::Build(*net, design.config);
    design.agu_program =
        BuildAguProgram(*net, design.config, design.fold_plan,
                        design.layout, design.memory_map);
    design.schedule =
        BuildSchedule(*net, design.fold_plan, design.agu_program);
    design.buffer_plan = PlanBuffers(*net, design.config,
                                     design.fold_plan, design.layout);
    design.connection_plan = PlanConnections(*net, design.schedule);
    shared.designs.push_back(std::move(design));
  }

  // The hardware is generated once, with the union of the LUT functions.
  std::set<LutFunction> fn_union;
  for (const Network* net : nets)
    for (LutFunction fn : RequiredLutFunctions(*net)) fn_union.insert(fn);
  // Blocks come from the first compiled design's AGU/fold structure but
  // LUT specs must cover the union — synthesise them against a network
  // that needs all of them by merging spec lists manually.
  AcceleratorDesign& proto = shared.designs.front();
  proto.lut_specs.clear();
  proto.blocks = PickBlocks(proto.config, *nets.front(),
                            proto.agu_program, proto.fold_plan,
                            proto.lut_specs);
  // The shared control hardware must hold every model's state, not just
  // the first model's: size the AGU pattern stores and the coordinator
  // FSM to the union across the compiled designs.
  bool has_weight_agu = false;
  for (BlockInstance& block : proto.blocks) {
    if (block.config.type == BlockType::kAgu) {
      if (block.config.agu_role == AguRole::kWeight) has_weight_agu = true;
      int need = block.config.patterns;
      for (const AcceleratorDesign& d : shared.designs)
        need = std::max(need,
                        d.agu_program.CountFor(block.config.agu_role));
      block.config.patterns = need;
    }
    if (block.config.type == BlockType::kCoordinator) {
      std::int64_t need = block.config.fold_events;
      for (const AcceleratorDesign& d : shared.designs)
        need = std::max(need, d.fold_plan.TemporalFolds());
      block.config.fold_events = static_cast<int>(need);
    }
  }
  if (!has_weight_agu) {
    int weight_patterns = 0;
    for (const AcceleratorDesign& d : shared.designs)
      weight_patterns =
          std::max(weight_patterns, d.agu_program.CountFor(AguRole::kWeight));
    if (weight_patterns > 0) {
      BlockConfig c;
      c.type = BlockType::kAgu;
      c.bit_width = proto.config.format.total_bits();
      c.agu_role = AguRole::kWeight;
      c.patterns = weight_patterns;
      proto.blocks.push_back({"agu_" + AguRoleName(AguRole::kWeight), c});
    }
  }
  // Append LUT blocks for functions the first model alone did not need.
  std::set<LutFunction> have;
  for (const ApproxLutSpec& spec : proto.lut_specs)
    have.insert(spec.function);
  for (LutFunction fn : fn_union) {
    if (have.count(fn)) continue;
    const ApproxLutSpec spec = DefaultLutSpec(fn, proto.config);
    proto.lut_specs.push_back(spec);
    BlockConfig c;
    c.type = BlockType::kApproxLut;
    c.bit_width = proto.config.format.total_bits();
    c.depth = spec.entries;
    c.interpolate = spec.interpolate;
    proto.blocks.push_back({"approx_lut_" + LutFunctionName(fn), c});
  }
  proto.resources = TallyResources(proto.blocks);
  if (!proto.config.budget.Fits(proto.resources.total))
    DB_THROW("shared accelerator exceeds the budget "
             << proto.config.budget.ToString() << " (uses "
             << proto.resources.total.ToString() << ")");
  proto.rtl = BuildRtl(proto.config, proto.blocks);
  CheckDesignOrThrow(proto.rtl);
  analysis::VerifyRtlOrThrow(proto.rtl);

  // Propagate the common hardware artifacts to every model's view.
  for (std::size_t i = 1; i < shared.designs.size(); ++i) {
    shared.designs[i].lut_specs = proto.lut_specs;
    shared.designs[i].blocks = proto.blocks;
    shared.designs[i].resources = proto.resources;
    shared.designs[i].rtl = proto.rtl;
  }
  // Gate every model's compiled view, same as the single-model path.
  for (std::size_t i = 0; i < shared.designs.size(); ++i)
    analysis::VerifyDesignOrThrow(*nets[i], shared.designs[i]);
  return shared;
}

std::string AcceleratorDesign::Report() const {
  std::ostringstream os;
  os << "=== DeepBurning accelerator design: " << config.network_name
     << " ===\n";
  os << StrFormat(
      "datapath: %s, %d DSP + %d LUT MAC lanes, %d pool, %d act lanes\n",
      config.format.ToString().c_str(), config.dsp_lanes, config.lut_lanes,
      config.pooling_lanes, config.activation_lanes);
  os << StrFormat(
      "buffers: data %lld B, weight %lld B, port %lld elems, "
      "freq %.0f MHz\n",
      static_cast<long long>(config.data_buffer_bytes),
      static_cast<long long>(config.weight_buffer_bytes),
      static_cast<long long>(config.memory_port_elems),
      config.frequency_mhz);
  os << "-- fold plan --\n" << fold_plan.ToString();
  os << "-- data layout --\n" << layout.ToString();
  os << "-- memory map --\n" << memory_map.ToString();
  os << "-- agu program --\n" << agu_program.ToString();
  os << "-- buffer plan --\n" << buffer_plan.ToString();
  os << "-- resources --\n" << resources.ToString();
  return os.str();
}

}  // namespace db
