#include "core/range_profiler.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"
#include "nn/executor.h"

namespace db {

std::string RangeProfile::ToString() const {
  std::ostringstream os;
  os << StrFormat("  %-16s %14s %14s\n", "layer", "max|act|", "max|w|");
  for (const LayerRange& r : layers)
    os << StrFormat("  %-16s %14.4f %14.4f\n", r.layer.c_str(),
                    r.max_abs_activation, r.max_abs_weight);
  os << StrFormat("  peak activation %.4f, peak weight %.4f\n",
                  max_abs_activation, max_abs_weight);
  return os.str();
}

RangeProfile ProfileRanges(const Network& net, const WeightStore& weights,
                           std::span<const Tensor> calibration_inputs) {
  if (calibration_inputs.empty())
    DB_THROW("range profiling needs at least one calibration input");
  DB_CHECK_MSG(net.input_ids().size() == 1,
               "range profiling supports single-input networks");
  const std::string input_name =
      net.layer(net.input_ids().front()).name();

  RangeProfile profile;
  for (const IrLayer* layer : net.ComputeLayers()) {
    LayerRange r;
    r.layer = layer->name();
    if (weights.Has(layer->name())) {
      const LayerParams& p = weights.at(layer->name());
      r.max_abs_weight =
          std::max({p.weights.MaxAbs(),
                    p.bias.size() > 0 ? p.bias.MaxAbs() : 0.0f,
                    p.recurrent.size() > 0 ? p.recurrent.MaxAbs() : 0.0f});
    }
    profile.layers.push_back(std::move(r));
  }

  Executor exec(net, weights);
  for (const Tensor& input : calibration_inputs) {
    const auto acts = exec.Forward({{input_name, input}});
    for (LayerRange& r : profile.layers) {
      const auto it = acts.find(r.layer);
      if (it != acts.end())
        r.max_abs_activation =
            std::max(r.max_abs_activation, it->second.MaxAbs());
    }
    // The input itself also flows through the datapath.
    profile.max_abs_activation =
        std::max(profile.max_abs_activation, input.MaxAbs());
  }
  for (const LayerRange& r : profile.layers) {
    profile.max_abs_activation =
        std::max(profile.max_abs_activation, r.max_abs_activation);
    profile.max_abs_weight =
        std::max(profile.max_abs_weight, r.max_abs_weight);
  }
  return profile;
}

FixedFormat ChooseFormat(const RangeProfile& profile, int total_bits,
                         double headroom) {
  DB_CHECK_MSG(headroom >= 1.0, "headroom must be >= 1");
  const double peak =
      std::max({static_cast<double>(profile.max_abs_activation),
                static_cast<double>(profile.max_abs_weight), 1e-6}) *
      headroom;
  // Integer bits needed so value_max >= peak.
  int int_bits = 0;
  while (std::ldexp(1.0, int_bits) < peak) ++int_bits;
  const int frac_bits = total_bits - 1 - int_bits;
  if (frac_bits < 1)
    DB_THROW("profiled magnitude " << peak << " does not fit a "
             << total_bits << "-bit fixed-point format (needs " << int_bits
             << " integer bits)");
  return FixedFormat(total_bits, frac_bits);
}

DesignConstraint AutoQuantize(const DesignConstraint& base,
                              const RangeProfile& profile) {
  DesignConstraint out = base;
  const FixedFormat fmt = ChooseFormat(profile, base.bit_width);
  out.frac_bits = fmt.frac_bits();
  return out;
}

}  // namespace db
