// Temporal and spatial folding (paper §3.3).
//
// Temporal folding maps *different layers* onto the one shared set of
// building blocks across time; spatial folding splits a single layer
// whose parallelism exceeds the datapath into segments that share the
// lanes in consecutive time slots.  The plan produced here drives the
// coordinator schedule, the AGU programs and the performance simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/accel_config.h"
#include "graph/network.h"

namespace db {

/// Which lane pool a fold executes on.
enum class LanePool { kMac, kPooling, kActivation, kNone };

std::string LanePoolName(LanePool pool);

/// The fold decision for one layer.
struct LayerFold {
  int layer_id = 0;
  std::string layer_name;
  LayerKind kind = LayerKind::kInput;
  LanePool pool = LanePool::kMac;

  /// Independent output units that could evaluate concurrently.
  std::int64_t parallel_units = 0;
  /// Lanes actually granted to this layer.
  std::int64_t lanes_used = 0;
  /// Spatial fold count: time slots needed to cover all units.
  std::int64_t segments = 1;
  /// Sequential operations one lane performs per output unit
  /// (dot-product length for MAC layers, window size for pooling, ...).
  std::int64_t unit_work = 1;
  /// Total dominant operations of this layer (= parallel_units*unit_work
  /// for most kinds).
  std::int64_t total_ops = 0;

  /// Ideal datapath cycles: one op per lane per cycle within a segment.
  std::int64_t ComputeCycles() const { return segments * unit_work; }
};

/// A whole network's fold plan.
struct FoldPlan {
  std::vector<LayerFold> folds;

  /// Number of distinct layers time-sharing the datapath.
  std::int64_t TemporalFolds() const {
    return static_cast<std::int64_t>(folds.size());
  }
  /// Total fold steps (sum of segments) — the coordinator's event count.
  std::int64_t TotalSegments() const;
  const LayerFold& ForLayer(int layer_id) const;
  std::string ToString() const;
};

/// Plan folding for a network on a configured datapath.  Throws db::Error
/// when the configuration cannot run the network at all (e.g. zero MAC
/// lanes for a convolutional model).
FoldPlan PlanFolding(const Network& net, const AcceleratorConfig& config);

/// Lane demand of the *fully expanded* mapping (every layer gets its full
/// parallelism concurrently, Fig. 2 style) — used by the folding ablation
/// to show why folding is required at realistic budgets.
struct ExpandedDemand {
  std::int64_t mac_lanes = 0;
  std::int64_t pooling_lanes = 0;
  std::int64_t activation_lanes = 0;
};
ExpandedDemand FullyExpandedDemand(const Network& net);

}  // namespace db
