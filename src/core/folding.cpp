#include "core/folding.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "common/math_util.h"
#include "common/strings.h"
#include "graph/layer_stats.h"

namespace db {

std::string LanePoolName(LanePool pool) {
  switch (pool) {
    case LanePool::kMac: return "mac";
    case LanePool::kPooling: return "pool";
    case LanePool::kActivation: return "act";
    case LanePool::kNone: return "none";
  }
  return "?";
}

namespace {

/// Derive the fold shape of one layer: which pool it runs on, how many
/// independent units it exposes and the per-unit sequential work.
LayerFold ShapeFold(const IrLayer& layer) {
  LayerFold fold;
  fold.layer_id = layer.id;
  fold.layer_name = layer.name();
  fold.kind = layer.kind();
  const std::int64_t out_n = layer.output_shape.NumElements();

  switch (layer.kind()) {
    case LayerKind::kConvolution: {
      const ConvolutionParams& p = *layer.def.conv;
      const BlobShape& in = layer.input_shapes.front();
      fold.pool = LanePool::kMac;
      fold.parallel_units = out_n;  // each output pixel is a dot product
      fold.unit_work =
          p.kernel_size * p.kernel_size * (in.channels / p.group);
      break;
    }
    case LayerKind::kInnerProduct:
      fold.pool = LanePool::kMac;
      fold.parallel_units = layer.def.fc->num_output;
      fold.unit_work = layer.input_shapes.front().NumElements();
      break;
    case LayerKind::kRecurrent: {
      const RecurrentParams& p = *layer.def.recurrent;
      fold.pool = LanePool::kMac;
      // Steps serialise; each step exposes num_output units.
      fold.parallel_units = p.num_output * p.time_steps;
      fold.unit_work =
          layer.input_shapes.front().NumElements() + p.num_output;
      break;
    }
    case LayerKind::kLstm: {
      const LstmParams& p = *layer.def.lstm;
      fold.pool = LanePool::kMac;
      // Four gate rows per hidden unit, re-evaluated each unrolled step.
      fold.parallel_units = 4 * p.num_output * p.time_steps;
      fold.unit_work =
          layer.input_shapes.front().NumElements() + p.num_output;
      break;
    }
    case LayerKind::kPooling: {
      const PoolingParams& p = *layer.def.pool;
      fold.pool = LanePool::kPooling;
      fold.parallel_units = out_n;
      fold.unit_work = p.kernel_size * p.kernel_size;
      break;
    }
    case LayerKind::kLrn:
      fold.pool = LanePool::kMac;  // squaring runs on the MAC lanes
      fold.parallel_units = out_n;
      fold.unit_work = layer.def.lrn->local_size + 2;
      break;
    case LayerKind::kRelu:
    case LayerKind::kSigmoid:
    case LayerKind::kTanh:
      fold.pool = LanePool::kActivation;
      fold.parallel_units = out_n;
      fold.unit_work = 1;
      break;
    case LayerKind::kSoftmax:
      fold.pool = LanePool::kActivation;
      fold.parallel_units = out_n;
      fold.unit_work = 3;  // exp, accumulate, divide
      break;
    case LayerKind::kDropout:
      fold.pool = LanePool::kActivation;
      fold.parallel_units = out_n;
      fold.unit_work = 1;
      break;
    case LayerKind::kAssociative:
      fold.pool = LanePool::kMac;
      fold.parallel_units = layer.def.associative->num_output;
      fold.unit_work = layer.def.associative->generalization;
      break;
    case LayerKind::kClassifier:
      fold.pool = LanePool::kNone;  // streams through the k-sorter
      fold.parallel_units = 1;
      fold.unit_work = layer.input_shapes.front().NumElements();
      break;
    case LayerKind::kConcat:
      fold.pool = LanePool::kNone;  // connection-box wiring only
      fold.parallel_units = 1;
      fold.unit_work = 0;
      break;
    case LayerKind::kInput:
      DB_THROW("input layers are not folded");
  }
  fold.total_ops = fold.parallel_units * fold.unit_work;
  return fold;
}

std::int64_t PoolLanes(const AcceleratorConfig& config, LanePool pool) {
  switch (pool) {
    case LanePool::kMac: return config.TotalLanes();
    case LanePool::kPooling: return config.pooling_lanes;
    case LanePool::kActivation: return config.activation_lanes;
    case LanePool::kNone: return 1;
  }
  return 1;
}

}  // namespace

std::int64_t FoldPlan::TotalSegments() const {
  std::int64_t total = 0;
  for (const LayerFold& f : folds) total += f.segments;
  return total;
}

const LayerFold& FoldPlan::ForLayer(int layer_id) const {
  for (const LayerFold& f : folds)
    if (f.layer_id == layer_id) return f;
  DB_THROW("no fold entry for layer id " << layer_id);
}

std::string FoldPlan::ToString() const {
  std::ostringstream os;
  os << StrFormat("  %-16s %-14s %5s %10s %7s %9s %9s\n", "layer", "kind",
                  "pool", "units", "lanes", "segments", "unit_work");
  for (const LayerFold& f : folds)
    os << StrFormat("  %-16s %-14s %5s %10lld %7lld %9lld %9lld\n",
                    f.layer_name.c_str(), LayerKindName(f.kind).c_str(),
                    LanePoolName(f.pool).c_str(),
                    static_cast<long long>(f.parallel_units),
                    static_cast<long long>(f.lanes_used),
                    static_cast<long long>(f.segments),
                    static_cast<long long>(f.unit_work));
  return os.str();
}

FoldPlan PlanFolding(const Network& net, const AcceleratorConfig& config) {
  FoldPlan plan;
  for (const IrLayer* layer : net.ComputeLayers()) {
    LayerFold fold = ShapeFold(*layer);
    const std::int64_t lanes = PoolLanes(config, fold.pool);
    if (lanes <= 0)
      DB_THROW("network '" << net.name() << "' layer '" << fold.layer_name
               << "' needs " << LanePoolName(fold.pool)
               << " lanes but the configuration provides none");
    fold.lanes_used = std::min<std::int64_t>(lanes, fold.parallel_units);
    fold.lanes_used = std::max<std::int64_t>(fold.lanes_used, 1);
    if (fold.pool == LanePool::kMac) {
      // MAC layers genuinely reconfigure per segment (new weights and
      // producer/consumer wiring), so each segment is a coordinator step.
      fold.segments = CeilDiv(fold.parallel_units, fold.lanes_used);
    } else {
      // Pooling/activation/wiring layers stream through their unit in a
      // single data-driven pass — one fold step, with the serialisation
      // folded into the per-step work.
      fold.unit_work *= CeilDiv(fold.parallel_units, fold.lanes_used);
      fold.segments = 1;
    }
    plan.folds.push_back(std::move(fold));
  }
  if (plan.folds.empty())
    DB_THROW("network '" << net.name() << "' has no compute layers");
  return plan;
}

ExpandedDemand FullyExpandedDemand(const Network& net) {
  ExpandedDemand demand;
  for (const IrLayer* layer : net.ComputeLayers()) {
    const LayerFold fold = ShapeFold(*layer);
    switch (fold.pool) {
      case LanePool::kMac:
        demand.mac_lanes += fold.parallel_units;
        break;
      case LanePool::kPooling:
        demand.pooling_lanes += fold.parallel_units;
        break;
      case LanePool::kActivation:
        demand.activation_lanes += fold.parallel_units;
        break;
      case LanePool::kNone:
        break;
    }
  }
  return demand;
}

}  // namespace db
