#include "core/buffer_plan.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "common/math_util.h"
#include "common/strings.h"
#include "graph/layer_stats.h"

namespace db {

const BufferPlanEntry& BufferPlan::ForLayer(int layer_id) const {
  for (const BufferPlanEntry& e : entries)
    if (e.layer_id == layer_id) return e;
  DB_THROW("no buffer plan entry for layer id " << layer_id);
}

std::string BufferPlan::ToString() const {
  std::ostringstream os;
  os << StrFormat("  %-16s %10s %22s %22s %22s %9s\n", "layer", "tile_B",
                  "ping", "pong", "out_stage", "resident");
  for (const BufferPlanEntry& e : entries)
    os << StrFormat("  %-16s %10lld [%8lld,%8lld) [%8lld,%8lld) "
                    "[%8lld,%8lld) %9s\n",
                    e.layer_name.c_str(),
                    static_cast<long long>(e.tile_bytes),
                    static_cast<long long>(e.ping.base),
                    static_cast<long long>(e.ping.end()),
                    static_cast<long long>(e.pong.base),
                    static_cast<long long>(e.pong.end()),
                    static_cast<long long>(e.out_stage.base),
                    static_cast<long long>(e.out_stage.end()),
                    e.input_resident ? "yes" : "no");
  return os.str();
}

BufferPlan PlanBuffers(const Network& net, const AcceleratorConfig& config,
                       const FoldPlan& folds,
                       const DataLayoutPlan& layout) {
  BufferPlan plan;
  plan.data_buffer_bytes = config.data_buffer_bytes;
  const std::int64_t elem = config.ElementBytes();
  const std::int64_t beat = config.memory_port_elems * elem;
  // Reserve a quarter of the buffer for output staging; the rest splits
  // into the two input tile slots.
  const std::int64_t stage_bytes =
      std::max(RoundUp(plan.data_buffer_bytes / 4, beat), beat);
  const std::int64_t slot_capacity =
      (plan.data_buffer_bytes - stage_bytes) / 2;
  if (slot_capacity < beat)
    DB_THROW("data buffer of " << plan.data_buffer_bytes
             << " bytes cannot hold two port beats plus staging");

  for (const IrLayer* layer : net.ComputeLayers()) {
    const LayerFold& fold = folds.ForLayer(layer->id);
    const TileSpec& spec = layout.ForLayer(layer->id).input_layout;

    BufferPlanEntry entry;
    entry.layer_id = layer->id;
    entry.layer_name = layer->name();

    const LayerStats stats = ComputeLayerStats(*layer);
    const std::int64_t input_bytes = stats.input_elems * elem;
    // A segment's working set: the operands one fold step consumes,
    // rounded up to whole tiles and port beats.
    const std::int64_t tile_unit =
        std::max<std::int64_t>(spec.tile_h * spec.tile_w * elem, 1);
    std::int64_t seg_bytes =
        RoundUp(RoundUp(fold.unit_work * fold.lanes_used * elem,
                        tile_unit),
                beat);
    seg_bytes = std::min(seg_bytes, slot_capacity);
    seg_bytes = std::max(seg_bytes, beat);
    entry.tile_bytes = seg_bytes;
    entry.input_resident = input_bytes <= slot_capacity;

    entry.ping = {"ping", 0, seg_bytes};
    entry.pong = {"pong", seg_bytes, seg_bytes};
    entry.out_stage = {"out", 2 * slot_capacity, stage_bytes};

    DB_CHECK_MSG(entry.pong.end() <= 2 * slot_capacity,
                 "tile slots overflow their halves");
    DB_CHECK_MSG(entry.out_stage.end() <= plan.data_buffer_bytes,
                 "staging slot overflows the buffer");
    plan.entries.push_back(std::move(entry));
  }
  return plan;
}

}  // namespace db
