// Producer→consumer reconnection plan (paper §3.3, "Dynamic Control
// flow"): the per-step crossbar configuration the FSM-based coordinator
// applies when the folded network advances from one layer to the next
// ("the synergy neuron set used by one layer ... need to be reconnected
// to accumulators afterwards").
//
// Datapath endpoints get fixed port indices; each schedule step names the
// input port its consumer listens to and the shift the connection box's
// shifting latch applies (the approximate-division path used by average
// pooling).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/schedule.h"

namespace db {

/// Fixed datapath port indices (stable across designs so the coordinator
/// microcode is position-independent).
enum class DatapathPort : int {
  kDataBuffer = 0,
  kSynergyArray = 1,
  kAccumulator = 2,
  kPoolingUnit = 3,
  kActivationUnit = 4,
  kClassifier = 5,
  kConnectionBox = 6,
};

std::string DatapathPortName(DatapathPort port);

/// Resolve a schedule block name ("synergy_array", "pooling_unit0", ...)
/// to its port.  Throws db::Error for unknown blocks.
DatapathPort PortForBlock(const std::string& block_name);

/// One step's crossbar configuration.
struct CrossbarSetting {
  int step_index = 0;
  std::string event;
  DatapathPort producer = DatapathPort::kDataBuffer;
  DatapathPort consumer = DatapathPort::kSynergyArray;
  /// Arithmetic right shift applied by the shifting latch (average
  /// pooling's power-of-two division); 0 = pass-through.
  int shift = 0;
};

/// The coordinator's full reconnection microcode.
struct ConnectionPlan {
  std::vector<CrossbarSetting> settings;

  /// Number of distinct ports the plan actually uses (the reduced
  /// crossbar radix the hardware generator may instantiate).
  int DistinctPorts() const;
  std::string ToString() const;
};

/// Derive the plan from the schedule; shifts come from the layer kinds.
ConnectionPlan PlanConnections(const Network& net,
                               const Schedule& schedule);

}  // namespace db
