// Binary serialisation of a generated AcceleratorDesign.
//
// The content-addressed design cache (cluster/design_cache.h) memoizes
// NN-Gen output across serve/run invocations; for that it needs the
// whole hardware/software bundle — schedule, buffer plan, AGU programs,
// memory-image layout, RTL — as a byte string it can park on disk and
// decode without re-running the generator.  design_json.h stays the
// human/diff format; this codec is the machine round-trip: a design
// decoded from SerializeDesign bytes is field-identical to the original
// (DesignToJson and EmitVerilog emit the same text, the functional
// simulator produces bit-identical outputs).
//
// The format is versioned and self-checking: a magic tag and version
// word lead the payload, every read is bounds-checked, and trailing
// bytes are rejected — a truncated or stale cache file throws db::Error
// instead of decoding garbage.
#pragma once

#include <string>
#include <string_view>

#include "core/generator.h"

namespace db {

/// Bumped whenever the encoding (or any serialised struct) changes;
/// DeserializeDesign rejects other versions so stale cache entries are
/// regenerated rather than misdecoded.
inline constexpr std::uint32_t kDesignSerdeVersion = 2;

/// Encode the full design (header + every artifact) as a byte string.
std::string SerializeDesign(const AcceleratorDesign& design);

/// Decode a SerializeDesign payload.  Throws db::Error on a bad magic,
/// version mismatch, truncation or trailing bytes.
AcceleratorDesign DeserializeDesign(std::string_view bytes);

}  // namespace db
