#include "core/agu_program.h"

#include <sstream>

#include "common/error.h"
#include "common/math_util.h"
#include "common/strings.h"
#include "graph/layer_stats.h"

namespace db {

std::string TransferKindName(TransferKind kind) {
  switch (kind) {
    case TransferKind::kLoadInput: return "load_input";
    case TransferKind::kLoadWeights: return "load_weights";
    case TransferKind::kStoreOutput: return "store_output";
    case TransferKind::kStreamData: return "stream_data";
    case TransferKind::kStreamWeights: return "stream_weights";
  }
  return "?";
}

void ExpandPatternInto(const AguPattern& p,
                       std::vector<std::int64_t>& addrs) {
  addrs.clear();
  addrs.reserve(static_cast<std::size_t>(p.x_length * p.y_length));
  std::int64_t row_base = p.start_addr;
  for (std::int64_t y = 0; y < p.y_length; ++y) {
    std::int64_t addr = row_base;
    for (std::int64_t x = 0; x < p.x_length; ++x) {
      addrs.push_back(addr);
      addr += p.stride;
    }
    row_base += p.offset;
  }
}

std::vector<std::int64_t> ExpandPattern(const AguPattern& p) {
  std::vector<std::int64_t> addrs;
  ExpandPatternInto(p, addrs);
  return addrs;
}

std::vector<const AguPattern*> AguProgram::ForLayer(int layer_id) const {
  std::vector<const AguPattern*> out;
  for (const AguPattern& p : patterns)
    if (p.layer_id == layer_id) out.push_back(&p);
  return out;
}

int AguProgram::CountFor(AguRole role) const {
  int n = 0;
  for (const AguPattern& p : patterns)
    if (p.role == role) ++n;
  return n;
}

std::string AguProgram::ToString() const {
  std::ostringstream os;
  os << StrFormat("  %-4s %-6s %-14s %-16s %10s %6s %6s %8s %8s\n", "id",
                  "role", "kind", "event", "start", "xlen", "ylen",
                  "stride", "offset");
  for (const AguPattern& p : patterns)
    os << StrFormat("  %-4d %-6s %-14s %-16s %10lld %6lld %6lld %8lld "
                    "%8lld\n",
                    p.id, AguRoleName(p.role).c_str(),
                    TransferKindName(p.kind).c_str(), p.event.c_str(),
                    static_cast<long long>(p.start_addr),
                    static_cast<long long>(p.x_length),
                    static_cast<long long>(p.y_length),
                    static_cast<long long>(p.stride),
                    static_cast<long long>(p.offset));
  return os.str();
}

namespace {

/// Pattern covering a DRAM region as rows of `row_bytes`, fetched in
/// port-width beats.  Covers the region exactly once.
AguPattern RegionPattern(const MemoryRegion& region, std::int64_t row_bytes,
                         std::int64_t beat_bytes) {
  AguPattern p;
  p.start_addr = region.base;
  p.beat_bytes = beat_bytes;
  const std::int64_t padded_row = RoundUp(row_bytes, beat_bytes);
  p.x_length = std::max<std::int64_t>(padded_row / beat_bytes, 1);
  p.stride = beat_bytes;
  p.offset = padded_row;
  p.y_length = std::max<std::int64_t>(
      CeilDiv(region.bytes, padded_row), 1);
  return p;
}

}  // namespace

AguProgram BuildAguProgram(const Network& net,
                           const AcceleratorConfig& config,
                           const FoldPlan& folds,
                           const DataLayoutPlan& layout,
                           const MemoryMap& memory) {
  AguProgram program;
  const std::int64_t elem_bytes = config.ElementBytes();
  const std::int64_t beat = config.memory_port_elems * elem_bytes;
  int next_id = 0;

  auto push = [&](AguPattern p) {
    p.id = next_id++;
    program.patterns.push_back(std::move(p));
  };

  for (const IrLayer* layer : net.ComputeLayers()) {
    const LayerFold& fold = folds.ForLayer(layer->id);
    const DataLayoutPlan::Entry& lay = layout.ForLayer(layer->id);
    const std::string event = "layer" + std::to_string(layer->id) +
                              "_fold0";
    // --- main AGU: input tiles from every producer blob's region
    //     (inception/concat layers consume several bottoms) ---
    for (int producer_id : layer->input_ids) {
      const IrLayer& producer = net.layer(producer_id);
      const MemoryRegion& region = memory.Blob(producer.name());
      const std::int64_t tile_elems =
          lay.input_layout.tile_h * lay.input_layout.tile_w;
      AguPattern p = RegionPattern(region, tile_elems * elem_bytes, beat);
      p.role = AguRole::kMain;
      p.kind = TransferKind::kLoadInput;
      p.layer_id = layer->id;
      p.event = event;
      push(std::move(p));
    }
    // --- main AGU: weights, streamed once per layer ---
    if (memory.HasWeights(layer->name())) {
      const MemoryRegion& region = memory.Weights(layer->name());
      AguPattern p = RegionPattern(region, region.bytes, beat);
      p.role = AguRole::kMain;
      p.kind = TransferKind::kLoadWeights;
      p.layer_id = layer->id;
      p.event = event;
      push(std::move(p));
    }
    // --- main AGU: outputs back to this layer's blob region ---
    {
      const MemoryRegion& region = memory.Blob(layer->name());
      AguPattern p = RegionPattern(region, region.bytes, beat);
      p.role = AguRole::kMain;
      p.kind = TransferKind::kStoreOutput;
      p.layer_id = layer->id;
      p.event = event;
      push(std::move(p));
    }
    // --- data AGU: stream operand rows from the on-chip data buffer ---
    {
      AguPattern p;
      p.role = AguRole::kData;
      p.kind = TransferKind::kStreamData;
      p.layer_id = layer->id;
      p.event = event;
      p.beat_bytes = beat;
      p.start_addr = 0;  // buffer-relative
      // One inner beat per port row of a segment's working set; outer
      // loop walks the fold segments.
      const std::int64_t seg_elems = std::max<std::int64_t>(
          fold.unit_work * fold.lanes_used, 1);
      p.x_length = std::max<std::int64_t>(
          CeilDiv(seg_elems, config.memory_port_elems), 1);
      p.stride = beat;
      p.y_length = fold.segments;
      p.offset = 0;  // segments reuse the buffered tiles in place
      push(std::move(p));
    }
    // --- weight AGU: stream the segment's weight words ---
    if (memory.HasWeights(layer->name())) {
      AguPattern p;
      p.role = AguRole::kWeight;
      p.kind = TransferKind::kStreamWeights;
      p.layer_id = layer->id;
      p.event = event;
      p.beat_bytes = beat;
      p.start_addr = 0;
      const LayerStats stats = ComputeLayerStats(*layer);
      const std::int64_t per_segment =
          CeilDiv(stats.weight_count, std::max<std::int64_t>(fold.segments,
                                                             1));
      p.x_length = std::max<std::int64_t>(
          CeilDiv(per_segment, config.memory_port_elems), 1);
      p.stride = beat;
      p.y_length = fold.segments;
      p.offset = p.x_length * beat;  // next segment's weights follow
      push(std::move(p));
    }
  }
  return program;
}

}  // namespace db
