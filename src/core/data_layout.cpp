#include "core/data_layout.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "common/math_util.h"
#include "common/strings.h"

namespace db {

std::string TileRuleName(TileRule rule) {
  switch (rule) {
    case TileRule::kKernelTiles: return "kernel_tiles";
    case TileRule::kStridePartition: return "stride_partition";
    case TileRule::kCommonDivisor: return "common_divisor";
    case TileRule::kLinear: return "linear";
  }
  return "?";
}

std::string TileSpec::ToString() const {
  std::ostringstream os;
  os << TileRuleName(rule) << " " << tile_h << "x" << tile_w
     << (interleave_maps ? " interleaved" : "")
     << StrFormat(" util=%.2f refetch=%.2f d=%lld", utilization, refetch,
                  static_cast<long long>(port_elems));
  return os.str();
}

TileSpec NaiveRowMajorLayout(const BlobShape& blob, std::int64_t kernel,
                             std::int64_t stride,
                             std::int64_t port_elems) {
  TileSpec spec;
  spec.rule = TileRule::kLinear;
  spec.tile_h = 1;
  spec.tile_w = blob.width;
  spec.port_elems = port_elems;
  // A kernel column sweep uses `kernel` pixels of each fetched row-chunk;
  // rows are fetched in port-width chunks, of which only the kernel's
  // columns are useful (Fig. 7: "only the first 12 pixels are used if the
  // whole first row is fetched").
  const std::int64_t fetched = RoundUp(blob.width, port_elems);
  spec.utilization =
      std::min(1.0, static_cast<double>(kernel) /
                        static_cast<double>(fetched));
  // Overlapping windows re-fetch rows (k/s passes vertically).
  spec.refetch = std::max(1.0, static_cast<double>(kernel) /
                                   static_cast<double>(stride));
  return spec;
}

TileSpec Method1Layout(const BlobShape& /*blob*/, std::int64_t kernel,
                       std::int64_t stride, std::int64_t port_elems,
                       std::int64_t map_count) {
  DB_CHECK_MSG(kernel >= 1 && stride >= 1 && port_elems >= 1,
               "invalid layout geometry");
  TileSpec spec;
  spec.port_elems = port_elems;

  const std::int64_t k2 = kernel * kernel;
  const std::int64_t d2 = port_elems * port_elems;

  if (k2 == d2) {
    if (stride < kernel && kernel % stride == 0 &&
        port_elems % stride == 0) {
      // Rule 2: stride divides both k and d — partition into s x s tiles
      // so the non-re-accessed sub-regions retire exactly once.
      spec.rule = TileRule::kStridePartition;
      spec.tile_h = spec.tile_w = stride;
      spec.utilization = 1.0;
      spec.refetch = 1.0;
    } else {
      // Rule 1: tile at kernel granularity; window-overlap at stride < k
      // still re-reads tile fractions.
      spec.rule = TileRule::kKernelTiles;
      spec.tile_h = spec.tile_w = kernel;
      spec.utilization = 1.0;
      spec.refetch = stride >= kernel
                         ? 1.0
                         : static_cast<double>(kernel) /
                               static_cast<double>(stride);
    }
  } else {
    // Rule 3: f = common divisor of k, d and s; interleave the tiles of
    // `map_count` maps so multi-map fetches stay port-aligned.
    const std::int64_t f = Gcd3(kernel, port_elems, stride);
    spec.rule = TileRule::kCommonDivisor;
    spec.tile_h = spec.tile_w = f;
    spec.interleave_maps = map_count > 1;
    // f divides k, so tiles cover windows exactly, and consecutive tiles
    // (interleaved across the t maps) pack the memory port full — every
    // fetched beat carries useful pixels.
    spec.utilization = 1.0;
    spec.refetch = 1.0;
  }
  return spec;
}

TileSpec LinearLayout(const BlobShape& blob, std::int64_t port_elems) {
  TileSpec spec;
  spec.rule = TileRule::kLinear;
  spec.tile_h = 1;
  spec.tile_w = port_elems;
  spec.port_elems = port_elems;
  const std::int64_t n = blob.NumElements();
  // Only the tail fetch can be partially used.
  spec.utilization = n == 0 ? 1.0
                            : static_cast<double>(n) /
                                  static_cast<double>(RoundUp(n,
                                                              port_elems));
  spec.refetch = 1.0;
  return spec;
}

const DataLayoutPlan::Entry& DataLayoutPlan::ForLayer(int layer_id) const {
  for (const Entry& e : entries)
    if (e.layer_id == layer_id) return e;
  DB_THROW("no layout entry for layer id " << layer_id);
}

std::string DataLayoutPlan::ToString() const {
  std::ostringstream os;
  for (const Entry& e : entries)
    os << StrFormat("  %-16s in: %-46s w: %s\n", e.layer_name.c_str(),
                    e.input_layout.ToString().c_str(),
                    e.weight_layout.ToString().c_str());
  return os.str();
}

DataLayoutPlan PlanDataLayout(const Network& net,
                              std::int64_t port_elems) {
  DataLayoutPlan plan;
  for (const IrLayer* layer : net.ComputeLayers()) {
    DataLayoutPlan::Entry entry;
    entry.layer_id = layer->id;
    entry.layer_name = layer->name();
    const BlobShape& in = layer->input_shapes.front();
    switch (layer->kind()) {
      case LayerKind::kConvolution: {
        const ConvolutionParams& p = *layer->def.conv;
        entry.input_layout = Method1Layout(in, p.kernel_size, p.stride,
                                           port_elems, in.channels);
        // Weights follow the feature tiling (paper: "the layout of
        // network weight is partitioned accordingly").
        entry.weight_layout = entry.input_layout;
        entry.weight_layout.refetch = 1.0;  // weights stream exactly once
        break;
      }
      case LayerKind::kPooling: {
        const PoolingParams& p = *layer->def.pool;
        entry.input_layout = Method1Layout(in, p.kernel_size, p.stride,
                                           port_elems, in.channels);
        entry.weight_layout = LinearLayout({0, 0, 0}, port_elems);
        break;
      }
      default:
        entry.input_layout = LinearLayout(in, port_elems);
        entry.weight_layout = LinearLayout(in, port_elems);
        break;
    }
    plan.entries.push_back(std::move(entry));
  }
  return plan;
}

std::vector<std::int64_t> TilePermutation(const BlobShape& blob,
                                          const TileSpec& spec) {
  const std::int64_t c = std::max<std::int64_t>(blob.channels, 1);
  const std::int64_t h = std::max<std::int64_t>(blob.height, 1);
  const std::int64_t w = std::max<std::int64_t>(blob.width, 1);
  std::vector<std::int64_t> perm;
  perm.reserve(static_cast<std::size_t>(c * h * w));
  auto flat = [&](std::int64_t ch, std::int64_t y, std::int64_t x) {
    return (ch * h + y) * w + x;
  };

  if (spec.rule == TileRule::kLinear) {
    for (std::int64_t i = 0; i < c * h * w; ++i) perm.push_back(i);
    return perm;
  }

  const std::int64_t th = spec.tile_h;
  const std::int64_t tw = spec.tile_w;
  const std::int64_t tiles_y = CeilDiv(h, th);
  const std::int64_t tiles_x = CeilDiv(w, tw);

  auto emit_tile = [&](std::int64_t ch, std::int64_t ty, std::int64_t tx) {
    for (std::int64_t dy = 0; dy < th; ++dy) {
      for (std::int64_t dx = 0; dx < tw; ++dx) {
        const std::int64_t y = ty * th + dy;
        const std::int64_t x = tx * tw + dx;
        if (y < h && x < w) perm.push_back(flat(ch, y, x));
      }
    }
  };

  if (spec.interleave_maps) {
    // Rule 3: the tiles of all maps at one (ty, tx) position sit
    // consecutively — "interleaves the tiles of t maps one by one".
    for (std::int64_t ty = 0; ty < tiles_y; ++ty)
      for (std::int64_t tx = 0; tx < tiles_x; ++tx)
        for (std::int64_t ch = 0; ch < c; ++ch) emit_tile(ch, ty, tx);
  } else {
    // Rules 1/2: tiles of one map are contiguous, then the next map.
    for (std::int64_t ch = 0; ch < c; ++ch)
      for (std::int64_t ty = 0; ty < tiles_y; ++ty)
        for (std::int64_t tx = 0; tx < tiles_x; ++tx) emit_tile(ch, ty, tx);
  }
  DB_CHECK_MSG(static_cast<std::int64_t>(perm.size()) == c * h * w,
               "tile permutation lost elements");
  return perm;
}

}  // namespace db
