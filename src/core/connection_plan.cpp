#include "core/connection_plan.h"

#include <cmath>
#include <set>
#include <sstream>

#include "common/error.h"
#include "common/math_util.h"
#include "common/strings.h"

namespace db {

std::string DatapathPortName(DatapathPort port) {
  switch (port) {
    case DatapathPort::kDataBuffer: return "data_buffer";
    case DatapathPort::kSynergyArray: return "synergy_array";
    case DatapathPort::kAccumulator: return "accumulator";
    case DatapathPort::kPoolingUnit: return "pooling_unit";
    case DatapathPort::kActivationUnit: return "activation_unit";
    case DatapathPort::kClassifier: return "classifier";
    case DatapathPort::kConnectionBox: return "connection_box";
  }
  return "?";
}

DatapathPort PortForBlock(const std::string& block_name) {
  if (block_name == "data_buffer") return DatapathPort::kDataBuffer;
  if (StartsWith(block_name, "synergy_array"))
    return DatapathPort::kSynergyArray;
  if (StartsWith(block_name, "accumulator"))
    return DatapathPort::kAccumulator;
  if (StartsWith(block_name, "pooling_unit"))
    return DatapathPort::kPoolingUnit;
  if (StartsWith(block_name, "activation_unit"))
    return DatapathPort::kActivationUnit;
  if (StartsWith(block_name, "classifier"))
    return DatapathPort::kClassifier;
  if (StartsWith(block_name, "connection_box"))
    return DatapathPort::kConnectionBox;
  DB_THROW("unknown datapath block '" << block_name << "'");
}

int ConnectionPlan::DistinctPorts() const {
  std::set<int> ports;
  for (const CrossbarSetting& s : settings) {
    ports.insert(static_cast<int>(s.producer));
    ports.insert(static_cast<int>(s.consumer));
  }
  return static_cast<int>(ports.size());
}

std::string ConnectionPlan::ToString() const {
  std::ostringstream os;
  os << StrFormat("  %-5s %-18s %-16s -> %-16s %6s\n", "step", "event",
                  "producer", "consumer", "shift");
  for (const CrossbarSetting& s : settings)
    os << StrFormat("  %-5d %-18s %-16s -> %-16s %6d\n", s.step_index,
                    s.event.c_str(),
                    DatapathPortName(s.producer).c_str(),
                    DatapathPortName(s.consumer).c_str(), s.shift);
  return os.str();
}

ConnectionPlan PlanConnections(const Network& net,
                               const Schedule& schedule) {
  ConnectionPlan plan;
  for (const ScheduleStep& step : schedule.steps) {
    CrossbarSetting setting;
    setting.step_index = step.index;
    setting.event = step.event;
    setting.producer = PortForBlock(step.producer_block);
    setting.consumer = PortForBlock(step.consumer_block);

    // Average pooling with a power-of-two window divides through the
    // shifting latch.
    const IrLayer& layer = net.layer(step.layer_id);
    if (layer.kind() == LayerKind::kPooling &&
        layer.def.pool->method == PoolMethod::kAverage) {
      const std::int64_t window =
          layer.def.pool->kernel_size * layer.def.pool->kernel_size;
      if (IsPow2(window))
        setting.shift = static_cast<int>(
            std::llround(std::log2(static_cast<double>(window))));
    }
    plan.settings.push_back(std::move(setting));
  }
  return plan;
}

}  // namespace db
