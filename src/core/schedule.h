// Dynamic control flow: the coordinator's FSM schedule (paper §3.3).
//
// The data-driven architecture needs only producer→consumer reconnection
// at pre-determined beats: each schedule step names the fold segment being
// executed, the functional block consuming data, the block producing it,
// and the AGU patterns whose trigger events fire at the step boundary.
// The RTL coordinator is generated with exactly these steps as its FSM
// states; the simulator walks the same list.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/agu_program.h"
#include "core/folding.h"

namespace db {

/// One coordinator FSM state / fold event.
struct ScheduleStep {
  int index = 0;
  int layer_id = 0;
  std::int64_t segment = 0;       // spatial fold slot within the layer
  std::string event;              // "layer<id>_fold<segment>"
  std::string producer_block;     // block output feeding the step
  std::string consumer_block;     // functional block executing the step
  std::vector<int> pattern_ids;   // AGU patterns triggered by this event
};

/// The whole control flow.
struct Schedule {
  std::vector<ScheduleStep> steps;

  std::int64_t TotalSteps() const {
    return static_cast<std::int64_t>(steps.size());
  }
  std::string ToString() const;
};

/// Canonical datapath block name executing a fold (e.g. "synergy_array",
/// "pooling_unit0").
std::string ConsumerBlockFor(const LayerFold& fold);

/// Build the coordinator schedule: one step per fold segment of every
/// layer, in propagation order, with the producer chained from the
/// previous layer's consumer (or the data buffer for the first layer).
Schedule BuildSchedule(const Network& net, const FoldPlan& folds,
                       const AguProgram& agu);

}  // namespace db
