// NN-Gen: the DeepBurning accelerator generator (paper §3, Fig. 3).
//
// GenerateAccelerator is the "one-click" entry point: it takes the parsed
// network and the designer's constraint, sizes the datapath, plans
// folding, data layout, AGU programs and the coordinator schedule, picks
// the building-block instances, tallies resources, and emits the RTL.
// The returned AcceleratorDesign carries both the hardware part (RTL,
// block list) and the software part (control flow, data layout, memory
// image) — generated together, as the paper's co-design flow requires.
#pragma once

#include <string>
#include <vector>

#include "core/accel_config.h"
#include "core/agu_program.h"
#include "core/approx_lut.h"
#include "core/buffer_plan.h"
#include "core/connection_plan.h"
#include "core/data_layout.h"
#include "core/folding.h"
#include "core/memory_map.h"
#include "core/schedule.h"
#include "graph/network.h"
#include "hwlib/resource_model.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "rtl/verilog.h"

namespace db {

/// Everything NN-Gen produces for one (network, constraint) pair.
struct AcceleratorDesign {
  AcceleratorConfig config;
  FoldPlan fold_plan;
  DataLayoutPlan layout;
  MemoryMap memory_map;
  AguProgram agu_program;
  Schedule schedule;
  BufferPlan buffer_plan;
  ConnectionPlan connection_plan;
  std::vector<ApproxLutSpec> lut_specs;  // one per approximated function
  std::vector<BlockInstance> blocks;
  ResourceReport resources;
  VDesign rtl;

  /// Multi-section human-readable design report.
  std::string Report() const;
};

/// Generate an accelerator for `net` under `constraint`.
/// Throws db::Error when the constraint cannot accommodate the network
/// (e.g. no lanes fit the budget).
///
/// With a tracer, every compilation phase (sizing → folding → data
/// layout → memory map → agu program → schedule → buffer plan →
/// connections → blocks → rtl emit → lint → verify) is recorded as one
/// span on the "toolchain" track, one ordinal tick per phase (the
/// toolchain has no simulated clock); refit attempts annotate their
/// spans.  The timeline continues from the track's prior end, so a
/// caller's own parse/constraint spans slot in before these.
///
/// The final verify phase runs the static design verifier
/// (analysis/verifier.h) as a gate: error diagnostics throw db::Error
/// carrying the report; warnings pass and are counted on `metrics` as
/// `analysis.warnings` plus per-rule `analysis.rule.<id>` counters.
AcceleratorDesign GenerateAccelerator(const Network& net,
                                      const DesignConstraint& constraint,
                                      obs::Tracer* tracer = nullptr,
                                      obs::MetricsRegistry* metrics = nullptr);

/// Convenience wrapper: parse both scripts and generate (the scripted
/// phases land on the same toolchain track when traced).
AcceleratorDesign GenerateFromScripts(
    const std::string& model_prototxt,
    const std::string& constraint_prototxt,
    obs::Tracer* tracer = nullptr,
    obs::MetricsRegistry* metrics = nullptr);

/// The datapath-sizing step alone (exposed for tests and DSE sweeps):
/// decides lanes, buffers and port width under the budget.
AcceleratorConfig SizeDatapath(const Network& net,
                               const DesignConstraint& constraint);

/// Compile the full software bundle (folding, data layout, memory map,
/// AGU programs, schedule, buffer plan, connections) plus the block
/// inventory and resource tally for a FIXED configuration — no sizing,
/// no refit loop, no RTL emission, no verification gate.  Throws
/// db::Error when the configuration cannot run the network at all
/// (e.g. zero MAC lanes for a convolutional model).  This is the
/// parameterised candidate constructor the DSE explorer (src/dse)
/// sweeps; the generator's own refit loop runs the same passes.  Pure
/// function of its arguments, safe to call concurrently from worker
/// threads on the same (const) network.
AcceleratorDesign CompileForConfig(const Network& net,
                                   const AcceleratorConfig& config);

/// Approx-LUT functions the network's layers require (sigmoid/tanh for
/// activations, exp+recip for softmax, lrn_pow for LRN).
std::vector<LutFunction> RequiredLutFunctions(const Network& net);

/// The library's canonical LUT spec for `fn` under `config`: table sizing
/// from the config knobs plus the per-function input-domain policy
/// (softmax exp keys are shifted non-positive, reciprocal-family keys
/// start above zero).  PickBlocks instantiates exactly this spec; the
/// static verifier re-derives it to cross-check a design's recorded
/// specs against the policy.
ApproxLutSpec DefaultLutSpec(LutFunction fn, const AcceleratorConfig& config);

/// One accelerator shared by several network models — the versatility
/// argument of the paper's introduction (an ASIP's fixed ISA cannot; the
/// generated fabric reconfigures per model).  The datapath is sized to
/// the union of the models' needs; each model gets its own compiled
/// software bundle (folding, layout, AGU program, schedule) against the
/// shared configuration.  Every per-model AcceleratorDesign carries the
/// identical config/blocks/resources/RTL.
struct SharedAccelerator {
  AcceleratorConfig config;
  std::vector<AcceleratorDesign> designs;  // one per input network
};

SharedAccelerator GenerateSharedAccelerator(
    const std::vector<const Network*>& nets,
    const DesignConstraint& constraint);

}  // namespace db
