// AGU access-pattern generation (paper §3.3, Fig. 6).
//
// For every layer the compiler derives the address patterns its three AGU
// roles need: the main AGU moves the layer's input tiles, weights and
// outputs between DRAM and the on-chip buffers; the data and weight AGUs
// stream operands from the buffers into the datapath.  Each pattern is an
// FSM descriptor with the template AGU's key fields (start address,
// footprint, x_length, y_length, stride, offset) plus the trigger event
// name; the hardware generator reduces the template AGU to exactly the
// patterns that appear here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/accel_config.h"
#include "core/data_layout.h"
#include "core/folding.h"
#include "core/memory_map.h"
#include "hwlib/blocks.h"

namespace db {

/// What a main-AGU pattern transfers.
enum class TransferKind { kLoadInput, kLoadWeights, kStoreOutput,
                          kStreamData, kStreamWeights };

std::string TransferKindName(TransferKind kind);

/// One access pattern (Fig. 6 template fields).
struct AguPattern {
  int id = 0;
  AguRole role = AguRole::kMain;
  TransferKind kind = TransferKind::kLoadInput;
  int layer_id = 0;
  std::string event;  // pattern-trigger event, e.g. "layer3_fold0"

  std::int64_t start_addr = 0;
  std::int64_t x_length = 1;   // inner-loop beats
  std::int64_t y_length = 1;   // outer-loop rows
  std::int64_t stride = 1;     // address step per inner beat (bytes)
  std::int64_t offset = 0;     // row-base step per outer row (bytes)

  /// Total bytes touched = x_length * y_length * beat_bytes.
  std::int64_t beat_bytes = 1;
  std::int64_t Footprint() const {
    return x_length * y_length * beat_bytes;
  }
};

/// Expand a pattern into its address stream exactly as the RTL AGU's
/// nested x/y counters would — used by tests and the functional memory
/// model to validate coverage.
std::vector<std::int64_t> ExpandPattern(const AguPattern& pattern);

/// Buffer-reusing variant for hot loops (e.g. sweeping a whole
/// program's patterns): clears `addrs` and refills it, keeping its
/// capacity across calls.
void ExpandPatternInto(const AguPattern& pattern,
                       std::vector<std::int64_t>& addrs);

/// All patterns of a design plus per-role tallies.
struct AguProgram {
  std::vector<AguPattern> patterns;

  std::vector<const AguPattern*> ForLayer(int layer_id) const;
  int CountFor(AguRole role) const;
  std::string ToString() const;
};

/// Derive the full program for a network on a configured datapath.
AguProgram BuildAguProgram(const Network& net,
                           const AcceleratorConfig& config,
                           const FoldPlan& folds,
                           const DataLayoutPlan& layout,
                           const MemoryMap& memory);

}  // namespace db
