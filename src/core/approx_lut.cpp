#include "core/approx_lut.h"

#include <cmath>

#include "common/error.h"
#include "common/math_util.h"
#include "common/strings.h"

namespace db {

std::string LutFunctionName(LutFunction fn) {
  switch (fn) {
    case LutFunction::kSigmoid: return "sigmoid";
    case LutFunction::kTanh: return "tanh";
    case LutFunction::kExp: return "exp";
    case LutFunction::kRecip: return "recip";
    case LutFunction::kLrnPow: return "lrn_pow";
  }
  return "?";
}

LutFunction ParseLutFunction(const std::string& name) {
  const std::string n = ToLower(name);
  if (n == "sigmoid") return LutFunction::kSigmoid;
  if (n == "tanh") return LutFunction::kTanh;
  if (n == "exp") return LutFunction::kExp;
  if (n == "recip" || n == "reciprocal") return LutFunction::kRecip;
  if (n == "lrn_pow" || n == "lrnpow") return LutFunction::kLrnPow;
  DB_THROW("unknown LUT function '" << name << "'");
}

std::function<double(double)> LutFunctionImpl(LutFunction fn, double beta) {
  switch (fn) {
    case LutFunction::kSigmoid:
      return [](double x) { return Sigmoid(x); };
    case LutFunction::kTanh:
      return [](double x) { return TanhFn(x); };
    case LutFunction::kExp:
      return [](double x) { return std::exp(x); };
    case LutFunction::kRecip:
      return [](double x) {
        return std::fabs(x) < 1e-6 ? (x < 0 ? -1e6 : 1e6) : 1.0 / x;
      };
    case LutFunction::kLrnPow:
      return [beta](double x) {
        return x <= 0.0 ? 1.0 : std::pow(x, -beta);
      };
  }
  DB_THROW("unhandled LUT function");
}

ApproxLut ApproxLut::Generate(const ApproxLutSpec& spec) {
  if (!IsPow2(spec.entries) || spec.entries < 2)
    DB_THROW("approx LUT entries must be a power of two >= 2, got "
             << spec.entries);
  if (!(spec.in_min < spec.in_max))
    DB_THROW("approx LUT domain is empty: [" << spec.in_min << ", "
             << spec.in_max << "]");
  const auto fn = LutFunctionImpl(spec.function, spec.beta);
  std::vector<std::int64_t> values;
  values.reserve(static_cast<std::size_t>(spec.entries));
  // Sample at the left edge of each key bucket; the last bucket's sample
  // pairs with the domain end for interpolation.
  const double step = (spec.in_max - spec.in_min) /
                      static_cast<double>(spec.entries);
  for (std::int64_t i = 0; i < spec.entries; ++i) {
    const double x = spec.in_min + static_cast<double>(i) * step;
    values.push_back(spec.format.Quantize(fn(x)));
  }
  return ApproxLut(spec, std::move(values));
}

std::int64_t ApproxLut::EvalRaw(std::int64_t raw_key) const {
  // Map the raw fixed-point key onto the table domain.
  const double x = spec_.format.Dequantize(raw_key);
  const double span = spec_.in_max - spec_.in_min;
  double pos = (x - spec_.in_min) / span *
               static_cast<double>(spec_.entries);
  if (pos < 0.0) pos = 0.0;
  const double max_pos = static_cast<double>(spec_.entries) - 1e-9;
  if (pos > max_pos) pos = max_pos;

  const std::int64_t index = static_cast<std::int64_t>(pos);
  const std::int64_t lo = values_[static_cast<std::size_t>(index)];
  if (!spec_.interpolate) return lo;

  // Super-linear interpolation between the adjacent sampled keys; the
  // hardware multiplies the value delta by the fractional key bits.
  const std::int64_t hi = index + 1 < spec_.entries
                              ? values_[static_cast<std::size_t>(index + 1)]
                              : lo;
  const double frac = pos - static_cast<double>(index);
  // Quantise the fraction to the hardware's fractional-bit resolution so
  // simulation matches the RTL datapath.
  const int frac_bits = spec_.format.frac_bits();
  const std::int64_t frac_raw = static_cast<std::int64_t>(
      frac * std::ldexp(1.0, frac_bits));
  const std::int64_t delta = hi - lo;
  return spec_.format.Saturate(
      lo + ((delta * frac_raw) >> frac_bits));
}

double ApproxLut::Eval(double x) const {
  return spec_.format.Dequantize(EvalRaw(spec_.format.Quantize(x)));
}

double ApproxLut::MaxAbsError(int samples) const {
  const auto fn = LutFunctionImpl(spec_.function, spec_.beta);
  double max_err = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double x = spec_.in_min + (spec_.in_max - spec_.in_min) *
                                        static_cast<double>(i) /
                                        static_cast<double>(samples - 1);
    const double ref = spec_.format.RoundTrip(fn(x));
    max_err = std::max(max_err, std::fabs(Eval(x) - ref));
  }
  return max_err;
}

double ApproxLut::MeanAbsError(int samples) const {
  const auto fn = LutFunctionImpl(spec_.function, spec_.beta);
  double sum = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double x = spec_.in_min + (spec_.in_max - spec_.in_min) *
                                        static_cast<double>(i) /
                                        static_cast<double>(samples - 1);
    const double ref = spec_.format.RoundTrip(fn(x));
    sum += std::fabs(Eval(x) - ref);
  }
  return sum / static_cast<double>(samples);
}

}  // namespace db
