// Machine-readable export of a generated design.
//
// Downstream tooling (host runtimes, dashboards, regression diffing)
// wants the whole hardware/software bundle in one structured document:
// datapath configuration, fold plan, memory map, AGU patterns, schedule
// and resource totals.  The writer emits plain JSON with no external
// dependencies.
#pragma once

#include <string>

#include "core/generator.h"

namespace db {

/// Serialise the design to a JSON document (stable key order, 2-space
/// indentation) — suitable for golden-file diffs.
std::string DesignToJson(const AcceleratorDesign& design);

}  // namespace db
