// Host-side memory-image construction (the ARM core's job in the
// paper's flow: "The ARM core reorganizes the input data and weight data
// of neural networks into an optimized layout as directed by NN-Gen
// compiler, and then stores them into 2GB on-board DDR3 memory").
//
// The image is the byte-exact DRAM content: every weight array quantised
// and serialised into its region, every input blob quantised and
// reordered into the tile order its consumer's TileSpec demands.  The
// tests close the loop by walking the main AGU's load patterns over the
// image and checking that the fetched stream is exactly the data the
// datapath expects.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/generator.h"
#include "nn/weights.h"

namespace db {

/// A byte-addressable DRAM image.
class MemoryImage {
 public:
  explicit MemoryImage(std::int64_t bytes);

  std::int64_t size() const {
    return static_cast<std::int64_t>(bytes_.size());
  }

  /// Write / read one little-endian fixed-point element of `elem_bytes`
  /// at a byte address.  Bounds-checked.
  void WriteElem(std::int64_t addr, std::int64_t raw, int elem_bytes);
  std::int64_t ReadElem(std::int64_t addr, int elem_bytes) const;

  /// Flip one bit of the byte at `addr` (a DRAM soft error).
  /// Bounds-checked; `bit` must be in [0, 8).
  void FlipBit(std::int64_t addr, int bit);

  /// Copy `bytes` bytes starting at `base` from `src` into this image
  /// (scrub-and-reload recovery).  Both images must cover the range.
  void CopyRange(const MemoryImage& src, std::int64_t base,
                 std::int64_t bytes);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Build the full image for one invocation: all weights plus the given
/// input blobs (keyed by input-layer name).  Weights serialise in their
/// natural (row-major) order; input blobs are permuted into the tile
/// order of their consumer's layout entry.
MemoryImage BuildMemoryImage(const Network& net,
                             const AcceleratorDesign& design,
                             const WeightStore& weights,
                             const std::map<std::string, Tensor>& inputs);

/// The tile order used for a blob: the layout entry of its first
/// consumer (identity for the network output).  Exposed for tests.
std::vector<std::int64_t> BlobTileOrder(const Network& net,
                                        const AcceleratorDesign& design,
                                        int producer_layer_id);

/// Read a blob back out of the image, undoing the tile permutation and
/// dequantising — the host's post-processing of accelerator outputs.
Tensor ExtractBlob(const MemoryImage& image, const Network& net,
                   const AcceleratorDesign& design,
                   const std::string& layer_name);

/// Write a blob (e.g. a simulated accelerator output) into the image in
/// tile order; inverse of ExtractBlob.
void StoreBlob(MemoryImage& image, const Network& net,
               const AcceleratorDesign& design,
               const std::string& layer_name, const Tensor& value);

/// Hot-path variants taking the blob's region and precomputed tile
/// order (see BlobTileOrder) so steady-state callers — one store and one
/// extract per served request — skip the per-call permutation rebuild.
void StoreBlob(MemoryImage& image, const AcceleratorDesign& design,
               const MemoryRegion& region,
               const std::vector<std::int64_t>& order,
               const Tensor& value);
Tensor ExtractBlob(const MemoryImage& image,
                   const AcceleratorDesign& design,
                   const MemoryRegion& region,
                   const std::vector<std::int64_t>& order,
                   const BlobShape& shape);

}  // namespace db
