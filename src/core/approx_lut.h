// Approx LUT content generation and evaluation (paper §3.3).
//
// The hardware table stores sampled points of a complex function; keys
// that hit read the stored value, keys that miss interpolate between the
// adjacent sampled entries ("super-linear interpolation").  The compiler
// side (this file) parses the requested function, chooses the sample
// points and computes the stored values; the hardware side is emitted by
// rtl/block_emitters and the functional simulator evaluates through the
// same table object so accelerator outputs are bit-faithful to what the
// RTL would produce.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/fixed_point.h"

namespace db {

/// Functions the current library version maps onto Approx LUTs.
enum class LutFunction {
  kSigmoid,
  kTanh,
  kExp,        // softmax numerator
  kRecip,      // 1/x for softmax / LRN division
  kLrnPow,     // x^(-beta) for the LRN scale stage
};

std::string LutFunctionName(LutFunction fn);

/// Parse "sigmoid", "tanh", ... (case-insensitive).  Throws db::Error.
LutFunction ParseLutFunction(const std::string& name);

/// The reference scalar implementation of a LUT function; `beta` only
/// affects kLrnPow.
std::function<double(double)> LutFunctionImpl(LutFunction fn,
                                              double beta = 0.75);

/// Static configuration of one generated Approx LUT.
struct ApproxLutSpec {
  LutFunction function = LutFunction::kSigmoid;
  std::int64_t entries = 256;   // power of two
  bool interpolate = true;      // super-linear interpolation on miss
  FixedFormat format{16, 8};    // datapath fixed-point format
  // Input domain covered by the table; keys outside clamp to the ends
  // (saturating behaviour matching the datapath).
  double in_min = -8.0;
  double in_max = 8.0;
  double beta = 0.75;           // kLrnPow exponent
};

/// A generated lookup table: the compiler artifact burnt into BRAM.
class ApproxLut {
 public:
  /// Sample the function and build the table.  Throws db::Error for
  /// invalid specs (non-power-of-two entries, empty domain).
  static ApproxLut Generate(const ApproxLutSpec& spec);

  const ApproxLutSpec& spec() const { return spec_; }

  /// The stored raw values (fixed-point), in key order; what the RTL
  /// initialisation file would contain.
  const std::vector<std::int64_t>& table() const { return values_; }

  /// Hardware-faithful evaluation: quantise x, index by the top key bits,
  /// interpolate on the fractional bits if enabled, return the
  /// fixed-point result dequantised.
  double Eval(double x) const;

  /// Raw-in/raw-out evaluation used by the functional simulator.
  std::int64_t EvalRaw(std::int64_t raw_key) const;

  /// Maximum absolute error against the reference implementation over
  /// `samples` evenly-spaced points of the domain.
  double MaxAbsError(int samples = 10001) const;

  /// Mean absolute error over the domain.
  double MeanAbsError(int samples = 10001) const;

 private:
  ApproxLut(ApproxLutSpec spec, std::vector<std::int64_t> values)
      : spec_(spec), values_(std::move(values)) {}

  ApproxLutSpec spec_;
  std::vector<std::int64_t> values_;
};

}  // namespace db
