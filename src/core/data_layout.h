// Hardware-aware data layouting: Method-1 tiling and partitioning
// (paper §3.4, Fig. 7).
//
// Feature maps are reorganised from row-major order into kernel-aligned
// tiles, then partitioned into port-width-aligned sub-blocks so each
// buffer row activation delivers fully-used data to the datapath.  The
// compiler derives one TileSpec per blob; the simulator turns the spec
// into bandwidth utilisation and re-fetch factors, and the RTL AGUs are
// reduced to the access patterns the spec implies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/network.h"

namespace db {

/// Which Method-1 rule produced the layout.
enum class TileRule {
  kKernelTiles,       // rule 1: k == d -> k x k tiles, maps consecutive
  kStridePartition,   // rule 2: s | gcd(k, d) -> s x s partitions
  kCommonDivisor,     // rule 3: f = gcd(k, d, s) tiles, maps interleaved
  kLinear,            // FC / flat blobs: contiguous rows of port width
};

std::string TileRuleName(TileRule rule);

/// Layout of one feature-map blob in accelerator memory.
struct TileSpec {
  TileRule rule = TileRule::kLinear;
  std::int64_t tile_h = 1;
  std::int64_t tile_w = 1;
  bool interleave_maps = false;  // rule 3: tiles of t maps interleaved
  /// Elements delivered per buffer row activation (the port width d the
  /// spec was built for).
  std::int64_t port_elems = 1;
  /// Fraction of each fetched row that the consumer actually uses.
  double utilization = 1.0;
  /// Average number of times each input element is fetched from the
  /// buffer across the kernel sweep (1.0 = perfect reuse).
  double refetch = 1.0;

  std::string ToString() const;
};

/// Layout decision for the naive baseline (ablation): row-major rows of
/// the full map width fetched through a d-wide port.
TileSpec NaiveRowMajorLayout(const BlobShape& blob, std::int64_t kernel,
                             std::int64_t stride, std::int64_t port_elems);

/// Method-1: choose the tile layout for a blob consumed by a windowed
/// operator (convolution/pooling) of the given kernel and stride through
/// a d-element memory port, with `map_count` maps sharing the buffer.
TileSpec Method1Layout(const BlobShape& blob, std::int64_t kernel,
                       std::int64_t stride, std::int64_t port_elems,
                       std::int64_t map_count);

/// Layout for blobs consumed linearly (FC layers, activations).
TileSpec LinearLayout(const BlobShape& blob, std::int64_t port_elems);

/// The layout plan of a whole network: one TileSpec per layer describing
/// how that layer's *input* blob is organised for its consumer.
struct DataLayoutPlan {
  struct Entry {
    int layer_id = 0;
    std::string layer_name;
    TileSpec input_layout;
    TileSpec weight_layout;  // weights partitioned to accompany features
  };
  std::vector<Entry> entries;

  const Entry& ForLayer(int layer_id) const;
  std::string ToString() const;
};

/// Build the plan for every compute layer of a network given the
/// accelerator's memory port width.
DataLayoutPlan PlanDataLayout(const Network& net, std::int64_t port_elems);

/// Reorder a row-major (C,H,W) tensor's elements into the tile order the
/// spec describes; returns the permutation `perm` such that
/// tiled[i] = flat[perm[i]].  Exposed for tests and the memory-image
/// writer; the AGU patterns are validated against this permutation.
std::vector<std::int64_t> TilePermutation(const BlobShape& blob,
                                          const TileSpec& spec);

}  // namespace db
