#include "serve/request_queue.h"

#include <utility>

#include "common/error.h"

namespace db::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  DB_CHECK_MSG(capacity_ >= 1, "queue capacity must be at least 1");
}

void RequestQueue::Push(PendingRequest request) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock,
                 [&] { return closed_ || items_.size() < capacity_; });
  if (closed_) throw Error("request queue is closed");
  items_.push_back(std::move(request));
  not_empty_.notify_one();
}

std::optional<PendingRequest> RequestQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;  // closed and drained
  PendingRequest request = std::move(items_.front());
  items_.pop_front();
  not_full_.notify_one();
  return request;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

}  // namespace db::serve
