#include "serve/request_queue.h"

#include <utility>

namespace db::serve {

RequestQueue::RequestQueue(std::size_t capacity, AdmissionPolicy policy)
    : capacity_(capacity), policy_(policy) {
  DB_CHECK_MSG(capacity_ >= 1, "queue capacity must be at least 1");
}

AdmissionResult RequestQueue::Push(PendingRequest request) {
  std::unique_lock<std::mutex> lock(mu_);
  AdmissionResult result;
  switch (policy_) {
    case AdmissionPolicy::kBlock:
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      break;
    case AdmissionPolicy::kReject:
      if (!closed_ && items_.size() >= capacity_) {
        ++rejected_;
        result.status = StatusCode::kRejected;
        return result;
      }
      break;
    case AdmissionPolicy::kShedOldest:
      if (!closed_ && items_.size() >= capacity_) {
        ++shed_;
        result.shed = std::move(items_.front());
        items_.pop_front();
      }
      break;
  }
  if (closed_) throw ShutdownError("request queue is closed");
  items_.push_back(std::move(request));
  not_empty_.notify_one();
  return result;
}

std::optional<PendingRequest> RequestQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;  // closed and drained
  PendingRequest request = std::move(items_.front());
  items_.pop_front();
  not_full_.notify_one();
  return request;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

std::int64_t RequestQueue::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

std::int64_t RequestQueue::shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

}  // namespace db::serve
