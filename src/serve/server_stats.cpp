#include "serve/server_stats.h"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/strings.h"

namespace db::serve {

double ServerStats::WorkerUtilization(int worker) const {
  DB_CHECK(worker >= 0 &&
           worker < static_cast<int>(worker_busy_cycles.size()));
  if (makespan_cycles <= 0) return 0.0;
  return static_cast<double>(
             worker_busy_cycles[static_cast<std::size_t>(worker)]) /
         static_cast<double>(makespan_cycles);
}

std::string ServerStats::ToString() const {
  std::ostringstream os;
  os << StrFormat(
      "  %lld requests in %lld batches on %d workers @ %.0f MHz\n",
      static_cast<long long>(requests), static_cast<long long>(batches),
      workers, frequency_mhz);
  os << StrFormat("  makespan  %.4f ms   throughput %.1f req/s\n",
                  makespan_seconds * 1e3, throughput_rps);
  os << StrFormat(
      "  latency   p50 %.4f ms  p90 %.4f ms  p99 %.4f ms  max %.4f ms\n",
      latency_p50_s * 1e3, latency_p90_s * 1e3, latency_p99_s * 1e3,
      latency_max_s * 1e3);
  os << StrFormat("  traffic   %lld DRAM bytes   energy %.4f J\n",
                  static_cast<long long>(total_dram_bytes), total_joules);
  os << StrFormat(
      "  outcomes  ok %lld  shed %lld  rejected %lld  deadline %lld  "
      "faulted %lld\n",
      static_cast<long long>(completed), static_cast<long long>(shed),
      static_cast<long long>(rejected),
      static_cast<long long>(deadline_exceeded),
      static_cast<long long>(faulted));
  if (faults_injected > 0 || retries > 0 || recovery_cycles > 0)
    os << StrFormat(
        "  faults    %lld injected  %lld retries  %lld recovery cycles\n",
        static_cast<long long>(faults_injected),
        static_cast<long long>(retries),
        static_cast<long long>(recovery_cycles));
  if (crashes > 0 || hangs > 0 || slow_faults > 0 || route_failures > 0 ||
      breaker_opens > 0 || hedges > 0)
    os << StrFormat(
        "  cluster   %lld crashes  %lld hangs  %lld slow  %lld "
        "route-fails  %lld redispatched  %lld readmissions  %lld "
        "breaker-opens  %lld/%lld hedges won\n",
        static_cast<long long>(crashes), static_cast<long long>(hangs),
        static_cast<long long>(slow_faults),
        static_cast<long long>(route_failures),
        static_cast<long long>(redispatched),
        static_cast<long long>(readmissions),
        static_cast<long long>(breaker_opens),
        static_cast<long long>(hedge_wins),
        static_cast<long long>(hedges));
  for (int w = 0; w < static_cast<int>(worker_busy_cycles.size()); ++w) {
    const auto idx = static_cast<std::size_t>(w);
    os << StrFormat("  worker %d  busy %lld cycles  (%.1f%% utilised)",
                    w,
                    static_cast<long long>(worker_busy_cycles[idx]),
                    WorkerUtilization(w) * 100.0);
    if (idx < replica_requests.size())
      os << StrFormat("  served %lld req in %lld batches",
                      static_cast<long long>(replica_requests[idx]),
                      static_cast<long long>(replica_batches[idx]));
    os << "\n";
  }
  return os.str();
}

ServerStats ComputeServerStats(
    std::span<const ServedRequest> requests, std::int64_t batches,
    double frequency_mhz, std::vector<std::int64_t> worker_busy_cycles) {
  DB_CHECK_MSG(frequency_mhz > 0, "frequency must be positive");
  ServerStats stats;
  stats.requests = static_cast<std::int64_t>(requests.size());
  stats.batches = batches;
  stats.workers = static_cast<int>(worker_busy_cycles.size());
  stats.frequency_mhz = frequency_mhz;
  stats.worker_busy_cycles = std::move(worker_busy_cycles);
  stats.replica_requests.assign(stats.worker_busy_cycles.size(), 0);
  stats.replica_batches.assign(stats.worker_busy_cycles.size(), 0);
  if (requests.empty()) return stats;

  // Distinct batches per replica (a batch runs on exactly one replica).
  std::vector<std::set<std::int64_t>> replica_batch_ids(
      stats.worker_busy_cycles.size());

  const double cycles_to_s = 1.0 / (frequency_mhz * 1e6);
  std::int64_t first_arrival = std::numeric_limits<std::int64_t>::max();
  for (const ServedRequest& r : requests) {
    stats.retries += r.retries;
    stats.recovery_cycles += r.recovery_cycles;
    switch (r.status) {
      case StatusCode::kShed: ++stats.shed; continue;
      case StatusCode::kRejected: ++stats.rejected; continue;
      case StatusCode::kDeadlineExceeded:
        ++stats.deadline_exceeded;
        continue;
      case StatusCode::kFaulted: ++stats.faulted; continue;
      case StatusCode::kOk: ++stats.completed; break;
    }
    if (r.worker >= 0 &&
        r.worker < static_cast<int>(stats.replica_requests.size())) {
      const auto w = static_cast<std::size_t>(r.worker);
      ++stats.replica_requests[w];
      replica_batch_ids[w].insert(r.batch_id);
    }
    DB_CHECK_MSG(r.finish_cycle >= r.arrival_cycle,
                 "request finishes before it arrives");
    stats.makespan_cycles = std::max(stats.makespan_cycles, r.finish_cycle);
    first_arrival = std::min(first_arrival, r.arrival_cycle);
    stats.latency_cycles.Observe(
        static_cast<double>(r.finish_cycle - r.arrival_cycle));
    stats.total_dram_bytes += r.dram_bytes;
    stats.total_joules += r.joules;
  }
  for (std::size_t w = 0; w < replica_batch_ids.size(); ++w)
    stats.replica_batches[w] =
        static_cast<std::int64_t>(replica_batch_ids[w].size());
  stats.makespan_seconds =
      static_cast<double>(stats.makespan_cycles) * cycles_to_s;
  if (stats.latency_cycles.count == 0)
    return stats;  // nothing reached the datapath

  const double span_s =
      static_cast<double>(stats.makespan_cycles - first_arrival) *
      cycles_to_s;
  if (span_s > 0)
    stats.throughput_rps = static_cast<double>(stats.completed) / span_s;

  stats.latency_p50_s = stats.latency_cycles.P50() * cycles_to_s;
  stats.latency_p90_s = stats.latency_cycles.P90() * cycles_to_s;
  stats.latency_p99_s = stats.latency_cycles.P99() * cycles_to_s;
  stats.latency_max_s = stats.latency_cycles.max * cycles_to_s;
  stats.latency_mean_s = stats.latency_cycles.Mean() * cycles_to_s;
  return stats;
}

}  // namespace db::serve
