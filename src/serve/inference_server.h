// Concurrent batched inference server on top of the system simulation —
// the first "serves traffic" layer of the stack (ROADMAP north star),
// hardened against the fault model of src/fault.
//
// Architecture (one request's journey):
//
//   Submit(input, arrival_cycle[, deadline_cycle])
//     │  admission control in *simulated time* (kBlock / kReject /
//     │  kShedOldest against queue_capacity), then the bounded
//     │  RequestQueue (wall-clock back-pressure: Submit blocks when full)
//     ▼
//   dispatcher thread: Batcher groups requests (max batch + linger,
//     both in simulated cycles), then a cluster::ShardRouter picks the
//     replica for each closed batch (round-robin, least-loaded in
//     simulated time, or hash-affinity)
//     │  per-replica work lanes (cluster::AcceleratorPool)
//     ▼
//   replica lanes: the pool holds N replicas of the generated design,
//     each with a private DRAM MemoryImage (copied from the image built
//     once at start-up) and its own SystemContext decoded from those
//     bytes; weights stay resident across images after the replica's
//     first (cold) invocation.  Before each request service the lane
//     fires any injected faults bound to that invocation on that
//     replica, charges stalls, expires requests past their deadline,
//     verifies the weight-region checksum (scrub-and-reload from the
//     provisioned image on mismatch) and retries transient failures with
//     bounded exponential backoff — all charged in simulated cycles.
//
// Determinism: batch composition, replica assignment, admission
// decisions, fault firing points and every recovery charge are computed
// purely from the submission order, the arrival cycles, the design's
// (deterministic) cold/steady invocation cycle counts and the seeded
// fault plan — never from thread timing.  Outputs of kOk requests are
// bit-identical to running the same inputs through sequential
// HostRuntime::InferBatch — and identical for any replica count, since
// every replica starts from the same provisioned bytes — and every
// reported cycle number is reproducible run to run; the lane threads
// merely overlap the wall-clock cost of producing them.
//
// Lifecycle: kStarting (constructor) → kServing (threads running) →
// kDraining (Drain called, intake closed) → kStopped (workers joined,
// observability published).  Submit outside kServing throws
// db::ShutdownError.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/accelerator_pool.h"
#include "cluster/health_monitor.h"
#include "cluster/shard_router.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/tracer.h"
#include "serve/batcher.h"
#include "serve/request_queue.h"
#include "serve/server_stats.h"
#include "sim/host_runtime.h"
#include "sim/system_sim.h"

namespace db::serve {

enum class ServerState { kStarting, kServing, kDraining, kStopped };

/// Saturating exponential-backoff charge: base << attempt, computed
/// without shifting past the int64 width and clamped to `cap`.  Pure;
/// exposed so tests can pin the arithmetic.
std::int64_t RetryBackoffCycles(std::int64_t base, int attempt,
                                std::int64_t cap);

constexpr const char* ServerStateName(ServerState state) {
  switch (state) {
    case ServerState::kStarting: return "starting";
    case ServerState::kServing: return "serving";
    case ServerState::kDraining: return "draining";
    case ServerState::kStopped: return "stopped";
  }
  return "unknown";
}

struct ServeOptions {
  /// Number of simulated accelerator replicas in the pool — the
  /// historical name from when each one was a "worker" thread.  Kept as
  /// the default knob for backward compatibility; `replicas` overrides
  /// it when positive.
  int workers = 2;
  /// Pool size by its cluster-era name; 0 = use `workers`.
  int replicas = 0;
  /// How closed batches are spread across the replicas.  All three
  /// policies are deterministic; kLeastLoaded reproduces the historical
  /// earliest-free-datapath placement.
  cluster::RouterPolicy router = cluster::RouterPolicy::kLeastLoaded;
  /// Content hash pinning this server's model under kHashAffinity
  /// (typically the DesignKey digest).  A single-model pool then keeps
  /// one replica hot — the intended shard-per-model behaviour.
  std::uint64_t affinity_hash = 0;
  std::int64_t max_batch_size = 4;
  std::int64_t linger_cycles = 0;
  std::size_t queue_capacity = 64;
  /// What happens when the queue is full.  The server evaluates the
  /// policy against the *simulated-time* queue depth (requests whose
  /// batch has not yet closed), so which requests are shed or rejected
  /// is a pure function of the arrival stream, not of thread timing;
  /// the wall-clock RequestQueue keeps kBlock semantics as the memory
  /// back-pressure layer underneath.
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Default relative deadline: a request submitted without an explicit
  /// deadline must start service within this many cycles of arrival.
  /// 0 = no default deadline.
  std::int64_t deadline_cycles = 0;
  /// Seeded deterministic fault campaign (empty = fault-free serving).
  fault::FaultPlan faults;
  /// Transient-failure retry policy: at most `max_retries` attempts are
  /// retried per request, each charging the invocation cost plus
  /// `retry_backoff_cycles << attempt` simulated cycles; exhaustion
  /// completes the request as StatusCode::kFaulted.
  int max_retries = 3;
  std::int64_t retry_backoff_cycles = 64;
  /// Saturation cap for the exponential backoff: the charge for attempt
  /// k is min(retry_backoff_cycles << k, max_retry_backoff_cycles),
  /// computed shift-safely (RetryBackoffCycles), so huge deadlines or
  /// retry counts can never overflow int64 cycle math.
  std::int64_t max_retry_backoff_cycles = std::int64_t{1} << 32;
  /// Opt-in request hedging: when a batch's planned completion exceeds
  /// its ready cycle by more than this many cycles, the dispatcher
  /// plans a duplicate on the best other healthy replica starting at
  /// ready + hedge_after_cycles and keeps whichever copy finishes
  /// first; the loser is cancelled (its lane charges the occupied
  /// window but never runs the datapath, so outputs stay bit-identical
  /// to the unhedged run).  0 = disabled.
  std::int64_t hedge_after_cycles = 0;
  /// Per-replica circuit breaker (closed/open/half-open with a
  /// cycle-based cooldown); disabled unless `breaker.enabled`.
  cluster::BreakerOptions breaker;
  /// Replica health-monitor knobs (heartbeat grid, miss/failure
  /// thresholds); the readmit scrub charge is overwritten with the
  /// server's weight-scrub cost.
  cluster::HealthOptions health;
  std::string device_name = "zynq-7045";
  /// Base performance-model options; the server manages
  /// `weights_resident` itself (cold first image per worker, steady
  /// after), matching HostRuntime::InferBatch.
  PerfOptions perf;
  /// Optional observability sinks.  Request lifecycle spans — queue
  /// residency on "serve/queue" (async) plus batch and per-request
  /// service spans on "serve/worker N" — fault/recovery spans, and the
  /// "serve.*" / "fault.*" metrics are published once, inside the first
  /// Drain() call, derived from the deterministic per-request and
  /// per-worker records after every worker joined; the worker threads
  /// themselves never touch the sinks, so the emitted trace is
  /// byte-identical across runs.  `perf.metrics` additionally receives
  /// the workers' per-invocation "sim.*" counters (commutative, still
  /// deterministic).
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional deterministic load time-series sink, populated once at
  /// Drain() from the final records and replica busy intervals.  Series
  /// (all sampled on the same simulated-cycle grid): "load.queue_depth"
  /// (requests whose service has not started), "load.in_flight"
  /// (requests inside a datapath window), "load.sheds" (cumulative
  /// shed + rejected + expired + faulted dispositions) and
  /// "load.replica<r>.busy" (busy fraction of the *preceding* sample
  /// window, in [0, 1]).
  obs::TimeSeriesRecorder* timeseries = nullptr;
  /// Sample interval in simulated cycles; 0 picks the smallest power of
  /// two giving at most 64 sample boundaries over the makespan, so the
  /// export stays compact for any workload length.
  std::int64_t timeseries_interval_cycles = 0;
};

class InferenceServer {
 public:
  /// Serialises the weights into a DRAM image once; the accelerator
  /// pool stamps out one private copy (and one decoded SystemContext)
  /// per replica.  Lane threads start immediately.
  InferenceServer(const Network& net, const AcceleratorDesign& design,
                  const WeightStore& weights, ServeOptions options = {});

  /// Joins all threads (abandoning queued work if Drain was not called).
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueue one request; blocks while the bounded queue is full (under
  /// kBlock).  Arrival cycles must be non-decreasing across calls.
  /// `deadline_cycle` is the absolute cycle by which service must have
  /// started (0: use the options' default relative deadline, or none).
  /// Returns the request id (dense, in submission order); a rejected or
  /// shed request still gets an id and a record with its status.
  /// Throws db::ShutdownError unless the server is in kServing.
  std::int64_t Submit(Tensor input, std::int64_t arrival_cycle,
                      std::int64_t deadline_cycle = 0);

  /// End intake, wait until every submitted request has completed, and
  /// return the records ordered by request id.  Idempotent.
  const std::vector<ServedRequest>& Drain();

  /// Aggregate metrics; valid after Drain().
  ServerStats Stats() const;

  /// Lifecycle observer (see ServerState).
  ServerState state() const { return state_.load(); }

  const ServeOptions& options() const { return options_; }

  /// Resolved pool size (options().replicas, falling back to workers).
  int replicas() const { return pool_.size(); }

  /// Cycle cost the scheduler charges per invocation (exposed so tests
  /// and benches can reason about the schedule analytically).
  std::int64_t cold_cycles() const { return cold_cycles_; }
  std::int64_t steady_cycles() const { return steady_cycles_; }
  /// Cycles one weight-region scrub-and-reload charges.
  std::int64_t scrub_cycles() const { return scrub_cycles_; }

  /// Cluster-resilience accounting (valid after Drain()).
  std::int64_t crashes() const { return crashes_; }
  std::int64_t hedges() const { return hedge_count_; }
  std::int64_t hedge_wins() const { return hedge_wins_; }
  std::int64_t redispatched_requests() const { return redispatched_; }
  const cluster::ReplicaHealthMonitor& health_monitor() const {
    return monitor_;
  }
  const cluster::CircuitBreaker& circuit_breaker() const {
    return breaker_;
  }

 private:
  /// A batch bound to a replica with its service window decided.
  struct ScheduledBatch {
    Batch batch;
    int replica = -1;
    std::int64_t start_cycle = 0;
    /// Per-request slow-replica surcharge (cycles added to the service
    /// charge), aligned with batch.requests; empty = all zero.
    std::vector<std::int64_t> penalties;
  };

  /// The dispatcher's pure plan for a batch on a replica: start/finish
  /// from the simulated free cycle, per-request slow surcharges from
  /// the replica's live slow-fault state.  Side-effect free so hedging
  /// can evaluate alternates before committing.
  struct BatchPlan {
    std::int64_t start = 0;
    std::int64_t finish = 0;
    std::vector<std::int64_t> penalties;
  };

  /// Outcome of firing a replica's pending cluster events for one
  /// dispatch window.
  struct CrashSplit {
    bool crashed = false;
    std::int64_t event_invocation = 0;  // clamped into the window
    std::int64_t down_cycles = 0;
  };

  void DispatcherLoop();
  /// Serve one scheduled batch on replica `index` (runs on that
  /// replica's lane thread; touches only that replica's state plus the
  /// lock-guarded results).
  void ServeBatch(int index, ScheduledBatch& scheduled);
  void DispatchBatch(Batch batch);
  /// Place `batch` on the cluster at `ready`: health-masked routing,
  /// cluster-fault firing (route failures re-route, crashes split the
  /// batch and re-dispatch the remainder), optional hedging, then
  /// commit to a lane.  Dispatcher thread only.
  void ScheduleOnCluster(Batch batch, std::int64_t ready);
  BatchPlan PlanBatch(int r, const Batch& batch, std::int64_t ready) const;
  /// Fire replica r's pending cluster events for a dispatch covering
  /// invocations [scheduled, scheduled + size).  Returns false when a
  /// transient route failure consumed this attempt (caller re-routes);
  /// fills `crash` when the replica crashes inside the window.
  bool FireClusterEvents(int r, std::int64_t size, std::int64_t ready,
                         CrashSplit* crash);
  /// Advance the committed schedule for a batch executing on r per
  /// `plan` and post it to r's lane.
  void CommitBatch(int r, Batch batch, BatchPlan plan);
  /// Lane task: scrub-and-readmit a crashed replica at `readmit_cycle`
  /// (verify + reload weights from the provisioned image, charge the
  /// scrub, drop warm state — a reboot loses residency).
  void PostReadmitScrub(int r, std::int64_t readmit_cycle);
  /// Lane task: charge the cancelled side of a hedge the [start,
  /// cancel) occupancy without running the datapath.
  void PostHedgeCancel(int r, std::int64_t start, std::int64_t cancel);
  /// Append a dispatcher-side cluster episode for the "cluster" track.
  void LogClusterEvent(const char* name, int replica, std::int64_t start,
                       std::int64_t end,
                       std::vector<std::pair<std::string, std::string>>
                           args = {});
  /// Mark request `id` completed with `status` (results_mu_ held by the
  /// caller is NOT assumed; takes the lock itself).
  void CompleteWithoutService(std::int64_t id, StatusCode status,
                              std::int64_t finish_cycle);
  /// Emit spans + metrics from the completed records (results_mu_ held,
  /// lanes joined); runs once, from the first Drain().
  void PublishObservability();
  /// Sample the load time-series from the final records and replica
  /// busy intervals (same preconditions as PublishObservability).
  void PublishTimeSeries();

  const Network& net_;
  const AcceleratorDesign& design_;
  const DeviceInfo& device_;
  ServeOptions options_;
  int replica_count_ = 1;  // resolved from options (replicas or workers)

  MemoryImage provisioned_;  // built once; every replica copies its bytes
  fault::FaultInjector injector_;
  std::int64_t cold_cycles_ = 0;
  std::int64_t steady_cycles_ = 0;
  std::uint64_t weight_checksum_ = 0;  // of the provisioned image
  std::int64_t scrub_cycles_ = 0;

  RequestQueue queue_;
  cluster::AcceleratorPool pool_;
  std::thread dispatcher_;

  // Deterministic scheduler state (dispatcher thread only).
  Batcher batcher_;
  cluster::ShardRouter router_;
  std::vector<std::int64_t> replica_free_cycle_;
  std::vector<bool> replica_scheduled_warm_;
  std::int64_t batches_dispatched_ = 0;

  // Cluster-resilience state (dispatcher thread only while serving;
  // readable after Drain).  `scheduled_invocations_[r]` counts services
  // the dispatcher has committed to replica r — the coordinate space of
  // cluster fault events (distinct from the lane's rep.invocations,
  // which counts attempted services including tombstone skips).
  cluster::ReplicaHealthMonitor monitor_;
  cluster::CircuitBreaker breaker_;
  std::vector<std::int64_t> scheduled_invocations_;
  std::vector<std::size_t> cluster_cursor_;
  struct SlowState {
    std::int64_t factor = 1;
    std::int64_t services = 0;  // invocations the factor still covers
  };
  std::vector<SlowState> slow_;
  /// Dispatcher-side episode log for "cluster"-track spans.
  struct ClusterEpisode {
    std::string name;
    int replica = -1;
    std::int64_t start = 0;
    std::int64_t end = 0;
    std::vector<std::pair<std::string, std::string>> args;
  };
  std::vector<ClusterEpisode> cluster_log_;
  std::int64_t crashes_ = 0;
  std::int64_t hangs_ = 0;
  std::int64_t slow_faults_ = 0;
  std::int64_t route_failures_ = 0;
  std::int64_t redispatched_ = 0;
  std::int64_t readmissions_ = 0;
  std::int64_t hedge_count_ = 0;
  std::int64_t hedge_wins_ = 0;
  std::int64_t redispatch_batches_ = 0;  // fresh ids for remainders

  // Submission state (caller threads, guarded by submit_mu_).
  std::mutex submit_mu_;
  std::int64_t next_request_id_ = 0;
  std::int64_t last_arrival_ = 0;
  // Simulated-time admission shadow: mirrors the dispatcher's batcher
  // over the admitted stream so Submit knows the simulated queue depth
  // (members of the still-open batch) without racing the dispatcher.
  std::int64_t shadow_open_count_ = 0;    // open-batch size incl. shed
  std::int64_t shadow_first_arrival_ = 0;
  std::deque<std::int64_t> shadow_live_;  // queued (non-shed) request ids

  std::atomic<ServerState> state_{ServerState::kStarting};

  // Completion tracking and results.
  mutable std::mutex results_mu_;
  std::vector<ServedRequest> results_;  // indexed by request id
  std::int64_t completed_ = 0;
  bool drained_ = false;
};

}  // namespace db::serve
