// Concurrent batched inference server on top of the system simulation —
// the first "serves traffic" layer of the stack (ROADMAP north star).
//
// Architecture (one request's journey):
//
//   Submit(input, arrival_cycle)
//     │  bounded RequestQueue (back-pressure: Submit blocks when full)
//     ▼
//   dispatcher thread: Batcher groups requests (max batch + linger,
//     both in simulated cycles), then schedules each closed batch onto
//     the worker whose datapath frees earliest
//     │  per-worker work deques
//     ▼
//   worker threads: each owns a private DRAM MemoryImage (copied from
//     the image built once at start-up) and executes its batches through
//     the shared read-only SystemContext; weights stay resident across
//     images after the worker's first (cold) invocation
//
// Determinism: batch composition and worker assignment are computed by
// the dispatcher purely from the submission order, the arrival cycles
// and the design's (deterministic) cold/steady invocation cycle counts —
// never from thread timing.  Outputs are bit-identical to running the
// same inputs through sequential HostRuntime::InferBatch, and every
// reported cycle number is reproducible run to run; the worker threads
// merely overlap the wall-clock cost of producing them.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/tracer.h"
#include "serve/batcher.h"
#include "serve/request_queue.h"
#include "serve/server_stats.h"
#include "sim/host_runtime.h"
#include "sim/system_sim.h"

namespace db::serve {

struct ServeOptions {
  int workers = 2;
  std::int64_t max_batch_size = 4;
  std::int64_t linger_cycles = 0;
  std::size_t queue_capacity = 64;
  std::string device_name = "zynq-7045";
  /// Base performance-model options; the server manages
  /// `weights_resident` itself (cold first image per worker, steady
  /// after), matching HostRuntime::InferBatch.
  PerfOptions perf;
  /// Optional observability sinks.  Request lifecycle spans — queue
  /// residency on "serve/queue" (async) plus batch and per-request
  /// service spans on "serve/worker N" — and the "serve.*" metrics are
  /// published once, inside the first Drain() call, derived from the
  /// deterministic per-request records after every worker joined; the
  /// worker threads themselves never touch the sinks, so the emitted
  /// trace is byte-identical across runs.  `perf.metrics` additionally
  /// receives the workers' per-invocation "sim.*" counters (commutative,
  /// still deterministic).
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

class InferenceServer {
 public:
  /// Serialises the weights into a DRAM image once; each worker context
  /// copies that image and decodes the shared read-only SystemContext.
  /// Worker threads start immediately.
  InferenceServer(const Network& net, const AcceleratorDesign& design,
                  const WeightStore& weights, ServeOptions options = {});

  /// Joins all threads (abandoning queued work if Drain was not called).
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueue one request; blocks while the bounded queue is full.
  /// Arrival cycles must be non-decreasing across calls.  Returns the
  /// request id (dense, in submission order).
  std::int64_t Submit(Tensor input, std::int64_t arrival_cycle);

  /// End intake, wait until every submitted request has completed, and
  /// return the records ordered by request id.  Idempotent.
  const std::vector<ServedRequest>& Drain();

  /// Aggregate metrics; valid after Drain().
  ServerStats Stats() const;

  const ServeOptions& options() const { return options_; }

  /// Cycle cost the scheduler charges per invocation (exposed so tests
  /// and benches can reason about the schedule analytically).
  std::int64_t cold_cycles() const { return cold_cycles_; }
  std::int64_t steady_cycles() const { return steady_cycles_; }

 private:
  /// A batch bound to a worker with its service window decided.
  struct ScheduledBatch {
    Batch batch;
    int worker = -1;
    std::int64_t start_cycle = 0;
  };

  /// One worker: a private DRAM image plus a work deque.
  struct WorkerContext {
    explicit WorkerContext(MemoryImage img) : image(std::move(img)) {}
    MemoryImage image;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<ScheduledBatch> work;
    bool closed = false;
    bool warm = false;  // weights resident after the first image
    std::int64_t busy_cycles = 0;
    std::thread thread;
  };

  void DispatcherLoop();
  void WorkerLoop(int index);
  void DispatchBatch(Batch batch);
  /// Emit spans + metrics from the completed records (results_mu_ held,
  /// workers joined); runs once, from the first Drain().
  void PublishObservability();

  const Network& net_;
  const AcceleratorDesign& design_;
  const DeviceInfo& device_;
  ServeOptions options_;

  MemoryImage provisioned_;  // built once; workers copy these bytes
  SystemContext context_;    // shared, read-only across workers
  std::int64_t cold_cycles_ = 0;
  std::int64_t steady_cycles_ = 0;

  RequestQueue queue_;
  std::vector<std::unique_ptr<WorkerContext>> workers_;
  std::thread dispatcher_;

  // Deterministic scheduler state (dispatcher thread only).
  Batcher batcher_;
  std::vector<std::int64_t> worker_free_cycle_;
  std::vector<bool> worker_scheduled_warm_;
  std::int64_t batches_dispatched_ = 0;

  // Submission state (caller threads).
  std::mutex submit_mu_;
  std::int64_t next_request_id_ = 0;
  std::int64_t last_arrival_ = 0;
  bool intake_closed_ = false;

  // Completion tracking and results.
  mutable std::mutex results_mu_;
  std::vector<ServedRequest> results_;  // indexed by request id
  std::int64_t completed_ = 0;
  bool drained_ = false;
};

}  // namespace db::serve
