#include "serve/inference_server.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/error.h"
#include "common/math_util.h"
#include "common/strings.h"
#include "sim/power_model.h"

namespace db::serve {

namespace {

/// Pool size: `replicas` when set, else the historical `workers` knob.
/// Validated here because the pool and injector consume it in the
/// constructor's initialiser list.
int ResolveReplicaCount(const ServeOptions& options) {
  DB_CHECK_MSG(options.workers >= 1, "server needs at least one worker");
  DB_CHECK_MSG(options.replicas >= 0,
               "replicas must be >= 0 (0 = use workers)");
  return options.replicas > 0 ? options.replicas : options.workers;
}

}  // namespace

std::int64_t RetryBackoffCycles(std::int64_t base, int attempt,
                                std::int64_t cap) {
  if (base <= 0) return 0;
  if (attempt < 0) attempt = 0;
  // `base << attempt` overflows exactly when base > cap >> attempt (or
  // the shift itself would exceed the int64 width); both saturate to the
  // cap instead of wrapping.
  if (attempt >= 63 || base > (cap >> attempt)) return cap;
  return std::min(cap, base << attempt);
}

InferenceServer::InferenceServer(const Network& net,
                                 const AcceleratorDesign& design,
                                 const WeightStore& weights,
                                 ServeOptions options)
    : net_(net),
      design_(design),
      device_(DeviceCatalog(options.device_name)),
      options_(std::move(options)),
      replica_count_(ResolveReplicaCount(options_)),
      provisioned_(BuildHostImage(net, design, weights)),
      injector_(options_.faults, replica_count_),
      queue_(options_.queue_capacity),
      pool_(net, design, provisioned_, replica_count_),
      batcher_(BatchPolicy{options_.max_batch_size,
                           options_.linger_cycles}),
      router_(options_.router, replica_count_, options_.affinity_hash),
      monitor_(replica_count_, options_.health),
      breaker_(replica_count_, options_.breaker) {
  DB_CHECK_MSG(options_.max_retries >= 0, "max_retries must be >= 0");
  DB_CHECK_MSG(options_.retry_backoff_cycles >= 1,
               "retry_backoff_cycles must be >= 1");
  DB_CHECK_MSG(options_.max_retry_backoff_cycles >=
                   options_.retry_backoff_cycles,
               "max_retry_backoff_cycles must be >= retry_backoff_cycles");
  DB_CHECK_MSG(options_.hedge_after_cycles >= 0,
               "hedge_after_cycles must be >= 0");
  DB_CHECK_MSG(options_.deadline_cycles >= 0,
               "deadline_cycles must be >= 0");

  // The scheduler charges every invocation its deterministic cycle cost,
  // so batch placement never depends on thread timing.  Traces are a
  // per-run artifact, not a serving concern: workers always simulate
  // untraced.  These planning presimulations also publish no metrics —
  // only actual request service does.
  PerfOptions cold = options_.perf;
  cold.trace = nullptr;
  cold.metrics = nullptr;
  cold.weights_resident = false;
  cold_cycles_ = SimulatePerformance(net_, design_, cold).total_cycles;
  PerfOptions steady = cold;
  steady.weights_resident = true;
  steady_cycles_ = SimulatePerformance(net_, design_, steady).total_cycles;

  // Integrity reference for the scrub engine: the provisioned image's
  // weight-region checksum, and the deterministic cycle charge of one
  // scrub-and-reload (weight bytes over the DRAM port width).
  weight_checksum_ = fault::WeightChecksum(provisioned_, design_.memory_map);
  const std::int64_t port_bytes =
      design_.config.ElementBytes() * design_.config.memory_port_elems;
  scrub_cycles_ = std::max<std::int64_t>(
      CeilDiv(fault::WeightRegionBytes(design_.memory_map),
              std::max<std::int64_t>(port_bytes, 1)),
      1);

  // The health monitor charges the same scrub-and-reload cost the lanes
  // do, so a readmitted replica turns kHealthy exactly when its lane's
  // scrub pass finishes in simulated time.
  monitor_.set_readmit_scrub_cycles(scrub_cycles_);

  // The DRAM image was built exactly once (provisioned_); the pool
  // stamped out one private copy per replica and started the lanes.
  replica_free_cycle_.assign(static_cast<std::size_t>(replica_count_), 0);
  replica_scheduled_warm_.assign(static_cast<std::size_t>(replica_count_),
                                 false);
  scheduled_invocations_.assign(static_cast<std::size_t>(replica_count_),
                                0);
  cluster_cursor_.assign(static_cast<std::size_t>(replica_count_), 0);
  slow_.assign(static_cast<std::size_t>(replica_count_), SlowState{});
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  state_.store(ServerState::kServing);
}

InferenceServer::~InferenceServer() {
  try {
    Drain();
  } catch (...) {
    // Destructor must not throw; Drain only throws on internal
    // invariant violations, which tests surface through explicit calls.
  }
}

void InferenceServer::CompleteWithoutService(std::int64_t id,
                                             StatusCode status,
                                             std::int64_t finish_cycle) {
  std::lock_guard<std::mutex> lock(results_mu_);
  ServedRequest& record = results_[static_cast<std::size_t>(id)];
  DB_CHECK_MSG(record.status == StatusCode::kOk,
               "request completed twice");
  record.status = status;
  record.finish_cycle = finish_cycle;
  ++completed_;
}

std::int64_t InferenceServer::Submit(Tensor input,
                                     std::int64_t arrival_cycle,
                                     std::int64_t deadline_cycle) {
  std::lock_guard<std::mutex> lock(submit_mu_);
  const ServerState state = state_.load();
  if (state != ServerState::kServing)
    throw ShutdownError(
        StrFormat("InferenceServer cannot accept requests: intake is "
                  "closed (state: %s)",
                  ServerStateName(state)));
  DB_CHECK_MSG(arrival_cycle >= last_arrival_,
               "arrival cycles must be non-decreasing");
  DB_CHECK_MSG(deadline_cycle == 0 || deadline_cycle >= arrival_cycle,
               "deadline precedes arrival");
  last_arrival_ = arrival_cycle;
  if (deadline_cycle == 0 && options_.deadline_cycles > 0)
    deadline_cycle = arrival_cycle + options_.deadline_cycles;
  const std::int64_t id = next_request_id_++;
  {
    std::lock_guard<std::mutex> rlock(results_mu_);
    results_.resize(static_cast<std::size_t>(id) + 1);
    results_[static_cast<std::size_t>(id)].id = id;
    results_[static_cast<std::size_t>(id)].arrival_cycle = arrival_cycle;
    results_[static_cast<std::size_t>(id)].deadline_cycle = deadline_cycle;
  }

  // Simulated-time admission: mirror the batcher's linger/size closure
  // rules over the admitted stream, so "the queue is full" — and which
  // request pays for it — is a pure function of the arrival cycles.
  if (shadow_open_count_ > 0 &&
      arrival_cycle > shadow_first_arrival_ + options_.linger_cycles) {
    // The open batch's linger expired before this arrival: it closes
    // and dispatches, emptying the simulated queue.
    shadow_open_count_ = 0;
    shadow_live_.clear();
  }
  if (shadow_live_.size() >= options_.queue_capacity) {
    switch (options_.admission) {
      case AdmissionPolicy::kBlock:
        break;  // the wall-clock Push below provides the back-pressure
      case AdmissionPolicy::kReject:
        // Never pushed: the dispatcher and batcher don't see it.
        CompleteWithoutService(id, StatusCode::kRejected, arrival_cycle);
        return id;
      case AdmissionPolicy::kShedOldest: {
        // Evict the oldest queued request; it stays in the pipeline as
        // a tombstone (the worker skips completed records) so batch
        // composition keeps mirroring the shadow state.
        const std::int64_t victim = shadow_live_.front();
        shadow_live_.pop_front();
        CompleteWithoutService(victim, StatusCode::kShed, arrival_cycle);
        break;
      }
    }
  }
  if (shadow_open_count_ == 0) shadow_first_arrival_ = arrival_cycle;
  ++shadow_open_count_;
  shadow_live_.push_back(id);
  if (shadow_open_count_ == options_.max_batch_size) {
    shadow_open_count_ = 0;  // the batch closes by size and dispatches
    shadow_live_.clear();
  }

  PendingRequest request;
  request.id = id;
  request.arrival_cycle = arrival_cycle;
  request.deadline_cycle = deadline_cycle;
  request.input = std::move(input);
  // Holding submit_mu_ across the (possibly blocking) push keeps the
  // queue in request-id order, which the batcher's determinism needs.
  try {
    queue_.Push(std::move(request));
  } catch (const ShutdownError&) {
    // Drain raced this Submit while it was blocked on a full queue: the
    // request was registered but never admitted.  Complete it as
    // rejected so Drain's completion accounting stays exact, then let
    // the caller see the shutdown.
    CompleteWithoutService(id, StatusCode::kRejected, arrival_cycle);
    throw;
  }
  return id;
}

void InferenceServer::DispatchBatch(Batch batch) {
  const std::int64_t ready = batch.ready_cycle;
  ScheduleOnCluster(std::move(batch), ready);
}

InferenceServer::BatchPlan InferenceServer::PlanBatch(
    int r, const Batch& batch, std::int64_t ready) const {
  // The schedule is the fault-free plan plus the replica's *known*
  // cluster state (slow factor): shed tombstones and injected datapath
  // delays surface in the replica's own timeline, never here, so
  // placement stays a pure function of the arrival stream and the
  // seeded fault plan.
  BatchPlan plan;
  plan.start = std::max(
      ready, replica_free_cycle_[static_cast<std::size_t>(r)]);
  std::int64_t duration = 0;
  std::int64_t slow_left = slow_[static_cast<std::size_t>(r)].services;
  const std::int64_t factor = slow_[static_cast<std::size_t>(r)].factor;
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    const bool warm =
        replica_scheduled_warm_[static_cast<std::size_t>(r)] || i > 0;
    const std::int64_t base = warm ? steady_cycles_ : cold_cycles_;
    std::int64_t penalty = 0;
    if (slow_left > 0) {
      penalty = base * (factor - 1);
      --slow_left;
    }
    plan.penalties.push_back(penalty);
    duration += base + penalty;
  }
  plan.finish = plan.start + duration;
  return plan;
}

bool InferenceServer::FireClusterEvents(int r, std::int64_t size,
                                        std::int64_t ready,
                                        CrashSplit* crash) {
  const std::vector<fault::FaultEvent>& events =
      injector_.ClusterForReplica(r);
  const std::int64_t scheduled =
      scheduled_invocations_[static_cast<std::size_t>(r)];
  std::size_t& cursor = cluster_cursor_[static_cast<std::size_t>(r)];
  while (cursor < events.size() &&
         events[cursor].invocation < scheduled + size) {
    const fault::FaultEvent& event = events[cursor];
    switch (event.kind) {
      case fault::FaultKind::kRouteFail: {
        // Transient routing failure: this dispatch attempt never reaches
        // the replica; the caller re-routes to another one.
        ++cursor;
        ++route_failures_;
        monitor_.ReportFailure(r, ready);
        breaker_.RecordFailure(r, ready);
        LogClusterEvent("route_fail", r, ready, ready);
        return false;
      }
      case fault::FaultKind::kHang: {
        // The replica stalls for a fixed window before accepting work;
        // missed heartbeats drive the kSuspect/kDown escalation.
        ++cursor;
        const std::int64_t begin = std::max(
            ready, replica_free_cycle_[static_cast<std::size_t>(r)]);
        const std::int64_t end = begin + event.stall_cycles;
        replica_free_cycle_[static_cast<std::size_t>(r)] = end;
        monitor_.ReportUnresponsive(r, begin, end);
        ++hangs_;
        LogClusterEvent("hang", r, begin, end,
                        {{"cycles", std::to_string(event.stall_cycles)}});
        break;
      }
      case fault::FaultKind::kSlow: {
        // Degraded replica: the next `slow_services` invocations on it
        // cost `slow_factor` times the planned charge.
        ++cursor;
        slow_[static_cast<std::size_t>(r)] =
            SlowState{event.slow_factor, event.slow_services};
        ++slow_faults_;
        LogClusterEvent(
            "slow", r, ready, ready,
            {{"factor", std::to_string(event.slow_factor)},
             {"services", std::to_string(event.slow_services)}});
        break;
      }
      case fault::FaultKind::kCrash: {
        // The replica dies partway through the window; the caller splits
        // the batch at the crash coordinate and re-dispatches the rest.
        ++cursor;
        crash->crashed = true;
        crash->event_invocation = std::max(event.invocation, scheduled);
        crash->down_cycles = event.down_cycles;
        return true;
      }
      default:
        DB_CHECK_MSG(false,
                     "datapath fault routed to the cluster partition");
    }
  }
  return true;
}

void InferenceServer::CommitBatch(int r, Batch batch, BatchPlan plan) {
  replica_free_cycle_[static_cast<std::size_t>(r)] = plan.finish;
  replica_scheduled_warm_[static_cast<std::size_t>(r)] = true;
  scheduled_invocations_[static_cast<std::size_t>(r)] +=
      static_cast<std::int64_t>(batch.requests.size());
  SlowState& slow = slow_[static_cast<std::size_t>(r)];
  slow.services = std::max<std::int64_t>(
      0,
      slow.services - static_cast<std::int64_t>(batch.requests.size()));
  ++batches_dispatched_;
  // A committed dispatch is the monitor/breaker success signal: the
  // replica accepted work at the planned start.
  breaker_.RecordSuccess(r, plan.start);
  monitor_.ReportSuccess(r, plan.start);

  // shared_ptr keeps the closure copyable for std::function; the lane
  // executes it exactly once.
  auto scheduled = std::make_shared<ScheduledBatch>(ScheduledBatch{
      std::move(batch), r, plan.start, std::move(plan.penalties)});
  pool_.Post(r, [this, r, scheduled] { ServeBatch(r, *scheduled); });
}

void InferenceServer::PostReadmitScrub(int r,
                                       std::int64_t readmit_cycle) {
  pool_.Post(r, [this, r, readmit_cycle] {
    cluster::Replica& rep = pool_.replica(r);
    const std::int64_t begin = std::max(rep.local_cycle, readmit_cycle);
    // Readmission re-verifies the weight regions against the provisioned
    // image (a crashed card reboots from unknown DRAM) and reloads on
    // mismatch; the charge is the same deterministic scrub cost either
    // way.
    if (fault::WeightChecksum(rep.image, design_.memory_map) !=
        weight_checksum_) {
      fault::ScrubWeights(rep.image, provisioned_, design_.memory_map);
      DB_CHECK_MSG(fault::WeightChecksum(rep.image, design_.memory_map) ==
                       weight_checksum_,
                   "readmit scrub failed to restore the weight regions");
    }
    ++rep.scrubs;
    fault::FaultRecord record;
    record.kind = fault::FaultKind::kCrash;
    record.recovery = true;  // the scrub-and-readmit window
    record.worker = r;
    record.invocation = rep.invocations;
    record.start_cycle = begin;
    record.end_cycle = begin + scrub_cycles_;
    record.detail = scrub_cycles_;
    rep.fault_records.push_back(record);
    rep.busy_intervals.emplace_back(begin, begin + scrub_cycles_);
    rep.local_cycle = begin + scrub_cycles_;
    rep.warm = false;  // the reboot lost weight residency
  });
}

void InferenceServer::PostHedgeCancel(int r, std::int64_t start,
                                      std::int64_t cancel) {
  pool_.Post(r, [this, r, start, cancel] {
    cluster::Replica& rep = pool_.replica(r);
    // The cancelled copy occupied the lane from its planned start until
    // the winner completed, but never ran the datapath — outputs stay
    // bit-identical to the unhedged run and warm state is untouched.
    const std::int64_t begin = std::max(rep.local_cycle, start);
    const std::int64_t end = std::max(cancel, begin);
    if (begin < end) rep.busy_intervals.emplace_back(begin, end);
    rep.local_cycle = end;
  });
}

void InferenceServer::LogClusterEvent(
    const char* name, int replica, std::int64_t start, std::int64_t end,
    std::vector<std::pair<std::string, std::string>> args) {
  ClusterEpisode episode;
  episode.name = name;
  episode.replica = replica;
  episode.start = start;
  episode.end = end;
  episode.args = std::move(args);
  cluster_log_.push_back(std::move(episode));
}

void InferenceServer::ScheduleOnCluster(Batch batch, std::int64_t ready) {
  monitor_.AdvanceTo(ready);
  const std::int64_t size =
      static_cast<std::int64_t>(batch.requests.size());

  // Health-masked routing with deterministic re-route on transient
  // failures: every attempt excludes replicas already tried for this
  // batch.  Liveness over purity — with the whole pool non-routable the
  // batch still lands somewhere (the readmitting replica's free cycle
  // already carries its down time).
  std::vector<bool> attempted(static_cast<std::size_t>(replica_count_),
                              false);
  int r = -1;
  for (;;) {
    std::vector<bool> routable(static_cast<std::size_t>(replica_count_));
    bool any = false;
    for (int i = 0; i < replica_count_; ++i) {
      routable[static_cast<std::size_t>(i)] =
          !attempted[static_cast<std::size_t>(i)] && monitor_.Routable(i) &&
          breaker_.Allows(i, ready);
      any = any || routable[static_cast<std::size_t>(i)];
    }
    if (!any) {
      for (int i = 0; i < replica_count_; ++i)
        routable[static_cast<std::size_t>(i)] =
            !attempted[static_cast<std::size_t>(i)];
      any = std::find(routable.begin(), routable.end(), true) !=
            routable.end();
    }
    if (!any) routable.assign(static_cast<std::size_t>(replica_count_),
                              true);
    r = router_.Route(replica_free_cycle_, routable);
    CrashSplit crash;
    if (!FireClusterEvents(r, size, ready, &crash)) {
      attempted[static_cast<std::size_t>(r)] = true;
      continue;
    }
    if (!crash.crashed) break;

    // Crash inside the dispatch window: the prefix before the crash
    // coordinate was served by the dying replica; the remainder is
    // re-dispatched to a survivor at the crash cycle under a fresh batch
    // id from the reserved re-dispatch range (dispatcher batch ids stay
    // below 1 << 20 for any realistic workload; DB_CHECKed in Drain via
    // completion accounting).
    const std::int64_t prefix =
        crash.event_invocation -
        scheduled_invocations_[static_cast<std::size_t>(r)];
    DB_CHECK(prefix >= 0 && prefix < size);
    Batch served;
    served.id = batch.id;
    served.ready_cycle = batch.ready_cycle;
    Batch rest;
    rest.id = (std::int64_t{1} << 20) + redispatch_batches_++;
    rest.ready_cycle = batch.ready_cycle;
    for (std::int64_t i = 0; i < size; ++i) {
      if (i < prefix)
        served.requests.push_back(std::move(
            batch.requests[static_cast<std::size_t>(i)]));
      else
        rest.requests.push_back(std::move(
            batch.requests[static_cast<std::size_t>(i)]));
    }
    std::int64_t crash_cycle = std::max(
        ready, replica_free_cycle_[static_cast<std::size_t>(r)]);
    if (prefix > 0) {
      const BatchPlan plan = PlanBatch(r, served, ready);
      crash_cycle = plan.finish;
      CommitBatch(r, std::move(served), plan);
    }
    ++crashes_;
    monitor_.ReportCrash(r, crash_cycle, crash.down_cycles);
    breaker_.RecordFailure(r, crash_cycle);
    const std::int64_t readmit = crash_cycle + crash.down_cycles;
    // The replica is gone until `readmit`, then pays the scrub pass
    // before its datapath frees; a reboot loses weight residency.
    replica_free_cycle_[static_cast<std::size_t>(r)] =
        readmit + scrub_cycles_;
    replica_scheduled_warm_[static_cast<std::size_t>(r)] = false;
    slow_[static_cast<std::size_t>(r)] = SlowState{};
    LogClusterEvent("crash", r, crash_cycle, readmit + scrub_cycles_,
                    {{"down", std::to_string(crash.down_cycles)},
                     {"redispatched",
                      std::to_string(rest.requests.size())}});
    PostReadmitScrub(r, readmit);
    ++readmissions_;
    redispatched_ += static_cast<std::int64_t>(rest.requests.size());
    ScheduleOnCluster(std::move(rest), std::max(ready, crash_cycle));
    return;
  }

  BatchPlan primary = PlanBatch(r, batch, ready);
  if (options_.hedge_after_cycles > 0 &&
      primary.finish - ready > options_.hedge_after_cycles) {
    // Hedge: plan a duplicate on the best other healthy replica issued
    // once the latency threshold elapses; keep whichever copy's plan
    // finishes first.  Decided analytically at dispatch — both copies'
    // windows are pure schedule arithmetic, and the loser's lane only
    // charges occupancy (PostHedgeCancel), so outputs and cycle numbers
    // stay deterministic.
    const std::int64_t issue = ready + options_.hedge_after_cycles;
    int best = -1;
    BatchPlan alternate;
    for (int i = 0; i < replica_count_; ++i) {
      if (i == r || !monitor_.Routable(i) || !breaker_.Allows(i, issue))
        continue;
      BatchPlan candidate = PlanBatch(i, batch, issue);
      if (best < 0 || candidate.finish < alternate.finish) {
        best = i;
        alternate = std::move(candidate);
      }
    }
    if (best >= 0) {
      ++hedge_count_;
      if (alternate.finish < primary.finish) {
        ++hedge_wins_;
        // Cancel the primary at the winner's completion; its lane
        // charges [start, cancel) but never serves the requests.
        const std::int64_t cancel = alternate.finish;
        if (primary.start < cancel) {
          replica_free_cycle_[static_cast<std::size_t>(r)] = cancel;
          PostHedgeCancel(r, primary.start, cancel);
        }
        LogClusterEvent("hedge", best, issue, alternate.finish,
                        {{"primary", std::to_string(r)},
                         {"won", "1"}});
        CommitBatch(best, std::move(batch), std::move(alternate));
        return;
      }
      // The primary still wins: the hedge copy occupies the alternate
      // until the primary completes, then cancels.
      const std::int64_t cancel = primary.finish;
      if (alternate.start < cancel) {
        replica_free_cycle_[static_cast<std::size_t>(best)] = cancel;
        PostHedgeCancel(best, alternate.start, cancel);
      }
      LogClusterEvent("hedge", best, issue, cancel,
                      {{"primary", std::to_string(r)}, {"won", "0"}});
    }
  }
  CommitBatch(r, std::move(batch), std::move(primary));
}

void InferenceServer::DispatcherLoop() {
  while (std::optional<PendingRequest> request = queue_.Pop()) {
    if (std::optional<Batch> closed = batcher_.Add(*std::move(request)))
      DispatchBatch(*std::move(closed));
  }
  // Intake closed and drained: flush the partial batch, then stop the
  // lanes once their deques empty out.
  if (std::optional<Batch> closed = batcher_.Flush())
    DispatchBatch(*std::move(closed));
  pool_.Close();
}

void InferenceServer::ServeBatch(int index, ScheduledBatch& scheduled) {
  cluster::Replica& rep = pool_.replica(index);
  const std::vector<fault::FaultEvent>& events =
      injector_.ForWorker(index);
  // Weight-region integrity checks only run on replicas whose plan
  // slice can actually corrupt weights; the fault-free fast path is
  // untouched.
  const bool integrity_checks = injector_.HasWeightFlips(index);

  // Fault recovery may have pushed this replica past the scheduler's
  // optimistic start; service never begins before the datapath frees.
  std::int64_t cycle = std::max(scheduled.start_cycle, rep.local_cycle);
  const std::int64_t batch_start = cycle;
  ++rep.batches;
  for (std::size_t slot = 0; slot < scheduled.batch.requests.size();
       ++slot) {
    PendingRequest& request = scheduled.batch.requests[slot];
    // Slow-replica surcharge the dispatcher planned for this slot; the
    // lane mirrors it so reported latencies show the degradation.
    const std::int64_t penalty =
        slot < scheduled.penalties.size() ? scheduled.penalties[slot] : 0;
    {
      // Shed tombstone: the request was evicted at admission after
      // its batch membership was fixed; skip without touching it.
      std::lock_guard<std::mutex> lock(results_mu_);
      if (results_[static_cast<std::size_t>(request.id)].status !=
          StatusCode::kOk)
        continue;
    }

    // 1. Fire every injected fault bound to this invocation.
    std::int64_t stall = 0;
    int failures = 0;
    while (rep.fault_cursor < events.size() &&
           events[rep.fault_cursor].invocation <= rep.invocations) {
      const fault::FaultEvent& event = events[rep.fault_cursor++];
      fault::FaultRecord record;
      record.kind = event.kind;
      record.worker = index;
      record.invocation = rep.invocations;
      record.request_id = request.id;
      record.start_cycle = cycle;
      record.end_cycle = cycle;
      switch (event.kind) {
        case fault::FaultKind::kBitFlip:
          rep.image.FlipBit(event.addr, event.bit);
          record.detail = event.addr;
          break;
        case fault::FaultKind::kTransient:
          ++failures;
          record.detail = failures;
          break;
        case fault::FaultKind::kStall:
          record.end_cycle = cycle + event.stall_cycles;
          record.detail = event.stall_cycles;
          stall += event.stall_cycles;
          break;
        default:
          // Cluster faults live in the injector's replica partition and
          // fire on the dispatcher; they never reach a lane.
          DB_CHECK_MSG(false, "cluster fault routed to a worker lane");
      }
      rep.fault_records.push_back(record);
    }
    ++rep.invocations;
    std::int64_t recovery = stall;
    if (stall > 0) rep.busy_intervals.emplace_back(cycle, cycle + stall);
    cycle += stall;

    // 2. Deadline: an expired request completes without occupying
    // the datapath slot.
    if (request.deadline_cycle > 0 && cycle > request.deadline_cycle) {
      std::lock_guard<std::mutex> lock(results_mu_);
      ServedRequest& record =
          results_[static_cast<std::size_t>(request.id)];
      record.batch_id = scheduled.batch.id;
      record.worker = index;
      record.status = StatusCode::kDeadlineExceeded;
      record.finish_cycle = cycle;
      record.recovery_cycles = recovery;
      ++completed_;
      continue;
    }

    // 3. Weight-region integrity: scrub-and-reload from the
    // provisioned image on checksum mismatch, charged in cycles.
    if (integrity_checks &&
        fault::WeightChecksum(rep.image, design_.memory_map) !=
            weight_checksum_) {
      fault::ScrubWeights(rep.image, provisioned_, design_.memory_map);
      DB_CHECK_MSG(fault::WeightChecksum(rep.image, design_.memory_map) ==
                       weight_checksum_,
                   "scrub failed to restore the weight regions");
      fault::FaultRecord record;
      record.kind = fault::FaultKind::kBitFlip;
      record.recovery = true;  // a scrub window
      record.worker = index;
      record.invocation = rep.invocations - 1;
      record.request_id = request.id;
      record.start_cycle = cycle;
      record.end_cycle = cycle + scrub_cycles_;
      record.detail = scrub_cycles_;
      rep.fault_records.push_back(record);
      ++rep.scrubs;
      rep.busy_intervals.emplace_back(cycle, cycle + scrub_cycles_);
      cycle += scrub_cycles_;
      recovery += scrub_cycles_;
    }

    // 4. Transient failures: bounded retries with exponential
    // backoff; each failed attempt occupied the datapath.
    // Replica lanes never trace (the interval stream is
    // ordering-sensitive) but do publish the commutative "sim.*"
    // counters when the caller supplied perf.metrics.
    PerfOptions perf = options_.perf;
    perf.trace = nullptr;
    perf.weights_resident = rep.warm;
    const std::int64_t charged =
        rep.warm ? steady_cycles_ : cold_cycles_;
    int retries = 0;
    while (failures > 0 && retries < options_.max_retries) {
      const std::int64_t backoff =
          RetryBackoffCycles(options_.retry_backoff_cycles, retries,
                             options_.max_retry_backoff_cycles);
      fault::FaultRecord record;
      record.kind = fault::FaultKind::kTransient;
      record.recovery = true;  // a failed attempt + its backoff
      record.worker = index;
      record.invocation = rep.invocations - 1;
      record.request_id = request.id;
      record.start_cycle = cycle;
      record.end_cycle = cycle + charged + backoff;
      record.detail = backoff;
      rep.fault_records.push_back(record);
      rep.busy_intervals.emplace_back(cycle, cycle + charged + backoff);
      cycle += charged + backoff;
      recovery += charged + backoff;
      --failures;
      ++retries;
    }
    if (failures > 0) {
      // Retries exhausted: fail the request, never the server.
      std::lock_guard<std::mutex> lock(results_mu_);
      ServedRequest& record =
          results_[static_cast<std::size_t>(request.id)];
      record.batch_id = scheduled.batch.id;
      record.worker = index;
      record.status = StatusCode::kFaulted;
      record.finish_cycle = cycle;
      record.retries = retries;
      record.recovery_cycles = recovery;
      ++completed_;
      continue;
    }

    const SystemRunResult run =
        rep.context->Run(rep.image, request.input, perf);
    rep.warm = true;
    DB_CHECK_MSG(run.perf.total_cycles == charged,
                 "scheduler and execution disagree on invocation cost");
    const std::int64_t finish = cycle + run.perf.total_cycles + penalty;
    const double joules =
        EstimateEnergy(design_.resources.total, run.perf, device_)
            .total_joules;
    {
      std::lock_guard<std::mutex> lock(results_mu_);
      ServedRequest& record =
          results_[static_cast<std::size_t>(request.id)];
      record.batch_id = scheduled.batch.id;
      record.worker = index;
      record.start_cycle = batch_start;
      record.finish_cycle = finish;
      record.service_cycles = run.perf.total_cycles + penalty;
      record.dram_bytes = run.perf.total_dram_bytes;
      record.joules = joules;
      record.status = run.status;
      record.retries = retries;
      record.recovery_cycles = recovery;
      record.output = run.output;
      ++completed_;
    }
    rep.busy_cycles += run.perf.total_cycles + penalty;
    rep.busy_intervals.emplace_back(cycle, finish);
    ++rep.requests;
    cycle = finish;
  }
  rep.local_cycle = cycle;
}

const std::vector<ServedRequest>& InferenceServer::Drain() {
  {
    std::lock_guard<std::mutex> lock(submit_mu_);
    ServerState expected = ServerState::kServing;
    state_.compare_exchange_strong(expected, ServerState::kDraining);
  }
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
  pool_.Close();  // idempotent; DispatcherLoop already closed the lanes
  pool_.Join();
  // Apply any health transitions still pending past the last dispatch so
  // the published transition log covers every scheduled recovery.
  monitor_.Flush();
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    DB_CHECK_MSG(completed_ ==
                     static_cast<std::int64_t>(results_.size()),
                 "drained server left requests incomplete");
    if (!drained_) {
      PublishObservability();
      if (options_.timeseries != nullptr) PublishTimeSeries();
    }
    drained_ = true;
  }
  state_.store(ServerState::kStopped);
  return results_;
}

void InferenceServer::PublishObservability() {
  // Called once, after every worker joined: the records are final and
  // this thread is the only publisher, so span emission order — and the
  // exported trace bytes — are a pure function of the schedule.
  if (options_.tracer != nullptr) {
    obs::Tracer& tracer = *options_.tracer;
    std::map<std::int64_t, std::vector<const ServedRequest*>> batches;
    for (const ServedRequest& r : results_) {
      if (r.status != StatusCode::kOk) {
        // Shed / rejected / expired / faulted: one async queue span
        // covering arrival to disposition, tagged with the status.
        obs::Span dropped;
        dropped.track = "serve/queue";
        dropped.name = StrFormat("req %lld", static_cast<long long>(r.id));
        dropped.category = "serve";
        dropped.start = r.arrival_cycle;
        dropped.end = std::max(r.finish_cycle, r.arrival_cycle);
        dropped.async = true;
        dropped.id = r.id;
        dropped.args.emplace_back("status", StatusCodeName(r.status));
        tracer.Record(std::move(dropped));
        continue;
      }
      const std::int64_t service_start = r.finish_cycle - r.service_cycles;
      const std::string worker_track =
          StrFormat("serve/worker %d", r.worker);

      // Queue residency overlaps across requests: async span, one row
      // per request id in Perfetto.
      obs::Span queued;
      queued.track = "serve/queue";
      queued.name = StrFormat("req %lld", static_cast<long long>(r.id));
      queued.category = "serve";
      queued.start = r.arrival_cycle;
      queued.end = service_start;
      queued.async = true;
      queued.id = r.id;
      queued.args.emplace_back(
          "batch", std::to_string(r.batch_id));
      queued.args.emplace_back("worker", std::to_string(r.worker));
      tracer.Record(std::move(queued));

      obs::Span service;
      service.track = worker_track;
      service.name = StrFormat("req %lld", static_cast<long long>(r.id));
      service.category = "serve";
      service.start = service_start;
      service.end = r.finish_cycle;
      service.args.emplace_back("batch", std::to_string(r.batch_id));
      service.args.emplace_back("dram_bytes",
                                std::to_string(r.dram_bytes));
      tracer.Record(std::move(service));

      batches[r.batch_id].push_back(&r);
    }
    for (const auto& [batch_id, members] : batches) {
      obs::Span span;
      span.track = StrFormat("serve/worker %d", members.front()->worker);
      span.name = StrFormat("batch %lld", static_cast<long long>(batch_id));
      span.category = "serve";
      span.start = members.front()->start_cycle;
      span.end = 0;
      for (const ServedRequest* r : members)
        span.end = std::max(span.end, r->finish_cycle);
      span.args.emplace_back("size", std::to_string(members.size()));
      tracer.Record(std::move(span));
    }

    // Fault injections and recovery windows, per replica in index order
    // (each replica's log is in its own deterministic service order).
    for (int w = 0; w < pool_.size(); ++w) {
      for (const fault::FaultRecord& record :
           pool_.replica(w).fault_records) {
        obs::Span span;
        span.track = StrFormat("serve/worker %d", w);
        span.category = "fault";
        if (record.recovery) {
          span.name = record.kind == fault::FaultKind::kBitFlip ? "scrub"
                      : record.kind == fault::FaultKind::kCrash
                          ? "readmit"
                          : "retry";
        } else {
          span.name = StrFormat("fault:%s",
                                fault::FaultKindName(record.kind));
        }
        span.start = record.start_cycle;
        span.end = record.end_cycle;
        span.args.emplace_back("invocation",
                               std::to_string(record.invocation));
        span.args.emplace_back("request",
                               std::to_string(record.request_id));
        span.args.emplace_back("detail", std::to_string(record.detail));
        tracer.Record(std::move(span));
      }
    }

    // The cluster track: dispatcher-side resilience episodes (crashes,
    // hangs, slow windows, route failures, hedges) in dispatch order,
    // then the health monitor's transition log.  Both are deterministic
    // dispatcher state, so the emitted bytes are stable run to run.
    for (const ClusterEpisode& episode : cluster_log_) {
      obs::Span span;
      span.track = "cluster";
      span.category = "cluster";
      span.name = episode.name;
      span.start = episode.start;
      span.end = episode.end;
      span.args.emplace_back("replica",
                             std::to_string(episode.replica));
      for (const auto& arg : episode.args) span.args.push_back(arg);
      tracer.Record(std::move(span));
    }
    for (const cluster::HealthTransition& t : monitor_.transitions()) {
      obs::Span span;
      span.track = "cluster";
      span.category = "health";
      span.name = StrFormat("replica %d: %s", t.replica,
                            cluster::ReplicaHealthName(t.to));
      span.start = t.cycle;
      span.end = t.cycle;
      span.args.emplace_back("from",
                             cluster::ReplicaHealthName(t.from));
      span.args.emplace_back("to", cluster::ReplicaHealthName(t.to));
      span.args.emplace_back("cause", t.cause);
      tracer.Record(std::move(span));
    }
  }

  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& m = *options_.metrics;
    std::int64_t makespan = 0;
    std::map<std::int64_t, std::int64_t> batch_sizes;
    // Queue depth over simulated time: +1 at arrival, -1 when the
    // request leaves the queue — at service start when served, at its
    // disposition cycle when shed or expired (departures at a cycle
    // clear before same-cycle arrivals).  Rejected requests never
    // entered the queue.
    std::vector<std::pair<std::int64_t, int>> depth_events;
    std::int64_t shed = 0, rejected = 0, expired = 0, faulted = 0;
    std::int64_t completed = 0, retries = 0, recovery_cycles = 0;
    for (const ServedRequest& r : results_) {
      m.AddCounter("serve.requests");
      retries += r.retries;
      recovery_cycles += r.recovery_cycles;
      switch (r.status) {
        case StatusCode::kShed:
          ++shed;
          depth_events.emplace_back(r.arrival_cycle, +1);
          depth_events.emplace_back(r.finish_cycle, -1);
          continue;
        case StatusCode::kRejected:
          ++rejected;
          continue;
        case StatusCode::kDeadlineExceeded:
          ++expired;
          depth_events.emplace_back(r.arrival_cycle, +1);
          depth_events.emplace_back(r.finish_cycle, -1);
          continue;
        case StatusCode::kFaulted:
          ++faulted;
          depth_events.emplace_back(r.arrival_cycle, +1);
          depth_events.emplace_back(r.finish_cycle, -1);
          continue;
        case StatusCode::kOk:
          ++completed;
          break;
      }
      const std::int64_t service_start = r.finish_cycle - r.service_cycles;
      m.AddCounter("serve.dram_bytes", r.dram_bytes);
      // The end-to-end latency histogram: the same HistogramStats type
      // (and the same samples) ComputeServerStats aggregates, so the
      // registry's quantiles and ServerStats' percentiles agree exactly.
      m.Observe("serve.latency_cycles",
                static_cast<double>(r.finish_cycle - r.arrival_cycle));
      m.Observe("serve.queue_wait_cycles",
                static_cast<double>(service_start - r.arrival_cycle));
      m.Observe("serve.service_cycles",
                static_cast<double>(r.service_cycles));
      makespan = std::max(makespan, r.finish_cycle);
      ++batch_sizes[r.batch_id];
      depth_events.emplace_back(r.arrival_cycle, +1);
      depth_events.emplace_back(service_start, -1);
    }
    m.AddCounter("serve.completed", completed);
    m.AddCounter("serve.shed", shed);
    m.AddCounter("serve.rejected", rejected);
    m.AddCounter("serve.deadline_exceeded", expired);
    m.AddCounter("serve.faulted", faulted);
    m.AddCounter("serve.retries", retries);
    m.AddCounter("serve.batches",
                 static_cast<std::int64_t>(batch_sizes.size()));
    for (const auto& [batch_id, size] : batch_sizes)
      m.Observe("serve.batch_size", static_cast<double>(size));
    std::sort(depth_events.begin(), depth_events.end());
    std::int64_t depth = 0, peak = 0;
    for (const auto& [cycle, delta] : depth_events)
      peak = std::max(peak, depth += delta);
    m.SetGauge("serve.queue_depth_peak", static_cast<double>(peak));
    m.SetGauge("serve.makespan_cycles", static_cast<double>(makespan));
    m.SetGauge("serve.replicas", static_cast<double>(pool_.size()));
    m.SetGauge("serve.router",
               static_cast<double>(static_cast<int>(options_.router)));
    for (int w = 0; w < pool_.size(); ++w) {
      const cluster::Replica& rep = pool_.replica(w);
      const std::int64_t busy = rep.busy_cycles;
      // Metric names keep the historical "worker" spelling so dashboards
      // survive the replica refactor.
      m.SetGauge(StrFormat("serve.worker%d.busy_cycles", w),
                 static_cast<double>(busy));
      m.SetGauge(StrFormat("serve.worker%d.utilization", w),
                 makespan > 0 ? static_cast<double>(busy) /
                                    static_cast<double>(makespan)
                              : 0.0);
      m.SetGauge(StrFormat("serve.worker%d.requests", w),
                 static_cast<double>(rep.requests));
      m.SetGauge(StrFormat("serve.worker%d.batches", w),
                 static_cast<double>(rep.batches));
    }

    // fault.*: injections by kind, recovery actions and their cost.
    std::int64_t flips = 0, transients = 0, stalls = 0, scrubs = 0;
    for (int w = 0; w < pool_.size(); ++w) {
      const cluster::Replica& rep = pool_.replica(w);
      scrubs += rep.scrubs;
      for (const fault::FaultRecord& record : rep.fault_records) {
        if (record.recovery) continue;
        switch (record.kind) {
          case fault::FaultKind::kBitFlip: ++flips; break;
          case fault::FaultKind::kTransient: ++transients; break;
          case fault::FaultKind::kStall: ++stalls; break;
          default:
            // Cluster faults fire on the dispatcher; a lane only ever
            // records them as recovery windows (skipped above).
            DB_CHECK_MSG(false, "cluster fault in a lane fault record");
        }
      }
    }
    m.AddCounter("fault.injected.bit_flip", flips);
    m.AddCounter("fault.injected.transient", transients);
    m.AddCounter("fault.injected.stall", stalls);
    m.AddCounter("fault.scrubs", scrubs);
    m.AddCounter("fault.recovery_cycles", recovery_cycles);

    // cluster.health.*: fleet-resilience accounting — always published
    // (zeros under a fault-free run) so dashboards and the determinism
    // tests see a stable metric set.
    m.AddCounter("cluster.health.crashes", crashes_);
    m.AddCounter("cluster.health.hangs", hangs_);
    m.AddCounter("cluster.health.slow_replicas", slow_faults_);
    m.AddCounter("cluster.health.route_failures", route_failures_);
    m.AddCounter("cluster.health.redispatched_requests", redispatched_);
    m.AddCounter("cluster.health.readmissions", readmissions_);
    m.AddCounter("cluster.health.transitions",
                 static_cast<std::int64_t>(monitor_.transitions().size()));
    m.AddCounter("cluster.health.breaker_opens", breaker_.opens());
    m.AddCounter("cluster.health.hedges", hedge_count_);
    m.AddCounter("cluster.health.hedge_wins", hedge_wins_);
  }
}

void InferenceServer::PublishTimeSeries() {
  // Sampled purely from the final records and the replicas' busy
  // intervals — simulated-cycle state, never thread timing — so two
  // runs of the same workload export byte-identical series.
  obs::TimeSeriesRecorder& ts = *options_.timeseries;
  std::int64_t makespan = 0;
  for (const ServedRequest& r : results_)
    makespan =
        std::max(makespan, std::max(r.finish_cycle, r.arrival_cycle));
  std::int64_t interval = options_.timeseries_interval_cycles;
  if (interval <= 0) {
    interval = 1;
    while (CeilDiv(makespan, interval) + 1 > 64) interval <<= 1;
  }
  ts.SetSampleInterval(interval);

  // State deltas on the simulated timeline.  Departures sort before
  // same-cycle arrivals (-1 < +1), matching the queue-depth convention
  // of the peak gauge.
  std::vector<std::pair<std::int64_t, int>> depth_events;
  std::vector<std::pair<std::int64_t, int>> inflight_events;
  std::vector<std::int64_t> shed_cycles;  // disposition cycles, non-kOk
  for (const ServedRequest& r : results_) {
    switch (r.status) {
      case StatusCode::kRejected:
        shed_cycles.push_back(r.finish_cycle);  // never entered the queue
        continue;
      case StatusCode::kShed:
      case StatusCode::kDeadlineExceeded:
      case StatusCode::kFaulted:
        depth_events.emplace_back(r.arrival_cycle, +1);
        depth_events.emplace_back(r.finish_cycle, -1);
        shed_cycles.push_back(r.finish_cycle);
        continue;
      case StatusCode::kOk: break;
    }
    const std::int64_t service_start = r.finish_cycle - r.service_cycles;
    depth_events.emplace_back(r.arrival_cycle, +1);
    depth_events.emplace_back(service_start, -1);
    inflight_events.emplace_back(service_start, +1);
    inflight_events.emplace_back(r.finish_cycle, -1);
  }
  std::sort(depth_events.begin(), depth_events.end());
  std::sort(inflight_events.begin(), inflight_events.end());
  std::sort(shed_cycles.begin(), shed_cycles.end());

  const std::int64_t last = CeilDiv(makespan, interval) * interval;
  std::size_t di = 0, ii = 0, si = 0;
  std::int64_t depth = 0, in_flight = 0;
  for (std::int64_t t = 0;; t += interval) {
    while (di < depth_events.size() && depth_events[di].first <= t)
      depth += depth_events[di++].second;
    while (ii < inflight_events.size() && inflight_events[ii].first <= t)
      in_flight += inflight_events[ii++].second;
    while (si < shed_cycles.size() && shed_cycles[si] <= t) ++si;
    ts.Append("load.queue_depth", t, static_cast<double>(depth));
    ts.Append("load.in_flight", t, static_cast<double>(in_flight));
    ts.Append("load.sheds", t, static_cast<double>(si));
    for (int w = 0; w < pool_.size(); ++w)
      ts.Append(StrFormat("load.replica%d.busy", w), t,
                t == 0 ? 0.0
                       : static_cast<double>(cluster::BusyInWindow(
                             pool_.replica(w).busy_intervals,
                             t - interval, t)) /
                             static_cast<double>(interval));
    // Health column per replica: the monitor's replayed state at the
    // sample boundary (healthy=0, suspect=1, down=2, recovering=3).
    for (int w = 0; w < pool_.size(); ++w)
      ts.Append(StrFormat("load.replica%d.health", w), t,
                static_cast<double>(cluster::ReplicaHealthCode(
                    monitor_.StateAt(w, t))));
    if (t >= last) break;
  }
}

ServerStats InferenceServer::Stats() const {
  std::vector<std::int64_t> busy;
  busy.reserve(static_cast<std::size_t>(pool_.size()));
  for (int w = 0; w < pool_.size(); ++w)
    busy.push_back(pool_.replica(w).busy_cycles);
  std::lock_guard<std::mutex> lock(results_mu_);
  DB_CHECK_MSG(drained_, "Stats() requires a drained server");
  ServerStats stats =
      ComputeServerStats(results_, batches_dispatched_,
                         design_.config.frequency_mhz, std::move(busy));
  for (int w = 0; w < pool_.size(); ++w)
    for (const fault::FaultRecord& record : pool_.replica(w).fault_records)
      if (!record.recovery) ++stats.faults_injected;
  // Cluster events fire on the dispatcher, not in lane records.
  stats.faults_injected += crashes_ + hangs_ + slow_faults_ +
                           route_failures_;
  stats.crashes = crashes_;
  stats.hangs = hangs_;
  stats.slow_faults = slow_faults_;
  stats.route_failures = route_failures_;
  stats.redispatched = redispatched_;
  stats.readmissions = readmissions_;
  stats.breaker_opens = breaker_.opens();
  stats.hedges = hedge_count_;
  stats.hedge_wins = hedge_wins_;
  stats.health_transitions =
      static_cast<std::int64_t>(monitor_.transitions().size());
  return stats;
}

}  // namespace db::serve
