#include "serve/inference_server.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/error.h"
#include "common/strings.h"
#include "sim/power_model.h"

namespace db::serve {

InferenceServer::InferenceServer(const Network& net,
                                 const AcceleratorDesign& design,
                                 const WeightStore& weights,
                                 ServeOptions options)
    : net_(net),
      design_(design),
      device_(DeviceCatalog(options.device_name)),
      options_(std::move(options)),
      provisioned_(BuildHostImage(net, design, weights)),
      context_(net, design, provisioned_),
      queue_(options_.queue_capacity),
      batcher_(BatchPolicy{options_.max_batch_size,
                           options_.linger_cycles}) {
  DB_CHECK_MSG(options_.workers >= 1, "server needs at least one worker");

  // The scheduler charges every invocation its deterministic cycle cost,
  // so batch placement never depends on thread timing.  Traces are a
  // per-run artifact, not a serving concern: workers always simulate
  // untraced.  These planning presimulations also publish no metrics —
  // only actual request service does.
  PerfOptions cold = options_.perf;
  cold.trace = nullptr;
  cold.metrics = nullptr;
  cold.weights_resident = false;
  cold_cycles_ = SimulatePerformance(net_, design_, cold).total_cycles;
  PerfOptions steady = cold;
  steady.weights_resident = true;
  steady_cycles_ = SimulatePerformance(net_, design_, steady).total_cycles;

  // The DRAM image was built exactly once (provisioned_); every worker
  // context copies those bytes for its private image.
  worker_free_cycle_.assign(static_cast<std::size_t>(options_.workers), 0);
  worker_scheduled_warm_.assign(static_cast<std::size_t>(options_.workers),
                                false);
  for (int w = 0; w < options_.workers; ++w)
    workers_.push_back(std::make_unique<WorkerContext>(provisioned_));
  for (int w = 0; w < options_.workers; ++w)
    workers_[static_cast<std::size_t>(w)]->thread =
        std::thread([this, w] { WorkerLoop(w); });
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

InferenceServer::~InferenceServer() {
  try {
    Drain();
  } catch (...) {
    // Destructor must not throw; Drain only throws on internal
    // invariant violations, which tests surface through explicit calls.
  }
}

std::int64_t InferenceServer::Submit(Tensor input,
                                     std::int64_t arrival_cycle) {
  std::lock_guard<std::mutex> lock(submit_mu_);
  if (intake_closed_) throw Error("InferenceServer already drained");
  DB_CHECK_MSG(arrival_cycle >= last_arrival_,
               "arrival cycles must be non-decreasing");
  last_arrival_ = arrival_cycle;
  const std::int64_t id = next_request_id_++;
  {
    std::lock_guard<std::mutex> rlock(results_mu_);
    results_.resize(static_cast<std::size_t>(id) + 1);
    results_[static_cast<std::size_t>(id)].id = id;
    results_[static_cast<std::size_t>(id)].arrival_cycle = arrival_cycle;
  }
  PendingRequest request;
  request.id = id;
  request.arrival_cycle = arrival_cycle;
  request.input = std::move(input);
  // Holding submit_mu_ across the (possibly blocking) push keeps the
  // queue in request-id order, which the batcher's determinism needs.
  queue_.Push(std::move(request));
  return id;
}

void InferenceServer::DispatchBatch(Batch batch) {
  // Deterministic placement: the worker whose datapath frees earliest,
  // ties broken towards the lowest index.
  const auto it = std::min_element(worker_free_cycle_.begin(),
                                   worker_free_cycle_.end());
  const int w = static_cast<int>(it - worker_free_cycle_.begin());
  const std::int64_t start = std::max(batch.ready_cycle, *it);

  std::int64_t duration = 0;
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    const bool warm =
        worker_scheduled_warm_[static_cast<std::size_t>(w)] || i > 0;
    duration += warm ? steady_cycles_ : cold_cycles_;
  }
  worker_free_cycle_[static_cast<std::size_t>(w)] = start + duration;
  worker_scheduled_warm_[static_cast<std::size_t>(w)] = true;
  ++batches_dispatched_;

  WorkerContext& ctx = *workers_[static_cast<std::size_t>(w)];
  {
    std::lock_guard<std::mutex> lock(ctx.mu);
    ctx.work.push_back(
        ScheduledBatch{std::move(batch), w, start});
  }
  ctx.cv.notify_one();
}

void InferenceServer::DispatcherLoop() {
  while (std::optional<PendingRequest> request = queue_.Pop()) {
    if (std::optional<Batch> closed = batcher_.Add(*std::move(request)))
      DispatchBatch(*std::move(closed));
  }
  // Intake closed and drained: flush the partial batch, then stop the
  // workers once their deques empty out.
  if (std::optional<Batch> closed = batcher_.Flush())
    DispatchBatch(*std::move(closed));
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->closed = true;
    }
    worker->cv.notify_all();
  }
}

void InferenceServer::WorkerLoop(int index) {
  WorkerContext& ctx = *workers_[static_cast<std::size_t>(index)];
  for (;;) {
    ScheduledBatch scheduled;
    {
      std::unique_lock<std::mutex> lock(ctx.mu);
      ctx.cv.wait(lock, [&] { return ctx.closed || !ctx.work.empty(); });
      if (ctx.work.empty()) return;  // closed and fully drained
      scheduled = std::move(ctx.work.front());
      ctx.work.pop_front();
    }

    std::int64_t cycle = scheduled.start_cycle;
    for (PendingRequest& request : scheduled.batch.requests) {
      // Workers never trace (the interval stream is ordering-sensitive)
      // but do publish the commutative "sim.*" counters when the caller
      // supplied perf.metrics.
      PerfOptions perf = options_.perf;
      perf.trace = nullptr;
      perf.weights_resident = ctx.warm;
      const std::int64_t charged =
          ctx.warm ? steady_cycles_ : cold_cycles_;
      const SystemRunResult run =
          context_.Run(ctx.image, request.input, perf);
      ctx.warm = true;
      DB_CHECK_MSG(run.perf.total_cycles == charged,
                   "scheduler and execution disagree on invocation cost");
      const std::int64_t finish = cycle + run.perf.total_cycles;
      const double joules =
          EstimateEnergy(design_.resources.total, run.perf, device_)
              .total_joules;
      {
        std::lock_guard<std::mutex> lock(results_mu_);
        ServedRequest& record =
            results_[static_cast<std::size_t>(request.id)];
        record.batch_id = scheduled.batch.id;
        record.worker = index;
        record.start_cycle = scheduled.start_cycle;
        record.finish_cycle = finish;
        record.service_cycles = run.perf.total_cycles;
        record.dram_bytes = run.perf.total_dram_bytes;
        record.joules = joules;
        record.output = run.output;
        ++completed_;
      }
      ctx.busy_cycles += run.perf.total_cycles;
      cycle = finish;
    }
  }
}

const std::vector<ServedRequest>& InferenceServer::Drain() {
  {
    std::lock_guard<std::mutex> lock(submit_mu_);
    intake_closed_ = true;
  }
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
  for (auto& worker : workers_)
    if (worker->thread.joinable()) worker->thread.join();
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    DB_CHECK_MSG(completed_ ==
                     static_cast<std::int64_t>(results_.size()),
                 "drained server left requests incomplete");
    if (!drained_) PublishObservability();
    drained_ = true;
  }
  return results_;
}

void InferenceServer::PublishObservability() {
  // Called once, after every worker joined: the records are final and
  // this thread is the only publisher, so span emission order — and the
  // exported trace bytes — are a pure function of the schedule.
  if (options_.tracer != nullptr) {
    obs::Tracer& tracer = *options_.tracer;
    std::map<std::int64_t, std::vector<const ServedRequest*>> batches;
    for (const ServedRequest& r : results_) {
      const std::int64_t service_start = r.finish_cycle - r.service_cycles;
      const std::string worker_track =
          StrFormat("serve/worker %d", r.worker);

      // Queue residency overlaps across requests: async span, one row
      // per request id in Perfetto.
      obs::Span queued;
      queued.track = "serve/queue";
      queued.name = StrFormat("req %lld", static_cast<long long>(r.id));
      queued.category = "serve";
      queued.start = r.arrival_cycle;
      queued.end = service_start;
      queued.async = true;
      queued.id = r.id;
      queued.args.emplace_back(
          "batch", std::to_string(r.batch_id));
      queued.args.emplace_back("worker", std::to_string(r.worker));
      tracer.Record(std::move(queued));

      obs::Span service;
      service.track = worker_track;
      service.name = StrFormat("req %lld", static_cast<long long>(r.id));
      service.category = "serve";
      service.start = service_start;
      service.end = r.finish_cycle;
      service.args.emplace_back("batch", std::to_string(r.batch_id));
      service.args.emplace_back("dram_bytes",
                                std::to_string(r.dram_bytes));
      tracer.Record(std::move(service));

      batches[r.batch_id].push_back(&r);
    }
    for (const auto& [batch_id, members] : batches) {
      obs::Span span;
      span.track = StrFormat("serve/worker %d", members.front()->worker);
      span.name = StrFormat("batch %lld", static_cast<long long>(batch_id));
      span.category = "serve";
      span.start = members.front()->start_cycle;
      span.end = 0;
      for (const ServedRequest* r : members)
        span.end = std::max(span.end, r->finish_cycle);
      span.args.emplace_back("size", std::to_string(members.size()));
      tracer.Record(std::move(span));
    }
  }

  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& m = *options_.metrics;
    std::int64_t makespan = 0;
    std::map<std::int64_t, std::int64_t> batch_sizes;
    // Queue depth over simulated time: +1 at arrival, -1 at service
    // start (departures at a cycle clear before same-cycle arrivals).
    std::vector<std::pair<std::int64_t, int>> depth_events;
    for (const ServedRequest& r : results_) {
      const std::int64_t service_start = r.finish_cycle - r.service_cycles;
      m.AddCounter("serve.requests");
      m.AddCounter("serve.dram_bytes", r.dram_bytes);
      m.Observe("serve.queue_wait_cycles",
                static_cast<double>(service_start - r.arrival_cycle));
      m.Observe("serve.service_cycles",
                static_cast<double>(r.service_cycles));
      makespan = std::max(makespan, r.finish_cycle);
      ++batch_sizes[r.batch_id];
      depth_events.emplace_back(r.arrival_cycle, +1);
      depth_events.emplace_back(service_start, -1);
    }
    m.AddCounter("serve.batches",
                 static_cast<std::int64_t>(batch_sizes.size()));
    for (const auto& [batch_id, size] : batch_sizes)
      m.Observe("serve.batch_size", static_cast<double>(size));
    std::sort(depth_events.begin(), depth_events.end());
    std::int64_t depth = 0, peak = 0;
    for (const auto& [cycle, delta] : depth_events)
      peak = std::max(peak, depth += delta);
    m.SetGauge("serve.queue_depth_peak", static_cast<double>(peak));
    m.SetGauge("serve.makespan_cycles", static_cast<double>(makespan));
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      const std::int64_t busy = workers_[w]->busy_cycles;
      m.SetGauge(StrFormat("serve.worker%zu.busy_cycles", w),
                 static_cast<double>(busy));
      m.SetGauge(StrFormat("serve.worker%zu.utilization", w),
                 makespan > 0 ? static_cast<double>(busy) /
                                    static_cast<double>(makespan)
                              : 0.0);
    }
  }
}

ServerStats InferenceServer::Stats() const {
  std::vector<std::int64_t> busy;
  busy.reserve(workers_.size());
  for (const auto& worker : workers_) busy.push_back(worker->busy_cycles);
  std::lock_guard<std::mutex> lock(results_mu_);
  DB_CHECK_MSG(drained_, "Stats() requires a drained server");
  return ComputeServerStats(results_, batches_dispatched_,
                            design_.config.frequency_mhz, std::move(busy));
}

}  // namespace db::serve
