#include "serve/inference_server.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "sim/power_model.h"

namespace db::serve {

InferenceServer::InferenceServer(const Network& net,
                                 const AcceleratorDesign& design,
                                 const WeightStore& weights,
                                 ServeOptions options)
    : net_(net),
      design_(design),
      device_(DeviceCatalog(options.device_name)),
      options_(std::move(options)),
      provisioned_(BuildHostImage(net, design, weights)),
      context_(net, design, provisioned_),
      queue_(options_.queue_capacity),
      batcher_(BatchPolicy{options_.max_batch_size,
                           options_.linger_cycles}) {
  DB_CHECK_MSG(options_.workers >= 1, "server needs at least one worker");

  // The scheduler charges every invocation its deterministic cycle cost,
  // so batch placement never depends on thread timing.  Traces are a
  // per-run artifact, not a serving concern: workers always simulate
  // untraced.
  PerfOptions cold = options_.perf;
  cold.trace = nullptr;
  cold.weights_resident = false;
  cold_cycles_ = SimulatePerformance(net_, design_, cold).total_cycles;
  PerfOptions steady = cold;
  steady.weights_resident = true;
  steady_cycles_ = SimulatePerformance(net_, design_, steady).total_cycles;

  // The DRAM image was built exactly once (provisioned_); every worker
  // context copies those bytes for its private image.
  worker_free_cycle_.assign(static_cast<std::size_t>(options_.workers), 0);
  worker_scheduled_warm_.assign(static_cast<std::size_t>(options_.workers),
                                false);
  for (int w = 0; w < options_.workers; ++w)
    workers_.push_back(std::make_unique<WorkerContext>(provisioned_));
  for (int w = 0; w < options_.workers; ++w)
    workers_[static_cast<std::size_t>(w)]->thread =
        std::thread([this, w] { WorkerLoop(w); });
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

InferenceServer::~InferenceServer() {
  try {
    Drain();
  } catch (...) {
    // Destructor must not throw; Drain only throws on internal
    // invariant violations, which tests surface through explicit calls.
  }
}

std::int64_t InferenceServer::Submit(Tensor input,
                                     std::int64_t arrival_cycle) {
  std::lock_guard<std::mutex> lock(submit_mu_);
  if (intake_closed_) throw Error("InferenceServer already drained");
  DB_CHECK_MSG(arrival_cycle >= last_arrival_,
               "arrival cycles must be non-decreasing");
  last_arrival_ = arrival_cycle;
  const std::int64_t id = next_request_id_++;
  {
    std::lock_guard<std::mutex> rlock(results_mu_);
    results_.resize(static_cast<std::size_t>(id) + 1);
    results_[static_cast<std::size_t>(id)].id = id;
    results_[static_cast<std::size_t>(id)].arrival_cycle = arrival_cycle;
  }
  PendingRequest request;
  request.id = id;
  request.arrival_cycle = arrival_cycle;
  request.input = std::move(input);
  // Holding submit_mu_ across the (possibly blocking) push keeps the
  // queue in request-id order, which the batcher's determinism needs.
  queue_.Push(std::move(request));
  return id;
}

void InferenceServer::DispatchBatch(Batch batch) {
  // Deterministic placement: the worker whose datapath frees earliest,
  // ties broken towards the lowest index.
  const auto it = std::min_element(worker_free_cycle_.begin(),
                                   worker_free_cycle_.end());
  const int w = static_cast<int>(it - worker_free_cycle_.begin());
  const std::int64_t start = std::max(batch.ready_cycle, *it);

  std::int64_t duration = 0;
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    const bool warm =
        worker_scheduled_warm_[static_cast<std::size_t>(w)] || i > 0;
    duration += warm ? steady_cycles_ : cold_cycles_;
  }
  worker_free_cycle_[static_cast<std::size_t>(w)] = start + duration;
  worker_scheduled_warm_[static_cast<std::size_t>(w)] = true;
  ++batches_dispatched_;

  WorkerContext& ctx = *workers_[static_cast<std::size_t>(w)];
  {
    std::lock_guard<std::mutex> lock(ctx.mu);
    ctx.work.push_back(
        ScheduledBatch{std::move(batch), w, start});
  }
  ctx.cv.notify_one();
}

void InferenceServer::DispatcherLoop() {
  while (std::optional<PendingRequest> request = queue_.Pop()) {
    if (std::optional<Batch> closed = batcher_.Add(*std::move(request)))
      DispatchBatch(*std::move(closed));
  }
  // Intake closed and drained: flush the partial batch, then stop the
  // workers once their deques empty out.
  if (std::optional<Batch> closed = batcher_.Flush())
    DispatchBatch(*std::move(closed));
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->closed = true;
    }
    worker->cv.notify_all();
  }
}

void InferenceServer::WorkerLoop(int index) {
  WorkerContext& ctx = *workers_[static_cast<std::size_t>(index)];
  for (;;) {
    ScheduledBatch scheduled;
    {
      std::unique_lock<std::mutex> lock(ctx.mu);
      ctx.cv.wait(lock, [&] { return ctx.closed || !ctx.work.empty(); });
      if (ctx.work.empty()) return;  // closed and fully drained
      scheduled = std::move(ctx.work.front());
      ctx.work.pop_front();
    }

    std::int64_t cycle = scheduled.start_cycle;
    for (PendingRequest& request : scheduled.batch.requests) {
      PerfOptions perf = options_.perf;
      perf.trace = nullptr;
      perf.weights_resident = ctx.warm;
      const std::int64_t charged =
          ctx.warm ? steady_cycles_ : cold_cycles_;
      const SystemRunResult run =
          context_.Run(ctx.image, request.input, perf);
      ctx.warm = true;
      DB_CHECK_MSG(run.perf.total_cycles == charged,
                   "scheduler and execution disagree on invocation cost");
      const std::int64_t finish = cycle + run.perf.total_cycles;
      const double joules =
          EstimateEnergy(design_.resources.total, run.perf, device_)
              .total_joules;
      {
        std::lock_guard<std::mutex> lock(results_mu_);
        ServedRequest& record =
            results_[static_cast<std::size_t>(request.id)];
        record.batch_id = scheduled.batch.id;
        record.worker = index;
        record.start_cycle = scheduled.start_cycle;
        record.finish_cycle = finish;
        record.service_cycles = run.perf.total_cycles;
        record.dram_bytes = run.perf.total_dram_bytes;
        record.joules = joules;
        record.output = run.output;
        ++completed_;
      }
      ctx.busy_cycles += run.perf.total_cycles;
      cycle = finish;
    }
  }
}

const std::vector<ServedRequest>& InferenceServer::Drain() {
  {
    std::lock_guard<std::mutex> lock(submit_mu_);
    intake_closed_ = true;
  }
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
  for (auto& worker : workers_)
    if (worker->thread.joinable()) worker->thread.join();
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    DB_CHECK_MSG(completed_ ==
                     static_cast<std::int64_t>(results_.size()),
                 "drained server left requests incomplete");
    drained_ = true;
  }
  return results_;
}

ServerStats InferenceServer::Stats() const {
  std::vector<std::int64_t> busy;
  busy.reserve(workers_.size());
  for (const auto& worker : workers_) busy.push_back(worker->busy_cycles);
  std::lock_guard<std::mutex> lock(results_mu_);
  DB_CHECK_MSG(drained_, "Stats() requires a drained server");
  return ComputeServerStats(results_, batches_dispatched_,
                            design_.config.frequency_mhz, std::move(busy));
}

}  // namespace db::serve
