// Bounded request queue between the submitting application threads and
// the server's dispatcher, with configurable admission control.
//
// The bound is the server's overload protection.  What happens when the
// queue is full is the admission policy:
//
//   * kBlock     — Push blocks the producer until a slot frees (the
//                  classic back-pressure contract; the default).
//   * kReject    — Push returns StatusCode::kRejected immediately; the
//                  producer completes the request as failed.
//   * kShedOldest — Push evicts the oldest queued request (returned to
//                  the caller so it can be completed as kShed) and
//                  admits the new one: fresh work is favoured because
//                  the oldest entry is the most likely to be past its
//                  deadline anyway.
//
// Close() ends intake: pending items drain, further Push calls throw
// db::ShutdownError (including producers already blocked inside Push),
// and Pop returns nullopt once the queue is empty.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "common/error.h"
#include "serve/batcher.h"

namespace db::serve {

enum class AdmissionPolicy { kBlock, kReject, kShedOldest };

constexpr const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kBlock: return "block";
    case AdmissionPolicy::kReject: return "reject";
    case AdmissionPolicy::kShedOldest: return "shed-oldest";
  }
  return "unknown";
}

/// Outcome of one Push under the queue's admission policy.
struct AdmissionResult {
  /// kOk: the request was admitted.  kRejected: the queue was full
  /// under kReject and the request was refused.
  StatusCode status = StatusCode::kOk;
  /// Under kShedOldest on a full queue: the evicted oldest request.
  std::optional<PendingRequest> shed;
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity,
                        AdmissionPolicy policy = AdmissionPolicy::kBlock);

  /// Admit `request` under the queue's policy (see header comment).
  /// Only kBlock ever blocks.  Throws db::ShutdownError if the queue
  /// was closed (before or while waiting).
  AdmissionResult Push(PendingRequest request);

  /// Blocks while the queue is empty and open.  Returns nullopt once the
  /// queue is closed and fully drained.
  std::optional<PendingRequest> Pop();

  /// End intake; wakes all waiters.
  void Close();

  std::size_t capacity() const { return capacity_; }
  AdmissionPolicy policy() const { return policy_; }

  /// Instantaneous depth (monitoring only).
  std::size_t size() const;

  /// Cumulative admission outcomes (monitoring only).
  std::int64_t rejected() const;
  std::int64_t shed() const;

 private:
  const std::size_t capacity_;
  const AdmissionPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<PendingRequest> items_;
  std::int64_t rejected_ = 0;
  std::int64_t shed_ = 0;
  bool closed_ = false;
};

}  // namespace db::serve
