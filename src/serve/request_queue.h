// Bounded blocking request queue between the submitting application
// threads and the server's dispatcher.
//
// The bound is the server's admission control: when the accelerator
// falls behind, Push blocks the producer instead of letting the backlog
// grow without limit (the standard back-pressure contract of a serving
// system).  Close() ends intake: pending items drain, further Push calls
// throw, and Pop returns nullopt once the queue is empty.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "serve/batcher.h"

namespace db::serve {

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Blocks while the queue is full.  Throws db::Error if the queue was
  /// closed (before or while waiting).
  void Push(PendingRequest request);

  /// Blocks while the queue is empty and open.  Returns nullopt once the
  /// queue is closed and fully drained.
  std::optional<PendingRequest> Pop();

  /// End intake; wakes all waiters.
  void Close();

  std::size_t capacity() const { return capacity_; }

  /// Instantaneous depth (monitoring only).
  std::size_t size() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<PendingRequest> items_;
  bool closed_ = false;
};

}  // namespace db::serve
