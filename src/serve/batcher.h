// Deterministic request batching for the inference server.
//
// Requests carry simulated arrival cycles (the server's clock is the
// accelerator clock, not wall time).  The batcher groups consecutive
// requests into batches under two knobs:
//
//   * max_batch_size — a batch closes as soon as it holds this many
//     requests; it dispatches at the last member's arrival cycle.
//   * linger_cycles  — a partial batch waits at most this many cycles
//     after its first member's arrival; the first request whose arrival
//     falls outside the window closes the batch, which dispatches when
//     the linger timer expires (first arrival + linger).
//
// Because batch composition depends only on the submission order and the
// arrival cycles — never on thread timing — the same request stream
// always produces the same batches, which is what makes the whole server
// reproducible.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "tensor/tensor.h"

namespace db::serve {

/// One queued inference request.
struct PendingRequest {
  std::int64_t id = 0;             // dense submission index
  std::int64_t arrival_cycle = 0;  // simulated arrival time
  /// Absolute simulated cycle by which service must have *started*;
  /// 0 means no deadline.  A request whose service would begin after
  /// its deadline completes with StatusCode::kDeadlineExceeded instead
  /// of occupying a datapath slot.
  std::int64_t deadline_cycle = 0;
  Tensor input;
};

/// A closed batch, ready for dispatch.
struct Batch {
  std::int64_t id = 0;  // dense batch index, in close order
  std::int64_t ready_cycle = 0;  // earliest cycle the batch may dispatch
  std::vector<PendingRequest> requests;
};

struct BatchPolicy {
  std::int64_t max_batch_size = 4;
  std::int64_t linger_cycles = 0;
};

class Batcher {
 public:
  explicit Batcher(BatchPolicy policy);

  /// Feed the next request (arrival cycles must be non-decreasing).
  /// Returns the batch that `request` closed, if any; `request` itself
  /// then opens the next batch.
  std::optional<Batch> Add(PendingRequest request);

  /// Close the open partial batch (end of the request stream).  The
  /// flush is an explicit end-of-intake signal, so the batch dispatches
  /// at its last member's arrival instead of waiting out the linger.
  std::optional<Batch> Flush();

 private:
  Batch CloseOpen(std::int64_t ready_cycle);

  BatchPolicy policy_;
  std::vector<PendingRequest> open_;
  std::int64_t next_batch_id_ = 0;
  std::int64_t last_arrival_ = 0;
};

}  // namespace db::serve
