// Per-request records and aggregate metrics of an inference-server run.
//
// All times are *simulated*: cycles of the generated accelerator's clock
// converted through the design's frequency.  A request's latency is
// queueing (waiting for its batch to close and a worker to free up) plus
// service (its position inside the batch on the worker's datapath):
//
//   latency = finish_cycle − arrival_cycle
//
// Percentiles use the nearest-rank definition on the sorted latency
// list: p(q) = sorted[⌈q/100 · n⌉ − 1], so p100 and `max` coincide and
// every reported percentile is a latency that actually occurred.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace db::serve {

/// Everything the server knows about one completed request.
struct ServedRequest {
  std::int64_t id = 0;
  std::int64_t batch_id = 0;
  int worker = -1;
  std::int64_t arrival_cycle = 0;
  std::int64_t start_cycle = 0;   // its batch began service
  std::int64_t finish_cycle = 0;  // its own image completed
  std::int64_t service_cycles = 0;  // datapath cycles of its image
  std::int64_t dram_bytes = 0;
  double joules = 0.0;
  Tensor output;
};

/// Aggregate metrics over one completed run.
struct ServerStats {
  std::int64_t requests = 0;
  std::int64_t batches = 0;
  int workers = 0;
  double frequency_mhz = 0.0;

  /// Simulated makespan: the largest finish cycle over all requests.
  std::int64_t makespan_cycles = 0;
  double makespan_seconds = 0.0;

  /// requests / (last finish − first arrival), in simulated seconds.
  double throughput_rps = 0.0;

  /// Nearest-rank latency percentiles, simulated seconds.
  double latency_p50_s = 0.0;
  double latency_p90_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_max_s = 0.0;
  double latency_mean_s = 0.0;

  std::int64_t total_dram_bytes = 0;
  double total_joules = 0.0;

  /// Busy cycles per worker; utilisation = busy / makespan.
  std::vector<std::int64_t> worker_busy_cycles;

  double WorkerUtilization(int worker) const;
  std::string ToString() const;
};

/// Aggregate the per-request records (order-independent).
/// `worker_busy_cycles[w]` must hold worker w's total service cycles.
ServerStats ComputeServerStats(std::span<const ServedRequest> requests,
                               std::int64_t batches, double frequency_mhz,
                               std::vector<std::int64_t> worker_busy_cycles);

}  // namespace db::serve
