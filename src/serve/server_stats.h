// Per-request records and aggregate metrics of an inference-server run.
//
// All times are *simulated*: cycles of the generated accelerator's clock
// converted through the design's frequency.  A request's latency is
// queueing (waiting for its batch to close and a worker to free up) plus
// service (its position inside the batch on the worker's datapath):
//
//   latency = finish_cycle − arrival_cycle
//
// Percentiles come from the shared log-bucket quantile histogram
// (obs::HistogramStats): latencies are observed *in cycles* into
// `latency_cycles` and every reported percentile is that histogram's
// deterministic nearest-rank bucket quantile converted to seconds.
// Benches and the server's metrics registry use the same histogram
// type over the same samples, so BENCH_serve.json and the
// `serve.latency_cycles` metric can never disagree.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"
#include "tensor/tensor.h"

namespace db::serve {

/// Everything the server knows about one completed request.  `status`
/// records the disposition: only kOk requests carry an output and
/// service accounting; shed / rejected / expired / faulted requests
/// complete without ever occupying a datapath slot (their timing fields
/// beyond arrival and finish stay zero).
struct ServedRequest {
  std::int64_t id = 0;
  std::int64_t batch_id = 0;
  int worker = -1;
  std::int64_t arrival_cycle = 0;
  std::int64_t deadline_cycle = 0;  // 0 = none; service must start by it
  std::int64_t start_cycle = 0;   // its batch began service
  std::int64_t finish_cycle = 0;  // its own image completed
  std::int64_t service_cycles = 0;  // datapath cycles of its image
  std::int64_t dram_bytes = 0;
  double joules = 0.0;
  StatusCode status = StatusCode::kOk;
  int retries = 0;  // transient-fault attempts retried before success
  /// Cycles lost to injected faults and their recovery on this request:
  /// stalls, weight-region scrubs and retry backoff, all simulated.
  std::int64_t recovery_cycles = 0;
  Tensor output;
};

/// Aggregate metrics over one completed run.  Latency, throughput and
/// traffic aggregates cover the `completed` (status kOk) requests;
/// the robustness counters account for everything else.
struct ServerStats {
  std::int64_t requests = 0;
  std::int64_t batches = 0;
  int workers = 0;
  double frequency_mhz = 0.0;

  /// Robustness accounting (see StatusCode).
  std::int64_t completed = 0;           // status == kOk
  std::int64_t shed = 0;                // evicted under kShedOldest
  std::int64_t rejected = 0;            // refused under kReject
  std::int64_t deadline_exceeded = 0;   // expired before service
  std::int64_t faulted = 0;             // retries exhausted
  std::int64_t retries = 0;             // transient attempts retried
  std::int64_t faults_injected = 0;     // events the injector fired
  std::int64_t recovery_cycles = 0;     // stall + scrub + backoff cycles

  /// Cluster-resilience accounting, filled by InferenceServer::Stats()
  /// from dispatcher-side state (ComputeServerStats leaves them zero —
  /// the records alone cannot see cluster events).
  std::int64_t crashes = 0;             // replica crash events fired
  std::int64_t hangs = 0;               // replica hang windows fired
  std::int64_t slow_faults = 0;         // slow-replica windows fired
  std::int64_t route_failures = 0;      // transient routing failures
  std::int64_t redispatched = 0;        // requests moved off a crash
  std::int64_t readmissions = 0;        // scrub-and-readmit passes
  std::int64_t breaker_opens = 0;       // circuit-breaker open episodes
  std::int64_t hedges = 0;              // hedged batches issued
  std::int64_t hedge_wins = 0;          // hedges that beat the primary
  std::int64_t health_transitions = 0;  // monitor state changes

  /// Simulated makespan: the largest finish cycle over all requests.
  std::int64_t makespan_cycles = 0;
  double makespan_seconds = 0.0;

  /// requests / (last finish − first arrival), in simulated seconds.
  double throughput_rps = 0.0;

  /// Latency distribution of the kOk requests in simulated cycles —
  /// the shared quantile histogram the percentiles below are read from
  /// (identical, bucket for bucket, to the server's
  /// `serve.latency_cycles` registry metric).
  obs::HistogramStats latency_cycles;

  /// Bucket quantiles of `latency_cycles`, simulated seconds.
  double latency_p50_s = 0.0;
  double latency_p90_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_max_s = 0.0;
  double latency_mean_s = 0.0;

  std::int64_t total_dram_bytes = 0;
  double total_joules = 0.0;

  /// Busy cycles per worker; utilisation = busy / makespan.
  std::vector<std::int64_t> worker_busy_cycles;

  /// Per-replica service aggregation, derived from the records (the
  /// record's worker index is the replica index): kOk requests served
  /// and distinct batches executed on each replica.  Sized like
  /// worker_busy_cycles; a replica the router never picked reads zero.
  std::vector<std::int64_t> replica_requests;
  std::vector<std::int64_t> replica_batches;

  double WorkerUtilization(int worker) const;
  std::string ToString() const;
};

/// Aggregate the per-request records (order-independent).
/// `worker_busy_cycles[w]` must hold worker w's total service cycles.
/// Status counts, retries and recovery cycles are derived from the
/// records; `faults_injected` is the caller's (it knows the plan).
ServerStats ComputeServerStats(std::span<const ServedRequest> requests,
                               std::int64_t batches, double frequency_mhz,
                               std::vector<std::int64_t> worker_busy_cycles);

}  // namespace db::serve
