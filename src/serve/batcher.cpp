#include "serve/batcher.h"

#include <utility>

#include "common/error.h"

namespace db::serve {

Batcher::Batcher(BatchPolicy policy) : policy_(policy) {
  DB_CHECK_MSG(policy_.max_batch_size >= 1,
               "max_batch_size must be at least 1");
  DB_CHECK_MSG(policy_.linger_cycles >= 0,
               "linger_cycles must be non-negative");
}

Batch Batcher::CloseOpen(std::int64_t ready_cycle) {
  Batch batch;
  batch.id = next_batch_id_++;
  batch.ready_cycle = ready_cycle;
  batch.requests = std::move(open_);
  open_.clear();
  return batch;
}

std::optional<Batch> Batcher::Add(PendingRequest request) {
  DB_CHECK_MSG(request.arrival_cycle >= last_arrival_,
               "request arrival cycles must be non-decreasing");
  last_arrival_ = request.arrival_cycle;

  std::optional<Batch> closed;
  if (!open_.empty() &&
      request.arrival_cycle >
          open_.front().arrival_cycle + policy_.linger_cycles) {
    // The linger timer of the open batch expired before this arrival.
    closed = CloseOpen(open_.front().arrival_cycle + policy_.linger_cycles);
  }
  open_.push_back(std::move(request));
  if (static_cast<std::int64_t>(open_.size()) == policy_.max_batch_size) {
    DB_CHECK(!closed.has_value());  // max_batch_size >= 1 ⇒ at most one
    closed = CloseOpen(open_.back().arrival_cycle);
  }
  return closed;
}

std::optional<Batch> Batcher::Flush() {
  if (open_.empty()) return std::nullopt;
  return CloseOpen(open_.back().arrival_cycle);
}

}  // namespace db::serve
