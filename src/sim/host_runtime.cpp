#include "sim/host_runtime.h"

#include "common/error.h"

namespace db {

MemoryImage BuildHostImage(const Network& net,
                           const AcceleratorDesign& design,
                           const WeightStore& weights) {
  // Provision the board: weights once, input region zeroed.
  const IrLayer& in_layer = net.layer(net.input_ids().front());
  const BlobShape& s = in_layer.output_shape;
  return BuildMemoryImage(
      net, design, weights,
      {{in_layer.name(), Tensor(Shape{s.channels, s.height, s.width})}});
}

HostRuntime::HostRuntime(const Network& net,
                         const AcceleratorDesign& design,
                         const WeightStore& weights,
                         std::string device_name)
    : net_(net),
      design_(design),
      device_(DeviceCatalog(device_name)),
      image_(BuildHostImage(net, design, weights)) {}

HostInvocation HostRuntime::MakeInvocation(const SystemRunResult& run) {
  HostInvocation inv;
  inv.output = run.output;
  inv.cycles = run.perf.total_cycles;
  inv.seconds = run.perf.TotalSeconds();
  inv.joules = EstimateEnergy(design_.resources.total, run.perf, device_)
                   .total_joules;
  inv.status = run.status;
  ++stats_.invocations;
  stats_.total_seconds += inv.seconds;
  stats_.total_joules += inv.joules;
  stats_.total_dram_bytes += run.perf.total_dram_bytes;
  return inv;
}

HostInvocation HostRuntime::Infer(const Tensor& input) {
  return MakeInvocation(RunSystem(net_, design_, image_, input));
}

std::vector<HostInvocation> HostRuntime::InferBatch(
    std::span<const Tensor> inputs) {
  DB_CHECK_MSG(!inputs.empty(), "empty inference batch");
  std::vector<HostInvocation> results;
  results.reserve(inputs.size());

  // First image: cold run through the image.
  results.push_back(Infer(inputs.front()));

  // Remaining images reuse buffered weights where they fit.
  PerfOptions steady;
  steady.weights_resident = true;
  for (std::size_t i = 1; i < inputs.size(); ++i)
    results.push_back(
        MakeInvocation(RunSystem(net_, design_, image_, inputs[i], steady)));
  return results;
}

}  // namespace db
