#include "sim/host_runtime.h"

#include "common/error.h"

namespace db {

MemoryImage BuildHostImage(const Network& net,
                           const AcceleratorDesign& design,
                           const WeightStore& weights) {
  // Provision the board: weights once, input region zeroed.
  const IrLayer& in_layer = net.layer(net.input_ids().front());
  const BlobShape& s = in_layer.output_shape;
  return BuildMemoryImage(
      net, design, weights,
      {{in_layer.name(), Tensor(Shape{s.channels, s.height, s.width})}});
}

HostRuntime::HostRuntime(const Network& net,
                         const AcceleratorDesign& design,
                         const WeightStore& weights,
                         std::string device_name)
    : net_(net),
      design_(design),
      device_(DeviceCatalog(device_name)),
      image_(BuildHostImage(net, design, weights)) {}

HostInvocation HostRuntime::MakeInvocation(const Tensor& output,
                                           const PerfResult& perf) {
  HostInvocation inv;
  inv.output = output;
  inv.cycles = perf.total_cycles;
  inv.seconds = perf.TotalSeconds();
  inv.joules =
      EstimateEnergy(design_.resources.total, perf, device_).total_joules;
  ++stats_.invocations;
  stats_.total_seconds += inv.seconds;
  stats_.total_joules += inv.joules;
  stats_.total_dram_bytes += perf.total_dram_bytes;
  return inv;
}

HostInvocation HostRuntime::Infer(const Tensor& input) {
  const SystemRunResult run = RunSystem(net_, design_, image_, input);
  return MakeInvocation(run.output, run.perf);
}

std::vector<HostInvocation> HostRuntime::InferBatch(
    std::span<const Tensor> inputs) {
  DB_CHECK_MSG(!inputs.empty(), "empty inference batch");
  std::vector<HostInvocation> results;
  results.reserve(inputs.size());

  // First image: cold run through the image.
  results.push_back(Infer(inputs.front()));

  // Remaining images reuse buffered weights where they fit.
  PerfOptions steady;
  steady.weights_resident = true;
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    const SystemRunResult run =
        RunSystem(net_, design_, image_, inputs[i], steady);
    results.push_back(MakeInvocation(run.output, run.perf));
  }
  return results;
}

}  // namespace db
