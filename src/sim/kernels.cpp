#include "sim/kernels.h"

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/error.h"
#include "common/strings.h"

namespace db::sim {

// ---------------------------------------------------------------------
// Scalar reference kernels
// ---------------------------------------------------------------------

namespace {

void ScalarMacRow(std::int64_t* acc, const std::int32_t* in,
                  std::int32_t w, std::size_t n) {
  const std::int64_t w64 = w;
  for (std::size_t i = 0; i < n; ++i) acc[i] += w64 * in[i];
}

std::int64_t ScalarDot(const std::int32_t* a, const std::int32_t* b,
                       std::size_t n) {
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i)
    sum += static_cast<std::int64_t>(a[i]) * b[i];
  return sum;
}

std::int64_t ScalarDotRows(const std::int32_t* a, std::ptrdiff_t a_stride,
                           const std::int32_t* b, std::ptrdiff_t b_stride,
                           std::size_t rows, std::size_t n) {
  std::int64_t sum = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::int32_t* pa = a + static_cast<std::ptrdiff_t>(r) * a_stride;
    const std::int32_t* pb = b + static_cast<std::ptrdiff_t>(r) * b_stride;
    for (std::size_t i = 0; i < n; ++i)
      sum += static_cast<std::int64_t>(pa[i]) * pb[i];
  }
  return sum;
}

void ScalarWriteback(std::int32_t* out, const std::int64_t* acc,
                     std::size_t n, int frac_bits, std::int32_t raw_min,
                     std::int32_t raw_max) {
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t v = RoundShiftHalfAway(acc[i], frac_bits);
    if (v > raw_max) v = raw_max;
    if (v < raw_min) v = raw_min;
    out[i] = static_cast<std::int32_t>(v);
  }
}

void ScalarRelu(std::int32_t* out, const std::int32_t* in, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = in[i] > 0 ? in[i] : 0;
}

std::int32_t ScalarMaxValue(const std::int32_t* in, std::size_t n,
                            std::int32_t init) {
  std::int32_t best = init;
  for (std::size_t i = 0; i < n; ++i)
    if (in[i] > best) best = in[i];
  return best;
}

constexpr KernelOps kScalarOps = {
    "scalar",        ScalarMacRow, ScalarDot, ScalarDotRows,
    ScalarWriteback, ScalarRelu,   ScalarMaxValue,
};

}  // namespace

const KernelOps& ScalarKernels() { return kScalarOps; }

// ---------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------

#if defined(DB_HAVE_AVX2_KERNELS)
namespace detail {
// Defined in kernels_avx2.cpp (compiled with -mavx2).
const KernelOps& Avx2KernelsImpl();
}  // namespace detail
#endif

bool Avx2Available() {
#if defined(DB_HAVE_AVX2_KERNELS) && defined(__x86_64__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const KernelOps& Avx2Kernels() {
#if defined(DB_HAVE_AVX2_KERNELS)
  if (Avx2Available()) return detail::Avx2KernelsImpl();
#endif
  DB_THROW("AVX2 kernels are not available on this host");
}

std::string KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kAuto: return "auto";
    case KernelBackend::kScalar: return "scalar";
    case KernelBackend::kAvx2: return "avx2";
  }
  return "?";
}

namespace {

KernelBackend ParseBackend(const std::string& name) {
  const std::string n = ToLower(name);
  if (n == "auto") return KernelBackend::kAuto;
  if (n == "scalar") return KernelBackend::kScalar;
  if (n == "avx2") return KernelBackend::kAvx2;
  DB_THROW("unknown kernel backend '" << name
           << "' (want auto, scalar or avx2)");
}

/// The initial request: DB_SIM_KERNEL env var, else auto.
KernelBackend InitialBackend() {
  const char* env = std::getenv("DB_SIM_KERNEL");
  if (env == nullptr || *env == '\0') return KernelBackend::kAuto;
  return ParseBackend(env);
}

std::atomic<KernelBackend>& RequestedBackend() {
  static std::atomic<KernelBackend> requested{InitialBackend()};
  return requested;
}

}  // namespace

void SetKernelBackend(KernelBackend backend) {
  if (backend == KernelBackend::kAvx2 && !Avx2Available())
    DB_THROW("cannot select the avx2 kernel backend: "
             "not available on this host");
  RequestedBackend().store(backend, std::memory_order_relaxed);
}

KernelBackend ActiveKernelBackend() {
  const KernelBackend requested =
      RequestedBackend().load(std::memory_order_relaxed);
  if (requested == KernelBackend::kScalar) return KernelBackend::kScalar;
  if (requested == KernelBackend::kAvx2) return KernelBackend::kAvx2;
  return Avx2Available() ? KernelBackend::kAvx2 : KernelBackend::kScalar;
}

const KernelOps& ActiveKernels() {
  return ActiveKernelBackend() == KernelBackend::kAvx2 ? Avx2Kernels()
                                                       : ScalarKernels();
}

// ---------------------------------------------------------------------
// SimArena
// ---------------------------------------------------------------------

namespace {
constexpr std::size_t kArenaAlign = 64;
constexpr std::size_t kArenaMinBlock = std::size_t{64} * 1024;

std::size_t RoundUpAligned(std::size_t bytes) {
  return (bytes + kArenaAlign - 1) & ~(kArenaAlign - 1);
}
}  // namespace

std::byte* SimArena::AlignedNew(std::size_t bytes) {
  return static_cast<std::byte*>(
      ::operator new(bytes, std::align_val_t{kArenaAlign}));
}

void SimArena::AlignedDelete(std::byte* p) {
  ::operator delete(p, std::align_val_t{kArenaAlign});
}

SimArena::~SimArena() {
  for (Block& b : blocks_) AlignedDelete(b.data);
}

std::size_t SimArena::capacity_bytes() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

void* SimArena::AllocBytes(std::size_t bytes) {
  const std::size_t need = RoundUpAligned(bytes == 0 ? 1 : bytes);
  while (current_ < blocks_.size()) {
    Block& b = blocks_[current_];
    if (b.used + need <= b.size) {
      void* p = b.data + b.used;
      b.used += need;
      used_ += need;
      return p;
    }
    ++current_;
  }
  // Grow: at least double the current capacity so the block count stays
  // logarithmic in the eventual footprint.
  std::size_t size = std::max(need, kArenaMinBlock);
  size = std::max(size, capacity_bytes());
  Block b;
  b.data = AlignedNew(size);
  b.size = size;
  b.used = need;
  blocks_.push_back(b);
  current_ = blocks_.size() - 1;
  used_ += need;
  return b.data;
}

void SimArena::Reset() {
  if (blocks_.size() > 1) {
    // The last run overflowed into extra blocks: coalesce into one block
    // sized for the whole footprint, so the steady state is a single
    // stable allocation.
    const std::size_t total = capacity_bytes();
    for (Block& b : blocks_) AlignedDelete(b.data);
    blocks_.clear();
    Block b;
    b.data = AlignedNew(total);
    b.size = total;
    blocks_.push_back(b);
  }
  for (Block& b : blocks_) b.used = 0;
  current_ = 0;
  used_ = 0;
}

}  // namespace db::sim
