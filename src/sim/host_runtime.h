// Host-side runtime: the software the ARM Cortex-A9 runs in the paper's
// system (§4.1) — it owns the DRAM image, preprocesses inputs into the
// compiler-directed layout, kicks invocations, reads results back, and
// keeps cumulative accounting.  This is the top of the whole stack: a
// user application links against this class and never touches the
// accelerator internals.
#pragma once

#include <span>

#include "core/memory_image.h"
#include "sim/perf_model.h"
#include "sim/power_model.h"
#include "sim/system_sim.h"

namespace db {

/// Result of one accelerator invocation as the host sees it.
struct HostInvocation {
  Tensor output;
  std::int64_t cycles = 0;
  double seconds = 0.0;
  double joules = 0.0;
  StatusCode status = StatusCode::kOk;  // from SystemRunResult
};

/// Cumulative session accounting.
struct HostStats {
  std::int64_t invocations = 0;
  double total_seconds = 0.0;
  double total_joules = 0.0;
  std::int64_t total_dram_bytes = 0;
};

/// Build the board's start-up DRAM image: all weights serialised, the
/// input region zeroed.  Shared by HostRuntime and the inference
/// server's worker contexts (which each copy the image built once here).
MemoryImage BuildHostImage(const Network& net,
                           const AcceleratorDesign& design,
                           const WeightStore& weights);

class HostRuntime {
 public:
  /// Builds the DRAM image (weights serialised once, the way the board
  /// is provisioned at start-up).
  HostRuntime(const Network& net, const AcceleratorDesign& design,
              const WeightStore& weights,
              std::string device_name = "zynq-7045");

  /// One inference: write input, invoke, read output back.
  HostInvocation Infer(const Tensor& input);

  /// Batched inference: the first image pays the cold-weight cost; the
  /// rest run with resident weights where they fit (SimulateBatch's
  /// steady-state model).
  std::vector<HostInvocation> InferBatch(std::span<const Tensor> inputs);

  const HostStats& stats() const { return stats_; }

  /// Direct access to the DRAM image (fault-injection experiments).
  MemoryImage& image() { return image_; }

 private:
  HostInvocation MakeInvocation(const SystemRunResult& run);

  const Network& net_;
  const AcceleratorDesign& design_;
  const DeviceInfo& device_;
  MemoryImage image_;
  HostStats stats_;
};

}  // namespace db
