#include "sim/system_sim.h"

#include "common/error.h"

namespace db {

WeightStore DecodeWeights(const MemoryImage& image, const Network& net,
                          const AcceleratorDesign& design) {
  const FixedFormat& fmt = design.config.format;
  const int elem_bytes = static_cast<int>(design.config.ElementBytes());
  WeightStore store = WeightStore::CreateFor(net);
  for (const IrLayer* layer : net.ComputeLayers()) {
    if (!store.Has(layer->name())) continue;
    DB_CHECK_MSG(design.memory_map.HasWeights(layer->name()),
                 "parameterised layer missing a weight region");
    const MemoryRegion& region =
        design.memory_map.Weights(layer->name());
    LayerParams& params = store.at(layer->name());
    std::int64_t addr = region.base;
    auto decode = [&](Tensor& t) {
      for (std::int64_t i = 0; i < t.size(); ++i) {
        DB_CHECK_MSG(addr + elem_bytes <= region.end(),
                     "weight region underflows its tensors");
        t[i] = static_cast<float>(
            fmt.Dequantize(image.ReadElem(addr, elem_bytes)));
        addr += elem_bytes;
      }
    };
    decode(params.weights);
    decode(params.bias);
    decode(params.recurrent);
  }
  return store;
}

SystemRunResult RunSystem(const Network& net,
                          const AcceleratorDesign& design,
                          MemoryImage& image, const Tensor& input,
                          const PerfOptions& perf_options) {
  // Host writes the input blob into DRAM in the compiler's tile order.
  const IrLayer& in_layer = net.layer(net.input_ids().front());
  StoreBlob(image, net, design, in_layer.name(), input);

  // The accelerator's view of the weights comes from the image bytes.
  const WeightStore weights = DecodeWeights(image, net, design);
  FunctionalSimulator sim(net, design, weights);
  SystemRunResult result;
  const Tensor raw_out = sim.Run(input);

  // Accelerator writes the output blob; host reads it back.
  const IrLayer& out_layer = net.OutputLayer();
  StoreBlob(image, net, design, out_layer.name(), raw_out);
  result.output = ExtractBlob(image, net, design, out_layer.name());
  result.perf = SimulatePerformance(net, design, perf_options);
  return result;
}

}  // namespace db
