#include "sim/system_sim.h"

#include "common/error.h"

namespace db {

WeightStore DecodeWeights(const MemoryImage& image, const Network& net,
                          const AcceleratorDesign& design) {
  const FixedFormat& fmt = design.config.format;
  const int elem_bytes = static_cast<int>(design.config.ElementBytes());
  WeightStore store = WeightStore::CreateFor(net);
  for (const IrLayer* layer : net.ComputeLayers()) {
    if (!store.Has(layer->name())) continue;
    DB_CHECK_MSG(design.memory_map.HasWeights(layer->name()),
                 "parameterised layer missing a weight region");
    const MemoryRegion& region =
        design.memory_map.Weights(layer->name());
    LayerParams& params = store.at(layer->name());
    std::int64_t addr = region.base;
    auto decode = [&](Tensor& t) {
      for (std::int64_t i = 0; i < t.size(); ++i) {
        DB_CHECK_MSG(addr + elem_bytes <= region.end(),
                     "weight region underflows its tensors");
        t[i] = static_cast<float>(
            fmt.Dequantize(image.ReadElem(addr, elem_bytes)));
        addr += elem_bytes;
      }
    };
    decode(params.weights);
    decode(params.bias);
    decode(params.recurrent);
  }
  return store;
}

SystemContext::SystemContext(const Network& net,
                             const AcceleratorDesign& design,
                             const MemoryImage& image)
    : net_(net),
      design_(design),
      weights_(DecodeWeights(image, net, design)),
      sim_(net, design, weights_) {}

SystemRunResult SystemContext::Run(MemoryImage& image, const Tensor& input,
                                   const PerfOptions& perf_options) const {
  // Host writes the input blob into DRAM in the compiler's tile order.
  const IrLayer& in_layer = net_.layer(net_.input_ids().front());
  StoreBlob(image, net_, design_, in_layer.name(), input);

  SystemRunResult result;
  const Tensor raw_out = sim_.Run(input);

  // Accelerator writes the output blob; host reads it back.
  const IrLayer& out_layer = net_.OutputLayer();
  StoreBlob(image, net_, design_, out_layer.name(), raw_out);
  result.output = ExtractBlob(image, net_, design_, out_layer.name());
  result.perf = SimulatePerformance(net_, design_, perf_options);
  result.status = StatusCode::kOk;
  return result;
}

std::vector<SystemReplica> ReplicateSystem(const Network& net,
                                           const AcceleratorDesign& design,
                                           const MemoryImage& provisioned,
                                           int count) {
  DB_CHECK_MSG(count >= 1, "a system needs at least one replica");
  std::vector<SystemReplica> replicas;
  replicas.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    SystemReplica replica{provisioned, nullptr};
    // Each context decodes from its replica's own bytes: the weight
    // snapshot never aliases a sibling's image.
    replica.context =
        std::make_unique<SystemContext>(net, design, replica.image);
    replicas.push_back(std::move(replica));
  }
  return replicas;
}

SystemRunResult RunSystem(const Network& net,
                          const AcceleratorDesign& design,
                          MemoryImage& image, const Tensor& input,
                          const PerfOptions& perf_options) {
  // The accelerator's view of the weights comes from the image bytes;
  // re-decoding here keeps corruption of weight regions visible.
  const SystemContext context(net, design, image);
  return context.Run(image, input, perf_options);
}

}  // namespace db
