#include "sim/system_sim.h"

#include "common/error.h"

namespace db {

WeightStore DecodeWeights(const MemoryImage& image, const Network& net,
                          const AcceleratorDesign& design) {
  const FixedFormat& fmt = design.config.format;
  const int elem_bytes = static_cast<int>(design.config.ElementBytes());
  WeightStore store = WeightStore::CreateFor(net);
  for (const IrLayer* layer : net.ComputeLayers()) {
    if (!store.Has(layer->name())) continue;
    DB_CHECK_MSG(design.memory_map.HasWeights(layer->name()),
                 "parameterised layer missing a weight region");
    const MemoryRegion& region =
        design.memory_map.Weights(layer->name());
    LayerParams& params = store.at(layer->name());
    std::int64_t addr = region.base;
    auto decode = [&](Tensor& t) {
      for (std::int64_t i = 0; i < t.size(); ++i) {
        DB_CHECK_MSG(addr + elem_bytes <= region.end(),
                     "weight region underflows its tensors");
        t[i] = static_cast<float>(
            fmt.Dequantize(image.ReadElem(addr, elem_bytes)));
        addr += elem_bytes;
      }
    };
    decode(params.weights);
    decode(params.bias);
    decode(params.recurrent);
    // The region must be fully consumed: anything left beyond the
    // MemoryMap's port-alignment padding is trailing garbage the
    // decoder would silently ignore (an oversized or mis-assembled
    // image).  Mirrors the mem.layout weight-sizing verifier rule.
    const std::int64_t align = std::max<std::int64_t>(
        static_cast<std::int64_t>(design.config.memory_port_elems) *
            elem_bytes,
        1);
    const std::int64_t leftover = region.end() - addr;
    if (leftover < 0 || leftover >= align)
      DB_THROW("weight region '" << layer->name()
               << "' not fully consumed: " << leftover
               << " trailing bytes exceed one alignment beat (" << align
               << ")");
  }
  return store;
}

SystemContext::SystemContext(const Network& net,
                             const AcceleratorDesign& design,
                             const MemoryImage& image)
    : net_(net),
      design_(design),
      weights_(DecodeWeights(image, net, design)),
      sim_(net, design, weights_) {
  // Precompute the input/output blob regions and tile permutations:
  // they depend only on (net, design), and rebuilding them per request
  // dominated the serve hot path for small models.
  const IrLayer& in_layer = net.layer(net.input_ids().front());
  const IrLayer& out_layer = net.OutputLayer();
  in_region_ = &design.memory_map.Blob(in_layer.name());
  out_region_ = &design.memory_map.Blob(out_layer.name());
  in_order_ = BlobTileOrder(net, design, in_layer.id);
  out_order_ = BlobTileOrder(net, design, out_layer.id);
}

SystemRunResult SystemContext::Run(MemoryImage& image, const Tensor& input,
                                   const PerfOptions& perf_options) const {
  // Host writes the input blob into DRAM in the compiler's tile order.
  StoreBlob(image, design_, *in_region_, in_order_, input);

  SystemRunResult result;
  const Tensor raw_out = sim_.Run(input);

  // Accelerator writes the output blob; host reads it back.
  StoreBlob(image, design_, *out_region_, out_order_, raw_out);
  result.output = ExtractBlob(image, design_, *out_region_, out_order_,
                              net_.OutputLayer().output_shape);
  result.perf = SimulatePerformance(net_, design_, perf_options);
  result.status = StatusCode::kOk;
  return result;
}

std::vector<SystemReplica> ReplicateSystem(const Network& net,
                                           const AcceleratorDesign& design,
                                           const MemoryImage& provisioned,
                                           int count) {
  DB_CHECK_MSG(count >= 1, "a system needs at least one replica");
  std::vector<SystemReplica> replicas;
  replicas.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    SystemReplica replica{provisioned, nullptr};
    // Each context decodes from its replica's own bytes: the weight
    // snapshot never aliases a sibling's image.
    replica.context =
        std::make_unique<SystemContext>(net, design, replica.image);
    replicas.push_back(std::move(replica));
  }
  return replicas;
}

SystemRunResult RunSystem(const Network& net,
                          const AcceleratorDesign& design,
                          MemoryImage& image, const Tensor& input,
                          const PerfOptions& perf_options) {
  // The accelerator's view of the weights comes from the image bytes;
  // re-decoding here keeps corruption of weight regions visible.
  const SystemContext context(net, design, image);
  return context.Run(image, input, perf_options);
}

}  // namespace db
