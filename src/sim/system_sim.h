// System-level simulation: run an inference entirely through the DRAM
// image, the way the board operates (paper §4.1: the ARM core stores the
// preprocessed weights and inputs into DDR3; the accelerator reads and
// writes DRAM through the AXI switches; the host reads the result back).
//
// The weights the datapath uses are *decoded from the image bytes*, not
// taken from the WeightStore — so a corrupted image region corrupts the
// run, exactly as on hardware.
#pragma once

#include <memory>
#include <vector>

#include "common/error.h"
#include "core/memory_image.h"
#include "sim/functional_sim.h"
#include "sim/perf_model.h"

namespace db {

struct SystemRunResult {
  Tensor output;          // host-visible result, read back from the image
  PerfResult perf;        // accelerator timing for the invocation
  /// Per-invocation disposition, propagated to HostInvocation and the
  /// server's ServedRequest records so failures cross thread boundaries
  /// as values, never as exceptions (see common/error.h).
  StatusCode status = StatusCode::kOk;
};

/// Decode a WeightStore from the image's weight regions (the inverse of
/// BuildMemoryImage's weight serialisation).  Exposed for tests.
WeightStore DecodeWeights(const MemoryImage& image, const Network& net,
                          const AcceleratorDesign& design);

/// The steady-state half of RunSystem: weights decoded and the I/O blob
/// tile orders computed once at construction, so each Run() is just the
/// simulation plus two cached-order blob copies.
///
/// Threading: Run() is marked const but is NOT safe to call concurrently
/// on the same instance — the wrapped FunctionalSimulator owns a mutable
/// scratch arena (see functional_sim.h).  The serving stack honours this
/// by giving every replica its own SystemContext driven by a single lane
/// thread; anything that wants parallel invocations holds one context
/// per thread (ReplicateSystem stamps these out).
///
/// The weights are snapshotted from `image` at construction; a caller
/// that mutates weight regions afterwards (fault injection) must build a
/// fresh context, which is exactly what the RunSystem wrapper does.
class SystemContext {
 public:
  SystemContext(const Network& net, const AcceleratorDesign& design,
                const MemoryImage& image);

  /// One invocation: write the input blob into `image`, run the
  /// bit-accurate functional simulation with the snapshotted weights,
  /// store the output blob back, and read it out as the host would.
  SystemRunResult Run(MemoryImage& image, const Tensor& input,
                      const PerfOptions& perf_options = {}) const;

  const WeightStore& weights() const { return weights_; }

 private:
  const Network& net_;
  const AcceleratorDesign& design_;
  WeightStore weights_;       // decoded snapshot (owned; sim_ refers to it)
  FunctionalSimulator sim_;
  // Cached per-invocation hot path: the input/output blob regions and
  // their tile permutations never change for a given (net, design).
  const MemoryRegion* in_region_ = nullptr;
  const MemoryRegion* out_region_ = nullptr;
  std::vector<std::int64_t> in_order_;
  std::vector<std::int64_t> out_order_;
};

/// One replicated accelerator instance: a private copy of the
/// provisioned DRAM image plus the SystemContext decoded from it.  The
/// cluster's AcceleratorPool owns one of these per replica, so one
/// replica's image corruption (fault injection) can never perturb a
/// sibling — each context snapshotted its weights from its own bytes.
struct SystemReplica {
  MemoryImage image;
  std::unique_ptr<SystemContext> context;
};

/// Stamp out `count` independent replicas of a provisioned system.
/// Every replica starts byte-identical to `provisioned`, so a request
/// served by any replica produces bit-identical output.
std::vector<SystemReplica> ReplicateSystem(const Network& net,
                                           const AcceleratorDesign& design,
                                           const MemoryImage& provisioned,
                                           int count);

/// One full invocation against the image: decode weights, run the
/// bit-accurate functional simulation, store the output blob back into
/// the image, and read it out as the host would.  Decodes the weights on
/// every call so image corruption is always visible; steady-state
/// callers (the inference server) hold a SystemContext instead.
SystemRunResult RunSystem(const Network& net,
                          const AcceleratorDesign& design,
                          MemoryImage& image, const Tensor& input,
                          const PerfOptions& perf_options = {});

}  // namespace db
