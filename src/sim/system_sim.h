// System-level simulation: run an inference entirely through the DRAM
// image, the way the board operates (paper §4.1: the ARM core stores the
// preprocessed weights and inputs into DDR3; the accelerator reads and
// writes DRAM through the AXI switches; the host reads the result back).
//
// The weights the datapath uses are *decoded from the image bytes*, not
// taken from the WeightStore — so a corrupted image region corrupts the
// run, exactly as on hardware.
#pragma once

#include "core/memory_image.h"
#include "sim/functional_sim.h"
#include "sim/perf_model.h"

namespace db {

struct SystemRunResult {
  Tensor output;          // host-visible result, read back from the image
  PerfResult perf;        // accelerator timing for the invocation
};

/// Decode a WeightStore from the image's weight regions (the inverse of
/// BuildMemoryImage's weight serialisation).  Exposed for tests.
WeightStore DecodeWeights(const MemoryImage& image, const Network& net,
                          const AcceleratorDesign& design);

/// One full invocation against the image: decode weights, run the
/// bit-accurate functional simulation, store the output blob back into
/// the image, and read it out as the host would.
SystemRunResult RunSystem(const Network& net,
                          const AcceleratorDesign& design,
                          MemoryImage& image, const Tensor& input,
                          const PerfOptions& perf_options = {});

}  // namespace db
