#include "sim/power_model.h"

#include <sstream>

#include "common/strings.h"

namespace db {

std::string EnergyResult::ToString() const {
  std::ostringstream os;
  os << StrFormat(
      "runtime=%.4f s, static=%.3f W, fabric=%.3f W, dram=%.4f J, "
      "total=%.4f J (avg %.3f W)",
      runtime_s, static_watts, fabric_watts, dram_joules, total_joules,
      average_watts);
  return os.str();
}

EnergyResult EstimateEnergy(const ResourceBudget& used,
                            const PerfResult& perf,
                            const DeviceInfo& device,
                            const PowerParams& params) {
  EnergyResult e;
  e.runtime_s = perf.TotalSeconds();
  e.static_watts = device.static_watts;
  const double freq_scale = perf.frequency_mhz / params.reference_mhz;
  e.fabric_watts =
      (static_cast<double>(used.lut) * params.watts_per_lut +
       static_cast<double>(used.ff) * params.watts_per_ff +
       static_cast<double>(used.dsp) * params.watts_per_dsp +
       static_cast<double>(used.bram_bytes) * params.watts_per_bram_byte) *
      freq_scale;
  e.dram_joules = static_cast<double>(perf.total_dram_bytes) *
                  params.dram_joules_per_byte;
  e.total_joules =
      (e.static_watts + e.fabric_watts) * e.runtime_s + e.dram_joules;
  e.average_watts = e.runtime_s > 0 ? e.total_joules / e.runtime_s : 0.0;
  return e;
}

}  // namespace db
