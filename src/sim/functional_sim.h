// Bit-accurate functional simulation of a generated accelerator.
//
// Executes a network's forward propagation with exactly the arithmetic
// the generated datapath performs: operands quantised to the design's
// fixed-point format, full-precision MAC accumulation with saturating
// writeback, Approx-LUT activation/softmax/LRN evaluation (including the
// super-linear interpolation), and shift-based average pooling.  Fig. 10
// compares this simulator's outputs against the float reference executor.
#pragma once

#include <map>
#include <string>

#include "core/generator.h"
#include "nn/weights.h"

namespace db {

/// Functional simulator bound to one generated design.
class FunctionalSimulator {
 public:
  /// Quantises the weights once at construction (the ARM host's
  /// preprocessing step in the paper's flow).
  FunctionalSimulator(const Network& net, const AcceleratorDesign& design,
                      const WeightStore& weights);

  /// Run one forward propagation; input and output are float tensors at
  /// the network boundary (the host's view), everything in between is
  /// fixed-point.
  Tensor Run(const Tensor& input) const;

  /// Multi-input variant keyed by input-layer name.
  std::map<std::string, Tensor> Run(
      const std::map<std::string, Tensor>& inputs) const;

  /// Run and return *every* layer's activation (dequantised), keyed by
  /// layer name — the probe interface used to compare fixed-point
  /// fidelity at interior points (e.g. pre-softmax logits, where
  /// magnitudes are representable).
  std::map<std::string, Tensor> RunAll(const Tensor& input) const;

  /// The Approx LUT generated for `fn` (throws if the design has none).
  const ApproxLut& LutFor(LutFunction fn) const;

 private:
  struct RawTensor {
    BlobShape shape;
    std::vector<std::int64_t> raw;
  };

  RawTensor RunLayer(const IrLayer& layer,
                     const std::vector<const RawTensor*>& ins) const;

  const Network& net_;
  const AcceleratorDesign& design_;
  const WeightStore& weights_;
  FixedFormat fmt_;
  // Quantised parameters per layer, stored raw.
  struct RawParams {
    std::vector<std::int64_t> weights;
    std::vector<std::int64_t> bias;
    std::vector<std::int64_t> recurrent;
  };
  std::map<std::string, RawParams> raw_params_;
  std::vector<ApproxLut> luts_;
};

}  // namespace db
