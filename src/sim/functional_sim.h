// Bit-accurate functional simulation of a generated accelerator.
//
// Executes a network's forward propagation with exactly the arithmetic
// the generated datapath performs: operands quantised to the design's
// fixed-point format, full-precision MAC accumulation with saturating
// round-half-away-from-zero writeback, Approx-LUT activation/softmax/LRN
// evaluation (including the super-linear interpolation), and shift-based
// average pooling.  Fig. 10 compares this simulator's outputs against
// the float reference executor.
//
// Hot-path layout: layer state is structure-of-arrays — int32 raw
// activations in a per-simulator arena, int64 accumulators — and the
// dense MAC/activation sweeps run on the sim/kernels.h backend (AVX2
// when the host has it, bit-identical scalar otherwise).  Formats too
// wide for provably-overflow-free int64 accumulation fall back to an
// __int128 scalar path with identical rounding.
//
// Threading contract: a FunctionalSimulator owns one scratch arena, so
// concurrent Run() calls on the SAME instance are not supported.  Every
// serving replica owns a private SystemContext (and therefore a private
// simulator) driven by one lane thread, which satisfies this by
// construction.
#pragma once

#include <map>
#include <string>

#include "core/generator.h"
#include "nn/weights.h"
#include "sim/kernels.h"

namespace db {

/// Functional simulator bound to one generated design.
class FunctionalSimulator {
 public:
  /// Quantises the weights once at construction (the ARM host's
  /// preprocessing step in the paper's flow).
  FunctionalSimulator(const Network& net, const AcceleratorDesign& design,
                      const WeightStore& weights);

  /// Run one forward propagation; input and output are float tensors at
  /// the network boundary (the host's view), everything in between is
  /// fixed-point.
  Tensor Run(const Tensor& input) const;

  /// Multi-input variant keyed by input-layer name.
  std::map<std::string, Tensor> Run(
      const std::map<std::string, Tensor>& inputs) const;

  /// Run and return *every* layer's activation (dequantised), keyed by
  /// layer name — the probe interface used to compare fixed-point
  /// fidelity at interior points (e.g. pre-softmax logits, where
  /// magnitudes are representable).
  std::map<std::string, Tensor> RunAll(const Tensor& input) const;

  /// The Approx LUT generated for `fn` (throws if the design has none).
  const ApproxLut& LutFor(LutFunction fn) const;

  /// True when this design's accumulations run on the int64 SoA kernel
  /// backend; false means the format is wide enough to need the
  /// __int128 scalar fallback (exposed for tests/benches).
  bool uses_kernel_backend() const { return narrow_; }

 private:
  /// One layer's raw activations: an arena-backed int32 span.
  struct RawTensor {
    BlobShape shape;
    std::int32_t* raw = nullptr;
    std::size_t n = 0;
  };

  void RunLayer(const IrLayer& layer, const RawTensor* const* ins,
                std::size_t num_ins, RawTensor& out) const;
  /// Execute all layers; returns the arena-backed per-layer tensors,
  /// indexed by layer id.  `inputs` keys input-layer names.
  const RawTensor* RunGraph(
      const std::map<std::string, const Tensor*>& inputs) const;
  RawTensor QuantizeInput(const Tensor& t, const BlobShape& shape) const;
  Tensor Dequantize(const RawTensor& t) const;

  template <typename Math>
  void RunConv(const Math& math, const IrLayer& layer,
               const RawTensor& in0, RawTensor& out) const;
  template <typename Math>
  void RunInnerProduct(const Math& math, const IrLayer& layer,
                       const RawTensor& in0, RawTensor& out) const;
  template <typename Math>
  void RunLrn(const Math& math, const IrLayer& layer, const RawTensor& in0,
              RawTensor& out) const;
  template <typename Math>
  void RunRecurrent(const Math& math, const IrLayer& layer,
                    const RawTensor& in0, RawTensor& out) const;
  template <typename Math>
  void RunLstm(const Math& math, const IrLayer& layer, const RawTensor& in0,
               RawTensor& out) const;
  void RunPooling(const IrLayer& layer, const RawTensor& in0,
                  RawTensor& out) const;

  const Network& net_;
  const AcceleratorDesign& design_;
  const WeightStore& weights_;
  FixedFormat fmt_;
  // Quantised parameters per layer, stored raw (SoA int32).
  struct RawParams {
    std::vector<std::int32_t> weights;
    std::vector<std::int32_t> bias;
    std::vector<std::int32_t> recurrent;
  };
  std::map<std::string, RawParams> raw_params_;
  std::vector<ApproxLut> luts_;
  /// int64 accumulation provably never overflows for this design
  /// (format width x deepest fan-in) — the kernel fast path.
  bool narrow_ = true;
  /// Per-run scratch, recycled across invocations (see class comment
  /// for the single-thread contract).
  mutable sim::SimArena arena_;
};

}  // namespace db
