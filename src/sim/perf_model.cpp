#include "sim/perf_model.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/math_util.h"
#include "common/strings.h"
#include "graph/layer_stats.h"

namespace db {
namespace {

/// Per-layer memory traffic derived from the data layout.
struct LayerTraffic {
  std::int64_t fetch_bytes = 0;   // bytes occupying the DRAM channel
  std::int64_t store_bytes = 0;
  std::int64_t useful_bytes = 0;  // traffic net of utilisation waste
  std::int64_t passes = 1;        // input re-streams (buffer overflow)
};

LayerTraffic ComputeTraffic(const IrLayer& layer, const TileSpec& layout,
                            const AcceleratorConfig& config,
                            bool weights_resident) {
  LayerTraffic t;
  const std::int64_t elem = config.ElementBytes();
  const LayerStats stats = ComputeLayerStats(layer);
  const std::int64_t input_bytes = stats.input_elems * elem;
  std::int64_t weight_bytes = stats.weight_count * elem;
  if (weights_resident && weight_bytes <= config.weight_buffer_bytes)
    weight_bytes = 0;  // already on chip from the previous image
  t.store_bytes = stats.output_elems * elem;

  // If the layer's input working set exceeds the data buffer, the tiles
  // cannot all stay resident and the input streams again from DRAM for
  // the uncovered passes.  Buffer pressure is a property of the working
  // set alone: an unfolded layer (segments == 1) whose input overflows
  // the buffer refetches just the same, so the pass count must not be
  // gated on the fold plan.
  std::int64_t passes = 1;
  if (input_bytes > config.data_buffer_bytes)
    passes = CeilDiv(input_bytes,
                     std::max<std::int64_t>(config.data_buffer_bytes, 1));
  t.passes = passes;

  const double fetched =
      static_cast<double>(input_bytes) * layout.refetch /
          std::max(layout.utilization, 1e-6) *
          static_cast<double>(passes) +
      static_cast<double>(weight_bytes);
  t.fetch_bytes = static_cast<std::int64_t>(fetched);
  t.useful_bytes = input_bytes * passes + weight_bytes;
  return t;
}

/// Total overlap between two sets of intervals, each internally sorted
/// and disjoint (the DRAM channel and the datapath both serialise their
/// transactions, so the per-layer interval lists satisfy this by
/// construction).
std::int64_t OverlapCycles(
    const std::vector<std::pair<std::int64_t, std::int64_t>>& a,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& b) {
  std::size_t i = 0, j = 0;
  std::int64_t total = 0;
  while (i < a.size() && j < b.size()) {
    const std::int64_t lo = std::max(a[i].first, b[j].first);
    const std::int64_t hi = std::min(a[i].second, b[j].second);
    if (hi > lo) total += hi - lo;
    if (a[i].second < b[j].second)
      ++i;
    else
      ++j;
  }
  return total;
}

}  // namespace

std::string PerfResult::ToString() const {
  std::ostringstream os;
  os << StrFormat("  %-16s %9s %12s %12s %12s %12s\n", "layer", "segs",
                  "compute_cyc", "memory_cyc", "total_cyc", "dram_bytes");
  for (const LayerTiming& lt : layers)
    os << StrFormat("  %-16s %9lld %12lld %12lld %12lld %12lld\n",
                    lt.name.c_str(), static_cast<long long>(lt.segments),
                    static_cast<long long>(lt.compute_cycles),
                    static_cast<long long>(lt.memory_cycles),
                    static_cast<long long>(lt.total_cycles),
                    static_cast<long long>(lt.dram_bytes));
  os << StrFormat("  total: %lld cycles = %.3f ms @ %.0f MHz, %lld DRAM "
                  "bytes\n",
                  static_cast<long long>(total_cycles), TotalMs(),
                  frequency_mhz,
                  static_cast<long long>(total_dram_bytes));
  return os.str();
}

PerfResult SimulatePerformance(const Network& net,
                               const AcceleratorDesign& design,
                               const PerfOptions& options) {
  PerfResult result;
  result.frequency_mhz = design.config.frequency_mhz;
  const double bytes_per_cycle = design.config.DramBytesPerCycle();
  DB_CHECK_MSG(bytes_per_cycle > 0, "DRAM bandwidth must be positive");

  std::int64_t now = 0;           // global time (cycles)
  std::int64_t dram_free = 0;     // DRAM channel availability
  std::int64_t datapath_free = 0;

  for (const IrLayer* layer : net.ComputeLayers()) {
    const LayerFold& fold = design.fold_plan.ForLayer(layer->id);
    TileSpec layout = design.layout.ForLayer(layer->id).input_layout;
    if (options.force_naive_layout) {
      std::int64_t kernel = 1;
      std::int64_t stride = 1;
      if (layer->kind() == LayerKind::kConvolution) {
        kernel = layer->def.conv->kernel_size;
        stride = layer->def.conv->stride;
      } else if (layer->kind() == LayerKind::kPooling) {
        kernel = layer->def.pool->kernel_size;
        stride = layer->def.pool->stride;
      }
      layout = NaiveRowMajorLayout(layer->input_shapes.front(), kernel,
                                   stride, design.config.memory_port_elems);
    }
    const LayerTraffic traffic = ComputeTraffic(
        *layer, layout, design.config, options.weights_resident);

    LayerTiming lt;
    lt.layer_id = layer->id;
    lt.name = layer->name();
    lt.segments = fold.segments;
    lt.dram_bytes = traffic.fetch_bytes + traffic.store_bytes;
    lt.refetch_passes = traffic.passes;

    const std::int64_t layer_start = now;
    const std::int64_t segs = std::max<std::int64_t>(fold.segments, 1);
    const std::int64_t fetch_per_seg =
        static_cast<std::int64_t>(
            static_cast<double>(traffic.fetch_bytes) /
            static_cast<double>(segs) / bytes_per_cycle) +
        options.dram_burst_latency;
    const std::int64_t store_per_seg = static_cast<std::int64_t>(
        static_cast<double>(traffic.store_bytes) /
        static_cast<double>(segs) / bytes_per_cycle);
    const std::int64_t compute_per_seg =
        fold.unit_work + options.segment_overhead_cycles;

    // Two on-chip buffer slots: segment i's fetch may start once segment
    // i-2's compute released its slot.  Output results drain through a
    // write-back buffer, so stores do not block the next segment's fetch;
    // the layer completes when the drain finishes.
    std::vector<std::int64_t> compute_end(static_cast<std::size_t>(segs),
                                          0);
    // Busy intervals of the layer, for the cycle attribution below.
    // Each resource serialises its transactions, so both lists are
    // sorted and disjoint.
    std::vector<std::pair<std::int64_t, std::int64_t>> dram_iv;
    std::vector<std::pair<std::int64_t, std::int64_t>> compute_iv;
    dram_iv.reserve(static_cast<std::size_t>(segs) + 1);
    compute_iv.reserve(static_cast<std::size_t>(segs));
    std::int64_t last_compute_end = layer_start;
    for (std::int64_t s = 0; s < segs; ++s) {
      std::int64_t fetch_start = std::max(dram_free, layer_start);
      if (!options.double_buffer)
        fetch_start = std::max(fetch_start, datapath_free);
      if (s >= 2)
        fetch_start = std::max(fetch_start,
                               compute_end[static_cast<std::size_t>(s - 2)]);
      const std::int64_t fetch_end = fetch_start + fetch_per_seg;
      dram_free = fetch_end;

      const std::int64_t compute_start =
          std::max(fetch_end, datapath_free);
      const std::int64_t c_end = compute_start + compute_per_seg;
      compute_end[static_cast<std::size_t>(s)] = c_end;
      datapath_free = c_end;
      last_compute_end = c_end;
      dram_iv.emplace_back(fetch_start, fetch_end);
      compute_iv.emplace_back(compute_start, c_end);
      if (options.trace != nullptr) {
        options.trace->events.push_back({TraceEvent::Resource::kDram,
                                         layer->id, fetch_start,
                                         fetch_end});
        options.trace->events.push_back({TraceEvent::Resource::kDatapath,
                                         layer->id, compute_start, c_end});
      }

      lt.compute_cycles += compute_per_seg;
      lt.memory_cycles += fetch_per_seg + store_per_seg;
    }
    // Write-back drain of all segments' outputs.
    const std::int64_t drain_start = std::max(dram_free, last_compute_end);
    const std::int64_t drain_end = drain_start + store_per_seg * segs;
    if (options.trace != nullptr && drain_end > drain_start)
      options.trace->events.push_back({TraceEvent::Resource::kDram,
                                       layer->id, drain_start, drain_end});
    dram_free = drain_end;
    if (drain_end > drain_start) dram_iv.emplace_back(drain_start, drain_end);
    now = std::max(last_compute_end, drain_end) +
          options.layer_overhead_cycles;
    datapath_free = now;
    lt.total_cycles = now - layer_start;

    // Exact wall-clock attribution: DRAM-busy time not hidden behind
    // the datapath is the memory-bound share; the fold unit work is the
    // compute-bound share; everything else on the critical path —
    // segment/coordinator overheads, the layer fill/drain allowance and
    // waits where both resources idled — is control/stall.  The three
    // buckets partition total_cycles by construction.
    std::int64_t dram_busy = 0;
    for (const auto& [lo, hi] : dram_iv) dram_busy += hi - lo;
    lt.dram_transfer_cycles = dram_busy - OverlapCycles(dram_iv, compute_iv);
    lt.datapath_mac_cycles = fold.unit_work * segs;
    lt.control_stall_cycles =
        lt.total_cycles - lt.dram_transfer_cycles - lt.datapath_mac_cycles;

    result.total_dram_bytes += lt.dram_bytes;
    result.layers.push_back(std::move(lt));
  }
  result.total_cycles = now;
  if (options.trace != nullptr) options.trace->total_cycles = now;
  if (options.metrics != nullptr) {
    // Commutative kinds only (counters + histograms): concurrent server
    // workers publishing into one registry must stay deterministic.
    obs::MetricsRegistry& m = *options.metrics;
    m.AddCounter("sim.invocations");
    m.AddCounter("sim.total_cycles", result.total_cycles);
    m.AddCounter("sim.dram_bytes", result.total_dram_bytes);
    for (const LayerTiming& lt : result.layers) {
      m.AddCounter("sim.datapath_cycles", lt.compute_cycles);
      m.AddCounter("sim.memory_cycles", lt.memory_cycles);
      m.AddCounter("sim.fold_segments", lt.segments);
      m.AddCounter("sim.refetch_passes", lt.refetch_passes);
      m.AddCounter("sim.dram_transfer_cycles", lt.dram_transfer_cycles);
      m.AddCounter("sim.datapath_mac_cycles", lt.datapath_mac_cycles);
      m.AddCounter("sim.control_stall_cycles", lt.control_stall_cycles);
      m.Observe("sim.layer_cycles",
                static_cast<double>(lt.total_cycles));
    }
  }
  return result;
}

obs::ProfileReport BuildProfileReport(const Network& net,
                                      const AcceleratorDesign& design,
                                      const PerfResult& perf) {
  obs::ProfileReport report;
  report.model = net.name();
  report.frequency_mhz = perf.frequency_mhz;
  report.lanes = design.config.TotalLanes();
  report.total_cycles = perf.total_cycles;
  report.total_dram_bytes = perf.total_dram_bytes;

  std::map<int, const LayerTiming*> by_id;
  for (const LayerTiming& lt : perf.layers) by_id[lt.layer_id] = &lt;

  const std::int64_t lanes =
      std::max<std::int64_t>(design.config.TotalLanes(), 1);
  const std::int64_t elem = design.config.ElementBytes();
  report.layers.reserve(perf.layers.size());
  for (const IrLayer* layer : net.ComputeLayers()) {
    const auto it = by_id.find(layer->id);
    if (it == by_id.end()) continue;  // layer folded away by the planner
    const LayerTiming& lt = *it->second;
    const LayerStats stats = ComputeLayerStats(*layer);

    obs::LayerProfile p;
    p.layer_id = lt.layer_id;
    p.name = lt.name;
    p.segments = lt.segments;
    p.total_cycles = lt.total_cycles;
    p.dram_cycles = lt.dram_transfer_cycles;
    p.mac_cycles = lt.datapath_mac_cycles;
    p.stall_cycles = lt.control_stall_cycles;
    p.dram_bytes = lt.dram_bytes;
    p.refetch_passes = lt.refetch_passes;
    if (lt.total_cycles > 0)
      p.pe_utilization = std::min(
          1.0, static_cast<double>(stats.macs) /
                   (static_cast<double>(lanes) *
                    static_cast<double>(lt.total_cycles)));
    if (design.config.data_buffer_bytes > 0)
      p.buffer_utilization = std::min(
          1.0, static_cast<double>(stats.input_elems * elem) /
                   static_cast<double>(design.config.data_buffer_bytes));
    report.layers.push_back(std::move(p));
  }
  report.Sort();
  return report;
}

BatchResult SimulateBatch(const Network& net,
                          const AcceleratorDesign& design,
                          std::int64_t images,
                          const PerfOptions& options) {
  DB_CHECK_MSG(images >= 1, "batch needs at least one image");
  BatchResult result;
  result.images = images;
  result.frequency_mhz = design.config.frequency_mhz;

  const PerfResult cold = SimulatePerformance(net, design, options);
  result.first_image_cycles = cold.total_cycles;

  PerfOptions steady = options;
  steady.weights_resident = true;
  const PerfResult warm = SimulatePerformance(net, design, steady);
  result.steady_image_cycles = warm.total_cycles;

  result.total_cycles =
      cold.total_cycles + (images - 1) * warm.total_cycles;
  return result;
}

}  // namespace db
