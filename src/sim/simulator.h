// Facade tying the three simulator aspects together: functional
// (bit-accurate outputs), performance (cycles) and energy.  This is what
// the examples and benches use to "run" a generated accelerator in place
// of the FPGA board.
#pragma once

#include <string>

#include "core/generator.h"
#include "nn/weights.h"
#include "sim/functional_sim.h"
#include "sim/perf_model.h"
#include "sim/power_model.h"

namespace db {

/// A complete simulated invocation of a generated accelerator.
struct SimulationResult {
  Tensor output;
  PerfResult perf;
  EnergyResult energy;
};

/// Simulated accelerator bound to one design + trained weights.
class AcceleratorSimulator {
 public:
  AcceleratorSimulator(const Network& net, const AcceleratorDesign& design,
                       const WeightStore& weights,
                       std::string device_name = "zynq-7045");

  /// Run one inference: functional output plus timing and energy.
  SimulationResult Invoke(const Tensor& input,
                          const PerfOptions& options = {}) const;

  /// Timing/energy only (workload-independent in this model).
  PerfResult Performance(const PerfOptions& options = {}) const;
  EnergyResult Energy(const PerfOptions& options = {}) const;

  const FunctionalSimulator& functional() const { return functional_; }

 private:
  const Network& net_;
  const AcceleratorDesign& design_;
  FunctionalSimulator functional_;
  const DeviceInfo& device_;
};

}  // namespace db
