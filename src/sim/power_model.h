// Activity- and resource-based power/energy model.
//
// FPGA power at a fixed clock is dominated by static leakage plus
// clock/logic switching proportional to the occupied fabric; DRAM traffic
// adds a per-byte cost.  The coefficients are calibrated against the
// evaluation platform of the paper (Zynq boards around 1-3 W for
// CNN-scale designs, Virtex-7 VC707 much higher) so Fig. 9's relative
// energies reproduce.
#pragma once

#include <string>

#include "hwlib/device.h"
#include "sim/perf_model.h"

namespace db {

/// Model coefficients (defaults calibrated for 100 MHz designs).
struct PowerParams {
  double watts_per_lut = 45e-6;     // logic + routing + clock per LUT
  double watts_per_ff = 8e-6;
  double watts_per_dsp = 2.4e-3;
  double watts_per_bram_byte = 1.2e-6;
  double dram_joules_per_byte = 60e-12;  // DDR3 access energy
  /// Scales dynamic fabric power with the operating frequency.
  double reference_mhz = 100.0;
};

struct EnergyResult {
  double runtime_s = 0.0;
  double static_watts = 0.0;
  double fabric_watts = 0.0;   // resource-proportional switching power
  double dram_joules = 0.0;
  double total_joules = 0.0;
  double average_watts = 0.0;

  std::string ToString() const;
};

/// Energy of one forward propagation: fabric power x runtime + DRAM
/// traffic energy + board static power x runtime.
EnergyResult EstimateEnergy(const ResourceBudget& used_resources,
                            const PerfResult& perf,
                            const DeviceInfo& device,
                            const PowerParams& params = {});

}  // namespace db
