// Transaction-level performance simulation of a generated accelerator.
//
// The simulator walks the coordinator schedule at fold-segment
// granularity.  Each segment is a (fetch, compute, store) transaction
// triple; with double buffering (the data-driven default) segment i+1's
// fetch overlaps segment i's compute, exactly the producer/consumer
// behaviour the AGUs implement.  Memory transaction durations come from
// the DRAM channel model scaled by the data layout's bandwidth
// utilisation and re-fetch factors — this is where Method-1 tiling pays
// off and where the tiling ablation measures its effect.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/generator.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "sim/trace.h"

namespace db {

struct PerfOptions {
  /// Overlap fetch of the next segment with compute of the current one.
  bool double_buffer = true;
  /// Replace every layout entry by the naive row-major layout (tiling
  /// ablation) before simulating.
  bool force_naive_layout = false;
  /// Cycles the coordinator + AGU retrigger cost per fold segment.
  std::int64_t segment_overhead_cycles = 8;
  /// Pipeline fill/drain cycles per layer.
  std::int64_t layer_overhead_cycles = 24;
  /// DRAM channel latency per burst (cycles), amortised per transaction.
  std::int64_t dram_burst_latency = 16;
  /// Treat each layer's weights as already resident in the weight buffer
  /// (steady-state batch processing): layers whose weight arrays fit the
  /// buffer skip the weight fetch.
  bool weights_resident = false;
  /// When set, the simulator records every DRAM / datapath busy interval
  /// here (see sim/trace.h for VCD export).
  PerfTrace* trace = nullptr;
  /// When set, the simulator publishes per-invocation counters and
  /// histograms here ("sim.*": DRAM bytes, busy cycles, refetch passes,
  /// fold segments, per-layer cycles).  Only commutative metric kinds
  /// are published, so concurrent server workers sharing one registry
  /// still produce run-to-run identical totals.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Timing of one layer.
struct LayerTiming {
  int layer_id = 0;
  std::string name;
  std::int64_t segments = 1;
  std::int64_t compute_cycles = 0;  // datapath-busy cycles
  std::int64_t memory_cycles = 0;   // DRAM-channel-busy cycles
  std::int64_t total_cycles = 0;    // after overlap
  std::int64_t dram_bytes = 0;
  /// Input re-streaming passes forced by data-buffer overflow (1 = the
  /// working set fit and streamed once).
  std::int64_t refetch_passes = 1;

  /// Wall-clock attribution of `total_cycles` — an exact partition
  /// derived from the segment interval timeline (the three buckets sum
  /// to total_cycles; asserted across the zoo in profile_test):
  ///   * dram_transfer_cycles: DRAM channel busy while the datapath
  ///     idled (exposed memory time, the memory-bound share);
  ///   * datapath_mac_cycles: fold unit work (pure MAC-array time);
  ///   * control_stall_cycles: segment/coordinator overheads, pipeline
  ///     fill/drain, and waits where both resources idled.
  std::int64_t dram_transfer_cycles = 0;
  std::int64_t datapath_mac_cycles = 0;
  std::int64_t control_stall_cycles = 0;
};

/// Whole-network timing.
struct PerfResult {
  std::vector<LayerTiming> layers;
  std::int64_t total_cycles = 0;
  std::int64_t total_dram_bytes = 0;
  double frequency_mhz = 100.0;

  double TotalSeconds() const {
    return static_cast<double>(total_cycles) / (frequency_mhz * 1e6);
  }
  double TotalMs() const { return TotalSeconds() * 1e3; }
  std::string ToString() const;
};

/// Simulate one forward propagation of `net` on `design`.
PerfResult SimulatePerformance(const Network& net,
                               const AcceleratorDesign& design,
                               const PerfOptions& options = {});

/// Fold a simulated run into the per-layer bottleneck-attribution
/// report (obs/profile.h): the LayerTiming attribution buckets plus
/// PE/buffer utilisation derived from the layer statistics and the
/// design configuration, sorted hottest-first.  Byte-stable renderings;
/// `deepburning profile` is this function over a fresh simulation.
obs::ProfileReport BuildProfileReport(const Network& net,
                                      const AcceleratorDesign& design,
                                      const PerfResult& perf);

/// Batched invocation: the first image pays the cold-weight run; later
/// images reuse buffered weights where they fit (latency vs throughput,
/// the batch amortisation a host runtime exploits).
struct BatchResult {
  std::int64_t images = 0;
  std::int64_t first_image_cycles = 0;
  std::int64_t steady_image_cycles = 0;
  std::int64_t total_cycles = 0;
  double frequency_mhz = 100.0;

  double LatencySeconds() const {
    return static_cast<double>(first_image_cycles) /
           (frequency_mhz * 1e6);
  }
  double ThroughputImagesPerSecond() const {
    return images > 0 ? static_cast<double>(images) /
                            (static_cast<double>(total_cycles) /
                             (frequency_mhz * 1e6))
                      : 0.0;
  }
};
BatchResult SimulateBatch(const Network& net,
                          const AcceleratorDesign& design,
                          std::int64_t images,
                          const PerfOptions& options = {});

}  // namespace db
